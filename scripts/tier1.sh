#!/usr/bin/env bash
# Tier-1 verification: the plain Release build + full test suite, then the
# threaded pipeline/observability tests again under ThreadSanitizer to
# catch races introduced by metric emission from parser/indexer threads.
#
#   scripts/tier1.sh [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
[[ "${1:-}" == "--no-tsan" ]] && run_tsan=0

cmake -B build -S .
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$run_tsan" == 1 ]]; then
  cmake -B build-tsan -S . -DHETINDEX_SANITIZE=thread \
        -DHETINDEX_BUILD_BENCH=OFF -DHETINDEX_BUILD_EXAMPLES=OFF \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$(nproc)" --target test_pipeline test_obs
  ctest --test-dir build-tsan --output-on-failure -R '^(test_pipeline|test_obs)$'
fi
echo "tier1: OK"
