#!/usr/bin/env bash
# Tier-1 verification: the plain Release build + full test suite, then two
# sanitizer legs over the concurrency- and memory-critical tests:
#   - ThreadSanitizer on the threaded pipeline/observability/segment/live/
#     search/cluster tests (metric emission from parser threads, shared
#     SegmentReader lookups, snapshot readers racing live flushes,
#     deletes and compaction, the SearchService pool racing the live
#     writer, and the ShardRouter fan-out racing shard writers)
#   - ASan+UBSan on the binary-format and serving tests (run files,
#     segments, query path, MaxScore executor and caches) to catch
#     overruns and UB in the decoders and the mmap reader. This tree is
#     configured with HETINDEX_IO_URING=OFF so the Env-routed pread
#     fallback of the ingest readahead path (io/async_reader.hpp) stays
#     exercised under ASan even on io_uring-capable kernels
#   - a fault-injection leg: the crash-consistency harness (trace-prefix
#     replay of flush/delete/update/compaction commits + injected
#     ENOSPC/EINTR/fsync faults, docs/DURABILITY.md) under ASan+UBSan,
#     once with the fixed seed and once with a randomized
#     HETINDEX_CRASH_SEED (printed, so failures replay)
#   - a bench leg (plain tree; the sanitizer trees build with
#     HETINDEX_BUILD_BENCH=OFF): bench_block_pruning emits
#     BENCH_pruning.json (pruned-vs-exhaustive latency and blocks skipped,
#     docs/SERVING.md), bench_search_qps emits BENCH_search.json
#     (per-class p50/p99 for the mixed ranked/AND/phrase/NEAR workload,
#     docs/QUERIES.md), bench_live_ingest emits BENCH_ingest.json
#     (ingest docs/s with and without concurrent memtable search load,
#     docs/LIVE_INDEXING.md), and bench_cluster_scaling emits
#     BENCH_cluster.json (router QPS/p99 vs shard count per partition
#     strategy, docs/CLUSTER.md), and bench_build_presets emits
#     BENCH_build.json (pinned-preset batch build: serialized vs readahead
#     ingest read-phase throughput + bit-identity gate, EXPERIMENTS.md).
#     The leg then fails if any BENCH_*.json carries a bench name that does
#     not belong to its filename (stale-artifact guard)
#
# Each leg's wall-clock is reported in the summary at the end.
#
#   scripts/tier1.sh [--no-tsan] [--no-asan] [--no-faults] [--no-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
run_asan=1
run_faults=1
run_bench=1
for arg in "$@"; do
  [[ "$arg" == "--no-tsan" ]] && run_tsan=0
  [[ "$arg" == "--no-asan" ]] && run_asan=0
  [[ "$arg" == "--no-faults" ]] && run_faults=0
  [[ "$arg" == "--no-bench" ]] && run_bench=0
done

# Per-leg wall-clock accounting, printed as a summary before "tier1: OK".
leg_names=()
leg_seconds=()
leg_start=0
leg_begin() { leg_start=$SECONDS; }
leg_end() {
  leg_names+=("$1")
  leg_seconds+=($(( SECONDS - leg_start )))
}

leg_begin
cmake -B build -S .
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"
leg_end "build+ctest"

if [[ "$run_tsan" == 1 ]]; then
  leg_begin
  cmake -B build-tsan -S . -DHETINDEX_SANITIZE=thread \
        -DHETINDEX_BUILD_BENCH=OFF -DHETINDEX_BUILD_EXAMPLES=OFF \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$(nproc)" --target test_pipeline test_obs test_segment test_live test_search_service test_block_max test_query_ast test_cluster test_parse test_ingest_faults
  ctest --test-dir build-tsan --output-on-failure -R '^(test_pipeline|test_obs|test_segment|test_live|test_search_service|test_block_max|test_query_ast|test_cluster|test_parse|test_ingest_faults)$'
  leg_end "tsan"
fi

if [[ "$run_asan" == 1 ]]; then
  leg_begin
  cmake -B build-asan -S . -DHETINDEX_SANITIZE=address -DHETINDEX_IO_URING=OFF \
        -DHETINDEX_BUILD_BENCH=OFF -DHETINDEX_BUILD_EXAMPLES=OFF \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$(nproc)" --target test_segment test_postings test_codec test_query_ops test_query_ast test_live test_search_service test_block_max test_cluster test_ingest_faults
  ctest --test-dir build-asan --output-on-failure -R '^(test_segment|test_postings|test_codec|test_query_ops|test_query_ast|test_live|test_search_service|test_block_max|test_cluster|test_ingest_faults)$'
  leg_end "asan"
fi

if [[ "$run_faults" == 1 ]]; then
  leg_begin
  # Reuses the ASan+UBSan tree: fault paths shake out lifetime bugs
  # (double-close, use-after-unmap) that a plain build would miss.
  cmake -B build-asan -S . -DHETINDEX_SANITIZE=address -DHETINDEX_IO_URING=OFF \
        -DHETINDEX_BUILD_BENCH=OFF -DHETINDEX_BUILD_EXAMPLES=OFF \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$(nproc)" --target test_crash_consistency
  # Fixed seed first (the regression baseline), then one randomized seed to
  # keep growing coverage of torn-write offsets. The harness prints the
  # seed, so a CI failure is replayed with HETINDEX_CRASH_SEED=<seed>.
  HETINDEX_CRASH_SEED=42 ctest --test-dir build-asan --output-on-failure -R '^test_crash_consistency$'
  random_seed=$(( (RANDOM << 15) | RANDOM ))
  echo "fault leg: randomized HETINDEX_CRASH_SEED=$random_seed"
  HETINDEX_CRASH_SEED=$random_seed ctest --test-dir build-asan --output-on-failure -R '^test_crash_consistency$'
  leg_end "faults"
fi

if [[ "$run_bench" == 1 ]]; then
  leg_begin
  # Smoke benches on the plain tree built above. Each fails (exit 1) on a
  # degenerate measurement and leaves its JSON in the repo root for trend
  # tooling: block-max pruning must actually skip blocks, the mixed-class
  # query workload must answer queries in every class, and live ingest
  # must sustain nonzero docs/s with and without memtable search load.
  HETINDEX_BENCH_JSON="$PWD/BENCH_pruning.json" ./build/bench/bench_block_pruning
  echo "bench leg: wrote BENCH_pruning.json"
  HETINDEX_BENCH_JSON="$PWD/BENCH_search.json" ./build/bench/bench_search_qps
  echo "bench leg: wrote BENCH_search.json"
  HETINDEX_BENCH_JSON="$PWD/BENCH_ingest.json" ./build/bench/bench_live_ingest
  echo "bench leg: wrote BENCH_ingest.json"
  HETINDEX_BENCH_JSON="$PWD/BENCH_cluster.json" ./build/bench/bench_cluster_scaling
  echo "bench leg: wrote BENCH_cluster.json"
  HETINDEX_BENCH_JSON="$PWD/BENCH_build.json" ./build/bench/bench_build_presets
  echo "bench leg: wrote BENCH_build.json"

  # Guard against stale artifacts: each BENCH_*.json must carry the bench
  # name its producer stamps (a mismatch means a bench wrote to the wrong
  # file, or a committed artifact predates a bench rename — both have
  # happened). The mapping below is the single source of truth.
  declare -A expected_bench=(
    [BENCH_pruning.json]="block_pruning"
    [BENCH_search.json]="search_qps"
    [BENCH_ingest.json]="live_ingest"
    [BENCH_cluster.json]="cluster_scaling"
    [BENCH_build.json]="build"
  )
  for f in "${!expected_bench[@]}"; do
    want="${expected_bench[$f]}"
    got=$(sed -n 's/.*"bench": *"\([a-z_]*\)".*/\1/p' "$f" | head -1)
    if [[ "$got" != "$want" ]]; then
      echo "bench leg: FAIL — $f carries bench \"$got\", expected \"$want\" (stale artifact?)"
      exit 1
    fi
  done
  echo "bench leg: all BENCH_*.json bench fields match their filenames"
  leg_end "bench"
fi

echo
echo "tier1 leg summary:"
for i in "${!leg_names[@]}"; do
  printf '  %-12s %4ds\n' "${leg_names[$i]}" "${leg_seconds[$i]}"
done
echo "tier1: OK"
