#pragma once
/// \file pipeline_sim.hpp
/// Discrete-event simulator of the Fig. 9 pipeline on a PlatformModel. It
/// replays the per-run stage costs measured by a real PipelineEngine build
/// (RunRecords) under a chosen worker configuration, reproducing the
/// pipeline dynamics the paper evaluates:
///   - the serialized disk (one parser reads at a time, §III.F);
///   - in-memory decompression and parsing on dedicated parser cores;
///   - bounded parser buffers (back-pressure window);
///   - the indexing stage consuming runs strictly in sequence, each run
///     being serialized pre-processing → parallel indexing (max over CPU
///     indexers and GPUs) → serialized post-processing (Fig. 8);
///   - indexer idle time when parsers fall behind (§IV.B's "waiting for
///     results from the parsers").
///
/// Constraint: the RunRecords must have been measured with the same
/// (cpu_indexers, gpus) split being simulated — the popularity partition
/// changes per-indexer work, so benches run the real pipeline once per
/// indexer configuration and use the DES to vary M and the platform.

#include <cstdint>
#include <vector>

#include "pipeline/report.hpp"
#include "sim/platform.hpp"

namespace hetindex {

struct SimPipelineConfig {
  std::size_t parsers = 6;       ///< M
  std::size_t cpu_indexers = 2;  ///< N1 (must match the records)
  std::size_t gpus = 2;          ///< N2 (must match the records; 0 = ignore GPU timings)
  std::size_t buffers_per_parser = 2;
  /// Fig. 10 scenario (3): run the parse stage only, discard parsed data.
  bool indexing_enabled = true;
};

/// Table IV / Table VI style outcome of one simulated build.
struct SimResult {
  double total_seconds = 0;          ///< last pipeline event (excl. dict phases)
  double parse_stage_seconds = 0;    ///< when the last block became ready
  double index_stage_seconds = 0;    ///< when the last run finished
  double pre_seconds = 0;            ///< Σ per-run pre-processing (Table IV)
  double indexing_seconds = 0;       ///< Σ per-run parallel indexing time
  double post_seconds = 0;           ///< Σ per-run post-processing
  double indexer_wait_seconds = 0;   ///< idle gaps waiting on parsers
  std::uint64_t uncompressed_bytes = 0;
  std::vector<double> per_run_index_seconds;  ///< Fig. 11 series
  std::vector<double> per_run_end_seconds;

  [[nodiscard]] double throughput_mb_s() const {
    return total_seconds > 0
               ? static_cast<double>(uncompressed_bytes) / (1024.0 * 1024.0) / total_seconds
               : 0.0;
  }
  /// "Indexing Throughput" of Table IV (excludes pre/post, §IV.B).
  [[nodiscard]] double indexing_throughput_mb_s() const {
    return indexing_seconds > 0
               ? static_cast<double>(uncompressed_bytes) / (1024.0 * 1024.0) / indexing_seconds
               : 0.0;
  }
  /// "Total Indexer Throughput" of Table IV.
  [[nodiscard]] double indexer_throughput_mb_s() const {
    return index_stage_seconds > 0 ? static_cast<double>(uncompressed_bytes) /
                                         (1024.0 * 1024.0) / index_stage_seconds
                                   : 0.0;
  }
};

class PipelineSimulator {
 public:
  explicit PipelineSimulator(PlatformModel platform = {}) : platform_(platform) {}

  [[nodiscard]] const PlatformModel& platform() const { return platform_; }

  /// Replays `runs` under `config`. Checks that the records carry the
  /// worker counts the config asks for.
  [[nodiscard]] SimResult simulate(const std::vector<RunRecord>& runs,
                                   const SimPipelineConfig& config) const;

 private:
  PlatformModel platform_;
};

}  // namespace hetindex
