#pragma once
/// \file platform.hpp
/// The target-platform model for the discrete-event pipeline simulator:
/// the paper's evaluation node (two Xeon X5560 quad-cores = 8 cores, 24 GB
/// RAM, input on a remote disk behind 1 Gb/s Ethernet, two Tesla C1060s).
/// Per-stage CPU work comes from RunRecords measured on the host running
/// this library; `core_speed_ratio` rescales host-core seconds to
/// platform-core seconds (1.0 = assume equal per-core speed — only the
/// *shape* of the scaling curves is claimed, not absolute numbers).

#include <cstddef>

namespace hetindex {

struct PlatformModel {
  std::size_t cores = 8;
  /// §IV.A: "it takes around 1.6 seconds to read such a compressed
  /// [160 MB] file" → ~100 MB/s effective sequential read.
  double disk_read_mb_s = 100.0;
  /// Host-measured seconds × ratio = platform seconds.
  double core_speed_ratio = 1.0;
  std::size_t gpus = 2;
};

}  // namespace hetindex
