#include "sim/pipeline_sim.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hetindex {

SimResult PipelineSimulator::simulate(const std::vector<RunRecord>& runs,
                                      const SimPipelineConfig& config) const {
  HET_CHECK(config.parsers >= 1);
  SimResult result;
  if (runs.empty()) return result;
  if (config.indexing_enabled) {
    HET_CHECK_MSG(runs.front().cpu_index_seconds.size() >= config.cpu_indexers,
                  "records lack the requested CPU indexer count");
    HET_CHECK_MSG(runs.front().gpu_timings.size() >= config.gpus,
                  "records lack the requested GPU count");
  }
  const double ratio = platform_.core_speed_ratio;
  const std::size_t window =
      std::max(config.parsers + 1, config.parsers * config.buffers_per_parser);

  std::vector<double> parser_free(config.parsers, 0.0);
  double disk_free = 0.0;
  std::vector<double> block_ready(runs.size(), 0.0);
  std::vector<double> run_end(runs.size(), 0.0);
  double prev_run_end = 0.0;

  for (std::size_t r = 0; r < runs.size(); ++r) {
    const RunRecord& run = runs[r];

    // The earliest-free parser claims file r (the read scheduler hands
    // files out in order).
    const std::size_t p = static_cast<std::size_t>(
        std::min_element(parser_free.begin(), parser_free.end()) - parser_free.begin());
    // Back-pressure: the parser may not push block r until run r - window
    // has been consumed.
    double start = parser_free[p];
    if (config.indexing_enabled && r >= window) start = std::max(start, run_end[r - window]);

    // Serialized disk section (§III.F): read the compressed file.
    const double read_time =
        static_cast<double>(run.compressed_bytes) / (platform_.disk_read_mb_s * 1024 * 1024);
    const double read_start = std::max(start, disk_free);
    disk_free = read_start + read_time;

    // In-memory decompression + parsing on the parser's own core.
    block_ready[r] = disk_free + (run.decompress_seconds + run.parse_seconds) * ratio;
    parser_free[p] = block_ready[r];

    if (!config.indexing_enabled) continue;

    // Indexing stage: runs strictly in sequence (Fig. 8).
    const double run_start = std::max(block_ready[r], prev_run_end);
    result.indexer_wait_seconds += std::max(0.0, block_ready[r] - prev_run_end);

    double pre = 0, idx = 0, post = 0;
    for (std::size_t g = 0; g < config.gpus; ++g) {
      pre = std::max(pre, run.gpu_timings[g].pre_seconds);
      idx = std::max(idx, run.gpu_timings[g].index_seconds);
      post = std::max(post, run.gpu_timings[g].post_seconds);
    }
    for (std::size_t i = 0; i < config.cpu_indexers; ++i) {
      idx = std::max(idx, run.cpu_index_seconds[i] * ratio);
    }
    post += run.flush_seconds * ratio;

    run_end[r] = run_start + pre + idx + post;
    prev_run_end = run_end[r];
    result.pre_seconds += pre;
    result.indexing_seconds += idx;
    result.post_seconds += post;
    result.per_run_index_seconds.push_back(idx);
    result.per_run_end_seconds.push_back(run_end[r]);
    result.uncompressed_bytes += run.source_bytes;
  }

  result.parse_stage_seconds = *std::max_element(block_ready.begin(), block_ready.end());
  if (config.indexing_enabled) {
    result.index_stage_seconds = prev_run_end;
    result.total_seconds = std::max(result.parse_stage_seconds, result.index_stage_seconds);
  } else {
    for (const auto& run : runs) result.uncompressed_bytes += run.source_bytes;
    result.total_seconds = result.parse_stage_seconds;
  }
  return result;
}

}  // namespace hetindex
