#include "search/topk.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "live/memtable.hpp"
#include "live/tombstones.hpp"
#include "util/check.hpp"

namespace hetindex {

std::vector<ScoredDoc> rank_by_tf(const QueryPostings& postings, std::size_t k,
                                  const TombstoneSet* excluded) {
  std::vector<ScoredDoc> hits;
  hits.reserve(postings.doc_ids.size());
  for (std::size_t i = 0; i < postings.doc_ids.size(); ++i) {
    if (excluded != nullptr && excluded->contains(postings.doc_ids[i])) continue;
    hits.push_back({postings.doc_ids[i], static_cast<double>(postings.tfs[i])});
  }
  std::sort(hits.begin(), hits.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

namespace {

/// Relative pruning slack: a candidate is discarded only when its bound is
/// below theta by more than one part in 10^9 — far beyond any rounding
/// drift a handful of double additions can produce, so a document whose
/// canonical score ties or beats theta always survives to the exact
/// re-score.
constexpr double kPruneSlack = 1.0 - 1e-9;

/// Candidates between deadline checks (a clock read per candidate would
/// dominate short lists).
constexpr std::uint64_t kDeadlineStride = 256;

/// The final ordering: score descending, doc id ascending. Doubles as the
/// heap's "is a better than b" test so ties resolve exactly as the
/// exhaustive scorer's sort does.
bool better(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc_id < b.doc_id;
}

}  // namespace

void DocLengthIndex::add_range(std::uint32_t base, std::uint32_t count,
                               const DocMap* map) {
  if (count == 0 || map == nullptr) return;
  HET_CHECK_MSG(ranges_.empty() ||
                    ranges_.back().base + ranges_.back().count <= base,
                "doc-length ranges must be added in ascending disjoint order");
  ranges_.push_back({base, count, map, nullptr});
}

void DocLengthIndex::add_range(std::uint32_t base, std::uint32_t count,
                               const MemtableView* memtable) {
  if (count == 0 || memtable == nullptr) return;
  HET_CHECK_MSG(ranges_.empty() ||
                    ranges_.back().base + ranges_.back().count <= base,
                "doc-length ranges must be added in ascending disjoint order");
  ranges_.push_back({base, count, nullptr, memtable});
}

double DocLengthIndex::token_count(std::uint32_t doc) const {
  // Last range with base <= doc.
  const auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), doc,
      [](std::uint32_t d, const Range& r) { return d < r.base; });
  if (it == ranges_.begin()) return 0.0;
  const Range& r = *(it - 1);
  if (doc - r.base >= r.count) return 0.0;
  if (r.map != nullptr) return r.map->location(doc).token_count;
  return r.memtable->doc_tokens(doc);
}

double bm25_upper_bound(double idf, std::uint32_t max_tf, const Bm25Params& params) {
  if (max_tf == 0) return 0.0;
  // contribution = idf · tf(k1+1) / (tf + k1(1−b) + k1·b·dl/avgdl). The dl
  // term is nonnegative, so dropping it bounds from above; the rest is
  // monotone increasing in tf, so max_tf maximizes it. max(0,·) guards the
  // degenerate b > 1 configuration.
  const double c = std::max(0.0, params.k1 * (1.0 - params.b));
  const double tf = static_cast<double>(max_tf);
  return idf * (tf * (params.k1 + 1.0)) / (tf + c);
}

double bm25_loose_bound(double idf, const Bm25Params& params) {
  return idf * (params.k1 + 1.0);  // the tf → ∞ limit
}

TopkResult maxscore_topk(
    std::vector<TopkTermInput> terms, std::size_t k, const Bm25Params& params,
    const DocLengthIndex& lengths, double avgdl,
    std::optional<std::chrono::steady_clock::time_point> deadline,
    const TombstoneSet* excluded) {
  TopkResult result;
  std::erase_if(terms, [](const TopkTermInput& t) {
    return t.cursor == nullptr || t.cursor->size() == 0;
  });
  if (terms.empty() || k == 0) return result;

  // Ascending upper bound: the non-essential prefix grows from the front.
  std::sort(terms.begin(), terms.end(), [](const TopkTermInput& a, const TopkTermInput& b) {
    if (a.upper_bound != b.upper_bound) return a.upper_bound < b.upper_bound;
    return a.term_index < b.term_index;
  });
  const std::size_t m = terms.size();
  std::vector<double> cum(m);  // cum[i] = bound of lists 0..i combined
  for (std::size_t i = 0; i < m; ++i) {
    cum[i] = terms[i].upper_bound + (i > 0 ? cum[i - 1] : 0.0);
    // Bind idf so cursors can turn block max_tf into block max score.
    terms[i].cursor->set_score_params(terms[i].idf, params);
    // Every list starts essential, so position everyone on its first doc.
    terms[i].cursor->seek(0);
  }

  // Min-heap of the k best seen, ordered by better(): top is the worst
  // incumbent, whose score is the pruning threshold theta.
  const auto worst_first = [](const ScoredDoc& a, const ScoredDoc& b) {
    return better(a, b);
  };
  std::priority_queue<ScoredDoc, std::vector<ScoredDoc>, decltype(worst_first)> heap(
      worst_first);
  double theta = -std::numeric_limits<double>::infinity();

  std::size_t first_essential = 0;  // lists [0, first_essential) are non-essential
  std::vector<std::pair<std::size_t, double>> matched;  // (term_index, tf) per candidate
  std::uint64_t candidates = 0;

  while (first_essential < m) {
    if (deadline && ++candidates % kDeadlineStride == 0 &&
        std::chrono::steady_clock::now() >= *deadline) {
      result.degraded = true;
      break;
    }

    // Next candidate: min current doc across essential lists.
    std::uint32_t d = std::numeric_limits<std::uint32_t>::max();
    bool any = false;
    for (std::size_t i = first_essential; i < m; ++i) {
      const auto& c = *terms[i].cursor;
      if (!c.valid()) continue;
      any = true;
      d = std::min(d, c.docid());
    }
    if (!any) break;

    // Block-max window skip: if even the essential lists' current blocks
    // (plus full credit for every non-essential list) cannot reach theta,
    // no doc up to the nearest essential block boundary can qualify — jump
    // the whole window without decoding it.
    if (heap.size() == k) {
      std::uint32_t min_last = std::numeric_limits<std::uint32_t>::max();
      for (std::size_t i = first_essential; i < m; ++i) {
        const auto& c = *terms[i].cursor;
        if (c.valid()) min_last = std::min(min_last, c.block_last_doc());
      }
      if (min_last < std::numeric_limits<std::uint32_t>::max()) {
        double window_bound = first_essential > 0 ? cum[first_essential - 1] : 0.0;
        for (std::size_t i = first_essential; i < m; ++i) {
          auto& c = *terms[i].cursor;
          // Cursors past the window boundary contribute nothing inside it.
          if (c.valid() && c.docid() <= min_last) window_bound += c.block_max_score();
        }
        if (window_bound < theta * kPruneSlack) {
          for (std::size_t i = first_essential; i < m; ++i) {
            auto& c = *terms[i].cursor;
            if (c.valid() && c.docid() <= min_last) c.seek(min_last + 1);
          }
          continue;  // d <= min_last, so at least one cursor advanced
        }
      }
    }

    // Tombstone filter: a deleted doc is skipped before it is scored, so
    // it can neither surface nor raise theta — candidate selection sees
    // exactly the live documents, on this path and the exhaustive one.
    if (excluded != nullptr && excluded->contains(d)) {
      for (std::size_t i = first_essential; i < m; ++i) {
        auto& c = *terms[i].cursor;
        if (c.valid() && c.docid() == d) c.next();
      }
      continue;
    }

    matched.clear();
    double partial = 0.0;  // running score estimate (pruning only)
    const double dl = lengths.token_count(d);
    for (std::size_t i = first_essential; i < m; ++i) {
      auto& c = *terms[i].cursor;
      if (!c.valid() || c.docid() != d) continue;
      const double tf = c.tf();
      partial += bm25_contribution(terms[i].idf, tf, dl, avgdl, params);
      matched.emplace_back(terms[i].term_index, tf);
      c.next();
    }

    // Probe non-essential lists from the strongest down, abandoning the
    // candidate as soon as even full credit for the rest cannot reach
    // theta. Each probe refines its bound in two steps: first the term's
    // global upper bound (cum), then — after a decode-free shallow seek —
    // the landing block's max score, which often kills the candidate
    // before the block is ever decoded.
    bool viable = true;
    for (std::size_t j = first_essential; j-- > 0;) {
      if (partial + cum[j] < theta * kPruneSlack) {
        viable = false;
        break;
      }
      auto& c = *terms[j].cursor;
      c.shallow_seek(d);
      if (!c.valid()) continue;  // list exhausted; d absent, no contribution
      const double rest = j > 0 ? cum[j - 1] : 0.0;
      if (partial + rest + c.block_max_score() < theta * kPruneSlack) {
        viable = false;
        break;
      }
      c.seek(d);
      if (c.positioned() && c.docid() == d) {
        const double tf = c.tf();
        partial += bm25_contribution(terms[j].idf, tf, dl, avgdl, params);
        matched.emplace_back(terms[j].term_index, tf);
      }
    }
    if (!viable) continue;

    // Canonical re-score: contributions summed in ascending original term
    // index — the exhaustive engine's exact accumulation sequence, so the
    // double that enters the heap is the double exhaustive would produce.
    std::sort(matched.begin(), matched.end());
    double score = 0.0;
    for (const auto& [term_index, tf] : matched) {
      // idf lookup by original index: linear over m terms (m is tiny).
      for (const auto& t : terms) {
        if (t.term_index == term_index) {
          score += bm25_contribution(t.idf, tf, dl, avgdl, params);
          break;
        }
      }
    }
    ++result.docs_scored;

    const ScoredDoc cand{d, score};
    if (heap.size() < k) {
      heap.push(cand);
    } else if (better(cand, heap.top())) {
      heap.pop();
      heap.push(cand);
    } else {
      continue;  // theta unchanged
    }
    if (heap.size() == k) {
      theta = heap.top().score;
      while (first_essential < m && cum[first_essential] < theta * kPruneSlack) {
        ++first_essential;  // grown threshold retires more lists
      }
    }
  }

  result.hits.reserve(heap.size());
  while (!heap.empty()) {
    result.hits.push_back(heap.top());
    heap.pop();
  }
  std::sort(result.hits.begin(), result.hits.end(), better);
  for (const auto& t : terms) result.blocks_skipped += t.cursor->blocks_skipped();
  return result;
}

}  // namespace hetindex
