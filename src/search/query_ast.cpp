#include "search/query_ast.hpp"

#include <cctype>
#include <cstdio>
#include <utility>

#include "search/types.hpp"
#include "util/check.hpp"

namespace hetindex {

// Defined in core/hetindex.cpp (lowercase + Porter stem through the same
// tokenizer path the build pipeline uses). Declared here instead of
// including the facade header, which includes this layer.
std::string normalize_term(std::string_view raw);

namespace {

QueryNode term_node(std::string t) {
  QueryNode n;
  n.op = QueryOp::kTerm;
  n.term = std::move(t);
  return n;
}

QueryNode list_node(QueryOp op, std::vector<std::string> terms, std::uint32_t window = 0) {
  QueryNode n;
  n.op = op;
  n.terms = std::move(terms);
  n.window = window;
  return n;
}

QueryNode group_node(QueryOp op, std::vector<QueryNode> children) {
  // Flattening nested same-operator groups is semantics-preserving (tf
  // sums are associative) and gives to_string() one canonical form.
  QueryNode n;
  n.op = op;
  for (auto& child : children) {
    if (child.op == op) {
      for (auto& grand : child.children) n.children.push_back(std::move(grand));
    } else {
      n.children.push_back(std::move(child));
    }
  }
  if (n.children.size() == 1) return std::move(n.children.front());
  return n;
}

void collect_terms_into(const QueryNode& node, std::vector<std::string>& out) {
  switch (node.op) {
    case QueryOp::kTerm:
      out.push_back(node.term);
      break;
    case QueryOp::kPhrase:
    case QueryOp::kNear:
      out.insert(out.end(), node.terms.begin(), node.terms.end());
      break;
    default:
      for (const auto& child : node.children) collect_terms_into(child, out);
      break;
  }
}

bool contains_op(const QueryNode& node, QueryOp op) {
  if (node.op == op) return true;
  for (const auto& child : node.children) {
    if (contains_op(child, op)) return true;
  }
  return false;
}

/// Binding strength for minimal-parenthesis printing; higher binds tighter.
int precedence(QueryOp op) {
  switch (op) {
    case QueryOp::kOr: return 0;
    case QueryOp::kAnd: return 1;
    case QueryOp::kNear: return 2;
    case QueryOp::kBag: return 3;
    default: return 4;  // kTerm, kPhrase: atoms
  }
}

void print_node(const QueryNode& node, std::string& out) {
  switch (node.op) {
    case QueryOp::kTerm:
      out += node.term;
      break;
    case QueryOp::kPhrase:
      out += '"';
      for (std::size_t i = 0; i < node.terms.size(); ++i) {
        if (i) out += ' ';
        out += node.terms[i];
      }
      out += '"';
      break;
    case QueryOp::kNear: {
      char op_text[32];
      std::snprintf(op_text, sizeof op_text, " NEAR/%u ", node.window);
      for (std::size_t i = 0; i < node.terms.size(); ++i) {
        if (i) out += op_text;
        out += node.terms[i];
      }
      break;
    }
    default: {
      const char* sep = node.op == QueryOp::kBag ? " "
                        : node.op == QueryOp::kAnd ? " AND "
                                                   : " OR ";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i) out += sep;
        const bool parens = precedence(node.children[i].op) <= precedence(node.op);
        if (parens) out += '(';
        print_node(node.children[i], out);
        if (parens) out += ')';
      }
      break;
    }
  }
}

// --- parser -----------------------------------------------------------

struct Token {
  enum Kind { kTerm, kPhrase, kAnd, kOr, kNear, kLParen, kRParen };
  explicit Token(Kind k) : kind(k) {}
  Kind kind;
  std::string term;                 // kTerm
  std::vector<std::string> terms;   // kPhrase
  std::uint32_t window = 0;         // kNear
};

Error parse_error(std::string msg) {
  return Error{ErrorCode::kInvalidArgument, "query parse: " + std::move(msg)};
}

Expected<std::vector<Token>> lex(std::string_view text) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '(') {
      tokens.push_back(Token(Token::kLParen));
      ++i;
      continue;
    }
    if (c == ')') {
      tokens.push_back(Token(Token::kRParen));
      ++i;
      continue;
    }
    if (c == '"') {
      const auto close = text.find('"', i + 1);
      if (close == std::string_view::npos) return parse_error("unterminated quote");
      Token tok(Token::kPhrase);
      std::size_t w = i + 1;
      while (w < close) {
        while (w < close && std::isspace(static_cast<unsigned char>(text[w]))) ++w;
        std::size_t end = w;
        while (end < close && !std::isspace(static_cast<unsigned char>(text[end]))) ++end;
        if (end > w) {
          auto norm = normalize_term(text.substr(w, end - w));
          if (!norm.empty()) tok.terms.push_back(std::move(norm));
        }
        w = end;
      }
      if (tok.terms.empty()) return parse_error("empty phrase");
      tokens.push_back(std::move(tok));
      i = close + 1;
      continue;
    }
    std::size_t end = i;
    while (end < text.size()) {
      const char e = text[end];
      if (std::isspace(static_cast<unsigned char>(e)) || e == '(' || e == ')' || e == '"') break;
      ++end;
    }
    const std::string_view word = text.substr(i, end - i);
    i = end;
    if (word == "AND") {
      tokens.push_back(Token(Token::kAnd));
    } else if (word == "OR") {
      tokens.push_back(Token(Token::kOr));
    } else if (word.size() > 5 && word.substr(0, 5) == "NEAR/") {
      std::uint64_t window = 0;
      bool digits = true;
      for (const char d : word.substr(5)) {
        if (d < '0' || d > '9' || window > 0xFFFFFFFFull) {
          digits = false;
          break;
        }
        window = window * 10 + static_cast<std::uint64_t>(d - '0');
      }
      if (!digits || window > 0xFFFFFFFFull) {
        return parse_error("malformed NEAR/k operator: " + std::string(word));
      }
      if (window == 0) return parse_error("NEAR window must be at least 1");
      Token tok(Token::kNear);
      tok.window = static_cast<std::uint32_t>(window);
      tokens.push_back(std::move(tok));
    } else if (word == "NEAR") {
      return parse_error("NEAR needs a window: NEAR/k");
    } else {
      auto norm = normalize_term(word);
      if (!norm.empty()) {
        Token tok(Token::kTerm);
        tok.term = std::move(norm);
        tokens.push_back(std::move(tok));
      }
      // Tokens that normalize to nothing (bare punctuation) are dropped.
    }
  }
  return tokens;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Expected<QueryNode> parse() {
    auto root = parse_or();
    if (!root) return root;
    if (pos_ != tokens_.size()) return parse_error("unexpected ')'");
    return root;
  }

 private:
  [[nodiscard]] const Token* peek() const {
    return pos_ < tokens_.size() ? &tokens_[pos_] : nullptr;
  }
  [[nodiscard]] bool at(Token::Kind k) const {
    const Token* t = peek();
    return t != nullptr && t->kind == k;
  }

  Expected<QueryNode> parse_or() {
    auto first = parse_and();
    if (!first) return first;
    std::vector<QueryNode> operands;
    operands.push_back(std::move(*first));
    while (at(Token::kOr)) {
      ++pos_;
      auto next = parse_and();
      if (!next) return next;
      operands.push_back(std::move(*next));
    }
    if (operands.size() == 1) return std::move(operands.front());
    return group_node(QueryOp::kOr, std::move(operands));
  }

  Expected<QueryNode> parse_and() {
    auto first = parse_near();
    if (!first) return first;
    std::vector<QueryNode> operands;
    operands.push_back(std::move(*first));
    while (at(Token::kAnd)) {
      ++pos_;
      auto next = parse_near();
      if (!next) return next;
      operands.push_back(std::move(*next));
    }
    if (operands.size() == 1) return std::move(operands.front());
    return group_node(QueryOp::kAnd, std::move(operands));
  }

  Expected<QueryNode> parse_near() {
    auto first = parse_adjacent();
    if (!first) return first;
    if (!at(Token::kNear)) return first;
    std::vector<QueryNode> operands;
    operands.push_back(std::move(*first));
    std::uint32_t window = 0;
    while (at(Token::kNear)) {
      const std::uint32_t w = peek()->window;
      if (window != 0 && w != window) {
        return parse_error("mixed NEAR windows in one chain");
      }
      window = w;
      ++pos_;
      auto next = parse_adjacent();
      if (!next) return next;
      operands.push_back(std::move(*next));
    }
    std::vector<std::string> terms;
    terms.reserve(operands.size());
    for (auto& op : operands) {
      if (op.op != QueryOp::kTerm) {
        return parse_error("NEAR operands must be plain terms");
      }
      terms.push_back(std::move(op.term));
    }
    return list_node(QueryOp::kNear, std::move(terms), window);
  }

  Expected<QueryNode> parse_adjacent() {
    std::vector<QueryNode> atoms;
    bool all_terms = true;
    while (at(Token::kTerm) || at(Token::kPhrase) || at(Token::kLParen)) {
      auto atom = parse_atom();
      if (!atom) return atom;
      all_terms = all_terms && atom->op == QueryOp::kTerm;
      atoms.push_back(std::move(*atom));
    }
    if (atoms.empty()) {
      return parse_error(peek() == nullptr ? "expected a term"
                                           : "expected a term before operator");
    }
    if (atoms.size() == 1) return std::move(atoms.front());
    // Plain adjacency is a ranked bag; once a phrase or group is adjacent
    // the whole run becomes a conjunction (a quoted phrase is a constraint,
    // not a scoring hint).
    return group_node(all_terms ? QueryOp::kBag : QueryOp::kAnd, std::move(atoms));
  }

  Expected<QueryNode> parse_atom() {
    const Token* t = peek();
    HET_DCHECK(t != nullptr);
    if (t->kind == Token::kTerm) {
      QueryNode n = term_node(tokens_[pos_].term);
      ++pos_;
      return n;
    }
    if (t->kind == Token::kPhrase) {
      // A one-word "phrase" is just the term.
      QueryNode n = t->terms.size() == 1 ? term_node(tokens_[pos_].terms.front())
                                         : list_node(QueryOp::kPhrase, tokens_[pos_].terms);
      ++pos_;
      return n;
    }
    HET_DCHECK(t->kind == Token::kLParen);
    ++pos_;
    auto inner = parse_or();
    if (!inner) return inner;
    if (!at(Token::kRParen)) return parse_error("missing ')'");
    ++pos_;
    return inner;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Query Query::term(std::string t) { return Query(term_node(std::move(t))); }

Query Query::bag(std::vector<std::string> terms) {
  if (terms.empty()) return Query();  // keep empty() == "no leaf terms"
  std::vector<QueryNode> children;
  children.reserve(terms.size());
  for (auto& t : terms) children.push_back(term_node(std::move(t)));
  QueryNode n;
  n.op = QueryOp::kBag;
  n.children = std::move(children);
  if (n.children.size() == 1) return Query(std::move(n.children.front()));
  return Query(std::move(n));
}

/// Unlike group_node(), the boolean factories keep a single-term group
/// instead of collapsing it to the bare term: QueryMode::kConjunctive and
/// kDisjunctive historically ranked by summed tf (no DocMap needed), so a
/// one-term legacy request must keep its boolean class through the shim.
Query Query::conjunction(std::vector<std::string> terms) {
  if (terms.empty()) return Query();
  QueryNode n;
  n.op = QueryOp::kAnd;
  n.children.reserve(terms.size());
  for (auto& t : terms) n.children.push_back(term_node(std::move(t)));
  return Query(std::move(n));
}

Query Query::disjunction(std::vector<std::string> terms) {
  if (terms.empty()) return Query();
  QueryNode n;
  n.op = QueryOp::kOr;
  n.children.reserve(terms.size());
  for (auto& t : terms) n.children.push_back(term_node(std::move(t)));
  return Query(std::move(n));
}

Query Query::phrase(std::vector<std::string> terms) {
  HET_CHECK_MSG(!terms.empty(), "phrase needs at least one term");
  if (terms.size() == 1) return Query(term_node(std::move(terms.front())));
  return Query(list_node(QueryOp::kPhrase, std::move(terms)));
}

Query Query::near(std::vector<std::string> terms, std::uint32_t window) {
  HET_CHECK_MSG(!terms.empty(), "NEAR needs at least one term");
  HET_CHECK_MSG(window > 0, "NEAR window must be at least 1");
  if (terms.size() == 1) return Query(term_node(std::move(terms.front())));
  return Query(list_node(QueryOp::kNear, std::move(terms), window));
}

Query Query::and_of(std::vector<Query> children) {
  if (children.empty()) return Query();
  std::vector<QueryNode> nodes;
  nodes.reserve(children.size());
  for (auto& c : children) {
    HET_CHECK_MSG(!c.empty(), "and_of: empty sub-query");
    nodes.push_back(std::move(c.root_));
  }
  return Query(group_node(QueryOp::kAnd, std::move(nodes)));
}

Query Query::or_of(std::vector<Query> children) {
  if (children.empty()) return Query();
  std::vector<QueryNode> nodes;
  nodes.reserve(children.size());
  for (auto& c : children) {
    HET_CHECK_MSG(!c.empty(), "or_of: empty sub-query");
    nodes.push_back(std::move(c.root_));
  }
  return Query(group_node(QueryOp::kOr, std::move(nodes)));
}

Query Query::from_node(QueryNode root) { return Query(std::move(root)); }

QueryClass Query::query_class() const {
  if (empty_) return QueryClass::kRanked;
  if (contains_op(root_, QueryOp::kNear)) return QueryClass::kProximity;
  if (contains_op(root_, QueryOp::kPhrase)) return QueryClass::kPhrase;
  if (root_.op == QueryOp::kAnd) return QueryClass::kConjunctive;
  if (root_.op == QueryOp::kOr) return QueryClass::kDisjunctive;
  return QueryClass::kRanked;
}

std::vector<std::string> Query::collect_terms() const {
  std::vector<std::string> out;
  if (!empty_) collect_terms_into(root_, out);
  return out;
}

std::string Query::to_string() const {
  std::string out;
  if (!empty_) print_node(root_, out);
  return out;
}

Expected<Query> parse_query(std::string_view text) {
  auto tokens = lex(text);
  if (!tokens) return tokens.error();
  if (tokens->empty()) return parse_error("empty query");
  Parser parser(std::move(*tokens));
  auto root = parser.parse();
  if (!root) return root.error();
  return Query::from_node(std::move(*root));
}

Query effective_query(const QueryRequest& request) {
  if (!request.query.empty()) return request.query;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  // One-release shim: the deprecated flat fields map onto the AST shapes
  // that reproduce their historical semantics exactly.
  switch (request.mode) {
    case QueryMode::kConjunctive: return Query::conjunction(request.terms);
    case QueryMode::kDisjunctive: return Query::disjunction(request.terms);
    case QueryMode::kRanked:
    default: return Query::bag(request.terms);
  }
#pragma GCC diagnostic pop
}

}  // namespace hetindex
