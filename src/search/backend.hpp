#pragma once
/// \file backend.hpp
/// SearchBackend — the one serving interface: QueryRequest in,
/// Expected<QueryResponse> out. Everything that can answer a query
/// implements it — a Searcher over one corpus view, a SearchService pooling
/// threads in front of any backend, a single ShardReplica, and the
/// ShardRouter fanning out over a whole cluster — so callers (CLI verbs,
/// benches, tests) compose local and clustered serving through one type:
/// `SearchService(router)` is admission control in front of a cluster with
/// the same five lines that serve a laptop index.
///
/// The interface is two entry points with one contract:
///   search(request)            the deadline (request.timeout > 0) starts now
///   search(request, deadline)  against an absolute deadline that may
///                              predate the call — a service passes the
///                              deadline computed at submit time so queue
///                              wait counts against the budget, a router
///                              passes the per-shard slice of its budget
///
/// Both are const: implementations must be safe to call concurrently from
/// any number of threads (SearchService runs a pool against one backend).

#include <chrono>
#include <optional>

#include "obs/metrics.hpp"
#include "search/types.hpp"
#include "util/error.hpp"

namespace hetindex {

class SearchBackend {
 public:
  virtual ~SearchBackend() = default;

  /// Answers one request. The deadline (when request.timeout > 0) starts
  /// now; see the two-argument overload when the clock started earlier.
  /// Errors: kInvalidArgument (no terms), kDeadlineExceeded (expired on
  /// entry), kOverloaded (admission shed), kUnavailable (backend down).
  [[nodiscard]] Expected<QueryResponse> search(const QueryRequest& request) const {
    std::optional<std::chrono::steady_clock::time_point> deadline;
    if (request.timeout.count() > 0) {
      deadline = std::chrono::steady_clock::now() + request.timeout;
    }
    return search(request, deadline);
  }

  /// Like search(request) but against an absolute deadline that may
  /// predate this call. nullopt means no deadline.
  [[nodiscard]] virtual Expected<QueryResponse> search(
      const QueryRequest& request,
      std::optional<std::chrono::steady_clock::time_point> deadline) const = 0;

  /// The backend's instrument registry (search_* for a Searcher, plus
  /// admission metrics for a service, cluster_* for a router).
  [[nodiscard]] virtual const obs::MetricsRegistry& metrics() const = 0;
  [[nodiscard]] virtual obs::MetricsRegistry& metrics() = 0;
};

}  // namespace hetindex
