#pragma once
/// \file service.hpp
/// Thread-pooled concurrent query execution with admission control in
/// front of any SearchBackend — one Searcher on a laptop, a ShardReplica
/// inside a cluster, or a whole ShardRouter. Requests enter a bounded
/// queue (reject-with-kOverloaded when saturated — callers learn about
/// overload immediately instead of piling up latency), workers pop and
/// execute, and a request's deadline starts at submit so time spent queued
/// counts against it: a request that expires while waiting is rejected
/// with kDeadlineExceeded without wasting executor time, and one that
/// expires mid-execution comes back degraded (see Searcher).
///
/// The service is itself a SearchBackend (search() = submit + wait), so
/// admission-controlled tiers stack: ShardRouter fans out to per-replica
/// services, and the CLI `serve` verb runs one service over whichever
/// backend the directory holds.
///
/// The service publishes its admission metrics into the backend's
/// registry, so one snapshot tells the whole serving story: queue depth,
/// in-flight gauge, shed/rejected counters, queue-wait histogram alongside
/// the executor's cache and latency instruments.

#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "search/backend.hpp"
#include "search/searcher.hpp"
#include "util/bounded_queue.hpp"

namespace hetindex {

struct SearchServiceOptions {
  std::size_t threads = 4;         ///< executor pool size
  std::size_t queue_capacity = 64; ///< admission queue; full = shed
};

class SearchService : public SearchBackend {
 public:
  SearchService(std::shared_ptr<SearchBackend> backend, SearchServiceOptions options = {});
  /// Closes the queue and joins the workers; already-queued requests are
  /// drained (their futures resolve) before destruction completes.
  ~SearchService() override;

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  /// Enqueues one request; the deadline (request.timeout > 0) starts now.
  /// The future resolves to the response, or to kOverloaded (queue full —
  /// resolved immediately, the backpressure signal), kDeadlineExceeded, or
  /// any backend error.
  [[nodiscard]] std::future<Expected<QueryResponse>> submit(QueryRequest request);

  /// Like submit(request) but against an absolute deadline that may
  /// predate the call — the ShardRouter enqueues per-shard sub-requests
  /// with its already-carved budget slice. The futures are promise-backed:
  /// abandoning one (router timeout) never blocks.
  [[nodiscard]] std::future<Expected<QueryResponse>> submit(
      QueryRequest request,
      std::optional<std::chrono::steady_clock::time_point> deadline);

  using SearchBackend::search;  // the one-argument convenience entry

  /// Synchronous execution through the queue: submit and wait.
  [[nodiscard]] Expected<QueryResponse> search(
      const QueryRequest& request,
      std::optional<std::chrono::steady_clock::time_point> deadline) const override;

  [[nodiscard]] const SearchBackend& backend() const { return *backend_; }
  /// The shared registry (the backend's, plus this service's admission
  /// instruments).
  [[nodiscard]] const obs::MetricsRegistry& metrics() const override {
    return backend_->metrics();
  }
  [[nodiscard]] obs::MetricsRegistry& metrics() override { return backend_->metrics(); }
  [[nodiscard]] std::size_t threads() const { return workers_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const { return queue_->capacity(); }
  [[nodiscard]] std::size_t queue_depth() const { return queue_->size(); }

 private:
  struct Instruments;
  struct Job {
    QueryRequest request;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::chrono::steady_clock::time_point enqueued;
    std::promise<Expected<QueryResponse>> promise;
  };

  [[nodiscard]] std::future<Expected<QueryResponse>> enqueue(
      QueryRequest request,
      std::optional<std::chrono::steady_clock::time_point> deadline) const;
  void worker_loop();

  std::shared_ptr<SearchBackend> backend_;
  std::unique_ptr<Instruments> ins_;
  std::unique_ptr<BoundedQueue<Job>> queue_;
  std::vector<std::jthread> workers_;
};

}  // namespace hetindex
