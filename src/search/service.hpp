#pragma once
/// \file service.hpp
/// Thread-pooled concurrent query execution with admission control in
/// front of one Searcher. Requests enter a bounded queue (reject-with-
/// kOverloaded when saturated — callers learn about overload immediately
/// instead of piling up latency), workers pop and execute, and a request's
/// deadline starts at submit so time spent queued counts against it: a
/// request that expires while waiting is rejected with kDeadlineExceeded
/// without wasting executor time, and one that expires mid-execution comes
/// back degraded (see Searcher).
///
/// The service publishes its admission metrics into the Searcher's
/// registry, so one snapshot tells the whole serving story: queue depth,
/// in-flight gauge, shed/rejected counters, queue-wait histogram alongside
/// the executor's cache and latency instruments.

#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "search/searcher.hpp"
#include "util/bounded_queue.hpp"

namespace hetindex {

struct SearchServiceOptions {
  std::size_t threads = 4;         ///< executor pool size
  std::size_t queue_capacity = 64; ///< admission queue; full = shed
};

class SearchService {
 public:
  SearchService(std::shared_ptr<Searcher> searcher, SearchServiceOptions options = {});
  /// Closes the queue and joins the workers; already-queued requests are
  /// drained (their futures resolve) before destruction completes.
  ~SearchService();

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  /// Enqueues one request. The future resolves to the response, or to
  /// kOverloaded (queue full — resolved immediately, the backpressure
  /// signal), kDeadlineExceeded, or any Searcher error.
  [[nodiscard]] std::future<Expected<QueryResponse>> submit(QueryRequest request);

  /// Synchronous convenience: submit and wait.
  [[nodiscard]] Expected<QueryResponse> search(QueryRequest request);

  [[nodiscard]] const Searcher& searcher() const { return *searcher_; }
  /// The shared registry (Searcher's, plus this service's admission
  /// instruments).
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return searcher_->metrics();
  }
  [[nodiscard]] std::size_t threads() const { return workers_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const { return queue_->capacity(); }
  [[nodiscard]] std::size_t queue_depth() const { return queue_->size(); }

 private:
  struct Instruments;
  struct Job {
    QueryRequest request;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::chrono::steady_clock::time_point enqueued;
    std::promise<Expected<QueryResponse>> promise;
  };

  void worker_loop();

  std::shared_ptr<Searcher> searcher_;
  std::unique_ptr<Instruments> ins_;
  std::unique_ptr<BoundedQueue<Job>> queue_;
  std::vector<std::jthread> workers_;
};

}  // namespace hetindex
