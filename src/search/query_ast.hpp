#pragma once
/// \file query_ast.hpp
/// The structured query language of the serving tier: a small AST of
/// term / bag / AND / OR / PHRASE / NEAR-k nodes, plus a string parser.
/// This replaced the flat `terms` vector + `QueryMode` enum pair in
/// QueryRequest — an enum could say *how* one list of terms combines, but
/// not express `fast "inverted files" AND gpu`, and every new operator
/// (phrase, proximity) would have demanded another enum value plus another
/// parallel field. The AST makes the operator structure first-class and
/// lets the cluster tier route and verify per node.
///
/// Grammar (loosest to tightest binding; uppercase AND/OR/NEAR are
/// operators, anything else is a term and is normalized — lowercased and
/// Porter-stemmed — at parse time):
///
///   query  := and_q (OR and_q)*
///   and_q  := near_q (AND near_q)*
///   near_q := adj (NEAR/k adj)*         operands must be plain terms
///   adj    := atom+                     adjacency: bag if all terms,
///                                       conjunction once a phrase/group
///                                       is involved
///   atom   := term | "quoted phrase" | '(' query ')'
///
/// Semantics, chosen so every operator has one deterministic integer
/// answer (the equivalence suite diffs them against brute force):
///   - PHRASE "a b c": doc matches when some position p has a@p, b@p+1,
///     c@p+2; tf = number of phrase starts.
///   - a NEAR/k b NEAR/k c (unordered): doc matches when some occurrence
///     p of the *first* term has every other term within distance k of p;
///     tf = number of such anchors.
///   - AND: docs in every operand, tf = sum of operand tfs.
///   - OR / bag under a boolean operator: docs in any operand, tf = sum.
///   - bag at the root: ranked BM25 (the historical kRanked mode).
/// Ranking: a bag root ranks by BM25; every other root ranks by
/// (tf desc, doc id asc), matching the historical boolean modes.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace hetindex {

/// Node kind. kBag is the implicit operator of plain adjacency
/// ("fast gpu") — ranked bag-of-words at the root, any-of inside a
/// boolean expression.
enum class QueryOp { kTerm, kBag, kAnd, kOr, kPhrase, kNear };

/// Stable lowercase identifier for logs and debug output.
constexpr const char* query_op_name(QueryOp op) {
  switch (op) {
    case QueryOp::kTerm: return "term";
    case QueryOp::kBag: return "bag";
    case QueryOp::kAnd: return "and";
    case QueryOp::kOr: return "or";
    case QueryOp::kPhrase: return "phrase";
    case QueryOp::kNear: return "near";
    default: return "unknown";
  }
}

/// One AST node. Which fields are meaningful depends on `op`:
/// kTerm uses `term`; kPhrase/kNear use `terms` (operands in query order;
/// kNear also `window`); kBag/kAnd/kOr use `children` (kBag children are
/// always kTerm).
struct QueryNode {
  QueryOp op = QueryOp::kTerm;
  std::string term;
  std::vector<std::string> terms;
  std::uint32_t window = 0;  ///< kNear: max distance from the anchor term
  std::vector<QueryNode> children;
};

/// The coarse class a query executes as — derived from the AST shape, used
/// for per-class latency reporting (CLI `serve`) and routing decisions.
enum class QueryClass {
  kRanked,       ///< bag-of-words BM25 top-k
  kConjunctive,  ///< AND root: docs with every operand
  kDisjunctive,  ///< OR root: docs with any operand
  kPhrase,       ///< contains a PHRASE node (and no NEAR)
  kProximity,    ///< contains a NEAR node
};

/// Stable lowercase identifier for logs, CLI output, and bench JSON keys.
constexpr const char* query_class_name(QueryClass c) {
  switch (c) {
    case QueryClass::kRanked: return "ranked";
    case QueryClass::kConjunctive: return "conjunctive";
    case QueryClass::kDisjunctive: return "disjunctive";
    case QueryClass::kPhrase: return "phrase";
    case QueryClass::kProximity: return "proximity";
    default: return "unknown";
  }
}

/// A parsed query: an immutable AST behind a value type. Build one with
/// parse_query() or the factories; an empty Query (default-constructed)
/// makes a QueryRequest fall back to its deprecated terms/mode fields for
/// one release.
class Query {
 public:
  Query() = default;

  /// A single term (ranked at the root).
  [[nodiscard]] static Query term(std::string t);
  /// Ranked bag-of-words — the historical QueryMode::kRanked.
  [[nodiscard]] static Query bag(std::vector<std::string> terms);
  /// AND of plain terms — the historical QueryMode::kConjunctive.
  [[nodiscard]] static Query conjunction(std::vector<std::string> terms);
  /// OR of plain terms — the historical QueryMode::kDisjunctive.
  [[nodiscard]] static Query disjunction(std::vector<std::string> terms);
  /// Exact phrase; terms in phrase order.
  [[nodiscard]] static Query phrase(std::vector<std::string> terms);
  /// Unordered proximity: every term within `window` of the first term.
  [[nodiscard]] static Query near(std::vector<std::string> terms, std::uint32_t window);
  /// AND of arbitrary sub-queries (nested kAnd children are flattened).
  [[nodiscard]] static Query and_of(std::vector<Query> children);
  /// OR of arbitrary sub-queries (nested kOr children are flattened).
  [[nodiscard]] static Query or_of(std::vector<Query> children);
  /// Wraps an explicit node (advanced callers building trees directly).
  [[nodiscard]] static Query from_node(QueryNode root);

  [[nodiscard]] bool empty() const { return empty_; }
  [[nodiscard]] const QueryNode& root() const { return root_; }

  /// The execution class: NEAR anywhere wins, then PHRASE anywhere, then
  /// the root operator (AND → conjunctive, OR → disjunctive), else ranked.
  [[nodiscard]] QueryClass query_class() const;

  /// Depth-first leaf terms, duplicates preserved — the canonical order
  /// that ScatterStats::term_dfs is parallel to, and that the term
  /// partitioner routes whole-list fetches by.
  [[nodiscard]] std::vector<std::string> collect_terms() const;

  /// Canonical text form: parse_query(q.to_string()) reproduces the AST
  /// (terms are already normalized, so parsing is idempotent). Doubles as
  /// the wire form for cluster fan-out and the result-cache key payload.
  [[nodiscard]] std::string to_string() const;

 private:
  explicit Query(QueryNode root) : root_(std::move(root)), empty_(false) {}
  QueryNode root_;
  bool empty_ = true;
};

/// Parses the query language described in the file header. Terms are
/// normalized (lowercase + Porter stem) during parsing; tokens that
/// normalize to nothing (bare punctuation) are dropped. Errors
/// (kInvalidArgument): empty query, unbalanced parens or quotes, empty
/// phrase, NEAR over non-term operands, mixed NEAR windows, NEAR/0.
[[nodiscard]] Expected<Query> parse_query(std::string_view text);

struct QueryRequest;  // search/types.hpp

/// The request's AST: `request.query` when set, else the deprecated
/// terms/mode pair converted to the equivalent AST (bag / AND-of-terms /
/// OR-of-terms). Every backend resolves the request through this one
/// function, so legacy requests keep working for one release.
[[nodiscard]] Query effective_query(const QueryRequest& request);

}  // namespace hetindex
