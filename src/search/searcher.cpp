#include "search/searcher.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <utility>
#include <vector>

#include "live/tombstones.hpp"
#include "postings/boolean_ops.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace hetindex {

/// Resolved once at construction; the per-query cost is atomic adds and
/// histogram buckets (the ReadInstruments pattern of postings/query.cpp).
struct Searcher::Instruments {
  obs::Counter& queries;
  obs::Counter& degraded;
  obs::Counter& result_hits;
  obs::Counter& result_misses;
  obs::Counter& postings_hits;
  obs::Counter& postings_misses;
  obs::Counter& stats_recomputes;
  obs::Counter& blocks_skipped;
  obs::Histo& total_micros;
  obs::Histo& lookup_micros;
  obs::Histo& score_micros;

  explicit Instruments(obs::MetricsRegistry& m)
      : queries(m.counter("search_queries_total")),
        degraded(m.counter("search_degraded_total")),
        result_hits(m.counter("search_result_cache_hits_total")),
        result_misses(m.counter("search_result_cache_misses_total")),
        postings_hits(m.counter("search_postings_cache_hits_total")),
        postings_misses(m.counter("search_postings_cache_misses_total")),
        stats_recomputes(m.counter("search_stats_recomputes_total")),
        blocks_skipped(m.counter("search_blocks_skipped_total")),
        total_micros(m.histogram("search_total_micros", 0.0, 16384.0, 64)),
        lookup_micros(m.histogram("search_lookup_micros", 0.0, 16384.0, 64)),
        score_micros(m.histogram("search_score_micros", 0.0, 16384.0, 64)) {}
};

namespace {

/// Cache key: snapshot id prefix + payload. \x1e/\x1f are unit separators
/// that cannot appear in normalized terms.
std::string snapshot_key(std::uint64_t snapshot_id, std::string_view payload) {
  std::string key = std::to_string(snapshot_id);
  key += '\x1e';
  key += payload;
  return key;
}

/// Normalized query string: every request field that affects the answer,
/// terms in given order (duplicates score twice, so order and multiplicity
/// are part of the identity).
std::string normalize_query(const QueryRequest& request) {
  char params[80];
  std::snprintf(params, sizeof(params), "%s|%zu|%.17g|%.17g|%d",
                query_mode_name(request.mode), request.k, request.bm25.k1,
                request.bm25.b, request.exhaustive ? 1 : 0);
  std::string norm(params);
  for (const auto& term : request.terms) {
    norm += '\x1f';
    norm += term;
  }
  return norm;
}

bool past(const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  return deadline && std::chrono::steady_clock::now() >= *deadline;
}

/// Driver docs between deadline checks in the cursor intersection (a clock
/// read per doc would dominate small lists).
constexpr std::uint64_t kIntersectDeadlineStride = 256;

}  // namespace

SearchSource SearchSource::batch(const InvertedIndex& index, const DocMap& docs) {
  SearchSource source;
  source.index_ = &index;
  source.docs_ = &docs;
  return source;
}

SearchSource SearchSource::batch(const InvertedIndex& index) {
  SearchSource source;
  source.index_ = &index;
  return source;
}

SearchSource SearchSource::snapshot(std::shared_ptr<const LiveSnapshot> snap) {
  SearchSource source;
  if (snap == nullptr) {
    source.null_source_ = true;
    return source;
  }
  source.provider_ = [pinned = std::move(snap)] { return pinned; };
  return source;
}

SearchSource SearchSource::live(SnapshotFn provider) {
  SearchSource source;
  if (provider == nullptr) {
    source.null_source_ = true;
    return source;
  }
  source.provider_ = std::move(provider);
  return source;
}

Expected<std::shared_ptr<Searcher>> Searcher::open(SearchSource source,
                                                   SearcherOptions options) {
  if (source.null_source_) {
    return Error{ErrorCode::kInvalidArgument,
                 "SearchSource requires a non-null snapshot or provider"};
  }
  // The provider is deliberately NOT probed here: live providers may block
  // or become valid only once serving starts (tests gate them on
  // semaphores). A provider resolving null at query time serves nothing.
  // Not make_shared: the binding constructor is private.
  return std::shared_ptr<Searcher>(new Searcher(std::move(source), options));
}

Searcher::Searcher(SearchSource source, SearcherOptions options)
    : index_(source.index_),
      docs_(source.docs_),
      provider_(std::move(source.provider_)),
      metrics_(std::make_unique<obs::MetricsRegistry>()),
      ins_(std::make_unique<Instruments>(*metrics_)),
      postings_cache_(options.postings_cache_entries, options.cache_shards),
      result_cache_(options.result_cache_entries, options.cache_shards) {
  // The deprecated shims route null sources here; keep their historical
  // abort-on-bad-input contract (open() refuses the same inputs softly).
  HET_CHECK_MSG(!source.null_source_, "Searcher requires a non-null snapshot source");
}

// Deprecated shims: each binds the equivalent SearchSource. Defining a
// [[deprecated]] function does not warn; calling one does.
Searcher::Searcher(const InvertedIndex& index, const DocMap& docs,
                   SearcherOptions options)
    : Searcher(SearchSource::batch(index, docs), options) {}

Searcher::Searcher(const InvertedIndex& index, SearcherOptions options)
    : Searcher(SearchSource::batch(index), options) {}

Searcher::Searcher(std::shared_ptr<const LiveSnapshot> snapshot, SearcherOptions options)
    : Searcher(SearchSource::snapshot(std::move(snapshot)), options) {}

Searcher::Searcher(SnapshotFn provider, SearcherOptions options)
    : Searcher(SearchSource::live(std::move(provider)), options) {}

Searcher::~Searcher() = default;

std::shared_ptr<const Searcher::Stats> Searcher::stats_for(
    const std::shared_ptr<const LiveSnapshot>& snap, std::uint64_t snapshot_id) const {
  {
    std::shared_lock lock(stats_mu_);
    if (stats_ != nullptr && stats_->snapshot_id == snapshot_id) return stats_;
  }
  std::unique_lock lock(stats_mu_);
  if (stats_ != nullptr && stats_->snapshot_id == snapshot_id) return stats_;

  // First query against this snapshot pays the stats walk; everyone after
  // reads the shared copy. The recompute counter is the regression probe
  // for "stats are per-snapshot, not per-query".
  ins_->stats_recomputes.add();
  auto stats = std::make_shared<Stats>();
  stats->snapshot_id = snapshot_id;
  if (snap != nullptr) {
    // Live collection stats: doc_count() and average_doc_tokens() both
    // exclude tombstoned docs and include the memtable, so BM25 sees the
    // collection exactly as a fresh batch build of the survivors would.
    stats->n_docs = snap->doc_count();
    stats->avgdl = std::max(snap->average_doc_tokens(), 1e-9);
    for (const auto& seg : snap->segments()) {
      const DocMap* map = seg->doc_map();
      if (map != nullptr) stats->lengths.add_range(map->base(), map->doc_count(), map);
    }
    const MemtableView* memtable = snap->memtable();
    if (memtable != nullptr) {
      stats->lengths.add_range(memtable->doc_base(), memtable->doc_count(), memtable);
    }
    stats->pin = snap;
  } else {
    stats->n_docs = docs_->doc_count();
    stats->avgdl = std::max(docs_->average_doc_tokens(), 1e-9);
    stats->lengths.add_range(docs_->base(), docs_->doc_count(), docs_);
  }
  stats_ = std::move(stats);
  return stats_;
}

std::shared_ptr<const QueryPostings> Searcher::fetch_postings(
    const std::shared_ptr<const LiveSnapshot>& snap, std::uint64_t snapshot_id,
    const std::string& term) const {
  const std::string key = snapshot_key(snapshot_id, term);
  if (auto cached = postings_cache_.get(key)) {
    ins_->postings_hits.add();
    return *cached;  // may be null: cached "absent" verdict
  }
  ins_->postings_misses.add();
  auto looked_up = snap != nullptr ? snap->lookup(term) : index_->lookup(term);
  std::shared_ptr<const QueryPostings> postings;
  if (looked_up) {
    postings = std::make_shared<const QueryPostings>(std::move(*looked_up));
  }
  postings_cache_.put(key, postings);
  return postings;
}

std::optional<std::uint32_t> Searcher::term_max_tf(
    const std::shared_ptr<const LiveSnapshot>& snap, const std::string& term) const {
  return snap != nullptr ? snap->max_tf(term) : index_->max_tf(term);
}

std::unique_ptr<PostingsCursor> Searcher::open_term_cursor(
    const std::shared_ptr<const LiveSnapshot>& snap, const std::string& term) const {
  return snap != nullptr ? snap->open_cursor(term) : index_->open_cursor(term);
}

Expected<QueryResponse> Searcher::search(
    const QueryRequest& request,
    std::optional<std::chrono::steady_clock::time_point> deadline) const {
  const WallTimer total_timer;
  if (request.terms.empty()) {
    return Error{ErrorCode::kInvalidArgument, "query has no terms"};
  }
  if (past(deadline)) {
    return Error{ErrorCode::kDeadlineExceeded, "deadline expired before execution"};
  }
  ins_->queries.add();

  const auto snap = provider_ ? provider_() : nullptr;
  const std::uint64_t snapshot_id = snap != nullptr ? snap->snapshot_id() : 0;
  // The live tier's delete filter: lookups and cursors stay raw (stable
  // df), every candidate-producing path below drops tombstoned docs. The
  // result cache needs no special handling — every delete publishes a new
  // snapshot_id, which is part of every cache key.
  const TombstoneSet* excluded = snap != nullptr ? snap->tombstones() : nullptr;

  QueryResponse response;
  response.snapshot_id = snapshot_id;

  // Scatter-stat sub-requests bypass the result cache entirely: the
  // injected global stats are not part of the cache key, so a cached
  // local-stats answer (or caching a global-stats one) would alias wrong
  // results across the two worlds.
  const bool cacheable = request.use_result_cache && request.scatter == nullptr;
  const std::string norm = normalize_query(request);
  const std::string result_key = snapshot_key(snapshot_id, norm);
  if (cacheable) {
    if (auto cached = result_cache_.get(result_key)) {
      ins_->result_hits.add();
      response.hits = **cached;
      response.from_cache = true;
      response.timings.total_seconds = total_timer.seconds();
      ins_->total_micros.add(response.timings.total_seconds * 1e6);
      return response;
    }
    ins_->result_misses.add();
  }

  // Lookup stage. The cursor modes (pruned ranked, conjunctive) open one
  // block-level cursor per term — lazy, zero-copy when a skip table is
  // loaded, and deliberately outside the postings cache (caching a decoded
  // list is exactly the work block skipping avoids). The decoded modes
  // (exhaustive ranked, disjunctive) fetch full lists cache-first as
  // before.
  const bool cursor_mode = request.mode == QueryMode::kConjunctive ||
                           (request.mode == QueryMode::kRanked && !request.exhaustive);
  const WallTimer lookup_timer;
  std::vector<std::shared_ptr<const QueryPostings>> lists;
  std::vector<std::unique_ptr<PostingsCursor>> cursors;
  if (cursor_mode) {
    cursors.reserve(request.terms.size());
    for (const auto& term : request.terms) {
      cursors.push_back(open_term_cursor(snap, term));
    }
  } else {
    lists.reserve(request.terms.size());
    for (const auto& term : request.terms) {
      lists.push_back(fetch_postings(snap, snapshot_id, term));
    }
  }
  response.timings.lookup_seconds = lookup_timer.seconds();

  // Score stage.
  const WallTimer score_timer;
  switch (request.mode) {
    case QueryMode::kRanked: {
      if (snap == nullptr && docs_ == nullptr) {
        return Error{ErrorCode::kInvalidArgument,
                     "ranked mode requires a DocMap (BM25 needs document lengths)"};
      }
      // Router-injected global stats (ScatterStats) override the local
      // collection view wherever N, df, or avgdl enters a score — document
      // lengths stay local (each shard owns its docs). A term absent
      // locally simply contributes nothing, exactly as in the union index.
      const ScatterStats* scatter = request.scatter.get();
      if (scatter != nullptr && scatter->term_dfs.size() != request.terms.size()) {
        return Error{ErrorCode::kInvalidArgument,
                     "scatter stats must carry one df per request term"};
      }
      const auto stats = stats_for(snap, snapshot_id);
      const std::uint64_t n_docs = scatter != nullptr ? scatter->n_docs : stats->n_docs;
      const double avgdl =
          scatter != nullptr ? std::max(scatter->avgdl, 1e-9) : stats->avgdl;
      if (request.exhaustive) {
        // Baseline engine: full decode, hash-map accumulation in request
        // term order — the historical bm25_query, fed from the caches.
        std::unordered_map<std::uint32_t, double> scores;
        for (std::size_t t = 0; t < request.terms.size(); ++t) {
          if (past(deadline)) {  // degrade between terms: coarse but exact
            response.degradation = Degradation::kDeadlinePartial;
            break;
          }
          const auto& postings = lists[t];
          if (postings == nullptr || postings->doc_ids.empty()) continue;
          const double idf = bm25_idf(
              scatter != nullptr ? scatter->term_dfs[t] : postings->doc_ids.size(),
              n_docs);
          for (std::size_t i = 0; i < postings->doc_ids.size(); ++i) {
            const std::uint32_t doc = postings->doc_ids[i];
            if (excluded != nullptr && excluded->contains(doc)) continue;
            const double tf = postings->tfs[i];
            const double dl = stats->lengths.token_count(doc);
            scores[doc] += bm25_contribution(idf, tf, dl, avgdl, request.bm25);
          }
        }
        std::vector<ScoredDoc> ranked;
        ranked.reserve(scores.size());
        for (const auto& [doc, score] : scores) ranked.push_back({doc, score});
        std::sort(ranked.begin(), ranked.end(),
                  [](const ScoredDoc& a, const ScoredDoc& b) {
                    if (a.score != b.score) return a.score > b.score;
                    return a.doc_id < b.doc_id;
                  });
        if (ranked.size() > request.k) ranked.resize(request.k);
        response.hits = std::move(ranked);
      } else {
        std::vector<TopkTermInput> inputs;
        inputs.reserve(request.terms.size());
        for (std::size_t t = 0; t < request.terms.size(); ++t) {
          if (cursors[t] == nullptr) continue;
          TopkTermInput input;
          input.term_index = t;
          // df from the cursor's skip data — the same integer the decoded
          // list's length would give, so idf matches exhaustive exactly.
          input.idf = bm25_idf(
              scatter != nullptr ? scatter->term_dfs[t] : cursors[t]->size(), n_docs);
          const auto max_tf = term_max_tf(snap, request.terms[t]);
          // The bound pairs the (possibly global) idf with the local
          // max_tf: contributions below use the same idf, so the bound
          // still over-covers and pruning stays exact.
          input.upper_bound = max_tf
                                  ? bm25_upper_bound(input.idf, *max_tf, request.bm25)
                                  : bm25_loose_bound(input.idf, request.bm25);
          input.cursor = std::move(cursors[t]);
          inputs.push_back(std::move(input));
        }
        auto topk = maxscore_topk(std::move(inputs), request.k, request.bm25,
                                  stats->lengths, avgdl, deadline, excluded);
        response.hits = std::move(topk.hits);
        if (topk.degraded) response.degradation = Degradation::kDeadlinePartial;
        ins_->blocks_skipped.add(topk.blocks_skipped);
      }
      break;
    }
    case QueryMode::kConjunctive: {
      // Any absent term empties the intersection outright (a null cursor
      // covers both an unknown term and an empty list).
      const bool all_present = std::all_of(
          cursors.begin(), cursors.end(), [](const auto& c) { return c != nullptr; });
      if (all_present && !cursors.empty()) {
        // Rarest-first: the smallest list drives; the others answer seeks,
        // stepping over whole blocks between matches without decoding them.
        std::vector<PostingsCursor*> ordered;
        ordered.reserve(cursors.size());
        for (const auto& c : cursors) ordered.push_back(c.get());
        std::sort(ordered.begin(), ordered.end(),
                  [](const PostingsCursor* a, const PostingsCursor* b) {
                    return a->size() < b->size();
                  });
        QueryPostings acc;  // matched docs, tfs summed across terms
        PostingsCursor& driver = *ordered.front();
        bool dead_end = false;  // some follower exhausted: no more matches
        std::uint64_t steps = 0;
        for (driver.seek(0); driver.valid() && !dead_end; driver.next()) {
          if (++steps % kIntersectDeadlineStride == 0 && past(deadline)) {
            // Prefix of the true intersection: a valid subset, flagged.
            response.degradation = Degradation::kDeadlinePartial;
            break;
          }
          const std::uint32_t d = driver.docid();
          if (excluded != nullptr && excluded->contains(d)) continue;
          std::uint32_t tf_sum = driver.tf();
          bool all = true;
          for (std::size_t i = 1; i < ordered.size(); ++i) {
            ordered[i]->seek(d);
            if (!ordered[i]->valid()) {
              all = false;
              dead_end = true;
              break;
            }
            if (ordered[i]->docid() != d) {
              all = false;
              break;
            }
            tf_sum += ordered[i]->tf();
          }
          if (all) {
            acc.doc_ids.push_back(d);
            acc.tfs.push_back(tf_sum);
          }
        }
        response.hits = rank_by_tf(acc, request.k, /*excluded=*/nullptr);
      }
      std::uint64_t skipped = 0;
      for (const auto& c : cursors) {
        if (c != nullptr) skipped += c->blocks_skipped();
      }
      ins_->blocks_skipped.add(skipped);
      break;
    }
    case QueryMode::kDisjunctive: {
      QueryPostings acc;
      for (const auto& p : lists) {
        if (p == nullptr) continue;
        if (past(deadline)) {  // partial union: a subset, flagged
          response.degradation = Degradation::kDeadlinePartial;
          break;
        }
        acc = acc.doc_ids.empty() ? *p : postings_or(acc, *p);
      }
      response.hits = rank_by_tf(acc, request.k, excluded);
      break;
    }
  }
  response.timings.score_seconds = score_timer.seconds();
  response.timings.total_seconds = total_timer.seconds();

  if (response.degraded()) ins_->degraded.add();
  ins_->lookup_micros.add(response.timings.lookup_seconds * 1e6);
  ins_->score_micros.add(response.timings.score_seconds * 1e6);
  ins_->total_micros.add(response.timings.total_seconds * 1e6);

  // Degraded answers are timing accidents, not the query's answer — they
  // must never be replayed from the cache.
  if (cacheable && !response.degraded()) {
    result_cache_.put(result_key,
                      std::make_shared<const std::vector<ScoredDoc>>(response.hits));
  }
  return response;
}

}  // namespace hetindex
