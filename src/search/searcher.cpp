#include "search/searcher.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <utility>
#include <vector>

#include "live/tombstones.hpp"
#include "postings/boolean_ops.hpp"
#include "postings/cursor.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace hetindex {

/// Resolved once at construction; the per-query cost is atomic adds and
/// histogram buckets (the ReadInstruments pattern of postings/query.cpp).
struct Searcher::Instruments {
  obs::Counter& queries;
  obs::Counter& degraded;
  obs::Counter& result_hits;
  obs::Counter& result_misses;
  obs::Counter& postings_hits;
  obs::Counter& postings_misses;
  obs::Counter& stats_recomputes;
  obs::Counter& blocks_skipped;
  obs::Counter& blooms_rejected;
  obs::Histo& total_micros;
  obs::Histo& lookup_micros;
  obs::Histo& score_micros;

  explicit Instruments(obs::MetricsRegistry& m)
      : queries(m.counter("search_queries_total")),
        degraded(m.counter("search_degraded_total")),
        result_hits(m.counter("search_result_cache_hits_total")),
        result_misses(m.counter("search_result_cache_misses_total")),
        postings_hits(m.counter("search_postings_cache_hits_total")),
        postings_misses(m.counter("search_postings_cache_misses_total")),
        stats_recomputes(m.counter("search_stats_recomputes_total")),
        blocks_skipped(m.counter("search_blocks_skipped_total")),
        blooms_rejected(m.counter("search_blooms_rejected_total")),
        total_micros(m.histogram("search_total_micros", 0.0, 16384.0, 64)),
        lookup_micros(m.histogram("search_lookup_micros", 0.0, 16384.0, 64)),
        score_micros(m.histogram("search_score_micros", 0.0, 16384.0, 64)) {}
};

namespace {

/// Cache key: snapshot id prefix + payload. \x1e/\x1f are unit separators
/// that cannot appear in normalized terms.
std::string snapshot_key(std::uint64_t snapshot_id, std::string_view payload) {
  std::string key = std::to_string(snapshot_id);
  key += '\x1e';
  key += payload;
  return key;
}

/// Normalized query string: every request field that affects the answer,
/// plus the canonical AST text (Query::to_string preserves operator
/// structure, term order, and multiplicity — duplicates score twice, so
/// they are part of the identity). The root operator is keyed explicitly
/// because a single-child AND/OR prints as its bare child yet ranks by
/// summed tf, not BM25 — the text alone would collide with the ranked form.
std::string normalize_query(const Query& query, const QueryRequest& request) {
  char params[64];
  std::snprintf(params, sizeof(params), "%zu|%.17g|%.17g|%d|%d", request.k,
                request.bm25.k1, request.bm25.b, request.exhaustive ? 1 : 0,
                query.empty() ? -1 : static_cast<int>(query.root().op));
  std::string norm(params);
  norm += '\x1f';
  norm += query.to_string();
  return norm;
}

bool past(const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  return deadline && std::chrono::steady_clock::now() >= *deadline;
}

/// Driver docs between deadline checks in the cursor intersection (a clock
/// read per doc would dominate small lists).
constexpr std::uint64_t kIntersectDeadlineStride = 256;

/// True when `root` executes on the cursor-intersection engine: a bare
/// PHRASE/NEAR, or an AND whose operands are all plain terms or positional
/// groups. Anything nesting OR/bag falls back to the decoded evaluator.
bool flat_conjunction(const QueryNode& root) {
  if (root.op == QueryOp::kPhrase || root.op == QueryOp::kNear) return true;
  if (root.op != QueryOp::kAnd) return false;
  return std::all_of(root.children.begin(), root.children.end(), [](const QueryNode& c) {
    return c.op == QueryOp::kTerm || c.op == QueryOp::kPhrase || c.op == QueryOp::kNear;
  });
}

}  // namespace

SearchSource SearchSource::batch(const InvertedIndex& index, const DocMap& docs) {
  SearchSource source;
  source.index_ = &index;
  source.docs_ = &docs;
  return source;
}

SearchSource SearchSource::batch(const InvertedIndex& index) {
  SearchSource source;
  source.index_ = &index;
  return source;
}

SearchSource SearchSource::snapshot(std::shared_ptr<const LiveSnapshot> snap) {
  SearchSource source;
  if (snap == nullptr) {
    source.null_source_ = true;
    return source;
  }
  source.provider_ = [pinned = std::move(snap)] { return pinned; };
  return source;
}

SearchSource SearchSource::live(SnapshotFn provider) {
  SearchSource source;
  if (provider == nullptr) {
    source.null_source_ = true;
    return source;
  }
  source.provider_ = std::move(provider);
  return source;
}

Expected<std::shared_ptr<Searcher>> Searcher::open(SearchSource source,
                                                   SearcherOptions options) {
  if (source.null_source_) {
    return Error{ErrorCode::kInvalidArgument,
                 "SearchSource requires a non-null snapshot or provider"};
  }
  // The provider is deliberately NOT probed here: live providers may block
  // or become valid only once serving starts (tests gate them on
  // semaphores). A provider resolving null at query time serves nothing.
  // Not make_shared: the binding constructor is private.
  return std::shared_ptr<Searcher>(new Searcher(std::move(source), options));
}

Searcher::Searcher(SearchSource source, SearcherOptions options)
    : options_(options),
      index_(source.index_),
      docs_(source.docs_),
      provider_(std::move(source.provider_)),
      metrics_(std::make_unique<obs::MetricsRegistry>()),
      ins_(std::make_unique<Instruments>(*metrics_)),
      postings_cache_(options.postings_cache_entries, options.cache_shards),
      result_cache_(options.result_cache_entries, options.cache_shards) {
  HET_CHECK_MSG(!source.null_source_, "Searcher requires a non-null snapshot source");
}

Searcher::~Searcher() = default;

std::shared_ptr<const Searcher::Stats> Searcher::stats_for(
    const std::shared_ptr<const LiveSnapshot>& snap, std::uint64_t snapshot_id) const {
  {
    std::shared_lock lock(stats_mu_);
    if (stats_ != nullptr && stats_->snapshot_id == snapshot_id) return stats_;
  }
  std::unique_lock lock(stats_mu_);
  if (stats_ != nullptr && stats_->snapshot_id == snapshot_id) return stats_;

  // First query against this snapshot pays the stats walk; everyone after
  // reads the shared copy. The recompute counter is the regression probe
  // for "stats are per-snapshot, not per-query".
  ins_->stats_recomputes.add();
  auto stats = std::make_shared<Stats>();
  stats->snapshot_id = snapshot_id;
  if (snap != nullptr) {
    // Live collection stats: doc_count() and average_doc_tokens() both
    // exclude tombstoned docs and include the memtable, so BM25 sees the
    // collection exactly as a fresh batch build of the survivors would.
    stats->n_docs = snap->doc_count();
    stats->avgdl = std::max(snap->average_doc_tokens(), 1e-9);
    for (const auto& seg : snap->segments()) {
      const DocMap* map = seg->doc_map();
      if (map != nullptr) stats->lengths.add_range(map->base(), map->doc_count(), map);
    }
    const MemtableView* memtable = snap->memtable();
    if (memtable != nullptr) {
      stats->lengths.add_range(memtable->doc_base(), memtable->doc_count(), memtable);
    }
    stats->pin = snap;
  } else {
    stats->n_docs = docs_->doc_count();
    stats->avgdl = std::max(docs_->average_doc_tokens(), 1e-9);
    stats->lengths.add_range(docs_->base(), docs_->doc_count(), docs_);
  }
  stats_ = std::move(stats);
  return stats_;
}

std::shared_ptr<const QueryPostings> Searcher::fetch_postings(
    const std::shared_ptr<const LiveSnapshot>& snap, std::uint64_t snapshot_id,
    const std::string& term) const {
  const std::string key = snapshot_key(snapshot_id, term);
  if (auto cached = postings_cache_.get(key)) {
    ins_->postings_hits.add();
    return *cached;  // may be null: cached "absent" verdict
  }
  ins_->postings_misses.add();
  auto looked_up = snap != nullptr ? snap->lookup(term) : index_->lookup(term);
  std::shared_ptr<const QueryPostings> postings;
  if (looked_up) {
    postings = std::make_shared<const QueryPostings>(std::move(*looked_up));
  }
  postings_cache_.put(key, postings);
  return postings;
}

std::optional<std::uint32_t> Searcher::term_max_tf(
    const std::shared_ptr<const LiveSnapshot>& snap, const std::string& term) const {
  return snap != nullptr ? snap->max_tf(term) : index_->max_tf(term);
}

std::unique_ptr<PostingsCursor> Searcher::open_term_cursor(
    const std::shared_ptr<const LiveSnapshot>& snap, const std::string& term,
    bool with_positions) const {
  return snap != nullptr ? snap->open_cursor(term, with_positions)
                         : index_->open_cursor(term, with_positions);
}

BloomChain Searcher::term_bloom_chain(const std::shared_ptr<const LiveSnapshot>& snap,
                                      const std::string& term) const {
  if (!options_.use_bloom_filters) return {};
  return snap != nullptr ? snap->bloom_chain(term) : index_->bloom_chain(term);
}

std::optional<QueryPostings> Searcher::lookup_positional(
    const std::shared_ptr<const LiveSnapshot>& snap, const std::string& term) const {
  // LiveSnapshot::lookup always decodes positions when the parts carry
  // them; the batch index has a dedicated positional entry point.
  return snap != nullptr ? snap->lookup(term) : index_->lookup_positional(term);
}

/// Recursive decoded evaluator for nested trees — the general engine
/// behind any shape the flat cursor path cannot take (OR roots, AND over
/// OR groups, ...). Returns RAW doc/tf lists (tombstones filtered by the
/// caller at ranking). tf semantics match query_ast.hpp: sums across
/// boolean operands, match counts for positional groups.
Expected<QueryPostings> Searcher::eval_node(
    const QueryNode& node, const std::shared_ptr<const LiveSnapshot>& snap,
    std::uint64_t snapshot_id,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    bool& degraded) const {
  switch (node.op) {
    case QueryOp::kTerm: {
      QueryPostings out;
      const auto postings = fetch_postings(snap, snapshot_id, node.term);
      if (postings != nullptr) {
        out.doc_ids = postings->doc_ids;
        out.tfs = postings->tfs;
      }
      return out;
    }
    case QueryOp::kBag:
    case QueryOp::kOr: {
      // Union, tfs summed on overlap. A deadline mid-fold leaves a partial
      // union — a valid subset, flagged degraded.
      QueryPostings acc;
      bool first = true;
      for (const auto& child : node.children) {
        if (past(deadline)) {
          degraded = true;
          break;
        }
        auto part = eval_node(child, snap, snapshot_id, deadline, degraded);
        if (!part.has_value()) return part.error();
        if (first) {
          acc = std::move(part).value();
          first = false;
        } else {
          acc = postings_or(acc, part.value());
        }
      }
      return acc;
    }
    case QueryOp::kAnd: {
      QueryPostings acc;
      bool first = true;
      for (const auto& child : node.children) {
        if (past(deadline)) {
          // A prefix intersection is a SUPERSET of the truth — the one
          // degradation shape that would hand out wrong docs. Return
          // nothing instead (the empty set is always a valid subset).
          acc.doc_ids.clear();
          acc.tfs.clear();
          degraded = true;
          break;
        }
        auto part = eval_node(child, snap, snapshot_id, deadline, degraded);
        if (!part.has_value()) return part.error();
        if (first) {
          acc = std::move(part).value();
          first = false;
        } else {
          acc = postings_and(acc, part.value());
        }
        if (acc.doc_ids.empty()) break;  // settled: no doc can re-enter
      }
      return acc;
    }
    case QueryOp::kPhrase:
    case QueryOp::kNear: {
      std::vector<QueryPostings> lists(node.terms.size());
      std::vector<const QueryPostings*> refs;
      refs.reserve(node.terms.size());
      for (std::size_t t = 0; t < node.terms.size(); ++t) {
        auto looked_up = lookup_positional(snap, node.terms[t]);
        if (!looked_up) return QueryPostings{};  // absent term: no matches
        if (looked_up->positions.empty() && !looked_up->doc_ids.empty()) {
          return Error{ErrorCode::kInvalidArgument,
                       "phrase/NEAR query requires a positional index"};
        }
        lists[t] = std::move(*looked_up);
        refs.push_back(&lists[t]);
      }
      return node.op == QueryOp::kPhrase ? phrase_join(refs)
                                         : near_join(refs, node.window);
    }
  }
  return QueryPostings{};
}

/// The conjunctive cursor engine: document-level intersection over every
/// leaf term (rarest list drives, Bloom chains reject candidates before
/// any follower seek), then positional verification of each PHRASE/NEAR
/// constraint on the survivors only. Returns tombstone-filtered doc/tf
/// pairs; tf = Σ plain-term tfs + Σ positional match counts.
Expected<QueryPostings> Searcher::eval_conjunction(
    const QueryNode& root, const std::shared_ptr<const LiveSnapshot>& snap,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    const TombstoneSet* excluded, bool& degraded) const {
  // Constraints: the AND's direct children, or the bare PHRASE/NEAR root.
  std::vector<const QueryNode*> constraints;
  if (root.op == QueryOp::kAnd) {
    for (const auto& child : root.children) constraints.push_back(&child);
  } else {
    constraints.push_back(&root);
  }
  // Flat leaf terms (collect_terms() order) + each constraint's span.
  struct Span {
    std::size_t begin = 0;
    std::size_t count = 0;
  };
  std::vector<std::string> terms;
  std::vector<Span> spans(constraints.size());
  bool positional = false;
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    spans[c].begin = terms.size();
    if (constraints[c]->op == QueryOp::kTerm) {
      terms.push_back(constraints[c]->term);
    } else {
      positional = true;
      terms.insert(terms.end(), constraints[c]->terms.begin(),
                   constraints[c]->terms.end());
    }
    spans[c].count = terms.size() - spans[c].begin;
  }

  QueryPostings acc;
  std::vector<std::unique_ptr<PostingsCursor>> cursors;
  cursors.reserve(terms.size());
  bool all_present = true;
  for (const auto& term : terms) {
    cursors.push_back(open_term_cursor(snap, term, positional));
    if (cursors.back() == nullptr) all_present = false;
  }
  // Any absent term empties the whole conjunction outright (a null cursor
  // covers both an unknown term and an empty list).
  if (!all_present || cursors.empty()) return acc;

  // Rarest list drives; followers answer seeks rarest-first so the
  // cheapest refutation runs before the expensive common lists.
  std::size_t driver_idx = 0;
  for (std::size_t i = 1; i < cursors.size(); ++i) {
    if (cursors[i]->size() < cursors[driver_idx]->size()) driver_idx = i;
  }
  std::vector<std::size_t> followers;
  followers.reserve(cursors.size() - 1);
  for (std::size_t i = 0; i < cursors.size(); ++i) {
    if (i != driver_idx) followers.push_back(i);
  }
  std::sort(followers.begin(), followers.end(), [&](std::size_t a, std::size_t b) {
    return cursors[a]->size() < cursors[b]->size();
  });

  // Bloom chains of the follower terms. The driver enumerates its own
  // list, so its filter could never reject anything. Chains can only turn
  // a would-be miss into a skipped seek (no false negatives), so results
  // are bit-identical with filters off — only the rejected counter moves.
  std::vector<BloomChain> chains(cursors.size());
  for (const std::size_t i : followers) chains[i] = term_bloom_chain(snap, terms[i]);

  PostingsCursor& driver = *cursors[driver_idx];
  bool dead_end = false;  // some follower exhausted: no more matches
  std::uint64_t steps = 0;
  std::uint64_t rejected = 0;
  DocTermPositions tp;
  for (driver.seek(0); driver.valid() && !dead_end; driver.next()) {
    if (++steps % kIntersectDeadlineStride == 0 && past(deadline)) {
      // Prefix of the true result: a valid subset, flagged.
      degraded = true;
      break;
    }
    const std::uint32_t d = driver.docid();
    if (excluded != nullptr && excluded->contains(d)) continue;
    // Bloom rejection BEFORE any follower seek: one definite "absent"
    // saves every remaining seek and the block decodes behind them.
    bool maybe = true;
    for (const std::size_t i : followers) {
      if (!chains[i].may_contain(d)) {
        maybe = false;
        ++rejected;
        break;
      }
    }
    if (!maybe) continue;
    bool all = true;
    for (const std::size_t i : followers) {
      cursors[i]->seek(d);
      if (!cursors[i]->valid()) {
        all = false;
        dead_end = true;
        break;
      }
      if (cursors[i]->docid() != d) {
        all = false;
        break;
      }
    }
    if (!all) continue;
    // Document-level intersection survived; verify the positional
    // constraints on this candidate only and assemble the doc's tf.
    std::uint32_t tf_sum = 0;
    bool ok = true;
    for (std::size_t c = 0; c < constraints.size() && ok; ++c) {
      const Span span = spans[c];
      if (constraints[c]->op == QueryOp::kTerm) {
        tf_sum += cursors[span.begin]->tf();
        continue;
      }
      tp.assign(span.count, {});
      for (std::size_t j = 0; j < span.count; ++j) {
        if (!cursors[span.begin + j]->current_positions(tp[j])) {
          return Error{ErrorCode::kInvalidArgument,
                       "phrase/NEAR query requires a positional index"};
        }
      }
      const std::uint32_t count = constraints[c]->op == QueryOp::kPhrase
                                      ? phrase_match_count(tp)
                                      : near_match_count(tp, constraints[c]->window);
      if (count == 0) ok = false;
      tf_sum += count;
    }
    if (ok) {
      acc.doc_ids.push_back(d);
      acc.tfs.push_back(tf_sum);
    }
  }
  std::uint64_t skipped = 0;
  for (const auto& c : cursors) skipped += c->blocks_skipped();
  ins_->blocks_skipped.add(skipped);
  if (rejected != 0) ins_->blooms_rejected.add(rejected);
  return acc;
}

Expected<QueryResponse> Searcher::search(
    const QueryRequest& request,
    std::optional<std::chrono::steady_clock::time_point> deadline) const {
  const WallTimer total_timer;
  const Query query = effective_query(request);
  if (query.empty()) {
    return Error{ErrorCode::kInvalidArgument, "query has no terms"};
  }
  if (past(deadline)) {
    return Error{ErrorCode::kDeadlineExceeded, "deadline expired before execution"};
  }
  ins_->queries.add();

  const auto snap = provider_ ? provider_() : nullptr;
  const std::uint64_t snapshot_id = snap != nullptr ? snap->snapshot_id() : 0;
  // The live tier's delete filter: lookups and cursors stay raw (stable
  // df), every candidate-producing path below drops tombstoned docs. The
  // result cache needs no special handling — every delete publishes a new
  // snapshot_id, which is part of every cache key.
  const TombstoneSet* excluded = snap != nullptr ? snap->tombstones() : nullptr;

  QueryResponse response;
  response.snapshot_id = snapshot_id;
  response.classified = query.query_class();

  // Scatter-stat sub-requests bypass the result cache entirely: the
  // injected global stats are not part of the cache key, so a cached
  // local-stats answer (or caching a global-stats one) would alias wrong
  // results across the two worlds.
  const bool cacheable = request.use_result_cache && request.scatter == nullptr;
  const std::string norm = normalize_query(query, request);
  const std::string result_key = snapshot_key(snapshot_id, norm);
  if (cacheable) {
    if (auto cached = result_cache_.get(result_key)) {
      ins_->result_hits.add();
      response.hits = **cached;
      response.from_cache = true;
      response.timings.total_seconds = total_timer.seconds();
      ins_->total_micros.add(response.timings.total_seconds * 1e6);
      return response;
    }
    ins_->result_misses.add();
  }

  const QueryNode& root = query.root();
  if (root.op == QueryOp::kTerm || root.op == QueryOp::kBag) {
    // Ranked bag-of-words: BM25 top-k over the leaf terms (a kBag root
    // only ever holds kTerm children).
    const std::vector<std::string> terms = query.collect_terms();
    if (snap == nullptr && docs_ == nullptr) {
      return Error{ErrorCode::kInvalidArgument,
                   "ranked queries require a DocMap (BM25 needs document lengths)"};
    }
    // Router-injected global stats (ScatterStats) override the local
    // collection view wherever N, df, or avgdl enters a score — document
    // lengths stay local (each shard owns its docs). A term absent
    // locally simply contributes nothing, exactly as in the union index.
    const ScatterStats* scatter = request.scatter.get();
    if (scatter != nullptr && scatter->term_dfs.size() != terms.size()) {
      return Error{ErrorCode::kInvalidArgument,
                   "scatter stats must carry one df per query term"};
    }
    const auto stats = stats_for(snap, snapshot_id);
    const std::uint64_t n_docs = scatter != nullptr ? scatter->n_docs : stats->n_docs;
    const double avgdl =
        scatter != nullptr ? std::max(scatter->avgdl, 1e-9) : stats->avgdl;
    if (request.exhaustive) {
      // Baseline engine: full decode cache-first, hash-map accumulation in
      // query term order — the historical bm25_query.
      const WallTimer lookup_timer;
      std::vector<std::shared_ptr<const QueryPostings>> lists;
      lists.reserve(terms.size());
      for (const auto& term : terms) {
        lists.push_back(fetch_postings(snap, snapshot_id, term));
      }
      response.timings.lookup_seconds = lookup_timer.seconds();
      const WallTimer score_timer;
      std::unordered_map<std::uint32_t, double> scores;
      for (std::size_t t = 0; t < terms.size(); ++t) {
        if (past(deadline)) {  // degrade between terms: coarse but exact
          response.degradation = Degradation::kDeadlinePartial;
          break;
        }
        const auto& postings = lists[t];
        if (postings == nullptr || postings->doc_ids.empty()) continue;
        const double idf = bm25_idf(
            scatter != nullptr ? scatter->term_dfs[t] : postings->doc_ids.size(),
            n_docs);
        for (std::size_t i = 0; i < postings->doc_ids.size(); ++i) {
          const std::uint32_t doc = postings->doc_ids[i];
          if (excluded != nullptr && excluded->contains(doc)) continue;
          const double tf = postings->tfs[i];
          const double dl = stats->lengths.token_count(doc);
          scores[doc] += bm25_contribution(idf, tf, dl, avgdl, request.bm25);
        }
      }
      std::vector<ScoredDoc> ranked;
      ranked.reserve(scores.size());
      for (const auto& [doc, score] : scores) ranked.push_back({doc, score});
      std::sort(ranked.begin(), ranked.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.doc_id < b.doc_id;
      });
      if (ranked.size() > request.k) ranked.resize(request.k);
      response.hits = std::move(ranked);
      response.timings.score_seconds = score_timer.seconds();
    } else {
      // Pruned engine: lazy block cursors (outside the postings cache —
      // caching a decoded list is exactly the work block-max skipping
      // avoids) driving MaxScore.
      const WallTimer lookup_timer;
      std::vector<std::unique_ptr<PostingsCursor>> cursors;
      cursors.reserve(terms.size());
      for (const auto& term : terms) {
        cursors.push_back(open_term_cursor(snap, term));
      }
      response.timings.lookup_seconds = lookup_timer.seconds();
      const WallTimer score_timer;
      std::vector<TopkTermInput> inputs;
      inputs.reserve(terms.size());
      for (std::size_t t = 0; t < terms.size(); ++t) {
        if (cursors[t] == nullptr) continue;
        TopkTermInput input;
        input.term_index = t;
        // df from the cursor's skip data — the same integer the decoded
        // list's length would give, so idf matches exhaustive exactly.
        input.idf = bm25_idf(
            scatter != nullptr ? scatter->term_dfs[t] : cursors[t]->size(), n_docs);
        const auto max_tf = term_max_tf(snap, terms[t]);
        // The bound pairs the (possibly global) idf with the local
        // max_tf: contributions below use the same idf, so the bound
        // still over-covers and pruning stays exact.
        input.upper_bound = max_tf ? bm25_upper_bound(input.idf, *max_tf, request.bm25)
                                   : bm25_loose_bound(input.idf, request.bm25);
        input.cursor = std::move(cursors[t]);
        inputs.push_back(std::move(input));
      }
      auto topk = maxscore_topk(std::move(inputs), request.k, request.bm25,
                                stats->lengths, avgdl, deadline, excluded);
      response.hits = std::move(topk.hits);
      if (topk.degraded) response.degradation = Degradation::kDeadlinePartial;
      ins_->blocks_skipped.add(topk.blocks_skipped);
      response.timings.score_seconds = score_timer.seconds();
    }
  } else if (flat_conjunction(root)) {
    // AND / PHRASE / NEAR over plain terms and positional groups: the
    // cursor-intersection engine with Bloom rejection and per-candidate
    // positional verification. Tombstones filtered at the driver.
    const WallTimer score_timer;
    bool degraded = false;
    auto acc = eval_conjunction(root, snap, deadline, excluded, degraded);
    if (!acc.has_value()) return acc.error();
    if (degraded) response.degradation = Degradation::kDeadlinePartial;
    response.hits = rank_by_tf(acc.value(), request.k, /*excluded=*/nullptr);
    response.timings.score_seconds = score_timer.seconds();
  } else {
    // General nested trees (OR roots, AND over OR groups, ...): the
    // recursive decoded evaluator, ranked by (tf desc, doc id asc).
    const WallTimer score_timer;
    bool degraded = false;
    auto acc = eval_node(root, snap, snapshot_id, deadline, degraded);
    if (!acc.has_value()) return acc.error();
    if (degraded) response.degradation = Degradation::kDeadlinePartial;
    response.hits = rank_by_tf(acc.value(), request.k, excluded);
    response.timings.score_seconds = score_timer.seconds();
  }
  response.timings.total_seconds = total_timer.seconds();

  if (response.degraded()) ins_->degraded.add();
  ins_->lookup_micros.add(response.timings.lookup_seconds * 1e6);
  ins_->score_micros.add(response.timings.score_seconds * 1e6);
  ins_->total_micros.add(response.timings.total_seconds * 1e6);

  // Degraded answers are timing accidents, not the query's answer — they
  // must never be replayed from the cache.
  if (cacheable && !response.degraded()) {
    result_cache_.put(result_key,
                      std::make_shared<const std::vector<ScoredDoc>>(response.hits));
  }
  return response;
}

}  // namespace hetindex
