#pragma once
/// \file searcher.hpp
/// The one query facade. A Searcher binds a corpus view — a batch
/// InvertedIndex + DocMap, a pinned LiveSnapshot, or a provider that
/// follows a live writer — and answers QueryRequests of every Query AST
/// shape (search/query_ast.hpp) through the SearchBackend interface,
/// sharing across requests everything the old free functions re-derived
/// per call:
///
///   collection stats   N and avgdl computed once per snapshot (guarded by
///                      a snapshot-id check, not per query — the
///                      search_stats_recomputes_total counter proves it)
///   decoded postings   sharded LRU keyed on (snapshot id, term) — used by
///                      the decoded modes (exhaustive ranked, disjunctive);
///                      the cursor modes (pruned ranked, conjunctive) open
///                      lazy block cursors instead, because caching a fully
///                      decoded list is exactly the work block-max skipping
///                      exists to avoid
///   finished results   sharded LRU keyed on (snapshot id, normalized
///                      query); never stores degraded responses
///
/// Construction goes through one factory: `Searcher::open(SearchSource)`
/// returning Expected — the SearchSource factories name the corpus view
/// (`batch`, `snapshot`, `live`). The former constructor overloads (and
/// their deprecation shims) are gone; open() is the only entry point.
///
/// Snapshot changes invalidate nothing explicitly: keys embed the snapshot
/// id, so stale entries simply stop being reachable and age out.
///
/// Thread safety: search() is const and safe to call concurrently from any
/// number of threads — SearchService runs a pool of them against one
/// Searcher. The Searcher is immovable (instruments and caches are
/// address-stable for the service's lifetime).

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>

#include "live/segment_set.hpp"
#include "obs/metrics.hpp"
#include "postings/doc_map.hpp"
#include "postings/query.hpp"
#include "search/backend.hpp"
#include "search/cache.hpp"
#include "search/topk.hpp"
#include "search/types.hpp"
#include "util/error.hpp"

namespace hetindex {

/// Source of the current snapshot for a live-following Searcher; typically
/// `[&writer] { return writer.snapshot(); }`. Must be callable from any
/// thread.
using SnapshotFn = std::function<std::shared_ptr<const LiveSnapshot>()>;

/// Names the corpus view a Searcher serves. Value type handed to
/// Searcher::open(); exactly one factory below applies.
class SearchSource {
 public:
  /// A batch index + doc map (every query mode). Both references must
  /// outlive the Searcher.
  [[nodiscard]] static SearchSource batch(const InvertedIndex& index, const DocMap& docs);
  /// A batch index with no doc map: boolean modes only — ranked requests
  /// report kInvalidArgument (BM25 needs document lengths).
  [[nodiscard]] static SearchSource batch(const InvertedIndex& index);
  /// One pinned live snapshot (held alive by the Searcher).
  [[nodiscard]] static SearchSource snapshot(std::shared_ptr<const LiveSnapshot> snap);
  /// Follows a live index: every search() resolves the provider, so
  /// queries always see the latest committed snapshot and caches roll over
  /// with the snapshot id.
  [[nodiscard]] static SearchSource live(SnapshotFn provider);

 private:
  friend class Searcher;
  SearchSource() = default;

  const InvertedIndex* index_ = nullptr;
  const DocMap* docs_ = nullptr;
  SnapshotFn provider_;
  bool null_source_ = false;  ///< snapshot(nullptr)/live(nullptr): open() refuses
};

struct SearcherOptions {
  std::size_t postings_cache_entries = 4096;  ///< decoded lists retained
  std::size_t result_cache_entries = 1024;    ///< finished queries retained
  std::size_t cache_shards = 8;               ///< lock granularity of both caches
  /// Test AND/PHRASE/NEAR candidates against per-list Bloom chains (`.blm`
  /// sidecars) before seeking follower cursors. Filters are one-way exact,
  /// so toggling this never changes results — only decode work (the
  /// search_blooms_rejected_total counter; the equivalence suite diffs
  /// on/off for bit-identity).
  bool use_bloom_filters = true;
};

class Searcher : public SearchBackend {
 public:
  /// The one way to build a Searcher: bind a SearchSource. kInvalidArgument
  /// when the source holds a null snapshot or provider function. A live
  /// provider is never invoked here — it may legitimately block until
  /// serving starts; resolving null at query time simply serves nothing.
  /// Returns a shared_ptr because every downstream consumer (SearchService,
  /// ShardReplica) shares ownership.
  [[nodiscard]] static Expected<std::shared_ptr<Searcher>> open(
      SearchSource source, SearcherOptions options = {});
  ~Searcher() override;

  Searcher(const Searcher&) = delete;
  Searcher& operator=(const Searcher&) = delete;

  using SearchBackend::search;  // the one-argument convenience entry

  /// Answers one request against an absolute deadline that may predate
  /// this call — SearchService passes the deadline computed at submit time
  /// so queue wait counts against the budget. The request's Query AST
  /// (effective_query: `request.query`, falling back to the deprecated
  /// terms/mode pair) picks the executor; the response's `classified`
  /// reports the derived QueryClass. Errors: kInvalidArgument (empty
  /// query, malformed scatter stats, phrase/NEAR over a non-positional
  /// index, ranked without a DocMap), kDeadlineExceeded (expired on
  /// entry).
  [[nodiscard]] Expected<QueryResponse> search(
      const QueryRequest& request,
      std::optional<std::chrono::steady_clock::time_point> deadline) const override;

  /// search_* instruments: queries/degraded/cache hit-miss counters,
  /// per-stage latency histograms, stats-recompute counter. SearchService
  /// adds its admission metrics to this same registry.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const override { return *metrics_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() override { return *metrics_; }

 private:
  struct Instruments;
  /// Collection statistics of one snapshot, shared by concurrent queries.
  struct Stats {
    std::uint64_t snapshot_id = 0;
    std::uint64_t n_docs = 0;
    double avgdl = 0;
    DocLengthIndex lengths;
    std::shared_ptr<const LiveSnapshot> pin;  ///< keeps doc maps alive
  };

  Searcher(SearchSource source, SearcherOptions options);

  [[nodiscard]] std::shared_ptr<const Stats> stats_for(
      const std::shared_ptr<const LiveSnapshot>& snap, std::uint64_t snapshot_id) const;
  [[nodiscard]] std::shared_ptr<const QueryPostings> fetch_postings(
      const std::shared_ptr<const LiveSnapshot>& snap, std::uint64_t snapshot_id,
      const std::string& term) const;
  [[nodiscard]] std::optional<std::uint32_t> term_max_tf(
      const std::shared_ptr<const LiveSnapshot>& snap, const std::string& term) const;
  [[nodiscard]] std::unique_ptr<PostingsCursor> open_term_cursor(
      const std::shared_ptr<const LiveSnapshot>& snap, const std::string& term,
      bool with_positions = false) const;
  /// The term's Bloom rejection chain over the bound view; empty (never
  /// rejects) when filters are disabled by options or absent on disk.
  [[nodiscard]] BloomChain term_bloom_chain(
      const std::shared_ptr<const LiveSnapshot>& snap, const std::string& term) const;
  /// Positional lookup over the bound view (uncached — positional lists
  /// are only pulled for the phrase/NEAR fallback evaluator).
  [[nodiscard]] std::optional<QueryPostings> lookup_positional(
      const std::shared_ptr<const LiveSnapshot>& snap, const std::string& term) const;
  /// Recursive decoded evaluator for nested trees (see searcher.cpp).
  [[nodiscard]] Expected<QueryPostings> eval_node(
      const QueryNode& node, const std::shared_ptr<const LiveSnapshot>& snap,
      std::uint64_t snapshot_id,
      const std::optional<std::chrono::steady_clock::time_point>& deadline,
      bool& degraded) const;
  [[nodiscard]] Expected<QueryPostings> eval_conjunction(
      const QueryNode& root, const std::shared_ptr<const LiveSnapshot>& snap,
      const std::optional<std::chrono::steady_clock::time_point>& deadline,
      const TombstoneSet* excluded, bool& degraded) const;

  SearcherOptions options_;

  // Exactly one source is active: (index_, docs_) or provider_.
  const InvertedIndex* index_ = nullptr;
  const DocMap* docs_ = nullptr;
  SnapshotFn provider_;

  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<Instruments> ins_;

  mutable std::shared_mutex stats_mu_;
  mutable std::shared_ptr<const Stats> stats_;  // current snapshot's stats

  /// Values are shared_ptrs to immutable data; a null postings pointer is
  /// a cached "term absent" verdict (negative caching).
  mutable ShardedLruCache<std::string, std::shared_ptr<const QueryPostings>>
      postings_cache_;
  mutable ShardedLruCache<std::string, std::shared_ptr<const std::vector<ScoredDoc>>>
      result_cache_;
};

}  // namespace hetindex
