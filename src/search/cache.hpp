#pragma once
/// \file cache.hpp
/// Sharded LRU cache behind the Searcher: decoded postings and finished
/// query results both live in one of these. Sharding by key hash keeps the
/// per-shard critical section (a hash probe plus a list splice) from
/// serializing concurrent queries — with S shards, two requests collide
/// only when their keys land in the same shard.
///
/// Invalidation is deliberately absent: keys embed the snapshot id (see
/// LiveSnapshot::snapshot_id), so a snapshot change makes every old entry
/// unreachable and plain LRU pressure evicts the corpses. That trades a
/// little capacity after a flush for zero cross-thread invalidation
/// traffic on the hot path.

#include <cstddef>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace hetindex {

/// Thread-safe LRU map. Values are returned by copy, so V should be cheap
/// to copy — in practice a shared_ptr to immutable data.
template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedLruCache {
 public:
  /// \param capacity total entries across all shards (rounded up to give
  ///        every shard at least one slot).
  /// \param shards   lock granularity; more shards = less contention.
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 8)
      : shards_(std::max<std::size_t>(shards, 1)) {
    HET_CHECK(capacity > 0);
    const std::size_t per_shard =
        (capacity + shards_.size() - 1) / shards_.size();
    for (auto& shard : shards_) shard.capacity = per_shard;
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// The cached value, freshened to most-recently-used; nullopt on miss.
  std::optional<V> get(const K& key) {
    Shard& shard = shard_for(key);
    std::scoped_lock lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) return std::nullopt;
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites, evicting the least-recently-used entry of the
  /// shard when full.
  void put(const K& key, V value) {
    Shard& shard = shard_for(key);
    std::scoped_lock lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return;
    }
    if (shard.index.size() >= shard.capacity) {
      shard.index.erase(shard.order.back().first);
      shard.order.pop_back();
    }
    shard.order.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.order.begin());
  }

  /// Entries currently resident (sums shard sizes; racy but monotone-ish —
  /// an observability number, not a synchronization primitive).
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& shard : shards_) {
      std::scoped_lock lock(shard.mu);
      n += shard.index.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::size_t capacity = 0;
    std::list<std::pair<K, V>> order;  ///< front = most recently used
    std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash> index;
  };

  Shard& shard_for(const K& key) { return shards_[Hash{}(key) % shards_.size()]; }

  std::vector<Shard> shards_;
};

}  // namespace hetindex
