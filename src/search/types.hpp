#pragma once
/// \file types.hpp
/// Value types of the search serving API: one QueryRequest in, one
/// QueryResponse out, whatever the mode. These replaced the scattered
/// per-style entry points (the since-removed bm25_query and
/// conjunctive_query free functions) — a caller builds a request, hands it
/// to a Searcher or SearchService, and gets back hits plus the execution
/// story (timings, cache provenance, degradation) in one struct.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "postings/ranking.hpp"

namespace hetindex {

/// How the terms combine.
enum class QueryMode {
  kRanked,       ///< BM25 top-k, any matching term contributes (default)
  kConjunctive,  ///< docs containing every term, ranked by summed tf
  kDisjunctive,  ///< docs containing any term, ranked by summed tf
};

/// Stable lowercase identifier for logs and CLI flags.
constexpr const char* query_mode_name(QueryMode mode) {
  switch (mode) {
    case QueryMode::kRanked: return "ranked";
    case QueryMode::kConjunctive: return "conjunctive";
    case QueryMode::kDisjunctive: return "disjunctive";
  }
  return "unknown";
}

/// One query. Terms must already be normalized (see normalize_term);
/// duplicates are honored, not deduplicated — a repeated term scores twice,
/// matching the historical bm25_query behaviour.
struct QueryRequest {
  std::vector<std::string> terms;
  QueryMode mode = QueryMode::kRanked;
  std::size_t k = 10;
  /// Execution budget; zero means no deadline. The clock starts when the
  /// request enters the system (SearchService::submit), so queue wait
  /// counts against it. A deadline that expires before execution rejects
  /// with kDeadlineExceeded; one that hits mid-execution degrades to an
  /// approximate top-k (QueryResponse::degraded).
  std::chrono::microseconds timeout{0};
  Bm25Params bm25;  ///< ranked mode only
  /// Forces the exhaustive scorer (full decode + hash-map accumulation)
  /// instead of the Block-Max MaxScore early-termination executor. The two
  /// return identical rankings; exhaustive exists as the correctness
  /// baseline (the equivalence suite diffs the two bit-for-bit).
  bool exhaustive = false;
  /// Opt out of the query-result cache (postings caching still applies).
  bool use_result_cache = true;
};

/// Where the wall time of one request went, in seconds.
struct QueryTimings {
  double total_seconds = 0;   ///< entry to response
  double lookup_seconds = 0;  ///< postings fetch/decode (including cache hits)
  double score_seconds = 0;   ///< scoring, merging, ranking
};

/// One answered query.
struct QueryResponse {
  std::vector<ScoredDoc> hits;  ///< ranked per mode, at most k
  QueryTimings timings;
  /// The deadline hit mid-execution: hits are the best candidates scored
  /// before the cutoff — a valid but possibly incomplete top-k. Degraded
  /// responses are never cached.
  bool degraded = false;
  bool from_cache = false;  ///< served verbatim from the result cache
  /// Identity of the snapshot that answered (0 for a batch index).
  std::uint64_t snapshot_id = 0;
};

}  // namespace hetindex
