#pragma once
/// \file types.hpp
/// Value types of the search serving API: one QueryRequest in, one
/// QueryResponse out, whatever the mode. These replaced the scattered
/// per-style entry points (the since-removed bm25_query and
/// conjunctive_query free functions) — a caller builds a request, hands it
/// to a Searcher or SearchService, and gets back hits plus the execution
/// story (timings, cache provenance, degradation) in one struct.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "postings/ranking.hpp"
#include "search/query_ast.hpp"

namespace hetindex {

/// How the terms of the deprecated flat request form combine. Superseded
/// by the Query AST (query_ast.hpp), whose root operator expresses the
/// same three shapes plus phrase/proximity; kept one release so legacy
/// QueryRequest::mode call sites keep compiling.
enum class QueryMode {
  kRanked,       ///< BM25 top-k, any matching term contributes (default)
  kConjunctive,  ///< docs containing every term, ranked by summed tf
  kDisjunctive,  ///< docs containing any term, ranked by summed tf
};

/// Stable lowercase identifier for logs and CLI flags. Total: any
/// out-of-range value (a stale serialized int, a miscast) reads as
/// "unknown" instead of falling off the switch. Names match
/// query_class_name() for the three classes both can express.
constexpr const char* query_mode_name(QueryMode mode) {
  switch (mode) {
    case QueryMode::kRanked: return "ranked";
    case QueryMode::kConjunctive: return "conjunctive";
    case QueryMode::kDisjunctive: return "disjunctive";
    default: return "unknown";
  }
}

/// How complete a response is. PR 4 conflated every partial answer in one
/// `degraded` bool; the cluster tier needs to distinguish "the deadline cut
/// execution short" from "a shard shed" from "a shard was unreachable", so
/// the flag became this enum.
enum class Degradation {
  kComplete,         ///< the full answer
  kDeadlinePartial,  ///< deadline hit mid-execution: best candidates so far
  kShedPartial,      ///< cluster: unanswered shards shed under load
  kShardPartial,     ///< cluster: a shard was down or timed out past failover
};

/// Stable lowercase identifier for logs and CLI output.
constexpr const char* degradation_name(Degradation d) {
  switch (d) {
    case Degradation::kComplete: return "complete";
    case Degradation::kDeadlinePartial: return "deadline_partial";
    case Degradation::kShedPartial: return "shed_partial";
    case Degradation::kShardPartial: return "shard_partial";
  }
  return "unknown";
}

/// Global collection statistics a ShardRouter injects into a shard-local
/// sub-request so BM25 scores computed on one shard are bit-identical to a
/// single-node build of the union corpus: idf needs the global df and N,
/// the length normalization needs the global avgdl. All three are exact
/// integer aggregates (avgdl is the one division), so every shard derives
/// the same doubles the union index would.
struct ScatterStats {
  std::uint64_t n_docs = 0;            ///< live documents, cluster-wide
  double avgdl = 0;                    ///< global mean tokens per live doc
  /// Raw df per query leaf term, parallel to Query::collect_terms() order
  /// (for a legacy flat request that order equals the terms vector).
  std::vector<std::uint64_t> term_dfs;
};

/// One query. The AST (`query`) is the request surface: build it with
/// parse_query("fast \"inverted files\" AND gpu") or the Query factories.
/// Leaf terms must already be normalized (parse_query normalizes for you;
/// the factories don't — see normalize_term); duplicates are honored, not
/// deduplicated — a repeated term scores twice, matching the historical
/// bm25_query behaviour.
// The pragma region silences the deprecation warnings GCC raises while
// synthesizing QueryRequest's own special members (they copy the
// deprecated fields); uses at call sites still warn.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
struct QueryRequest {
  /// The structured query. When empty (default-constructed), backends fall
  /// back to the deprecated terms/mode pair below via effective_query() —
  /// a one-release shim.
  Query query;
  [[deprecated("build a Query AST (QueryRequest::query) instead")]]
  std::vector<std::string> terms;
  [[deprecated("the Query AST root expresses the mode; see query_ast.hpp")]]
  QueryMode mode = QueryMode::kRanked;
  std::size_t k = 10;
  /// Execution budget; zero means no deadline. The clock starts when the
  /// request enters the system (SearchService::submit), so queue wait
  /// counts against it. A deadline that expires before execution rejects
  /// with kDeadlineExceeded; one that hits mid-execution degrades to an
  /// approximate top-k (QueryResponse::degraded).
  std::chrono::microseconds timeout{0};
  Bm25Params bm25;  ///< ranked mode only
  /// Forces the exhaustive scorer (full decode + hash-map accumulation)
  /// instead of the Block-Max MaxScore early-termination executor. The two
  /// return identical rankings; exhaustive exists as the correctness
  /// baseline (the equivalence suite diffs the two bit-for-bit).
  bool exhaustive = false;
  /// Opt out of the query-result cache (postings caching still applies).
  bool use_result_cache = true;
  /// Router-supplied global stats for ranked sub-requests (see
  /// ScatterStats). Null for ordinary single-node queries. Requests
  /// carrying scatter stats bypass the result cache — the stats are not
  /// part of the cache key, and a cached local-stats answer would be wrong.
  std::shared_ptr<const ScatterStats> scatter;
};
#pragma GCC diagnostic pop

/// Where the wall time of one request went, in seconds.
struct QueryTimings {
  double total_seconds = 0;   ///< entry to response
  double lookup_seconds = 0;  ///< postings fetch/decode (including cache hits)
  double score_seconds = 0;   ///< scoring, merging, ranking
};

/// One answered query.
struct QueryResponse {
  std::vector<ScoredDoc> hits;  ///< ranked per mode, at most k
  QueryTimings timings;
  /// How complete the answer is (see Degradation). Anything but kComplete
  /// means hits are a valid but possibly incomplete subset; degraded
  /// responses are never cached.
  Degradation degradation = Degradation::kComplete;
  [[nodiscard]] bool degraded() const { return degradation != Degradation::kComplete; }
  /// The class the query executed as (derived from the AST by the backend
  /// that answered) — lets callers bucket latency per class without
  /// re-deriving it from the request.
  [[nodiscard]] QueryClass query_class() const { return classified; }
  QueryClass classified = QueryClass::kRanked;  ///< set by the backend
  bool from_cache = false;  ///< served verbatim from the result cache
  /// Identity of the snapshot that answered (0 for a batch index; 0 for a
  /// cluster response, which merges many snapshots).
  std::uint64_t snapshot_id = 0;
  /// Cluster provenance: shards that contributed vs. shards asked. 0/0
  /// means the response did not pass through a router.
  std::uint32_t shards_answered = 0;
  std::uint32_t shards_total = 0;
};

}  // namespace hetindex
