#pragma once
/// \file types.hpp
/// Value types of the search serving API: one QueryRequest in, one
/// QueryResponse out, whatever the mode. These replaced the scattered
/// per-style entry points (the since-removed bm25_query and
/// conjunctive_query free functions) — a caller builds a request, hands it
/// to a Searcher or SearchService, and gets back hits plus the execution
/// story (timings, cache provenance, degradation) in one struct.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "postings/ranking.hpp"

namespace hetindex {

/// How the terms combine.
enum class QueryMode {
  kRanked,       ///< BM25 top-k, any matching term contributes (default)
  kConjunctive,  ///< docs containing every term, ranked by summed tf
  kDisjunctive,  ///< docs containing any term, ranked by summed tf
};

/// Stable lowercase identifier for logs and CLI flags.
constexpr const char* query_mode_name(QueryMode mode) {
  switch (mode) {
    case QueryMode::kRanked: return "ranked";
    case QueryMode::kConjunctive: return "conjunctive";
    case QueryMode::kDisjunctive: return "disjunctive";
  }
  return "unknown";
}

/// How complete a response is. PR 4 conflated every partial answer in one
/// `degraded` bool; the cluster tier needs to distinguish "the deadline cut
/// execution short" from "a shard shed" from "a shard was unreachable", so
/// the flag became this enum.
enum class Degradation {
  kComplete,         ///< the full answer
  kDeadlinePartial,  ///< deadline hit mid-execution: best candidates so far
  kShedPartial,      ///< cluster: unanswered shards shed under load
  kShardPartial,     ///< cluster: a shard was down or timed out past failover
};

/// Stable lowercase identifier for logs and CLI output.
constexpr const char* degradation_name(Degradation d) {
  switch (d) {
    case Degradation::kComplete: return "complete";
    case Degradation::kDeadlinePartial: return "deadline_partial";
    case Degradation::kShedPartial: return "shed_partial";
    case Degradation::kShardPartial: return "shard_partial";
  }
  return "unknown";
}

/// Global collection statistics a ShardRouter injects into a shard-local
/// sub-request so BM25 scores computed on one shard are bit-identical to a
/// single-node build of the union corpus: idf needs the global df and N,
/// the length normalization needs the global avgdl. All three are exact
/// integer aggregates (avgdl is the one division), so every shard derives
/// the same doubles the union index would.
struct ScatterStats {
  std::uint64_t n_docs = 0;            ///< live documents, cluster-wide
  double avgdl = 0;                    ///< global mean tokens per live doc
  std::vector<std::uint64_t> term_dfs; ///< raw df per request term (parallel)
};

/// One query. Terms must already be normalized (see normalize_term);
/// duplicates are honored, not deduplicated — a repeated term scores twice,
/// matching the historical bm25_query behaviour.
struct QueryRequest {
  std::vector<std::string> terms;
  QueryMode mode = QueryMode::kRanked;
  std::size_t k = 10;
  /// Execution budget; zero means no deadline. The clock starts when the
  /// request enters the system (SearchService::submit), so queue wait
  /// counts against it. A deadline that expires before execution rejects
  /// with kDeadlineExceeded; one that hits mid-execution degrades to an
  /// approximate top-k (QueryResponse::degraded).
  std::chrono::microseconds timeout{0};
  Bm25Params bm25;  ///< ranked mode only
  /// Forces the exhaustive scorer (full decode + hash-map accumulation)
  /// instead of the Block-Max MaxScore early-termination executor. The two
  /// return identical rankings; exhaustive exists as the correctness
  /// baseline (the equivalence suite diffs the two bit-for-bit).
  bool exhaustive = false;
  /// Opt out of the query-result cache (postings caching still applies).
  bool use_result_cache = true;
  /// Router-supplied global stats for ranked sub-requests (see
  /// ScatterStats). Null for ordinary single-node queries. Requests
  /// carrying scatter stats bypass the result cache — the stats are not
  /// part of the cache key, and a cached local-stats answer would be wrong.
  std::shared_ptr<const ScatterStats> scatter;
};

/// Where the wall time of one request went, in seconds.
struct QueryTimings {
  double total_seconds = 0;   ///< entry to response
  double lookup_seconds = 0;  ///< postings fetch/decode (including cache hits)
  double score_seconds = 0;   ///< scoring, merging, ranking
};

/// One answered query.
struct QueryResponse {
  std::vector<ScoredDoc> hits;  ///< ranked per mode, at most k
  QueryTimings timings;
  /// How complete the answer is (see Degradation). Anything but kComplete
  /// means hits are a valid but possibly incomplete subset; degraded
  /// responses are never cached.
  Degradation degradation = Degradation::kComplete;
  [[nodiscard]] bool degraded() const { return degradation != Degradation::kComplete; }
  bool from_cache = false;  ///< served verbatim from the result cache
  /// Identity of the snapshot that answered (0 for a batch index; 0 for a
  /// cluster response, which merges many snapshots).
  std::uint64_t snapshot_id = 0;
  /// Cluster provenance: shards that contributed vs. shards asked. 0/0
  /// means the response did not pass through a router.
  std::uint32_t shards_answered = 0;
  std::uint32_t shards_total = 0;
};

}  // namespace hetindex
