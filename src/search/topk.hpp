#pragma once
/// \file topk.hpp
/// Cursor-based top-k BM25 executor: MaxScore early termination (Turtle &
/// Flood 1995) upgraded with block-max pruning (Ding & Suel 2011) over the
/// PostingsCursor skip data. Terms are ordered by their score upper bound
/// and split into an essential suffix (must be scanned) and a non-essential
/// prefix whose combined bound cannot beat the current k-th score. On top
/// of the list-level split, per-block maxima prune at block granularity:
///   - when even the essential lists' *current blocks* cannot reach theta,
///     the whole doc-id window up to the nearest block boundary is skipped
///     without decoding a posting;
///   - a non-essential probe first shallow-seeks (block pointer only) and
///     abandons the candidate if the landing block's max-score bound —
///     tighter than the term's global bound — cannot close the gap, so the
///     block is never decoded.
///
/// Exactness contract: the executor returns *bit-identical* results to the
/// exhaustive scorer. Two mechanisms make that hold under floating point:
///   1. every candidate inserted into the heap is re-scored canonically —
///      its per-term contributions summed in ascending original-term-index
///      order, the exact accumulation sequence of the exhaustive engine;
///   2. pruning compares against theta scaled by a relative slack, so a
///      bound whose partial sums drifted a few ulps below the canonical
///      value can never wrongly discard a qualifying document.

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "postings/cursor.hpp"
#include "postings/query.hpp"
#include "postings/ranking.hpp"

namespace hetindex {

class MemtableView;  // live/memtable.hpp
class TombstoneSet;  // live/tombstones.hpp

/// One term's input to the executor. `term_index` is the position in the
/// original request — the canonical accumulation order.
struct TopkTermInput {
  std::size_t term_index = 0;
  std::unique_ptr<PostingsCursor> cursor;  ///< fresh (unpositioned) cursor
  double idf = 0;
  double upper_bound = 0;  ///< max BM25 contribution of this term to any doc
};

/// Per-document token counts of one or more doc ranges, resolved by binary
/// search — the live snapshot's segments each carry their own map, its
/// memtable serves the unflushed tail, the batch index one map at base 0.
class DocLengthIndex {
 public:
  void add_range(std::uint32_t base, std::uint32_t count, const DocMap* map);
  /// The live snapshot's memtable range (docs above every segment).
  void add_range(std::uint32_t base, std::uint32_t count, const MemtableView* memtable);
  /// Indexed tokens of `doc`; 0 when no range covers it.
  [[nodiscard]] double token_count(std::uint32_t doc) const;

 private:
  struct Range {
    std::uint32_t base;
    std::uint32_t count;
    const DocMap* map;             ///< exactly one of map/memtable is set
    const MemtableView* memtable;
  };
  std::vector<Range> ranges_;  // ascending base, disjoint
};

/// The BM25 contribution of one (term, doc) pair. This exact expression is
/// shared by the exhaustive scorer, the executor's canonical re-sum, and
/// the bound computation — equivalence depends on everyone computing the
/// same doubles.
inline double bm25_contribution(double idf, double tf, double dl, double avgdl,
                                const Bm25Params& params) {
  const double denom = tf + params.k1 * (1.0 - params.b + params.b * dl / avgdl);
  return idf * (tf * (params.k1 + 1.0)) / denom;
}

/// The largest contribution a term with `max_tf` can make to any document:
/// the document-length term of the denominator is nonnegative, so dropping
/// it bounds from above, and the remainder is monotone increasing in tf.
double bm25_upper_bound(double idf, std::uint32_t max_tf, const Bm25Params& params);

/// Loose fallback bound (tf → ∞) for terms without a max_tf sidecar.
double bm25_loose_bound(double idf, const Bm25Params& params);

/// Top-k by summed tf (the boolean modes' relevance signal), doc id
/// breaking ties. `excluded` drops tombstoned docs (live-tier deletes).
/// Shared by the Searcher's conjunctive/disjunctive modes and the
/// ShardRouter's term-routed boolean scoring — bit-identity between the
/// two depends on ranking through the same code.
std::vector<ScoredDoc> rank_by_tf(const QueryPostings& postings, std::size_t k,
                                  const TombstoneSet* excluded);

struct TopkResult {
  std::vector<ScoredDoc> hits;  ///< score desc, doc id asc, at most k
  bool degraded = false;        ///< deadline expired mid-scan; hits approximate
  std::uint64_t docs_scored = 0;
  std::uint64_t blocks_skipped = 0;  ///< postings blocks passed without decoding
};

/// Runs Block-Max MaxScore over the term cursors. `deadline` (optional)
/// degrades the scan to the best candidates found so far when it expires.
/// `excluded` (optional) drops tombstoned candidates before they are scored
/// or can raise theta — the live tier's delete filter. Cursors stay raw
/// (df and score bounds are computed over all postings, deleted included,
/// on both the exhaustive and pruned paths, so results stay bit-identical).
TopkResult maxscore_topk(
    std::vector<TopkTermInput> terms, std::size_t k, const Bm25Params& params,
    const DocLengthIndex& lengths, double avgdl,
    std::optional<std::chrono::steady_clock::time_point> deadline = std::nullopt,
    const TombstoneSet* excluded = nullptr);

}  // namespace hetindex
