#include "search/service.hpp"

#include <utility>

#include "util/check.hpp"

namespace hetindex {

struct SearchService::Instruments {
  obs::Counter& submitted;
  obs::Counter& shed;
  obs::Counter& deadline_rejected;
  obs::Gauge& inflight;
  obs::Gauge& queue_depth;
  obs::Histo& queue_wait_micros;

  explicit Instruments(obs::MetricsRegistry& m)
      : submitted(m.counter("search_requests_total")),
        shed(m.counter("search_shed_total")),
        deadline_rejected(m.counter("search_deadline_rejected_total")),
        inflight(m.gauge("search_inflight")),
        queue_depth(m.gauge("search_queue_depth")),
        queue_wait_micros(m.histogram("search_queue_wait_micros", 0.0, 16384.0, 64)) {}
};

SearchService::SearchService(std::shared_ptr<SearchBackend> backend,
                             SearchServiceOptions options)
    : backend_(std::move(backend)) {
  HET_CHECK_MSG(backend_ != nullptr, "SearchService requires a backend");
  HET_CHECK(options.threads > 0);
  ins_ = std::make_unique<Instruments>(backend_->metrics());
  queue_ = std::make_unique<BoundedQueue<Job>>(
      options.queue_capacity, obs::QueueProbe{&ins_->queue_depth, nullptr, nullptr});
  workers_.reserve(options.threads);
  for (std::size_t i = 0; i < options.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SearchService::~SearchService() {
  // Close first: workers drain what is queued, then see exhaustion and
  // exit; the jthreads join on destruction.
  queue_->close();
}

std::future<Expected<QueryResponse>> SearchService::enqueue(
    QueryRequest request,
    std::optional<std::chrono::steady_clock::time_point> deadline) const {
  ins_->submitted.add();
  Job job;
  job.enqueued = std::chrono::steady_clock::now();
  job.deadline = deadline;
  job.request = std::move(request);
  auto future = job.promise.get_future();
  if (!queue_->try_push(std::move(job))) {
    // Saturated: reject now rather than queue unbounded latency. The
    // pushed job (promise included) is gone, so answer through a fresh
    // one.
    ins_->shed.add();
    std::promise<Expected<QueryResponse>> rejected;
    rejected.set_value(Error{ErrorCode::kOverloaded,
                             "search queue saturated (capacity " +
                                 std::to_string(queue_->capacity()) + ")"});
    return rejected.get_future();
  }
  return future;
}

std::future<Expected<QueryResponse>> SearchService::submit(QueryRequest request) {
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (request.timeout.count() > 0) {
    deadline = std::chrono::steady_clock::now() + request.timeout;
  }
  return enqueue(std::move(request), deadline);
}

std::future<Expected<QueryResponse>> SearchService::submit(
    QueryRequest request,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  return enqueue(std::move(request), deadline);
}

Expected<QueryResponse> SearchService::search(
    const QueryRequest& request,
    std::optional<std::chrono::steady_clock::time_point> deadline) const {
  return enqueue(request, deadline).get();
}

void SearchService::worker_loop() {
  while (auto job = queue_->pop()) {
    const auto now = std::chrono::steady_clock::now();
    const double waited_s =
        std::chrono::duration<double>(now - job->enqueued).count();
    ins_->queue_wait_micros.add(waited_s * 1e6);
    // Dead on arrival: the deadline ran out while queued — reject without
    // burning executor time on an answer nobody is waiting for.
    if (job->deadline && now >= *job->deadline) {
      ins_->deadline_rejected.add();
      job->promise.set_value(
          Error{ErrorCode::kDeadlineExceeded,
                "deadline expired in queue after " + std::to_string(waited_s) + "s"});
      continue;
    }
    ins_->inflight.add(1);
    job->promise.set_value(backend_->search(job->request, job->deadline));
    ins_->inflight.add(-1);
  }
}

}  // namespace hetindex
