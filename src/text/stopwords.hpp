#pragma once
/// \file stopwords.hpp
/// Step 4 of the parser (Fig. 3): removal of stop words ("the", "to",
/// "and", ...). The default list is the classic short English list used by
/// most indexing systems; custom lists can be supplied per pipeline config.

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace hetindex {

/// Immutable stop-word membership set.
class StopWords {
 public:
  /// Builds the default English list.
  StopWords();
  /// Builds from a custom word list (words must be lowercase).
  explicit StopWords(const std::vector<std::string_view>& words);

  [[nodiscard]] bool contains(std::string_view word) const {
    return set_.contains(word);
  }
  [[nodiscard]] std::size_t size() const { return set_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
    std::size_t operator()(const std::string& s) const {
      return (*this)(std::string_view(s));
    }
  };
  std::unordered_set<std::string, Hash, std::equal_to<>> set_;
};

/// Process-wide default list (thread-safe lazy init).
const StopWords& default_stopwords();

/// The words of the default list, in declaration order. The synthetic
/// corpus generator maps the top Zipf ranks onto these so stop-word
/// removal has realistic impact on generated text.
std::vector<std::string_view> default_stopword_list();

}  // namespace hetindex
