#pragma once
/// \file porter.hpp
/// The Porter stemming algorithm (Porter 1980), Step 3 of the parser
/// (Fig. 3). This is a from-scratch implementation of the original
/// definition (steps 1a–5b) operating on lowercase ASCII words.
///
/// Words shorter than 3 characters or containing non [a-z] characters are
/// returned unchanged — the paper's tokenizer lowercases ASCII and routes
/// "special" terms (numbers, diacritics) through trie collection 0, which
/// are not stemmable English anyway.

#include <string>
#include <string_view>

namespace hetindex {

/// Stems `word` in place; returns the new length (the buffer is never
/// grown beyond its original size + 1, and callers using std::string get a
/// resized string back via porter_stem()).
std::string porter_stem(std::string_view word);

/// In-place variant over a char buffer; returns the stemmed length
/// (≤ len + 1; callers must provide one spare byte of capacity, because
/// rules like AT→ATE lengthen the word before later rules shorten it).
std::size_t porter_stem_inplace(char* buf, std::size_t len);

}  // namespace hetindex
