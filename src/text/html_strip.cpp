#include "text/html_strip.hpp"

#include <array>
#include <cctype>

namespace hetindex {
namespace {

bool iequals_prefix(std::string_view text, std::size_t pos, std::string_view lower) {
  if (pos + lower.size() > text.size()) return false;
  for (std::size_t i = 0; i < lower.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[pos + i])) != lower[i]) return false;
  }
  return true;
}

/// Finds the matching close tag (e.g. "</script") starting at or after pos;
/// returns the index just past its '>' or npos.
std::size_t skip_element_body(std::string_view text, std::size_t pos, std::string_view close) {
  while (pos < text.size()) {
    if (text[pos] == '<' && iequals_prefix(text, pos, close)) {
      const std::size_t gt = text.find('>', pos);
      return gt == std::string_view::npos ? text.size() : gt + 1;
    }
    ++pos;
  }
  return text.size();
}

struct Entity {
  std::string_view name;
  char replacement;
};
constexpr std::array<Entity, 6> kEntities{{{"&amp;", '&'},
                                           {"&lt;", '<'},
                                           {"&gt;", '>'},
                                           {"&quot;", '"'},
                                           {"&#39;", '\''},
                                           {"&nbsp;", ' '}}};

}  // namespace

std::string html_strip(std::string_view html) {
  std::string out;
  out.reserve(html.size());
  std::size_t i = 0;
  while (i < html.size()) {
    const char c = html[i];
    if (c == '<') {
      if (iequals_prefix(html, i, "<!--")) {
        const std::size_t end = html.find("-->", i);
        i = end == std::string_view::npos ? html.size() : end + 3;
        out.push_back(' ');
        continue;
      }
      if (iequals_prefix(html, i, "<script")) {
        const std::size_t gt = html.find('>', i);
        i = gt == std::string_view::npos ? html.size()
                                         : skip_element_body(html, gt + 1, "</script");
        out.push_back(' ');
        continue;
      }
      if (iequals_prefix(html, i, "<style")) {
        const std::size_t gt = html.find('>', i);
        i = gt == std::string_view::npos ? html.size()
                                         : skip_element_body(html, gt + 1, "</style");
        out.push_back(' ');
        continue;
      }
      const std::size_t gt = html.find('>', i);
      if (gt == std::string_view::npos) {
        // Unterminated tag: treat the '<' as text to avoid eating the rest.
        out.push_back('<');
        ++i;
        continue;
      }
      i = gt + 1;
      out.push_back(' ');
      continue;
    }
    if (c == '&') {
      bool replaced = false;
      for (const auto& e : kEntities) {
        if (html.substr(i, e.name.size()) == e.name) {
          out.push_back(e.replacement);
          i += e.name.size();
          replaced = true;
          break;
        }
      }
      if (replaced) continue;
      // Numeric entity &#NNN; → space (token separator) to stay simple.
      if (i + 1 < html.size() && html[i + 1] == '#') {
        const std::size_t semi = html.find(';', i);
        if (semi != std::string_view::npos && semi - i <= 8) {
          out.push_back(' ');
          i = semi + 1;
          continue;
        }
      }
      out.push_back('&');
      ++i;
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

}  // namespace hetindex
