#pragma once
/// \file html_strip.hpp
/// HTML tag removal. The Wikipedia01-07 collection in the paper had "the
/// HTML tags ... removed, and the remainder is just pure text" (§IV.C); the
/// ClueWeb-like collection keeps raw HTML and the parser strips it inline.
/// Handles tags, comments, script/style element bodies and the common
/// character entities.

#include <string>
#include <string_view>

namespace hetindex {

/// Returns `html` with markup removed; tags are replaced by a space so that
/// adjacent words do not merge into one token.
std::string html_strip(std::string_view html);

}  // namespace hetindex
