#pragma once
/// \file tokenizer.hpp
/// Step 2 of the parser (Fig. 3): splits document text into lowercase tokens
/// with a single character-class scan. The scan classifies each token into
/// the categories Table I needs (pure number / short-or-special / 3-letter
/// prefix) as a by-product, which is why the paper reports the regrouping
/// overhead at ~5% of parsing.
///
/// Token rules:
///  - a token is a maximal run of [A-Za-z0-9] or non-ASCII bytes (≥ 0x80);
///  - ASCII letters are lowercased; non-ASCII bytes pass through and count
///    as "special letters" for Table I purposes;
///  - tokens longer than 255 bytes are truncated (Fig. 6 stores the length
///    in one byte).

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace hetindex {

/// Maximum token length the on-wire parsed format supports (Fig. 6: one
/// length byte).
inline constexpr std::size_t kMaxTokenBytes = 255;

/// Per-character classification used by the tokenizer and the trie table.
[[nodiscard]] constexpr bool is_token_char(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c >= 0x80;
}
[[nodiscard]] constexpr bool is_ascii_lower(unsigned char c) { return c >= 'a' && c <= 'z'; }
[[nodiscard]] constexpr bool is_digit(unsigned char c) { return c >= '0' && c <= '9'; }

/// Streams lowercase tokens from `text` into `sink`. The string_view passed
/// to the sink points into an internal buffer and is only valid for the
/// duration of the call.
void tokenize(std::string_view text, const std::function<void(std::string_view)>& sink);

/// Convenience for tests: materializes all tokens.
std::vector<std::string> tokenize_to_vector(std::string_view text);

}  // namespace hetindex
