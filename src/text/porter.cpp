#include "text/porter.hpp"

#include <cstring>

namespace hetindex {
namespace {

/// Direct transcription of the original algorithm definition. The word
/// lives in b[0..k]; j marks the end of the stem a condition applies to.
class PorterState {
 public:
  PorterState(char* buf, std::size_t len) : b_(buf), k_(static_cast<int>(len) - 1) {}

  std::size_t run() {
    if (k_ <= 1) return static_cast<std::size_t>(k_ + 1);  // length <= 2
    step1ab();
    if (k_ > 0) {
      step1c();
      step2();
      step3();
      step4();
      step5();
    }
    return static_cast<std::size_t>(k_ + 1);
  }

 private:
  /// True when b_[i] is a consonant. 'y' is a consonant at position 0 and
  /// after a vowel is a consonant; after a consonant it acts as a vowel.
  bool cons(int i) const {
    switch (b_[i]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !cons(i - 1);
      default:
        return true;
    }
  }

  /// Number of VC sequences in b_[0..j_]: the "measure" m of the stem.
  int m() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!cons(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (cons(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!cons(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool vowel_in_stem() const {
    for (int i = 0; i <= j_; ++i)
      if (!cons(i)) return true;
    return false;
  }

  /// b_[i-1..i] is a double consonant.
  bool doublec(int i) const {
    if (i < 1) return false;
    if (b_[i] != b_[i - 1]) return false;
    return cons(i);
  }

  /// b_[i-2..i] is consonant-vowel-consonant and the final consonant is not
  /// w, x or y — the *o condition that e.g. restores "-e" (hop → hope).
  bool cvc(int i) const {
    if (i < 2 || !cons(i) || cons(i - 1) || !cons(i - 2)) return false;
    const char ch = b_[i];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool ends(const char* s) {
    const int len = static_cast<int>(std::strlen(s));
    if (len > k_ + 1) return false;
    if (std::memcmp(b_ + k_ - len + 1, s, static_cast<std::size_t>(len)) != 0) return false;
    j_ = k_ - len;
    return true;
  }

  void setto(const char* s) {
    const int len = static_cast<int>(std::strlen(s));
    std::memcpy(b_ + j_ + 1, s, static_cast<std::size_t>(len));
    k_ = j_ + len;
  }

  void r(const char* s) {
    if (m() > 0) setto(s);
  }

  /// Plurals and -ed/-ing: caresses→caress, ponies→poni, feed→feed,
  /// agreed→agree, plastered→plaster, motoring→motor.
  void step1ab() {
    if (b_[k_] == 's') {
      if (ends("sses")) {
        k_ -= 2;
      } else if (ends("ies")) {
        setto("i");
      } else if (b_[k_ - 1] != 's') {
        --k_;
      }
    }
    if (ends("eed")) {
      if (m() > 0) --k_;
    } else if ((ends("ed") || ends("ing")) && vowel_in_stem()) {
      k_ = j_;
      if (ends("at")) {
        setto("ate");
      } else if (ends("bl")) {
        setto("ble");
      } else if (ends("iz")) {
        setto("ize");
      } else if (doublec(k_)) {
        const char ch = b_[k_];
        if (ch != 'l' && ch != 's' && ch != 'z') --k_;
      } else if (m() == 1 && cvc(k_)) {
        j_ = k_;
        setto("e");
      }
    }
  }

  /// Terminal y → i when there is another vowel in the stem.
  void step1c() {
    if (ends("y") && vowel_in_stem()) b_[k_] = 'i';
  }

  /// Double suffixes → single ones: -ization → -ize etc, when m > 0.
  void step2() {
    switch (b_[k_ - 1]) {
      case 'a':
        if (ends("ational")) { r("ate"); break; }
        if (ends("tional")) { r("tion"); break; }
        break;
      case 'c':
        if (ends("enci")) { r("ence"); break; }
        if (ends("anci")) { r("ance"); break; }
        break;
      case 'e':
        if (ends("izer")) { r("ize"); break; }
        break;
      case 'l':
        if (ends("bli")) { r("ble"); break; }  // (revised; was abli→able)
        if (ends("alli")) { r("al"); break; }
        if (ends("entli")) { r("ent"); break; }
        if (ends("eli")) { r("e"); break; }
        if (ends("ousli")) { r("ous"); break; }
        break;
      case 'o':
        if (ends("ization")) { r("ize"); break; }
        if (ends("ation")) { r("ate"); break; }
        if (ends("ator")) { r("ate"); break; }
        break;
      case 's':
        if (ends("alism")) { r("al"); break; }
        if (ends("iveness")) { r("ive"); break; }
        if (ends("fulness")) { r("ful"); break; }
        if (ends("ousness")) { r("ous"); break; }
        break;
      case 't':
        if (ends("aliti")) { r("al"); break; }
        if (ends("iviti")) { r("ive"); break; }
        if (ends("biliti")) { r("ble"); break; }
        break;
      case 'g':
        if (ends("logi")) { r("log"); break; }  // (revised addition)
        break;
      default:
        break;
    }
  }

  /// -icate, -ative, -alize, -iciti, -ical, -ful, -ness.
  void step3() {
    switch (b_[k_]) {
      case 'e':
        if (ends("icate")) { r("ic"); break; }
        if (ends("ative")) { r(""); break; }
        if (ends("alize")) { r("al"); break; }
        break;
      case 'i':
        if (ends("iciti")) { r("ic"); break; }
        break;
      case 'l':
        if (ends("ical")) { r("ic"); break; }
        if (ends("ful")) { r(""); break; }
        break;
      case 's':
        if (ends("ness")) { r(""); break; }
        break;
      default:
        break;
    }
  }

  /// Strips -ant, -ence, etc when m > 1.
  void step4() {
    switch (b_[k_ - 1]) {
      case 'a':
        if (ends("al")) break;
        return;
      case 'c':
        if (ends("ance")) break;
        if (ends("ence")) break;
        return;
      case 'e':
        if (ends("er")) break;
        return;
      case 'i':
        if (ends("ic")) break;
        return;
      case 'l':
        if (ends("able")) break;
        if (ends("ible")) break;
        return;
      case 'n':
        if (ends("ant")) break;
        if (ends("ement")) break;
        if (ends("ment")) break;
        if (ends("ent")) break;
        return;
      case 'o':
        if (ends("ion") && j_ >= 0 && (b_[j_] == 's' || b_[j_] == 't')) break;
        if (ends("ou")) break;  // takes care of -ous
        return;
      case 's':
        if (ends("ism")) break;
        return;
      case 't':
        if (ends("ate")) break;
        if (ends("iti")) break;
        return;
      case 'u':
        if (ends("ous")) break;
        return;
      case 'v':
        if (ends("ive")) break;
        return;
      case 'z':
        if (ends("ize")) break;
        return;
      default:
        return;
    }
    if (m() > 1) k_ = j_;
  }

  /// Removes a final -e if m > 1, and changes -ll to -l if m > 1.
  void step5() {
    j_ = k_;
    if (b_[k_] == 'e') {
      const int a = m();
      if (a > 1 || (a == 1 && !cvc(k_ - 1))) --k_;
    }
    if (b_[k_] == 'l' && doublec(k_) && m() > 1) --k_;
  }

  char* b_;
  int k_;
  int j_ = 0;
};

bool all_lower_alpha(std::string_view word) {
  for (const char c : word)
    if (c < 'a' || c > 'z') return false;
  return true;
}

}  // namespace

std::size_t porter_stem_inplace(char* buf, std::size_t len) {
  if (len < 3 || !all_lower_alpha({buf, len})) return len;
  PorterState state(buf, len);
  return state.run();
}

std::string porter_stem(std::string_view word) {
  std::string out(word);
  out.push_back('\0');  // spare byte; rules may transiently lengthen
  const std::size_t n = porter_stem_inplace(out.data(), word.size());
  out.resize(n);
  return out;
}

}  // namespace hetindex
