#include "text/stopwords.hpp"

#include <string>

#include "text/porter.hpp"

namespace hetindex {
namespace {

/// The classic English stop-word list (van Rijsbergen-style short list).
constexpr std::string_view kDefaultList[] = {
    "a",       "about",  "above",   "after",  "again",   "against", "all",    "am",
    "an",      "and",    "any",     "are",    "as",      "at",      "be",     "because",
    "been",    "before", "being",   "below",  "between", "both",    "but",    "by",
    "can",     "cannot", "could",   "did",    "do",      "does",    "doing",  "down",
    "during",  "each",   "few",     "for",    "from",    "further", "had",    "has",
    "have",    "having", "he",      "her",    "here",    "hers",    "herself","him",
    "himself", "his",    "how",     "i",      "if",      "in",      "into",   "is",
    "it",      "its",    "itself",  "me",     "more",    "most",    "my",     "myself",
    "no",      "nor",    "not",     "of",     "off",     "on",      "once",   "only",
    "or",      "other",  "ought",   "our",    "ours",    "ourselves","out",   "over",
    "own",     "same",   "she",     "should", "so",      "some",    "such",   "than",
    "that",    "the",    "their",   "theirs", "them",    "themselves","then", "there",
    "these",   "they",   "this",    "those",  "through", "to",      "too",    "under",
    "until",   "up",     "very",    "was",    "we",      "were",    "what",   "when",
    "where",   "which",  "while",   "who",    "whom",    "why",     "with",   "would",
    "you",     "your",   "yours",   "yourself", "yourselves",
};

}  // namespace

StopWords::StopWords() {
  // The parser removes stop words *after* stemming (Fig. 3 step order), so
  // the membership set must contain the stemmed forms as well ("above" →
  // "abov", "being" → "be", ...).
  for (const auto w : kDefaultList) {
    set_.emplace(w);
    set_.insert(porter_stem(w));
  }
}

StopWords::StopWords(const std::vector<std::string_view>& words) {
  for (const auto w : words) set_.emplace(w);
}

const StopWords& default_stopwords() {
  static const StopWords instance;
  return instance;
}

std::vector<std::string_view> default_stopword_list() {
  return {std::begin(kDefaultList), std::end(kDefaultList)};
}

}  // namespace hetindex
