#include "text/tokenizer.hpp"

#include <vector>

namespace hetindex {

void tokenize(std::string_view text, const std::function<void(std::string_view)>& sink) {
  char buf[kMaxTokenBytes];
  std::size_t len = 0;
  bool truncating = false;
  for (const char ch : text) {
    const auto c = static_cast<unsigned char>(ch);
    if (is_token_char(c)) {
      if (len < kMaxTokenBytes) {
        buf[len++] = (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a')
                                            : static_cast<char>(c);
      } else {
        truncating = true;  // swallow the tail of an over-long token
      }
    } else if (len > 0) {
      sink(std::string_view(buf, len));
      len = 0;
      truncating = false;
    }
  }
  (void)truncating;
  if (len > 0) sink(std::string_view(buf, len));
}

std::vector<std::string> tokenize_to_vector(std::string_view text) {
  std::vector<std::string> tokens;
  tokenize(text, [&](std::string_view t) { tokens.emplace_back(t); });
  return tokens;
}

}  // namespace hetindex
