#pragma once
/// \file read_scheduler.hpp
/// Step 1 of the parser (Fig. 3) plus the disk-access discipline of §III.F:
/// "To avoid several parsers from trying to read from the same disk at the
/// same time, a scheduler is used to organize the reads of the different
/// parsers, one at a time." At `prefetch_depth <= 1` that discipline is kept
/// literally — one serialized synchronous read at a time, the paper's
/// baseline. At depth >= 2 the scheduler drains an io::AsyncReader instead:
/// up to `prefetch_depth` files are in flight (io_uring or an Env-routed
/// pread pool, see io/async_reader.hpp) while parsers consume completed
/// buffers. Either way files are handed out strictly in collection order
/// with the global doc-ID base assigned at hand-out, so downstream postings
/// stay globally sorted and the index output is bit-identical across
/// depths and backends. Decompression happens *after* the full file is in
/// memory (§IV.A's second scheme, the one the paper chooses).
///
/// Read errors are structured (`Expected`), never aborts: a transient fault
/// is retried a bounded number of times inside the read path (counted in
/// io_retries_total); a hard fault is returned once at its file and then
/// sticks — every later next() returns the same Error so all parsers drain.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "corpus/document.hpp"
#include "io/async_reader.hpp"
#include "util/error.hpp"

namespace hetindex {

/// One scheduled read: a fully decompressed file plus its identity.
struct ScheduledRead {
  std::uint64_t seq = 0;            ///< file index in collection order
  std::uint32_t doc_id_base = 0;    ///< global doc id of the file's doc 0
  std::vector<Document> docs;
  std::uint64_t compressed_bytes = 0;
  std::uint64_t uncompressed_bytes = 0;
  double read_seconds = 0;        ///< backend time spent reading the file
  double disk_wait_seconds = 0;   ///< parser time blocked in next() before bytes
  double decompress_seconds = 0;  ///< in-memory decompression (parallel)
};

struct ReadSchedulerOptions {
  /// Files in flight at once. 1 = the paper's serialized synchronous
  /// discipline (no readahead thread at all); >= 2 enables AsyncReader.
  std::size_t prefetch_depth = 4;
  /// Reads claimed/submitted per backend wake (AsyncReader only).
  std::size_t batch_files = 2;
  io::ReadBackend backend = io::ReadBackend::kAuto;
  /// Registry for the prefetch instruments; nullptr disables them.
  obs::MetricsRegistry* metrics = nullptr;
};

class ReadScheduler {
 public:
  explicit ReadScheduler(std::vector<std::string> files, ReadSchedulerOptions options = {});
  ~ReadScheduler();
  ReadScheduler(const ReadScheduler&) = delete;
  ReadScheduler& operator=(const ReadScheduler&) = delete;

  /// Thread-safe. Blocks until the next file (in collection order) is in
  /// memory, then decompresses it on the calling thread. Outer nullopt =
  /// collection exhausted; an Error is a hard read failure (sticky — every
  /// subsequent call returns it too, so all parser threads wind down).
  Expected<std::optional<ScheduledRead>> next();

  [[nodiscard]] std::size_t file_count() const { return files_.size(); }
  /// Total docs handed out so far (== next doc_id_base).
  [[nodiscard]] std::uint32_t docs_assigned() const;
  /// The read mechanism in use: "serial", "thread_pool" or "io_uring".
  [[nodiscard]] const char* backend_name() const;
  /// Cumulative parser time blocked in next() waiting for bytes (the
  /// read-phase stall the prefetcher exists to shrink).
  [[nodiscard]] double read_stall_seconds() const;

 private:
  /// Serialized synchronous read of the next file (depth-1 mode).
  Expected<std::optional<ScheduledRead>> next_serial();
  /// In-order delivery from the AsyncReader (depth >= 2).
  Expected<std::optional<ScheduledRead>> next_prefetch();
  /// Doc-base assignment + sticky-error bookkeeping shared by both modes.
  Expected<Unit> assign_doc_base(ScheduledRead& result,
                                 const std::vector<std::uint8_t>& file_bytes);

  std::vector<std::string> files_;
  ReadSchedulerOptions opt_;
  std::unique_ptr<io::AsyncReader> reader_;  ///< null in serial mode

  std::mutex disk_mutex_;           // serial mode: the single disk
  mutable std::mutex state_mutex_;  // seq/doc-base counters, sticky error
  std::size_t next_file_ = 0;       // serial mode claim counter
  std::uint32_t next_doc_base_ = 0;
  double read_stall_seconds_ = 0;
  std::optional<Error> error_;  ///< sticky hard failure
};

}  // namespace hetindex
