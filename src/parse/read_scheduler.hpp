#pragma once
/// \file read_scheduler.hpp
/// Step 1 of the parser (Fig. 3) plus the disk-access discipline of §III.F:
/// "To avoid several parsers from trying to read from the same disk at the
/// same time, a scheduler is used to organize the reads of the different
/// parsers, one at a time." Reads hand out files in order together with
/// the global doc-ID base so downstream postings stay globally sorted, and
/// decompression happens *after* the full file is in memory (§IV.A's second
/// scheme, the one the paper chooses).

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "corpus/document.hpp"

namespace hetindex {

/// One scheduled read: a fully decompressed file plus its identity.
struct ScheduledRead {
  std::uint64_t seq = 0;            ///< file index in collection order
  std::uint32_t doc_id_base = 0;    ///< global doc id of the file's doc 0
  std::vector<Document> docs;
  std::uint64_t compressed_bytes = 0;
  std::uint64_t uncompressed_bytes = 0;
  double read_seconds = 0;        ///< time inside the serialized disk section
  double disk_wait_seconds = 0;   ///< time blocked waiting for the disk turn
  double decompress_seconds = 0;  ///< in-memory decompression (parallel)
};

class ReadScheduler {
 public:
  explicit ReadScheduler(std::vector<std::string> files);

  /// Thread-safe: blocks while another parser holds the disk, then reads
  /// the next file. nullopt when the collection is exhausted.
  std::optional<ScheduledRead> next();

  [[nodiscard]] std::size_t file_count() const { return files_.size(); }
  /// Total docs handed out so far (== next doc_id_base).
  [[nodiscard]] std::uint32_t docs_assigned() const;

 private:
  std::vector<std::string> files_;
  std::mutex disk_mutex_;        // the single disk
  std::mutex state_mutex_;       // seq/doc-base counters
  std::size_t next_file_ = 0;
  std::uint32_t next_doc_base_ = 0;
};

}  // namespace hetindex
