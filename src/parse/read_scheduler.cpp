#include "parse/read_scheduler.hpp"

#include "corpus/container.hpp"
#include "util/binary_io.hpp"
#include "util/timer.hpp"

namespace hetindex {

ReadScheduler::ReadScheduler(std::vector<std::string> files) : files_(std::move(files)) {}

std::optional<ScheduledRead> ReadScheduler::next() {
  ScheduledRead result;
  std::vector<std::uint8_t> compressed;
  {
    // Serialized disk section: claim the next file and read it while
    // holding the disk. The container's uncompressed header carries the
    // doc count, so the global doc-ID base is assigned here, in file
    // order; decompression happens outside so other parsers can start
    // their reads (§IV.A scheme 2). The time spent queueing for the disk
    // is the parser-side back-pressure signal surfaced by the metrics.
    WallTimer wait_timer;
    std::unique_lock disk(disk_mutex_);
    result.disk_wait_seconds = wait_timer.seconds();
    {
      std::scoped_lock state(state_mutex_);
      if (next_file_ >= files_.size()) return std::nullopt;
      result.seq = next_file_++;
    }
    WallTimer t;
    compressed = read_file(files_[result.seq]);
    result.read_seconds = t.seconds();
    result.compressed_bytes = compressed.size();
    const std::uint32_t doc_count =
        container_header_doc_count(compressed.data(), compressed.size());
    {
      std::scoped_lock state(state_mutex_);
      result.doc_id_base = next_doc_base_;
      next_doc_base_ += doc_count;
    }
  }

  WallTimer t;
  result.docs = container_decompress(compressed.data(), compressed.size());
  result.decompress_seconds = t.seconds();
  std::uint64_t raw = 0;
  for (const auto& d : result.docs) raw += d.body.size() + d.url.size() + 8;
  result.uncompressed_bytes = raw + 8;
  return result;
}

std::uint32_t ReadScheduler::docs_assigned() const {
  std::scoped_lock state(const_cast<std::mutex&>(state_mutex_));
  return next_doc_base_;
}

}  // namespace hetindex
