#include "parse/read_scheduler.hpp"

#include <algorithm>

#include "corpus/container.hpp"
#include "util/timer.hpp"

namespace hetindex {

ReadScheduler::ReadScheduler(std::vector<std::string> files, ReadSchedulerOptions options)
    : files_(std::move(files)), opt_(options) {
  opt_.prefetch_depth = std::max<std::size_t>(1, opt_.prefetch_depth);
  opt_.batch_files = std::clamp<std::size_t>(opt_.batch_files, 1, opt_.prefetch_depth);
  if (opt_.prefetch_depth >= 2) {
    io::AsyncReaderOptions ropt;
    ropt.prefetch_depth = opt_.prefetch_depth;
    ropt.batch_files = opt_.batch_files;
    ropt.backend = opt_.backend;
    ropt.metrics = opt_.metrics;
    reader_ = std::make_unique<io::AsyncReader>(files_, ropt);
  }
}

ReadScheduler::~ReadScheduler() = default;

const char* ReadScheduler::backend_name() const {
  if (reader_ == nullptr) return "serial";
  return io::read_backend_name(reader_->backend());
}

Expected<Unit> ReadScheduler::assign_doc_base(ScheduledRead& result,
                                              const std::vector<std::uint8_t>& bytes) {
  // Caller holds state_mutex_ and files are delivered strictly in
  // collection order, so doc-ID bases stay monotone in seq.
  auto count = container_try_header_doc_count(bytes.data(), bytes.size());
  if (!count.has_value()) {
    Error e = count.error();
    e.message += " (" + files_[result.seq] + ")";
    error_ = e;
    return e;
  }
  result.doc_id_base = next_doc_base_;
  next_doc_base_ += count.value();
  return Unit{};
}

Expected<std::optional<ScheduledRead>> ReadScheduler::next() {
  {
    // The sticky error check is what drains every parser thread once any
    // one of them has hit a hard read failure.
    std::scoped_lock state(state_mutex_);
    if (error_.has_value()) return Error(*error_);
  }
  return reader_ != nullptr ? next_prefetch() : next_serial();
}

Expected<std::optional<ScheduledRead>> ReadScheduler::next_serial() {
  ScheduledRead result;
  std::vector<std::uint8_t> compressed;
  {
    // Serialized disk section: claim the next file and read it while
    // holding the disk — the paper's one-at-a-time discipline, kept as the
    // depth-1 baseline. The time queueing for the disk plus the read
    // itself is parser stall (there is nothing to overlap with).
    WallTimer wait_timer;
    std::unique_lock disk(disk_mutex_);
    {
      std::scoped_lock state(state_mutex_);
      if (error_.has_value()) return Error(*error_);
      if (next_file_ >= files_.size()) return std::optional<ScheduledRead>(std::nullopt);
      result.seq = next_file_++;
    }
    WallTimer t;
    auto data = io::read_file_via_env(files_[result.seq]);
    result.read_seconds = t.seconds();
    {
      std::scoped_lock state(state_mutex_);
      if (!data.has_value()) {
        error_ = data.error();
        return Error(*error_);
      }
      compressed = std::move(data).value();
      result.compressed_bytes = compressed.size();
      auto assigned = assign_doc_base(result, compressed);
      if (!assigned.has_value()) return assigned.error();
      result.disk_wait_seconds = wait_timer.seconds();
      read_stall_seconds_ += result.disk_wait_seconds;
    }
  }

  WallTimer t;
  result.docs = container_decompress(compressed.data(), compressed.size());
  result.decompress_seconds = t.seconds();
  std::uint64_t raw = 0;
  for (const auto& d : result.docs) raw += d.body.size() + d.url.size() + 8;
  result.uncompressed_bytes = raw + 8;
  return std::optional<ScheduledRead>(std::move(result));
}

Expected<std::optional<ScheduledRead>> ReadScheduler::next_prefetch() {
  ScheduledRead result;
  std::vector<std::uint8_t> compressed;
  {
    // Holding state_mutex_ across reader_->next() is deliberate: deliveries
    // are strictly ordered anyway (AsyncReader::next blocks on the lowest
    // undelivered seq), so serializing consumers here costs nothing and
    // guarantees the doc-base assignment happens in delivery order. The
    // readahead workers never take state_mutex_, so this cannot deadlock.
    std::scoped_lock state(state_mutex_);
    if (error_.has_value()) return Error(*error_);
    auto read = reader_->next();
    if (!read.has_value()) return std::optional<ScheduledRead>(std::nullopt);
    if (!read->has_value()) {
      error_ = read->error();
      return Error(*error_);
    }
    io::FileRead file = std::move(*read).value();
    result.seq = file.seq;
    result.read_seconds = file.read_seconds;
    // With readahead, parser stall is only the queue wait — the read
    // itself overlapped with other parsers' work.
    result.disk_wait_seconds = file.queue_wait_seconds;
    read_stall_seconds_ += file.queue_wait_seconds;
    compressed = std::move(file.bytes);
    result.compressed_bytes = compressed.size();
    auto assigned = assign_doc_base(result, compressed);
    if (!assigned.has_value()) return assigned.error();
  }

  WallTimer t;
  result.docs = container_decompress(compressed.data(), compressed.size());
  result.decompress_seconds = t.seconds();
  std::uint64_t raw = 0;
  for (const auto& d : result.docs) raw += d.body.size() + d.url.size() + 8;
  result.uncompressed_bytes = raw + 8;
  return std::optional<ScheduledRead>(std::move(result));
}

std::uint32_t ReadScheduler::docs_assigned() const {
  std::scoped_lock state(state_mutex_);
  return next_doc_base_;
}

double ReadScheduler::read_stall_seconds() const {
  std::scoped_lock state(state_mutex_);
  return read_stall_seconds_;
}

}  // namespace hetindex
