#pragma once
/// \file parser.hpp
/// The parser of Fig. 3, Steps 2–5: tokenization (with trie-index
/// computation as a by-product), Porter stemming, stop-word removal and
/// regrouping by trie-collection index with prefix removal. Step 1 (read +
/// decompress + local doc-ID assignment) lives in read_scheduler.hpp.

#include <vector>

#include "corpus/document.hpp"
#include "parse/parsed_block.hpp"
#include "text/stopwords.hpp"

namespace hetindex {

struct ParserConfig {
  bool strip_html = true;
  bool stem = true;
  bool remove_stopwords = true;
  /// Regroup by trie index (Step 5). Disabled only by the regrouping
  /// ablation (§III.C's 15× serial-indexing speedup claim).
  bool regroup = true;
  /// Record in-document token positions (positional postings; the paper's
  /// Ivory comparison point notes positional lists "add some extra cost").
  bool record_positions = false;
};

/// Per-step wall times of one parse call, for the step-breakdown bench.
struct ParseTimes {
  double tokenize = 0;  ///< includes HTML stripping
  double stem = 0;
  double stopword = 0;
  double regroup = 0;
  [[nodiscard]] double total() const { return tokenize + stem + stopword + regroup; }
};

/// One parser worker. Stateless between calls except for configuration, so
/// one instance per thread and no sharing.
class Parser {
 public:
  explicit Parser(ParserConfig config = {});

  /// Parses a batch of documents into a trie-grouped block. Local doc IDs
  /// are the positions within `docs`.
  ParsedBlock parse(const std::vector<Document>& docs, std::uint64_t seq,
                    std::uint32_t parser_id, std::uint32_t doc_id_base,
                    ParseTimes* times = nullptr) const;

  /// Ablation variant: identical processing but *without* Step 5 — the
  /// output preserves raw token order in a single pseudo-group (trie_idx
  /// values interleaved in stream order). Used by the regrouping bench.
  struct FlatToken {
    std::uint32_t local_doc;
    std::uint32_t trie_idx;
    std::string term;  ///< full term (prefix not removed)
  };
  std::vector<FlatToken> parse_flat(const std::vector<Document>& docs) const;

 private:
  ParserConfig config_;
  const StopWords* stopwords_;
};

}  // namespace hetindex
