#include "parse/parsed_block.hpp"

#include <algorithm>
#include <cstring>

namespace hetindex {

const ParsedGroup* ParsedBlock::group(std::uint32_t trie_idx) const {
  const auto it = std::lower_bound(
      groups.begin(), groups.end(), trie_idx,
      [](const ParsedGroup& g, std::uint32_t idx) { return g.trie_idx < idx; });
  if (it == groups.end() || it->trie_idx != trie_idx) return nullptr;
  return &*it;
}

std::uint64_t ParsedBlock::payload_bytes() const {
  std::uint64_t total = 0;
  for (const auto& g : groups) total += g.data.size();
  return total;
}

void GroupWriter::begin_doc(std::uint32_t local_doc_id) {
  auto& data = group_->data;
  const std::size_t at = data.size();
  data.resize(at + 6);
  std::memcpy(data.data() + at, &local_doc_id, 4);
  count_at_ = at + 4;
  terms_in_doc_ = 0;
}

void GroupWriter::add_term(std::string_view suffix) {
  HET_DCHECK(suffix.size() <= 255);
  auto& data = group_->data;
  data.push_back(static_cast<std::uint8_t>(suffix.size()));
  data.insert(data.end(), suffix.begin(), suffix.end());
  ++terms_in_doc_;
  ++group_->tokens;
  group_->chars += suffix.size();
}

void GroupWriter::end_doc() {
  auto& data = group_->data;
  if (terms_in_doc_ == 0) {
    // No terms landed in this collection for this doc: drop the record.
    data.resize(count_at_ - 4);
    return;
  }
  std::memcpy(data.data() + count_at_, &terms_in_doc_, 2);
}

namespace {

template <typename Fn>
void iterate_group(const ParsedGroup& group, Fn&& fn) {
  const auto& data = group.data;
  std::size_t pos = 0;
  std::size_t token_index = 0;
  while (pos < data.size()) {
    HET_CHECK_MSG(pos + 6 <= data.size(), "truncated parsed group record");
    std::uint32_t doc;
    std::uint16_t count;
    std::memcpy(&doc, data.data() + pos, 4);
    std::memcpy(&count, data.data() + pos + 4, 2);
    pos += 6;
    for (std::uint16_t t = 0; t < count; ++t) {
      HET_CHECK_MSG(pos < data.size(), "truncated parsed group term");
      const std::uint8_t len = data[pos++];
      HET_CHECK_MSG(pos + len <= data.size(), "truncated parsed term bytes");
      fn(doc, std::string_view(reinterpret_cast<const char*>(data.data() + pos), len),
         token_index++);
      pos += len;
    }
  }
}

}  // namespace

void for_each_posting(const ParsedGroup& group,
                      const std::function<void(std::uint32_t, std::string_view)>& fn) {
  iterate_group(group,
                [&](std::uint32_t doc, std::string_view term, std::size_t) { fn(doc, term); });
}

void for_each_posting_positional(
    const ParsedGroup& group,
    const std::function<void(std::uint32_t, std::string_view, std::uint32_t)>& fn) {
  HET_CHECK_MSG(group.positions.size() == group.tokens,
                "group has no positions (parser record_positions off?)");
  iterate_group(group, [&](std::uint32_t doc, std::string_view term, std::size_t i) {
    fn(doc, term, group.positions[i]);
  });
}

}  // namespace hetindex
