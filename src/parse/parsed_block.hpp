#pragma once
/// \file parsed_block.hpp
/// The parser→indexer interchange format (Fig. 3 Step 5 output): parsed
/// terms regrouped by trie-collection index, with the trie prefix already
/// removed. Per collection i the stream reads
///     (Doc_ID1, term1, term2, ...), (Doc_ID2, term1, ...), ...
/// with Fig. 6 string representation (one length byte, then the bytes).
/// Doc IDs are local to the block; the indexer adds the global offset.

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "util/check.hpp"

namespace hetindex {

/// One trie collection's parsed stream inside a block.
struct ParsedGroup {
  std::uint32_t trie_idx = 0;
  std::vector<std::uint8_t> data;  ///< [u32 doc][u16 n][len,bytes]*n ...
  /// In-doc token positions, one per token in stream order (parallel to
  /// the byte stream); empty unless the parser records positions.
  std::vector<std::uint32_t> positions;
  std::uint64_t tokens = 0;
  std::uint64_t chars = 0;  ///< total suffix bytes (Table V "Character Number")
};

/// A parsed buffer handed from one parser to the indexing stage; one block
/// is consumed per single run (Fig. 8).
struct ParsedBlock {
  std::uint64_t seq = 0;           ///< global block sequence (run id)
  std::uint32_t parser_id = 0;
  std::uint32_t doc_id_base = 0;   ///< global id of local doc 0
  std::uint32_t doc_count = 0;
  std::uint64_t source_bytes = 0;  ///< uncompressed input bytes represented
  std::uint64_t tokens = 0;        ///< post-stop-word tokens in the block
  /// Indexed tokens per local doc (Fig. 3 Step 1's doc table feeds on
  /// this; also BM25 length normalization downstream).
  std::vector<std::uint32_t> doc_tokens;
  std::vector<ParsedGroup> groups;  ///< sorted by trie_idx

  [[nodiscard]] const ParsedGroup* group(std::uint32_t trie_idx) const;
  /// Total encoded bytes across groups (what pre-processing ships to GPUs).
  [[nodiscard]] std::uint64_t payload_bytes() const;
};

/// Appends one document's terms for a collection into a group buffer.
class GroupWriter {
 public:
  explicit GroupWriter(ParsedGroup& group) : group_(&group) {}

  /// Starts a document record; terms follow via add_term.
  void begin_doc(std::uint32_t local_doc_id);
  /// Adds a term suffix (≤ 255 bytes, Fig. 6).
  void add_term(std::string_view suffix);
  /// Finishes the record (patches the term count).
  void end_doc();

 private:
  ParsedGroup* group_;
  std::size_t count_at_ = 0;
  std::uint16_t terms_in_doc_ = 0;
};

/// Iterates a group's records: fn(local_doc_id, suffix) per term.
void for_each_posting(const ParsedGroup& group,
                      const std::function<void(std::uint32_t, std::string_view)>& fn);

/// Positional iteration: fn(local_doc_id, suffix, position). The group must
/// carry positions (one per token).
void for_each_posting_positional(
    const ParsedGroup& group,
    const std::function<void(std::uint32_t, std::string_view, std::uint32_t)>& fn);

}  // namespace hetindex
