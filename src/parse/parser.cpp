#include "parse/parser.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "dict/trie_table.hpp"
#include "text/html_strip.hpp"
#include "text/porter.hpp"
#include "text/tokenizer.hpp"
#include "util/timer.hpp"

namespace hetindex {
namespace {

/// Token scratch entry: chars live in a block-wide buffer.
struct Tok {
  std::uint32_t doc;
  std::uint32_t offset;
  std::uint8_t len;
  bool removed;
  std::uint32_t trie_idx;
};

}  // namespace

Parser::Parser(ParserConfig config)
    : config_(config), stopwords_(&default_stopwords()) {}

ParsedBlock Parser::parse(const std::vector<Document>& docs, std::uint64_t seq,
                          std::uint32_t parser_id, std::uint32_t doc_id_base,
                          ParseTimes* times) const {
  ParsedBlock block;
  block.seq = seq;
  block.parser_id = parser_id;
  block.doc_id_base = doc_id_base;
  block.doc_count = static_cast<std::uint32_t>(docs.size());

  std::vector<char> chars;
  std::vector<Tok> toks;
  std::vector<std::size_t> doc_start(docs.size() + 1, 0);

  // Step 2: tokenization (HTML stripping folded in — it is part of turning
  // a web document into tokens).
  {
    WallTimer t;
    for (std::size_t d = 0; d < docs.size(); ++d) {
      doc_start[d] = toks.size();
      const auto& doc = docs[d];
      block.source_bytes += doc.body.size() + doc.url.size() + 8;
      const std::string stripped = config_.strip_html ? html_strip(doc.body) : std::string();
      const std::string_view text = config_.strip_html ? stripped : doc.body;
      tokenize(text, [&](std::string_view tok) {
        const auto off = static_cast<std::uint32_t>(chars.size());
        chars.insert(chars.end(), tok.begin(), tok.end());
        toks.push_back({static_cast<std::uint32_t>(d), off,
                        static_cast<std::uint8_t>(tok.size()), false, 0});
      });
    }
    doc_start[docs.size()] = toks.size();
    if (times) times->tokenize += t.seconds();
  }

  // Step 3: Porter stemming, in place over the char buffer.
  if (config_.stem) {
    WallTimer t;
    char scratch[kMaxTokenBytes + 1];
    for (auto& tok : toks) {
      std::memcpy(scratch, chars.data() + tok.offset, tok.len);
      const std::size_t n = porter_stem_inplace(scratch, tok.len);
      std::memcpy(chars.data() + tok.offset, scratch, n);
      tok.len = static_cast<std::uint8_t>(n);
    }
    if (times) times->stem += t.seconds();
  }

  // Step 4: stop-word removal.
  if (config_.remove_stopwords) {
    WallTimer t;
    for (auto& tok : toks) {
      tok.removed = stopwords_->contains({chars.data() + tok.offset, tok.len});
    }
    if (times) times->stopword += t.seconds();
  }

  // Step 5: regrouping by trie index with prefix removal. One pass, O(1)
  // per token: each token is appended to its collection's stream, starting
  // a new (doc, count, terms...) record whenever the collection's current
  // record belongs to an earlier document. This is why the paper measures
  // the regrouping overhead at ~5% of parsing — the trie index is a
  // by-product of the scan and grouping is a bucketed append.
  block.doc_tokens.assign(docs.size(), 0);
  {
    WallTimer t;
    struct BuildState {
      ParsedGroup group;
      std::uint32_t current_doc = 0xFFFFFFFFu;
      std::size_t count_at = 0;       // offset of the open record's count field
      std::uint16_t terms_in_doc = 0; // terms appended to the open record
    };
    // The trie-as-table: a flat collection→state index (no hashing), the
    // same table that §III.B.1 uses in place of a pointer-based trie.
    constexpr std::uint32_t kNoGroup = 0xFFFFFFFFu;
    std::vector<std::uint32_t> group_of(kTrieCollections, kNoGroup);
    std::deque<BuildState> states;  // stable addresses during build

    auto close_record = [](BuildState& st) {
      if (st.terms_in_doc > 0) {
        std::memcpy(st.group.data.data() + st.count_at, &st.terms_in_doc, 2);
        st.terms_in_doc = 0;
      }
    };

    for (std::size_t d = 0; d < docs.size(); ++d) {
      for (std::size_t i = doc_start[d]; i < doc_start[d + 1]; ++i) {
        const Tok& tok = toks[i];
        if (tok.removed) continue;
        const std::uint32_t idx = trie_index({chars.data() + tok.offset, tok.len});
        if (group_of[idx] == kNoGroup) {
          group_of[idx] = static_cast<std::uint32_t>(states.size());
          states.emplace_back();
          states.back().group.trie_idx = idx;
        }
        BuildState& st = states[group_of[idx]];
        auto& data = st.group.data;
        if (st.current_doc != d || st.terms_in_doc == 0xFFFF) {
          close_record(st);
          st.current_doc = static_cast<std::uint32_t>(d);
          const auto doc32 = static_cast<std::uint32_t>(d);
          const std::size_t at = data.size();
          data.resize(at + 6);
          std::memcpy(data.data() + at, &doc32, 4);
          st.count_at = at + 4;
        }
        const std::size_t strip = trie_prefix_length(idx);
        const auto suffix_len = static_cast<std::uint8_t>(tok.len - strip);
        const std::size_t at = data.size();
        data.resize(at + 1 + suffix_len);
        data[at] = suffix_len;
        std::memcpy(data.data() + at + 1, chars.data() + tok.offset + strip, suffix_len);
        ++st.terms_in_doc;
        ++st.group.tokens;
        st.group.chars += suffix_len;
        if (config_.record_positions) {
          st.group.positions.push_back(static_cast<std::uint32_t>(i - doc_start[d]));
        }
        ++block.tokens;
        ++block.doc_tokens[d];
      }
    }
    block.groups.reserve(states.size());
    for (auto& st : states) {
      close_record(st);
      block.groups.push_back(std::move(st.group));
    }
    std::sort(block.groups.begin(), block.groups.end(),
              [](const ParsedGroup& a, const ParsedGroup& b) { return a.trie_idx < b.trie_idx; });
    if (times) times->regroup += t.seconds();
  }
  return block;
}

std::vector<Parser::FlatToken> Parser::parse_flat(const std::vector<Document>& docs) const {
  std::vector<FlatToken> out;
  for (std::size_t d = 0; d < docs.size(); ++d) {
    const auto& doc = docs[d];
    const std::string stripped = config_.strip_html ? html_strip(doc.body) : std::string();
    const std::string_view text = config_.strip_html ? stripped : doc.body;
    tokenize(text, [&](std::string_view tok) {
      std::string term = config_.stem ? porter_stem(tok) : std::string(tok);
      if (config_.remove_stopwords && stopwords_->contains(term)) return;
      const std::uint32_t idx = trie_index(term);
      out.push_back({static_cast<std::uint32_t>(d), idx, std::move(term)});
    });
  }
  return out;
}

}  // namespace hetindex
