#include "corpus/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <unordered_set>

#include "codec/lz.hpp"
#include "corpus/container.hpp"
#include "text/html_strip.hpp"
#include "text/porter.hpp"
#include "text/stopwords.hpp"
#include "text/tokenizer.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"

namespace hetindex {
namespace {

/// English-ish letter frequency table (per mille, roughly) used so the
/// synthetic vocabulary's first-three-letter distribution is skewed the way
/// Table I anticipates ("there are many words with prefix 'the' and hardly
/// any terms with prefix 'zzz'").
constexpr double kLetterWeight[26] = {
    8.2, 1.5, 2.8, 4.3, 12.7, 2.2, 2.0, 6.1, 7.0, 0.15, 0.77, 4.0, 2.4,
    6.7, 7.5, 1.9, 0.095, 6.0, 6.3, 9.1, 2.8, 0.98, 2.4, 0.15, 2.0, 0.074};

char sample_letter(Rng& rng) {
  static const double total = [] {
    double t = 0;
    for (double w : kLetterWeight) t += w;
    return t;
  }();
  double x = rng.uniform() * total;
  for (int i = 0; i < 26; ++i) {
    x -= kLetterWeight[i];
    if (x <= 0) return static_cast<char>('a' + i);
  }
  return 'z';
}

}  // namespace

Vocabulary::Vocabulary(std::uint64_t size, double numeric_fraction, double special_fraction,
                       std::uint64_t seed) {
  HET_CHECK(size >= 1);
  words_.reserve(size);
  std::unordered_set<std::string> seen;
  seen.reserve(size * 2);
  const auto stopwords = default_stopword_list();
  Rng rng(seed);

  for (std::uint64_t rank = 1; rank <= size; ++rank) {
    std::string w;
    // Odd top ranks are the actual stop words (the most frequent words of
    // real text), interleaved with strong non-stop head terms so that the
    // post-stop-word token mass keeps a heavy head — on ClueWeb the ~100
    // popular trie collections hold ~44% of indexed tokens (Table V).
    const bool is_stop_rank = rank % 2 == 1 && (rank - 1) / 2 < stopwords.size();
    if (is_stop_rank) {
      w = std::string(stopwords[(rank - 1) / 2]);
    } else {
      std::uint64_t h = seed ^ (rank * 0x9E3779B97F4A7C15ull);
      const double kind = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
      if (kind < numeric_fraction) {
        const std::size_t digits = 1 + rng.below(6);
        for (std::size_t i = 0; i < digits; ++i)
          w.push_back(static_cast<char>('0' + rng.below(10)));
      } else {
        // Word length grows ~logarithmically with rank (common words are
        // short), centering the mean near the paper's 6.6 chars.
        const double base = 2.0 + std::log(static_cast<double>(rank)) / 1.7;
        const std::size_t len = std::clamp<std::size_t>(
            static_cast<std::size_t>(base + rng.below(3)), 2, 14);
        for (std::size_t i = 0; i < len; ++i) w.push_back(sample_letter(rng));
        if (kind < numeric_fraction + special_fraction) {
          // Replace one letter with a two-byte UTF-8 char ("zoé" class).
          const std::size_t at = rng.below(w.size());
          w[at] = '\xC3';
          w.insert(w.begin() + static_cast<std::ptrdiff_t>(at) + 1, '\xA9');
        }
      }
    }
    // Deterministic de-duplication: extend with letters until unique.
    while (seen.contains(w)) w.push_back(sample_letter(rng));
    seen.insert(w);
    words_.push_back(std::move(w));
  }
}

const std::string& Vocabulary::word(std::uint64_t rank) const {
  HET_DCHECK(rank >= 1 && rank <= words_.size());
  return words_[rank - 1];
}

double Vocabulary::mean_length() const {
  double total = 0;
  for (const auto& w : words_) total += static_cast<double>(w.size());
  return total / static_cast<double>(words_.size());
}

CollectionSpec clueweb_like(double scale) {
  CollectionSpec spec;
  spec.name = "clueweb";
  spec.total_bytes = static_cast<std::uint64_t>(64.0 * scale * (1 << 20));
  spec.file_bytes = 4ull << 20;
  spec.vocabulary = 300000;
  spec.zipf_s = 1.0;
  spec.avg_doc_tokens = 650;
  spec.html_markup = true;
  spec.numeric_fraction = 0.04;
  spec.special_fraction = 0.015;
  // Files 1,200–1,492 of the ClueWeb09 first English segment are
  // Wikipedia.org pages with "totally different behavior" (Fig. 11).
  spec.shift_fraction = 0.2;
  spec.seed = 0xC1CEB09;
  return spec;
}

CollectionSpec wikipedia_like(double scale) {
  CollectionSpec spec;
  spec.name = "wikipedia";
  spec.total_bytes = static_cast<std::uint64_t>(16.0 * scale * (1 << 20));
  spec.file_bytes = 4ull << 20;
  spec.vocabulary = 60000;  // Table III: far smaller vocabulary than ClueWeb
  spec.zipf_s = 1.05;
  spec.avg_doc_tokens = 560;
  spec.html_markup = false;  // §IV.C: "the HTML tags were removed"
  spec.numeric_fraction = 0.02;
  spec.special_fraction = 0.02;
  spec.shift_fraction = 0.0;
  spec.seed = 0x31C1;
  return spec;
}

CollectionSpec congress_like(double scale) {
  CollectionSpec spec;
  spec.name = "congress";
  spec.total_bytes = static_cast<std::uint64_t>(32.0 * scale * (1 << 20));
  spec.file_bytes = 4ull << 20;
  spec.vocabulary = 90000;
  spec.zipf_s = 1.1;  // weekly snapshots of the same sites: heavy repetition
  spec.avg_doc_tokens = 580;
  spec.html_markup = true;
  spec.numeric_fraction = 0.05;
  spec.special_fraction = 0.005;
  spec.shift_fraction = 0.0;
  spec.seed = 0x10C0;
  return spec;
}

std::vector<Document> generate_documents(const CollectionSpec& spec, const Vocabulary& vocab,
                                         std::uint64_t target_bytes, std::size_t file_index,
                                         std::size_t file_count, Rng& rng) {
  const bool shifted =
      spec.shift_fraction > 0.0 &&
      static_cast<double>(file_index) >=
          (1.0 - spec.shift_fraction) * static_cast<double>(file_count);
  // The shifted regime models the Wikipedia tail: plain text, different
  // skew, and a disjoint region of the vocabulary (new terms → B-tree
  // growth → the Fig. 11 throughput drop).
  const double zipf_s = shifted ? spec.zipf_s * 0.9 : spec.zipf_s;
  const bool html = shifted ? false : spec.html_markup;
  const std::uint64_t rank_rotation = shifted ? vocab.size() / 2 : 0;
  ZipfSampler zipf(vocab.size(), zipf_s);

  std::vector<Document> docs;
  std::uint64_t bytes = 0;
  std::uint32_t local_id = 0;
  while (bytes < target_bytes) {
    Document doc;
    doc.local_id = local_id;
    doc.url = "http://" + std::string(shifted ? "wikipedia.org" : spec.name + ".example") +
              "/doc/" + std::to_string(file_index) + "/" + std::to_string(local_id);
    // Exponential document length with the configured mean.
    const double u = std::max(rng.uniform(), 1e-12);
    const auto tokens = static_cast<std::size_t>(
        std::clamp(-spec.avg_doc_tokens * std::log(u), 16.0, spec.avg_doc_tokens * 20));

    std::string& body = doc.body;
    body.reserve(tokens * (html ? 24 : 8));
    if (html) {
      // Web pages are mostly markup: ClueWeb averages ~4 bytes of HTML per
      // byte of visible text (Table III: 0.023 tokens/byte vs Wikipedia's
      // 0.119 after tag removal). The boilerplate and per-span attributes
      // below reproduce that ratio; html_strip removes all of it.
      body += "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\"/>"
              "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\"/>"
              "<link rel=\"stylesheet\" type=\"text/css\" href=\"/static/css/site.css\"/>"
              "<script type=\"text/javascript\" src=\"/static/js/frame.js\"></script>"
              "<title>";
    }
    for (std::size_t t = 0; t < tokens; ++t) {
      std::uint64_t rank = zipf(rng);
      // Shifted regime: the mid/tail vocabulary is disjoint (new topical
      // terms → dictionary growth), but the universal English head words
      // (rank ≤ 512) appear in any English text, Wikipedia included.
      if (rank_rotation != 0 && rank > 512) {
        const std::uint64_t span = vocab.size() - 512;
        rank = 513 + (rank - 513 + rank_rotation) % span;
      }
      const std::string& w = vocab.word(rank);
      if (html) {
        if (t == 8) {
          body += "</title></head><body class=\"page\"><div id=\"wrap\">"
                  "<div class=\"nav\"><!-- navigation chrome --></div>"
                  "<div class=\"content\" role=\"main\"><p>";
        }
        if (t > 8 && t % 48 == 0) {
          body += "</p><p class=\"para\" id=\"p";
          body += std::to_string(t / 48);
          body += "\" style=\"margin:0 0 1em 0\">";
        }
        if (t > 8 && t % 9 == 0) {
          body += "<span class=\"w s";
          body += std::to_string(t % 7);
          body += "\">" + w + "</span> ";
          continue;
        }
        if (t > 8 && rng.below(24) == 0) {
          body += "<a href=\"/link/" + std::to_string(rank) + "\" rel=\"nofollow\">" + w +
                  "</a> ";
          continue;
        }
      }
      body += w;
      body += (t % 13 == 12) ? ". " : " ";
    }
    if (html) {
      body += "</p></div><div class=\"footer\"><!-- footer chrome -->"
              "<ul class=\"links\"><li><a href=\"/about\">about</a></li>"
              "<li><a href=\"/contact\">contact</a></li>"
              "<li><a href=\"/terms\">terms</a></li></ul>"
              "</div></div><script>trackPageView();</script></body></html>";
    }
    bytes += body.size() + doc.url.size() + 8;
    docs.push_back(std::move(doc));
    ++local_id;
  }
  return docs;
}

Collection generate_collection(const CollectionSpec& spec, const std::string& dir) {
  std::filesystem::create_directories(dir);
  Collection collection;
  collection.spec = spec;
  const Vocabulary vocab(spec.vocabulary, spec.numeric_fraction, spec.special_fraction,
                         spec.seed);
  const std::size_t file_count = std::max<std::size_t>(
      1, static_cast<std::size_t>((spec.total_bytes + spec.file_bytes - 1) / spec.file_bytes));
  Rng rng(spec.seed ^ 0xD0C5);
  for (std::size_t f = 0; f < file_count; ++f) {
    const auto docs = generate_documents(spec, vocab, spec.file_bytes, f, file_count, rng);
    GeneratedFile gf;
    gf.path = dir + "/" + spec.name + "_" + std::to_string(f) + ".hdc";
    const auto sizes = container_write(gf.path, docs);
    gf.doc_count = static_cast<std::uint32_t>(docs.size());
    gf.compressed_bytes = sizes.compressed;
    gf.uncompressed_bytes = sizes.uncompressed;
    collection.files.push_back(std::move(gf));
  }
  return collection;
}

std::uint64_t Collection::total_compressed() const {
  std::uint64_t t = 0;
  for (const auto& f : files) t += f.compressed_bytes;
  return t;
}

std::uint64_t Collection::total_uncompressed() const {
  std::uint64_t t = 0;
  for (const auto& f : files) t += f.uncompressed_bytes;
  return t;
}

std::uint64_t Collection::total_docs() const {
  std::uint64_t t = 0;
  for (const auto& f : files) t += f.doc_count;
  return t;
}

std::vector<std::string> Collection::paths() const {
  std::vector<std::string> out;
  out.reserve(files.size());
  for (const auto& f : files) out.push_back(f.path);
  return out;
}

CollectionStats analyze_collection(const std::vector<std::string>& paths) {
  CollectionStats stats;
  std::unordered_set<std::string> terms;
  const auto& stop = default_stopwords();
  std::uint64_t token_chars = 0;
  for (const auto& path : paths) {
    const auto compressed = read_file(path);
    stats.compressed_bytes += compressed.size();
    const auto docs = container_decompress(compressed.data(), compressed.size());
    stats.documents += docs.size();
    for (const auto& doc : docs) {
      stats.uncompressed_bytes += doc.body.size() + doc.url.size() + 8;
      const std::string text = html_strip(doc.body);
      tokenize(text, [&](std::string_view tok) {
        const std::string stemmed = porter_stem(tok);
        if (stop.contains(stemmed)) return;
        ++stats.tokens;
        token_chars += stemmed.size();
        terms.insert(stemmed);
      });
    }
  }
  stats.terms = terms.size();
  stats.mean_token_length =
      stats.tokens ? static_cast<double>(token_chars) / static_cast<double>(stats.tokens) : 0;
  return stats;
}

}  // namespace hetindex
