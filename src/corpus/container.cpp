#include "corpus/container.hpp"

#include "codec/lz.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"

namespace hetindex {
namespace {
constexpr std::uint32_t kContainerMagic = 0x43444548;   // "HEDC"
constexpr std::uint32_t kFileMagic = 0x46444548;        // "HEDF"
}

std::vector<std::uint8_t> container_pack(const std::vector<Document>& docs) {
  std::vector<std::uint8_t> raw;
  ByteWriter w(raw);
  w.u32(kContainerMagic);
  w.u32(static_cast<std::uint32_t>(docs.size()));
  for (const auto& d : docs) {
    w.str(d.url);
    w.str(d.body);
  }
  return raw;
}

std::vector<Document> container_unpack(const std::vector<std::uint8_t>& raw) {
  ByteReader r(raw);
  HET_CHECK_MSG(r.u32() == kContainerMagic, "not a hetindex container payload");
  const std::uint32_t count = r.u32();
  std::vector<Document> docs(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    docs[i].local_id = i;
    docs[i].url = r.str();
    docs[i].body = r.str();
  }
  return docs;
}

ContainerSizes container_write(const std::string& path, const std::vector<Document>& docs) {
  const auto raw = container_pack(docs);
  auto compressed = lz_compress(raw);
  // Uncompressed 8-byte file header: magic + doc count. The read scheduler
  // assigns global doc-ID bases inside its serialized disk section, before
  // decompression, so the count must be readable without inflating.
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u32(kFileMagic);
  w.u32(static_cast<std::uint32_t>(docs.size()));
  out.insert(out.end(), compressed.begin(), compressed.end());
  write_file(path, out);
  return {out.size(), raw.size()};
}

std::uint32_t container_header_doc_count(const std::uint8_t* file_bytes, std::size_t size) {
  HET_CHECK_MSG(size >= 8, "container file too small");
  ByteReader r(file_bytes, size);
  HET_CHECK_MSG(r.u32() == kFileMagic, "not a hetindex container file");
  return r.u32();
}

Expected<std::uint32_t> container_try_header_doc_count(const std::uint8_t* file_bytes,
                                                       std::size_t size) {
  if (size < 8) return Error{ErrorCode::kCorrupt, "container file too small"};
  ByteReader r(file_bytes, size);
  if (r.u32() != kFileMagic) {
    return Error{ErrorCode::kCorrupt, "not a hetindex container file"};
  }
  return r.u32();
}

std::vector<Document> container_decompress(const std::uint8_t* file_bytes, std::size_t size) {
  HET_CHECK_MSG(size >= 8, "container file too small");
  const auto docs = container_unpack(lz_decompress(file_bytes + 8, size - 8));
  HET_CHECK_MSG(docs.size() == container_header_doc_count(file_bytes, size),
                "container header doc count mismatch");
  return docs;
}

std::vector<Document> container_sample(const std::uint8_t* file_bytes, std::size_t size,
                                       std::uint64_t max_raw_bytes) {
  HET_CHECK_MSG(size >= 8, "container file too small");
  const auto raw = lz_decompress_prefix(file_bytes + 8, size - 8, max_raw_bytes);
  // Tolerant unpack: read whole documents while the prefix holds them.
  std::vector<Document> docs;
  if (raw.size() < 8) return docs;
  ByteReader r(raw);
  if (r.u32() != kContainerMagic) return docs;
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    if (r.remaining() < 4) break;
    const std::size_t mark = r.position();
    const std::uint32_t url_len = r.u32();
    if (r.remaining() < url_len + 4) {
      r.seek(mark);
      break;
    }
    Document d;
    d.local_id = i;
    d.url.resize(url_len);
    if (url_len) r.bytes(d.url.data(), url_len);
    const std::uint32_t body_len = r.u32();
    if (r.remaining() < body_len) break;
    d.body.resize(body_len);
    if (body_len) r.bytes(d.body.data(), body_len);
    docs.push_back(std::move(d));
  }
  return docs;
}

std::vector<Document> container_read(const std::string& path) {
  const auto file = read_file(path);
  return container_decompress(file.data(), file.size());
}

std::uint64_t container_uncompressed_size(const std::string& path) {
  const auto file = read_file(path);
  HET_CHECK_MSG(file.size() >= 8, "container file too small");
  return lz_raw_size(file.data() + 8, file.size() - 8);
}

}  // namespace hetindex
