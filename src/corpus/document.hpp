#pragma once
/// \file document.hpp
/// Document model shared by the container format, the synthetic generator
/// and the parsers.

#include <cstdint>
#include <string>

namespace hetindex {

/// One document inside a collection file. `local_id` is the position within
/// its file (Fig. 3 Step 1 assigns local IDs; indexers add the global
/// offset).
struct Document {
  std::uint32_t local_id = 0;
  std::string url;
  std::string body;
};

}  // namespace hetindex
