#pragma once
/// \file container.hpp
/// The WARC-like collection container: one file packs many documents and is
/// stored LZ-compressed, mirroring ClueWeb09's gzipped files ("a typical
/// file ... is about 160MB compressed and 1GB uncompressed", §IV.A). The
/// parser pipeline reads the compressed bytes from disk and decompresses in
/// memory — the exact trade-off §IV.A analyzes.

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/document.hpp"
#include "util/error.hpp"

namespace hetindex {

/// Serializes documents into an (uncompressed) record buffer.
std::vector<std::uint8_t> container_pack(const std::vector<Document>& docs);
/// Parses a record buffer back into documents (local ids = record order).
std::vector<Document> container_unpack(const std::vector<std::uint8_t>& raw);

/// Writes documents as an LZ-compressed container file; returns
/// {compressed_bytes, uncompressed_bytes}.
struct ContainerSizes {
  std::uint64_t compressed = 0;
  std::uint64_t uncompressed = 0;
};
ContainerSizes container_write(const std::string& path, const std::vector<Document>& docs);

/// Reads a container file written by container_write.
std::vector<Document> container_read(const std::string& path);

/// Doc count from the uncompressed 8-byte file header (readable before
/// decompression — the read scheduler needs it to assign doc-ID bases in
/// file order).
std::uint32_t container_header_doc_count(const std::uint8_t* file_bytes, std::size_t size);

/// Non-aborting variant for the ingest path: kCorrupt instead of HET_CHECK
/// when the buffer is too small or the magic is wrong, so a damaged file
/// surfaces as a structured pipeline error rather than killing the process.
Expected<std::uint32_t> container_try_header_doc_count(const std::uint8_t* file_bytes,
                                                       std::size_t size);

/// Decompresses an in-memory container file (header + LZ frame).
std::vector<Document> container_decompress(const std::uint8_t* file_bytes, std::size_t size);

/// Decompresses only the leading documents of a container file, stopping
/// once ~`max_raw_bytes` of payload have been inflated (§III.E's "1MB out
/// of every 1GB" sampling). Documents cut by the prefix boundary are
/// dropped.
std::vector<Document> container_sample(const std::uint8_t* file_bytes, std::size_t size,
                                       std::uint64_t max_raw_bytes);

/// Decompressed payload size recorded in the file without reading bodies.
std::uint64_t container_uncompressed_size(const std::string& path);

}  // namespace hetindex
