#pragma once
/// \file synthetic.hpp
/// Synthetic document-collection generator. Substitutes for the paper's
/// three corpora (Table III) with Zipf-distributed vocabularies whose
/// statistical fingerprints — token frequency skew, average stemmed token
/// length (~6.6), tokens per document, HTML overhead, compressibility —
/// drive the same code paths and load-balancing behaviour the real corpora
/// exercise. See DESIGN.md §2 for the substitution rationale.
///
/// Determinism: everything derives from `spec.seed`, so CPU-vs-GPU
/// differential tests and repeated bench runs see identical corpora.

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/document.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace hetindex {

/// Parameters of one synthetic collection.
struct CollectionSpec {
  std::string name = "synthetic";
  /// Target total uncompressed size across all files.
  std::uint64_t total_bytes = 16ull << 20;
  /// Target uncompressed bytes per container file (ClueWeb files are ~1 GB;
  /// scaled down by default for laptop-scale runs).
  std::uint64_t file_bytes = 4ull << 20;
  /// Vocabulary size (surface forms, pre-stemming).
  std::uint64_t vocabulary = 200000;
  /// Zipf skew of term frequencies (web text ≈ 1.0).
  double zipf_s = 1.0;
  /// Mean tokens per document (geometric document length distribution).
  double avg_doc_tokens = 600;
  /// Wrap bodies in HTML markup (ClueWeb-like) or plain text (Wikipedia-
  /// like after tag removal, §IV.C).
  bool html_markup = true;
  /// Fraction of vocabulary ranks that are pure-number tokens.
  double numeric_fraction = 0.03;
  /// Fraction of vocabulary ranks that contain a non-ASCII byte.
  double special_fraction = 0.01;
  /// When > 0, the last `shift_fraction` of files are generated from a
  /// disjoint vocabulary region with different document shape — models the
  /// Wikipedia tail of the ClueWeb collection that causes the Fig. 11
  /// throughput drop after file index 1,200.
  double shift_fraction = 0.0;
  std::uint64_t seed = 0x9E1D;
};

/// Scaled presets for the paper's three collections (Table III). `scale`
/// multiplies total_bytes; 1.0 gives the laptop default (64 MB), not the
/// paper's TB-scale inputs.
CollectionSpec clueweb_like(double scale = 1.0);
CollectionSpec wikipedia_like(double scale = 1.0);
CollectionSpec congress_like(double scale = 1.0);

/// Deterministic rank→surface-form vocabulary. Low ranks are short common
/// words (the first ~130 ranks are the actual English stop words, so
/// stop-word removal has realistic impact); higher ranks get longer tails.
class Vocabulary {
 public:
  Vocabulary(std::uint64_t size, double numeric_fraction, double special_fraction,
             std::uint64_t seed);

  [[nodiscard]] const std::string& word(std::uint64_t rank) const;  // rank in [1, size]
  [[nodiscard]] std::uint64_t size() const { return words_.size(); }
  /// Mean word length — Table III fingerprint check.
  [[nodiscard]] double mean_length() const;

 private:
  std::vector<std::string> words_;
};

/// One generated container file on disk.
struct GeneratedFile {
  std::string path;
  std::uint32_t doc_count = 0;
  std::uint64_t compressed_bytes = 0;
  std::uint64_t uncompressed_bytes = 0;
};

/// The manifest of a generated collection.
struct Collection {
  CollectionSpec spec;
  std::vector<GeneratedFile> files;

  [[nodiscard]] std::uint64_t total_compressed() const;
  [[nodiscard]] std::uint64_t total_uncompressed() const;
  [[nodiscard]] std::uint64_t total_docs() const;
  [[nodiscard]] std::vector<std::string> paths() const;
};

/// Generates the collection under `dir` (created if needed). File names are
/// `<name>_<index>.hdc`.
Collection generate_collection(const CollectionSpec& spec, const std::string& dir);

/// Generates documents in memory (used by tests and by benches that skip
/// the disk). `file_index` selects the pre/post-shift regime.
std::vector<Document> generate_documents(const CollectionSpec& spec, const Vocabulary& vocab,
                                         std::uint64_t target_bytes, std::size_t file_index,
                                         std::size_t file_count, Rng& rng);

/// Table III row: statistics of a collection measured through the real
/// parsing path (tokenize → stem → stop-word removal).
struct CollectionStats {
  std::uint64_t compressed_bytes = 0;
  std::uint64_t uncompressed_bytes = 0;
  std::uint64_t documents = 0;
  std::uint64_t tokens = 0;  ///< post-stop-word tokens (what gets indexed)
  std::uint64_t terms = 0;   ///< distinct stemmed terms
  double mean_token_length = 0.0;
};

CollectionStats analyze_collection(const std::vector<std::string>& paths);

}  // namespace hetindex
