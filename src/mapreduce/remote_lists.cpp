#include "mapreduce/remote_lists.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "corpus/container.hpp"
#include "parse/parser.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace hetindex {

RemoteListsResult remote_lists_index(const std::vector<std::string>& files,
                                     const ClusterModel& cluster) {
  RemoteListsResult result;
  auto& stats = result.stats;
  const std::size_t nodes = cluster.nodes;
  HET_CHECK(nodes >= 1);

  // Doc-id bases in file order (global numbering, same as the core system).
  std::vector<std::uint32_t> bases(files.size(), 0);
  {
    std::uint32_t base = 0;
    for (std::size_t f = 0; f < files.size(); ++f) {
      bases[f] = base;
      const auto file = read_file(files[f]);
      base += container_header_doc_count(file.data(), file.size());
    }
  }

  // ---- Pass 1: global vocabulary. Each node scans its partition; the
  // union is built at a coordinator and the term→owner assignment is
  // broadcast. Work is measured and scheduled per node partition.
  Parser parser;
  std::unordered_set<std::string> vocabulary;
  std::vector<double> node_scan_seconds(nodes, 0.0);
  std::vector<std::vector<Parser::FlatToken>> parsed(files.size());
  for (std::size_t f = 0; f < files.size(); ++f) {
    WallTimer t;
    const auto docs = container_read(files[f]);
    for (const auto& d : docs) stats.input_bytes += d.body.size() + d.url.size() + 8;
    parsed[f] = parser.parse_flat(docs);
    for (const auto& tok : parsed[f]) vocabulary.insert(tok.term);
    node_scan_seconds[f % nodes] += t.seconds() * cluster.core_speed_ratio;
  }
  stats.vocabulary_seconds =
      *std::max_element(node_scan_seconds.begin(), node_scan_seconds.end()) +
      // Broadcast of the vocabulary table to every node.
      static_cast<double>(vocabulary.size()) * 12.0 /
          (cluster.network_mb_s * 1024 * 1024);

  // Term → owner node.
  auto owner_of = [&](const std::string& term) {
    return std::hash<std::string>{}(term) % nodes;
  };

  // ---- Pass 2: parse again on each node (the algorithm re-reads; we
  // reuse the parsed tokens but charge the measured scan time again),
  // ship tuples to owners, insert into sorted lists.
  stats.parse_seconds = stats.vocabulary_seconds -
                        static_cast<double>(vocabulary.size()) * 12.0 /
                            (cluster.network_mb_s * 1024 * 1024);

  std::vector<std::uint64_t> node_in_bytes(nodes, 0);
  std::vector<double> node_insert_seconds(nodes, 0.0);
  std::vector<std::unordered_map<std::string, PostingsList>> node_lists(nodes);
  for (std::size_t f = 0; f < files.size(); ++f) {
    const std::uint32_t base = bases[f];
    // Tuples from file f's node arrive at owners in this node's document
    // order, but interleaved with other nodes' tuples — which is why the
    // algorithm needs *insertion* into a sorted list rather than append.
    for (const auto& tok : parsed[f]) {
      const std::size_t owner = owner_of(tok.term);
      const std::uint32_t doc = base + tok.local_doc;
      node_in_bytes[owner] += tok.term.size() + 8;
      ++stats.tuples_shipped;
      WallTimer t;
      auto& list = node_lists[owner][tok.term];
      // Sorted insert (tuples for a term arrive out of global doc order
      // across source nodes).
      auto it = std::lower_bound(list.doc_ids.begin(), list.doc_ids.end(), doc);
      if (it != list.doc_ids.end() && *it == doc) {
        ++list.tfs[static_cast<std::size_t>(it - list.doc_ids.begin())];
      } else {
        const auto at = static_cast<std::size_t>(it - list.doc_ids.begin());
        list.doc_ids.insert(it, doc);
        list.tfs.insert(list.tfs.begin() + static_cast<std::ptrdiff_t>(at), 1);
      }
      node_insert_seconds[owner] += t.seconds() * cluster.core_speed_ratio;
    }
  }
  std::uint64_t max_in = 0;
  for (const auto b : node_in_bytes) max_in = std::max(max_in, b);
  stats.network_seconds =
      static_cast<double>(max_in) / (cluster.network_mb_s * 1024 * 1024);
  stats.insert_seconds =
      *std::max_element(node_insert_seconds.begin(), node_insert_seconds.end());
  stats.total_seconds = stats.vocabulary_seconds + stats.parse_seconds +
                        stats.network_seconds + stats.insert_seconds;

  // Final logical index (union across owners).
  for (auto& node : node_lists) {
    for (auto& [term, list] : node) result.index[term] = std::move(list);
  }
  return result;
}

}  // namespace hetindex
