#pragma once
/// \file mr_indexers.hpp
/// The two fastest published MapReduce indexers the paper compares against
/// (§IV.D, Fig. 12), implemented on the mini MapReduce runtime:
///
///  - Ivory-style (Lin et al. [9]): map emits <(term, docid), tf> so each
///    key has exactly one value and the framework's sort delivers postings
///    in docid order — reducers append without post-processing.
///  - Single-pass-style (McCreadie et al. [8]): map emits
///    <term, partial postings list> per map task, cutting emit count and
///    shuffle volume; reducers merge the partial lists.
///
/// Both produce a real in-memory inverted index so tests can check logical
/// equivalence with the core pipeline's output.

#include <map>
#include <string>
#include <vector>

#include "mapreduce/cluster.hpp"
#include "mapreduce/mr_engine.hpp"
#include "postings/postings_store.hpp"

namespace hetindex {

struct MrIndexResult {
  std::map<std::string, PostingsList> index;
  MrPhaseStats stats;
};

/// Ivory-style MapReduce indexing over container files.
MrIndexResult ivory_mr_index(const std::vector<std::string>& files,
                             const ClusterModel& cluster, std::size_t reducers);

/// Single-pass (per-map-task partial lists) MapReduce indexing.
MrIndexResult singlepass_mr_index(const std::vector<std::string>& files,
                                  const ClusterModel& cluster, std::size_t reducers);

}  // namespace hetindex
