#pragma once
/// \file remote_lists.hpp
/// The "Remote-Buffer and Remote-Lists" distributed indexer of
/// Ribeiro-Neto et al. [6] (§II): a first pass computes the global
/// vocabulary and assigns each term to an owner processor; in the indexing
/// pass every ⟨term, docid⟩ tuple is sent to its owner, which inserts it
/// directly into the destination postings list kept in sorted order.
/// Implemented functionally on a ClusterModel so Fig. 12-style comparisons
/// can include the pre-MapReduce state of the art.

#include <map>
#include <string>
#include <vector>

#include "mapreduce/cluster.hpp"
#include "postings/postings_store.hpp"

namespace hetindex {

struct RemoteListsStats {
  double vocabulary_seconds = 0;  ///< pass 1: global vocabulary build + broadcast
  double parse_seconds = 0;       ///< pass 2: parsing on the owning nodes
  double network_seconds = 0;     ///< tuple traffic to owner processors
  double insert_seconds = 0;      ///< sorted-list insertion at the owners
  double total_seconds = 0;
  std::uint64_t input_bytes = 0;
  std::uint64_t tuples_shipped = 0;

  [[nodiscard]] double throughput_mb_s() const {
    return total_seconds > 0
               ? static_cast<double>(input_bytes) / (1024.0 * 1024.0) / total_seconds
               : 0.0;
  }
};

struct RemoteListsResult {
  std::map<std::string, PostingsList> index;
  RemoteListsStats stats;
};

/// Runs the two-pass algorithm over container files on the modelled
/// cluster. Files are partitioned across nodes round-robin.
RemoteListsResult remote_lists_index(const std::vector<std::string>& files,
                                     const ClusterModel& cluster);

}  // namespace hetindex
