#include "mapreduce/mr_indexers.hpp"

#include <cstring>

#include "corpus/container.hpp"
#include "parse/parser.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"

namespace hetindex {
namespace {

/// Encodes docid into a big-endian suffix so lexicographic key order is
/// (term, docid) order — the Ivory trick that makes postings arrive sorted.
std::string ivory_key(const std::string& term, std::uint32_t doc) {
  std::string key = term;
  key.push_back('\0');
  for (int shift = 24; shift >= 0; shift -= 8)
    key.push_back(static_cast<char>((doc >> shift) & 0xFF));
  return key;
}

void ivory_key_decode(const std::string& key, std::string& term, std::uint32_t& doc) {
  HET_CHECK(key.size() >= 5);
  term.assign(key, 0, key.size() - 5);
  doc = 0;
  for (std::size_t i = key.size() - 4; i < key.size(); ++i)
    doc = (doc << 8) | static_cast<std::uint8_t>(key[i]);
}

/// Per-file doc-id bases so both baselines number documents like the core
/// pipeline (file order).
std::vector<std::uint32_t> doc_bases(const std::vector<std::string>& files) {
  std::vector<std::uint32_t> bases(files.size(), 0);
  std::uint32_t base = 0;
  for (std::size_t f = 0; f < files.size(); ++f) {
    bases[f] = base;
    const auto file = read_file(files[f]);
    base += container_header_doc_count(file.data(), file.size());
  }
  return bases;
}

}  // namespace

MrIndexResult ivory_mr_index(const std::vector<std::string>& files,
                             const ClusterModel& cluster, std::size_t reducers) {
  MrIndexResult result;
  const auto bases = doc_bases(files);
  std::map<std::string, std::size_t> file_of;
  for (std::size_t f = 0; f < files.size(); ++f) file_of[files[f]] = f;

  MiniMapReduce mr(cluster, reducers);
  result.stats = mr.run(
      files,
      // Map: parse the file; emit <(term, docid), tf> per distinct
      // (term, doc) pair.
      [&](const std::string& split, MiniMapReduce::Emitter& out) -> std::uint64_t {
        const std::uint32_t base = bases[file_of.at(split)];
        const auto docs = container_read(split);
        Parser parser;
        std::uint64_t bytes = 8;
        for (const auto& d : docs) bytes += d.body.size() + d.url.size() + 8;
        // Aggregate tf within each document before emitting.
        std::map<std::pair<std::string, std::uint32_t>, std::uint32_t> tf;
        for (const auto& tok : parser.parse_flat(docs)) {
          ++tf[{tok.term, base + tok.local_doc}];
        }
        for (const auto& [key, count] : tf) out.emit(ivory_key(key.first, key.second), {count});
        return bytes;
      },
      // Reduce: keys arrive in (term, docid) order — append directly.
      [&](const std::string& key, const std::vector<std::vector<std::uint32_t>>& values) {
        HET_CHECK_MSG(values.size() == 1, "Ivory keys are unique per (term, doc)");
        std::string term;
        std::uint32_t doc = 0;
        ivory_key_decode(key, term, doc);
        auto& list = result.index[term];
        HET_CHECK_MSG(list.doc_ids.empty() || list.doc_ids.back() < doc,
                      "framework sort must deliver docids in order");
        list.doc_ids.push_back(doc);
        list.tfs.push_back(values[0].at(0));
      },
      // Partition on the term only (the natural key), so every posting of
      // a term reaches the same reducer in docid order.
      [](const std::string& key, std::size_t reducers) {
        const auto cut = key.find('\0');
        return std::hash<std::string_view>{}(std::string_view(key).substr(0, cut)) % reducers;
      });
  return result;
}

MrIndexResult singlepass_mr_index(const std::vector<std::string>& files,
                                  const ClusterModel& cluster, std::size_t reducers) {
  MrIndexResult result;
  const auto bases = doc_bases(files);
  std::map<std::string, std::size_t> file_of;
  for (std::size_t f = 0; f < files.size(); ++f) file_of[files[f]] = f;

  MiniMapReduce mr(cluster, reducers);
  result.stats = mr.run(
      files,
      // Map: build the task-local partial postings list per term, then
      // emit it once — far fewer, larger records than Ivory.
      [&](const std::string& split, MiniMapReduce::Emitter& out) -> std::uint64_t {
        const std::uint32_t base = bases[file_of.at(split)];
        const auto docs = container_read(split);
        Parser parser;
        std::uint64_t bytes = 8;
        for (const auto& d : docs) bytes += d.body.size() + d.url.size() + 8;
        std::map<std::string, PostingsList> local;
        for (const auto& tok : parser.parse_flat(docs)) {
          auto& list = local[tok.term];
          const std::uint32_t doc = base + tok.local_doc;
          if (!list.doc_ids.empty() && list.doc_ids.back() == doc) {
            ++list.tfs.back();
          } else {
            list.doc_ids.push_back(doc);
            list.tfs.push_back(1);
          }
        }
        for (auto& [term, list] : local) {
          std::vector<std::uint32_t> flat;
          flat.reserve(list.size() * 2);
          for (std::size_t i = 0; i < list.size(); ++i) {
            flat.push_back(list.doc_ids[i]);
            flat.push_back(list.tfs[i]);
          }
          out.emit(term, std::move(flat));
        }
        return bytes;
      },
      // Reduce: merge the partial lists of a term by leading docid.
      [&](const std::string& term, const std::vector<std::vector<std::uint32_t>>& values) {
        std::vector<std::pair<std::uint32_t, std::uint32_t>> postings;
        for (const auto& flat : values) {
          HET_CHECK(flat.size() % 2 == 0);
          for (std::size_t i = 0; i < flat.size(); i += 2)
            postings.emplace_back(flat[i], flat[i + 1]);
        }
        std::sort(postings.begin(), postings.end());
        auto& list = result.index[term];
        for (const auto& [doc, tf] : postings) {
          HET_CHECK_MSG(list.doc_ids.empty() || list.doc_ids.back() < doc,
                        "duplicate docid across partial lists");
          list.doc_ids.push_back(doc);
          list.tfs.push_back(tf);
        }
      });
  return result;
}

}  // namespace hetindex
