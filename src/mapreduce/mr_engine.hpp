#pragma once
/// \file mr_engine.hpp
/// A miniature MapReduce runtime (Dean & Ghemawat [7]) sufficient to host
/// the two baseline indexers the paper compares against. Map and reduce
/// functions execute for real on the host (so the baselines produce real,
/// checkable inverted indexes); phase times are modelled on a ClusterModel
/// from the measured task work.
///
/// Data model: keys are byte strings; values are uint32 vectors. The
/// framework guarantees reducers see keys in sorted order and, per key,
/// values in map-task emission order (the property Lin et al. [9] exploit
/// to append postings without post-processing).

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mapreduce/cluster.hpp"

namespace hetindex {

struct MrPhaseStats {
  double map_seconds = 0;      ///< modelled map phase (incl. read + overhead)
  double shuffle_seconds = 0;  ///< network-bound grouping
  double reduce_seconds = 0;   ///< modelled reduce phase
  double total_seconds = 0;
  std::uint64_t input_bytes = 0;       ///< uncompressed input
  std::uint64_t shuffled_bytes = 0;    ///< key+value bytes crossing the network
  std::uint64_t emitted_records = 0;

  [[nodiscard]] double throughput_mb_s() const {
    return total_seconds > 0
               ? static_cast<double>(input_bytes) / (1024.0 * 1024.0) / total_seconds
               : 0.0;
  }
};

class MiniMapReduce {
 public:
  /// Emit interface handed to map functions.
  class Emitter {
   public:
    virtual ~Emitter() = default;
    virtual void emit(std::string key, std::vector<std::uint32_t> value) = 0;
  };

  /// A map function consumes one input split (here: one container file
  /// path) and emits key/value pairs; it must report the split's
  /// uncompressed size via the return value.
  using MapFn = std::function<std::uint64_t(const std::string& split, Emitter& out)>;
  /// A reduce function receives one key and all its values (emission
  /// order preserved per key).
  using ReduceFn =
      std::function<void(const std::string& key,
                         const std::vector<std::vector<std::uint32_t>>& values)>;
  /// Maps a key to its reduce partition (Hadoop's Partitioner). Defaults
  /// to hashing the whole key; jobs with composite keys (Ivory's
  /// (term, docid)) partition on the natural key only so one reducer sees
  /// all of a term's postings.
  using PartitionFn = std::function<std::size_t(const std::string& key, std::size_t reducers)>;

  static std::size_t default_partition(const std::string& key, std::size_t reducers) {
    return std::hash<std::string>{}(key) % reducers;
  }

  MiniMapReduce(ClusterModel cluster, std::size_t reducers)
      : cluster_(cluster), reducers_(reducers) {}

  /// Runs the job: one map task per split, hash partitioning onto
  /// `reducers` reduce tasks, sorted keys within each reducer.
  MrPhaseStats run(const std::vector<std::string>& splits, const MapFn& map_fn,
                   const ReduceFn& reduce_fn,
                   const PartitionFn& partition_fn = default_partition) const;

 private:
  ClusterModel cluster_;
  std::size_t reducers_;
};

}  // namespace hetindex
