#include "mapreduce/mr_engine.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace hetindex {
namespace {

/// Schedules task durations onto `workers` identical workers (list
/// scheduling in submission order, like a Hadoop wave); returns makespan.
double schedule(const std::vector<double>& tasks, std::size_t workers) {
  HET_CHECK(workers >= 1);
  std::priority_queue<double, std::vector<double>, std::greater<>> free;
  for (std::size_t w = 0; w < workers; ++w) free.push(0.0);
  double makespan = 0.0;
  for (const double t : tasks) {
    const double start = free.top();
    free.pop();
    const double end = start + t;
    free.push(end);
    makespan = std::max(makespan, end);
  }
  return makespan;
}

class CollectingEmitter final : public MiniMapReduce::Emitter {
 public:
  void emit(std::string key, std::vector<std::uint32_t> value) override {
    bytes += key.size() + value.size() * 4 + 8;
    pairs.emplace_back(std::move(key), std::move(value));
  }
  std::vector<std::pair<std::string, std::vector<std::uint32_t>>> pairs;
  std::uint64_t bytes = 0;
};

}  // namespace

MrPhaseStats MiniMapReduce::run(const std::vector<std::string>& splits, const MapFn& map_fn,
                                const ReduceFn& reduce_fn,
                                const PartitionFn& partition_fn) const {
  HET_CHECK(reducers_ >= 1);
  MrPhaseStats stats;

  // ---- Map phase: functional execution + measured work per task.
  std::vector<double> map_task_seconds;
  map_task_seconds.reserve(splits.size());
  // Partition buffers: reducer → (key → values in emission order).
  std::vector<std::map<std::string, std::vector<std::vector<std::uint32_t>>>> partitions(
      reducers_);
  std::vector<std::uint64_t> reducer_bytes(reducers_, 0);

  for (const auto& split : splits) {
    CollectingEmitter emitter;
    WallTimer t;
    const std::uint64_t split_bytes = map_fn(split, emitter);
    const double work = t.seconds() * cluster_.core_speed_ratio;
    stats.input_bytes += split_bytes;
    stats.emitted_records += emitter.pairs.size();
    stats.shuffled_bytes += emitter.bytes;
    const double read_time =
        static_cast<double>(split_bytes) / (cluster_.hdfs_read_mb_s * 1024 * 1024);
    map_task_seconds.push_back(cluster_.task_overhead_s + read_time + work);
    for (auto& [key, value] : emitter.pairs) {
      const std::size_t r = partition_fn(key, reducers_);
      reducer_bytes[r] += key.size() + value.size() * 4 + 8;
      partitions[r][std::move(key)].push_back(std::move(value));
    }
  }
  stats.map_seconds = schedule(map_task_seconds, cluster_.total_workers());

  // ---- Shuffle: network-bound. Aggregate bandwidth is nodes × NIC, but
  // the slowest reducer's inbound link bounds completion.
  const double aggregate_mb_s =
      cluster_.network_mb_s * static_cast<double>(std::min(cluster_.nodes, reducers_));
  const std::uint64_t max_reducer_bytes =
      *std::max_element(reducer_bytes.begin(), reducer_bytes.end());
  stats.shuffle_seconds =
      std::max(static_cast<double>(stats.shuffled_bytes) / (aggregate_mb_s * 1024 * 1024),
               static_cast<double>(max_reducer_bytes) /
                   (cluster_.network_mb_s * 1024 * 1024));

  // ---- Reduce phase: sorted key order per reducer (std::map gives it),
  // functional execution + measured work.
  std::vector<double> reduce_task_seconds;
  reduce_task_seconds.reserve(reducers_);
  for (std::size_t r = 0; r < reducers_; ++r) {
    WallTimer t;
    for (const auto& [key, values] : partitions[r]) reduce_fn(key, values);
    reduce_task_seconds.push_back(cluster_.task_overhead_s +
                                  t.seconds() * cluster_.core_speed_ratio);
  }
  stats.reduce_seconds = schedule(reduce_task_seconds, cluster_.total_workers());

  stats.total_seconds = stats.map_seconds + stats.shuffle_seconds + stats.reduce_seconds;
  return stats;
}

}  // namespace hetindex
