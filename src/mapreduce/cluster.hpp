#pragma once
/// \file cluster.hpp
/// Cluster cost model for the MapReduce baselines of §IV.D / Table VII.
/// Map/reduce functions run functionally on the host; task work is
/// measured and scheduled onto the modelled cluster, with Hadoop-style
/// per-task overheads and a network-bound shuffle. Presets mirror the two
/// comparison systems.

#include <cstddef>

namespace hetindex {

struct ClusterModel {
  std::size_t nodes = 8;
  std::size_t cores_per_node = 3;
  /// Per-node network bandwidth for shuffle (1 Gb/s Ethernet).
  double network_mb_s = 110.0;
  /// HDFS sequential read bandwidth per map task.
  double hdfs_read_mb_s = 60.0;
  /// Task launch overhead (JVM start, scheduling) — a big part of why
  /// high-level MapReduce indexing loses to an architecture-aware pipeline.
  double task_overhead_s = 1.5;
  /// Host-measured work seconds × ratio = cluster-core seconds.
  double core_speed_ratio = 1.0;

  [[nodiscard]] std::size_t total_workers() const { return nodes * cores_per_node; }
};

/// Table VII "Ivory MapReduce": 99 nodes, two single-core 2.8 GHz CPUs.
inline ClusterModel ivory_cluster() {
  ClusterModel c;
  c.nodes = 99;
  c.cores_per_node = 2;
  return c;
}

/// Table VII "SP MapReduce": 8 nodes, one quad-core with one core reserved
/// for HDFS → 3 usable cores.
inline ClusterModel sp_cluster() {
  ClusterModel c;
  c.nodes = 8;
  c.cores_per_node = 3;
  return c;
}

}  // namespace hetindex
