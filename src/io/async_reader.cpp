#include "io/async_reader.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "io/env.hpp"
#include "util/timer.hpp"

#if HETINDEX_IO_URING
#include <fcntl.h>
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <unordered_map>
#endif

namespace hetindex::io {
namespace {

/// Chunk size of the Env-routed pread loop. Large enough that per-call
/// overhead (and FaultEnv's per-call bookkeeping) is negligible, small
/// enough that short-read clamps converge quickly.
constexpr std::size_t kReadChunkBytes = 256u << 10;
/// Consecutive transient failures tolerated per file before the read is a
/// structured hard error. EINTR/EAGAIN/EIO bursts shorter than this are
/// absorbed (and counted in io_retries_total).
constexpr int kIngestReadRetries = 4;

Error ingest_error(const std::string& path, int err) {
  return Error{ErrorCode::kIo,
               "ingest read failed: " + path + " (" + std::strerror(err) + ")"};
}

}  // namespace

Expected<std::vector<std::uint8_t>> read_file_via_env(const std::string& path) {
  auto fd_or = env().open_read(path);
  if (!fd_or.has_value()) {
    if (fd_or.error().code == ErrorCode::kUnsupported) return env().read_file(path);
    return fd_or.error();
  }
  const int fd = fd_or.value();
  struct FdCloser {
    int fd;
    ~FdCloser() { env().close_read(fd); }
  } closer{fd};

  auto size_or = env().fd_size(fd);
  if (!size_or.has_value()) return size_or.error();
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size_or.value()));
  std::size_t done = 0;
  int consecutive_failures = 0;
  while (done < data.size()) {
    const std::size_t want = std::min(kReadChunkBytes, data.size() - done);
    const long n = env().pread_some(fd, data.data() + done, want, done);
    if (n < 0) {
      const int err = errno;
      const bool transient = err == EINTR || err == EAGAIN || err == EIO;
      if (transient && ++consecutive_failures <= kIngestReadRetries) {
        io_metrics().counter("io_retries_total").add();
        continue;
      }
      return ingest_error(path, err);
    }
    if (n == 0) {
      return Error{ErrorCode::kIo, "short read (file shrank?): " + path};
    }
    consecutive_failures = 0;
    done += static_cast<std::size_t>(n);
  }
  return data;
}

// ------------------------------------------------------------ io_uring ring

#if HETINDEX_IO_URING

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(
      syscall(__NR_io_uring_enter, ring_fd, to_submit, min_complete, flags, nullptr, 0));
}

/// One mmap'd raw ring (no liburing). Single submitter/reaper thread, so
/// only the kernel-shared head/tail indices need atomic access.
struct RawRing {
  int ring_fd = -1;
  unsigned entries = 0;
  void* sq_ptr = nullptr;
  std::size_t sq_bytes = 0;
  void* cq_ptr = nullptr;  ///< == sq_ptr under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_bytes = 0;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_bytes = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  io_uring_cqe* cqes = nullptr;

  bool init(unsigned want_entries) {
    io_uring_params params{};
    ring_fd = sys_io_uring_setup(want_entries, &params);
    if (ring_fd < 0) return false;
    entries = params.sq_entries;

    sq_bytes = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_bytes = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) sq_bytes = cq_bytes = std::max(sq_bytes, cq_bytes);

    sq_ptr = ::mmap(nullptr, sq_bytes, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                    ring_fd, IORING_OFF_SQ_RING);
    if (sq_ptr == MAP_FAILED) return fail();
    if (single_mmap) {
      cq_ptr = sq_ptr;
    } else {
      cq_ptr = ::mmap(nullptr, cq_bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
      if (cq_ptr == MAP_FAILED) return fail();
    }
    sqes_bytes = params.sq_entries * sizeof(io_uring_sqe);
    sqes = static_cast<io_uring_sqe*>(::mmap(nullptr, sqes_bytes, PROT_READ | PROT_WRITE,
                                             MAP_SHARED | MAP_POPULATE, ring_fd,
                                             IORING_OFF_SQES));
    if (sqes == MAP_FAILED) return fail();

    auto* sq = static_cast<std::uint8_t*>(sq_ptr);
    sq_head = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    auto* cq = static_cast<std::uint8_t*>(cq_ptr);
    cq_head = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    return true;
  }

  bool fail() {
    destroy();
    return false;
  }

  void destroy() {
    if (sqes != nullptr && sqes != MAP_FAILED) ::munmap(sqes, sqes_bytes);
    if (cq_ptr != nullptr && cq_ptr != MAP_FAILED && cq_ptr != sq_ptr) {
      ::munmap(cq_ptr, cq_bytes);
    }
    if (sq_ptr != nullptr && sq_ptr != MAP_FAILED) ::munmap(sq_ptr, sq_bytes);
    if (ring_fd >= 0) ::close(ring_fd);
    sqes = nullptr;
    cq_ptr = sq_ptr = nullptr;
    ring_fd = -1;
  }

  ~RawRing() { destroy(); }

  /// Free submission slots (single submitter: relaxed tail, acquire head).
  [[nodiscard]] unsigned sq_space() const {
    const unsigned head = __atomic_load_n(sq_head, __ATOMIC_ACQUIRE);
    return entries - (*sq_tail - head);
  }

  /// Queues one READ sqe (not yet visible to the kernel until push_tail).
  void prep_read(int fd, void* buf, unsigned len, std::uint64_t offset,
                 std::uint64_t user_data) {
    const unsigned tail = *sq_tail;
    const unsigned idx = tail & *sq_mask;
    io_uring_sqe* sqe = &sqes[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_READ;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(buf);
    sqe->len = len;
    sqe->off = offset;
    sqe->user_data = user_data;
    sq_array[idx] = idx;
    __atomic_store_n(sq_tail, tail + 1, __ATOMIC_RELEASE);
  }

  /// Reaps completed cqes into `out`; returns how many.
  template <typename Fn>
  unsigned drain(Fn&& on_cqe) {
    unsigned head = *cq_head;
    const unsigned tail = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
    unsigned n = 0;
    while (head != tail) {
      const io_uring_cqe& cqe = cqes[head & *cq_mask];
      on_cqe(cqe);
      ++head;
      ++n;
    }
    __atomic_store_n(cq_head, head, __ATOMIC_RELEASE);
    return n;
  }
};

}  // namespace

struct AsyncReader::UringState {
  RawRing ring;
};

bool io_uring_available() {
  static const bool available = [] {
    RawRing probe;
    return probe.init(2);
  }();
  return available;
}

#else  // !HETINDEX_IO_URING

struct AsyncReader::UringState {};

bool io_uring_available() { return false; }

#endif

// -------------------------------------------------------------- AsyncReader

AsyncReader::AsyncReader(std::vector<std::string> files, AsyncReaderOptions options)
    : files_(std::move(files)), opt_(options) {
  opt_.prefetch_depth = std::max<std::size_t>(1, opt_.prefetch_depth);
  opt_.batch_files = std::clamp<std::size_t>(opt_.batch_files, 1, opt_.prefetch_depth);
  if (opt_.metrics != nullptr) {
    inflight_gauge_ = &opt_.metrics->gauge("read_prefetch_inflight");
    queue_wait_ = &opt_.metrics->time_counter("read_queue_wait_seconds_total");
    uring_submits_ = &opt_.metrics->counter("io_uring_submits_total");
  }

  // Backend resolution: io_uring only when compiled in, runtime-usable and
  // no Env override is installed — kernel-side reads are invisible to a
  // FaultEnv (or any other seam consumer), so overrides force the pool.
  const bool env_is_real = &env() == &real_env();
  bool use_uring = false;
#if HETINDEX_IO_URING
  if (opt_.backend != ReadBackend::kThreadPool && env_is_real && io_uring_available()) {
    ring_ = std::make_unique<UringState>();
    unsigned entries = 2;
    while (entries < opt_.prefetch_depth && entries < 128) entries <<= 1;
    use_uring = ring_->ring.init(entries);
    if (!use_uring) ring_.reset();
  }
#else
  (void)env_is_real;
#endif

  if (use_uring) {
    backend_ = ReadBackend::kIoUring;
    workers_.emplace_back([this] { uring_loop(); });
  } else {
    backend_ = ReadBackend::kThreadPool;
    const std::size_t n = std::min<std::size_t>(opt_.prefetch_depth, 8);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) workers_.emplace_back([this] { pool_worker(); });
  }
}

AsyncReader::~AsyncReader() {
  {
    std::scoped_lock lk(mu_);
    cancelled_ = true;
  }
  worker_cv_.notify_all();
  consumer_cv_.notify_all();
  workers_.clear();  // joins
}

std::vector<std::uint64_t> AsyncReader::claim_batch(bool may_block,
                                                    std::size_t in_flight) {
  std::unique_lock lk(mu_);
  const auto window_open = [&] {
    return next_claim_ < files_.size() && !failed_ &&
           next_claim_ - next_deliver_ < opt_.prefetch_depth;
  };
  if (may_block) {
    worker_cv_.wait(lk, [&] {
      return cancelled_ || failed_ || next_claim_ >= files_.size() || window_open();
    });
  }
  std::vector<std::uint64_t> batch;
  if (cancelled_) return batch;
  while (batch.size() + in_flight < opt_.batch_files && window_open()) {
    batch.push_back(next_claim_++);
    if (inflight_gauge_ != nullptr) inflight_gauge_->add(1);
  }
  return batch;
}

void AsyncReader::publish(std::uint64_t seq, Slot slot) {
  {
    std::scoped_lock lk(mu_);
    if (cancelled_) return;
    if (slot.error.has_value()) failed_ = true;  // stop claiming new files
    completed_.emplace(seq, std::move(slot));
  }
  consumer_cv_.notify_all();
  worker_cv_.notify_all();
}

void AsyncReader::pool_worker() {
  for (;;) {
    const auto batch = claim_batch(/*may_block=*/true, /*in_flight=*/0);
    if (batch.empty()) {
      std::scoped_lock lk(mu_);
      if (cancelled_ || failed_ || next_claim_ >= files_.size()) return;
      continue;
    }
    for (const auto seq : batch) {
      WallTimer timer;
      auto data = read_file_via_env(files_[seq]);
      Slot slot;
      slot.read_seconds = timer.seconds();
      if (data.has_value()) {
        slot.bytes = std::move(data).value();
      } else {
        slot.error = data.error();
      }
      publish(seq, std::move(slot));
    }
  }
}

#if HETINDEX_IO_URING

void AsyncReader::uring_loop() {
  struct Inflight {
    int fd = -1;
    std::vector<std::uint8_t> buf;
    std::uint64_t done = 0;  ///< bytes completed so far
    int retries = 0;
    WallTimer timer;
  };
  std::unordered_map<std::uint64_t, Inflight> inflight;
  RawRing& ring = ring_->ring;
  unsigned to_submit = 0;

  const auto publish_error = [&](std::uint64_t seq, Inflight& r, Error e) {
    if (r.fd >= 0) ::close(r.fd);
    Slot slot;
    slot.read_seconds = r.timer.seconds();
    slot.error = std::move(e);
    publish(seq, std::move(slot));
  };

  for (;;) {
    // Claim new files while the ring has room; block only when idle.
    const bool idle = inflight.empty() && to_submit == 0;
    if (ring.sq_space() > 0) {
      const auto batch = claim_batch(/*may_block=*/idle, inflight.size());
      if (idle && batch.empty()) {
        std::scoped_lock lk(mu_);
        if (cancelled_ || failed_ || next_claim_ >= files_.size()) break;
      }
      for (const auto seq : batch) {
        Inflight r;
        r.fd = ::open(files_[seq].c_str(), O_RDONLY | O_CLOEXEC);
        if (r.fd < 0) {
          publish_error(seq, r, ingest_error(files_[seq], errno));
          continue;
        }
        struct stat st {};
        if (::fstat(r.fd, &st) != 0) {
          publish_error(seq, r, ingest_error(files_[seq], errno));
          continue;
        }
        r.buf.resize(static_cast<std::size_t>(st.st_size));
        if (r.buf.empty()) {
          ::close(r.fd);
          Slot slot;
          publish(seq, std::move(slot));
          continue;
        }
        auto [it, inserted] = inflight.emplace(seq, std::move(r));
        auto& entry = it->second;
        const auto len = static_cast<unsigned>(
            std::min<std::uint64_t>(entry.buf.size(), 1u << 30));
        ring.prep_read(entry.fd, entry.buf.data(), len, 0, seq);
        ++to_submit;
        if (to_submit >= opt_.batch_files) break;
      }
    }

    if (to_submit == 0 && inflight.empty()) continue;

    // Submit the batch and wait for at least one completion.
    const unsigned wait_for = inflight.empty() ? 0 : 1;
    const int rc =
        sys_io_uring_enter(ring.ring_fd, to_submit, wait_for, IORING_ENTER_GETEVENTS);
    if (rc < 0 && errno != EINTR) {
      // The ring itself failed — unrecoverable for this backend; surface a
      // structured error on every in-flight file.
      const Error e{ErrorCode::kIo,
                    std::string("io_uring_enter failed: ") + std::strerror(errno)};
      for (auto& [seq, r] : inflight) publish_error(seq, r, e);
      inflight.clear();
      break;
    }
    if (rc >= 0) {
      if (to_submit > 0 && uring_submits_ != nullptr) uring_submits_->add(1);
      to_submit = 0;
    }

    // Reap completions: short reads resubmit the remainder, transient
    // errors retry bounded, everything else is a structured error.
    ring.drain([&](const io_uring_cqe& cqe) {
      const std::uint64_t seq = cqe.user_data;
      auto it = inflight.find(seq);
      if (it == inflight.end()) return;
      Inflight& r = it->second;
      const auto resubmit = [&] {
        const auto len = static_cast<unsigned>(
            std::min<std::uint64_t>(r.buf.size() - r.done, 1u << 30));
        ring.prep_read(r.fd, r.buf.data() + r.done, len, r.done, seq);
        ++to_submit;
      };
      if (cqe.res < 0) {
        const int err = -cqe.res;
        const bool transient = err == EINTR || err == EAGAIN || err == EIO;
        if (transient && ++r.retries <= kIngestReadRetries) {
          io_metrics().counter("io_retries_total").add();
          resubmit();
          return;
        }
        publish_error(seq, r, ingest_error(files_[seq], err));
        inflight.erase(it);
        return;
      }
      if (cqe.res == 0) {
        publish_error(seq, r,
                      Error{ErrorCode::kIo, "short read (file shrank?): " + files_[seq]});
        inflight.erase(it);
        return;
      }
      r.retries = 0;
      r.done += static_cast<std::uint64_t>(cqe.res);
      if (r.done < r.buf.size()) {
        resubmit();
        return;
      }
      ::close(r.fd);
      Slot slot;
      slot.read_seconds = r.timer.seconds();
      slot.bytes = std::move(r.buf);
      publish(seq, std::move(slot));
      inflight.erase(it);
    });

    bool cancelled_now = false;
    {
      std::scoped_lock lk(mu_);
      cancelled_now = cancelled_;
    }
    if (cancelled_now) {
      // Cancellation: the kernel may still write into in-flight buffers, so
      // drain every outstanding completion before freeing them.
      while (!inflight.empty()) {
        if (sys_io_uring_enter(ring.ring_fd, 0, 1, IORING_ENTER_GETEVENTS) < 0 &&
            errno != EINTR) {
          break;
        }
        ring.drain([&](const io_uring_cqe& cqe) {
          auto it = inflight.find(cqe.user_data);
          if (it == inflight.end()) return;
          if (it->second.fd >= 0) ::close(it->second.fd);
          inflight.erase(it);
        });
      }
      break;
    }
  }

  for (auto& [seq, r] : inflight) {
    if (r.fd >= 0) ::close(r.fd);
  }
}

#else

void AsyncReader::uring_loop() {}

#endif

std::optional<Expected<FileRead>> AsyncReader::next() {
  WallTimer wait_timer;
  std::unique_lock lk(mu_);
  consumer_cv_.wait(lk, [&] {
    return cancelled_ || first_error_.has_value() || next_deliver_ >= files_.size() ||
           completed_.count(next_deliver_) != 0;
  });
  if (first_error_.has_value()) return Expected<FileRead>(Error(*first_error_));
  if (cancelled_ || next_deliver_ >= files_.size()) return std::nullopt;

  const std::uint64_t seq = next_deliver_++;
  auto it = completed_.find(seq);
  Slot slot = std::move(it->second);
  completed_.erase(it);
  if (inflight_gauge_ != nullptr) inflight_gauge_->add(-1);
  const double waited = wait_timer.seconds();
  if (queue_wait_ != nullptr) queue_wait_->add(waited);

  if (slot.error.has_value()) {
    first_error_ = slot.error;
    failed_ = true;
    lk.unlock();
    consumer_cv_.notify_all();
    worker_cv_.notify_all();
    return Expected<FileRead>(Error(*slot.error));
  }
  lk.unlock();
  // The window just opened (and another consumer's seq may already be in
  // completed_): wake both sides.
  worker_cv_.notify_all();
  consumer_cv_.notify_all();

  FileRead out;
  out.seq = seq;
  out.bytes = std::move(slot.bytes);
  out.read_seconds = slot.read_seconds;
  out.queue_wait_seconds = waited;
  return Expected<FileRead>(std::move(out));
}

}  // namespace hetindex::io
