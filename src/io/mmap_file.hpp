#pragma once
/// \file mmap_file.hpp
/// Read-only memory-mapped files for the serving path. A segment is opened
/// once and then shared by many concurrent readers, so the mapping is
/// immutable by construction: PROT_READ pages, no copy of the blob area,
/// and the kernel page cache shared across processes serving the same
/// index. On platforms without mmap (or when mapping fails, e.g. on
/// filesystems that refuse it) the file is read into a private heap buffer
/// instead — same interface, same lifetime rules, just without the
/// sharing.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace hetindex {

/// RAII owner of one read-only mapping (or its heap-buffer fallback).
/// Movable, not copyable; `data()` stays valid across moves because both
/// the mapping address and the fallback vector's buffer are stable.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only; hard-fails when the file cannot be opened or
  /// read. A zero-byte file yields an empty (unmapped) view.
  static MmapFile open(const std::string& path);

  /// Non-aborting variant: kNotFound when the file is absent, kIo when it
  /// cannot be stat'ed or read. The pread fallback retries EINTR (bounded,
  /// counted in io_retries_total) and tolerates short reads; the fd is
  /// closed exactly once on every path.
  static Expected<MmapFile> try_open(const std::string& path);

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// True when backed by a real mapping (false: heap-buffer fallback).
  [[nodiscard]] bool is_mapped() const { return mapped_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void reset() noexcept;

  std::string path_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::uint8_t> fallback_;  ///< owns the bytes when !mapped_
};

}  // namespace hetindex
