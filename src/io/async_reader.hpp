#pragma once
/// \file async_reader.hpp
/// The prefetching ingest read path. AsyncReader turns a collection's file
/// list into an ordered stream of whole-file buffers, keeping up to
/// `prefetch_depth` files in flight so parsers never idle behind one
/// blocking read (the §III.F "one at a time" scheduler generalized to a
/// readahead window of configurable depth — depth 1 is the paper's
/// serialized discipline, handled by ReadScheduler without this class).
///
/// Two backends:
///  - io_uring (HETINDEX_IO_URING, Linux): a dedicated submission thread
///    owns a raw io_uring (no liburing dependency) and batches
///    IORING_OP_READ submissions `batch_files` at a time. Used only while
///    the process-current Env is RealEnv — kernel-side reads cannot be seen
///    by a FaultEnv override, so an installed override disables it.
///  - thread pool (always available): `prefetch_depth` workers issue
///    chunked preads through io::env() (open_read + pread_some), so fault
///    injection and write tracing observe every ingest byte.
///
/// Delivery is strictly in collection order through a bounded completion
/// queue: next() blocks until file `k` is ready even if `k+1` finished
/// first, which is what keeps downstream doc-ID bases (and therefore
/// postings) globally sorted. Read errors are structured, never aborts: a
/// transient fault (EINTR, injected EIO burst) is retried a bounded number
/// of times and counted in io_retries_total; a hard fault is delivered as
/// an Error at its seq, after which the reader stops issuing new reads.
///
/// Metrics (registered on the caller-supplied registry, see
/// docs/OBSERVABILITY.md): read_prefetch_inflight (gauge),
/// read_queue_wait_seconds_total (consumer stall), io_uring_submits_total.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace hetindex::io {

/// Which mechanism moves bytes from disk into the completion queue.
enum class ReadBackend {
  kAuto,        ///< io_uring when compiled in, runtime-usable and Env is real
  kIoUring,     ///< force io_uring (falls back if unavailable)
  kThreadPool,  ///< force the Env-routed pread worker pool
};

constexpr const char* read_backend_name(ReadBackend b) {
  switch (b) {
    case ReadBackend::kAuto: return "auto";
    case ReadBackend::kIoUring: return "io_uring";
    case ReadBackend::kThreadPool: return "thread_pool";
  }
  return "unknown";
}

/// True when this build carries the io_uring backend and the kernel accepts
/// io_uring_setup(2) (probed once per process; seccomp or an old kernel
/// turn it off at runtime even when compiled in).
bool io_uring_available();

struct AsyncReaderOptions {
  /// Files in flight plus completed-but-unclaimed. Bounds buffered memory
  /// at roughly depth × file size.
  std::size_t prefetch_depth = 4;
  /// Reads claimed/submitted per worker wake or io_uring_enter.
  std::size_t batch_files = 2;
  ReadBackend backend = ReadBackend::kAuto;
  /// Registry for the prefetch instruments; nullptr disables them.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One completed whole-file read, delivered in collection order.
struct FileRead {
  std::uint64_t seq = 0;              ///< index into the file list
  std::vector<std::uint8_t> bytes;    ///< full file contents
  double read_seconds = 0;            ///< backend time spent reading this file
  double queue_wait_seconds = 0;      ///< consumer time blocked in next()
};

/// Reads the whole file through the Env seam: open_read + chunked
/// pread_some with bounded consecutive-failure retries on transient faults
/// (EINTR, EAGAIN, injected EIO), each retry counted in io_retries_total.
/// Platforms without fd-level reads fall back to Env::read_file.
Expected<std::vector<std::uint8_t>> read_file_via_env(const std::string& path);

class AsyncReader {
 public:
  explicit AsyncReader(std::vector<std::string> files, AsyncReaderOptions options = {});
  ~AsyncReader();
  AsyncReader(const AsyncReader&) = delete;
  AsyncReader& operator=(const AsyncReader&) = delete;

  /// Blocks for the next file in collection order. nullopt when the
  /// collection is exhausted. A hard read error is delivered exactly once
  /// at its seq; every later call returns the same error (the reader has
  /// stopped claiming files).
  std::optional<Expected<FileRead>> next();

  /// The backend actually running (after auto/fallback resolution).
  [[nodiscard]] ReadBackend backend() const { return backend_; }
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

 private:
  struct Slot {
    std::vector<std::uint8_t> bytes;
    std::optional<Error> error;
    double read_seconds = 0;
  };
  struct UringState;  // raw ring bookkeeping, io_uring builds only

  void pool_worker();
  void uring_loop();
  /// Claims up to batch_files seqs inside the readahead window; empty when
  /// the collection is exhausted, failed or cancelled. Blocks while the
  /// window is full. `may_block` is false when the caller still has work in
  /// flight and only wants opportunistic claims.
  std::vector<std::uint64_t> claim_batch(bool may_block, std::size_t in_flight);
  void publish(std::uint64_t seq, Slot slot);

  std::vector<std::string> files_;
  AsyncReaderOptions opt_;
  ReadBackend backend_ = ReadBackend::kThreadPool;

  std::mutex mu_;
  std::condition_variable consumer_cv_;
  std::condition_variable worker_cv_;
  std::map<std::uint64_t, Slot> completed_;
  std::uint64_t next_claim_ = 0;
  std::uint64_t next_deliver_ = 0;
  bool failed_ = false;     ///< a worker published an error; stop claiming
  bool cancelled_ = false;  ///< destructor: unwind without draining
  std::optional<Error> first_error_;  ///< sticky error returned after delivery

  obs::Gauge* inflight_gauge_ = nullptr;
  obs::TimeCounter* queue_wait_ = nullptr;
  obs::Counter* uring_submits_ = nullptr;

  std::unique_ptr<UringState> ring_;
  std::vector<std::jthread> workers_;
};

}  // namespace hetindex::io
