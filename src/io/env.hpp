#pragma once
/// \file env.hpp
/// The filesystem seam every durable artifact goes through. All writes,
/// syncs, renames and unlinks issued by the library (segment writers, doc
/// maps, sidecars, the MANIFEST commit protocol, recovery cleanup) call the
/// process-current Env instead of POSIX directly, which buys two things:
///
///  1. One place to get the durability discipline right — full-write loops
///     that survive EINTR and partial writes, fsync with structured errors
///     instead of aborts, directory fsync after rename.
///  2. Deterministic fault injection: FaultEnv wraps the real filesystem
///     and injects short reads/writes, EINTR, ENOSPC with a torn prefix,
///     and fsync failure from a seeded schedule, while recording a write
///     trace. The crash-consistency harness replays every prefix of that
///     trace to simulate power loss at each point of a workload
///     (docs/DURABILITY.md).
///
/// The default Env is RealEnv; tests install a FaultEnv with ScopedEnv.
/// io_metrics() exports `io_retries_total` and `fsync_failures_total`.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace hetindex::io {

/// Virtual filesystem interface. Whole-file operations carry structured
/// errors; pread_some/mmap_allowed are the byte-level hooks behind
/// MmapFile's fallback read path.
class Env {
 public:
  virtual ~Env() = default;

  /// Reads the whole file. kNotFound when absent, kIo on read failure.
  virtual Expected<std::vector<std::uint8_t>> read_file(const std::string& path) = 0;
  /// Creates/truncates `path` and writes all of `data` (no fsync). A
  /// failure may leave a partial file behind — durable_write_file cleans up.
  virtual Status write_file(const std::string& path, const std::uint8_t* data,
                            std::size_t size) = 0;
  /// fsyncs the file's data + metadata.
  virtual Status sync_file(const std::string& path) = 0;
  /// fsyncs a directory, making entry creations/renames/unlinks durable.
  virtual Status sync_dir(const std::string& dir) = 0;
  /// Atomic rename (the commit-point primitive).
  virtual Status rename_file(const std::string& from, const std::string& to) = 0;
  /// Unlinks `path`; an already-absent path is success.
  virtual Status remove_file(const std::string& path) = 0;
  [[nodiscard]] virtual bool file_exists(const std::string& path) = 0;

  /// ::pread semantics — may return a short count or -1 with errno set
  /// (FaultEnv injects EINTR, short reads and EIO bursts here).
  virtual long pread_some(int fd, void* buf, std::size_t n, std::uint64_t offset) = 0;
  /// False forces MmapFile onto the pread fallback path.
  [[nodiscard]] virtual bool mmap_allowed() const { return true; }

  // Fd-level read hooks behind the ingest readahead path (io/async_reader.hpp):
  // the thread-pool backend reads open_read + fd_size + pread_some so fault
  // injection sees every ingest byte. Defaults are POSIX-backed passthroughs
  // (kUnsupported on non-POSIX platforms, which sends callers to read_file).

  /// Opens `path` read-only for pread_some access. kNotFound when absent.
  virtual Expected<int> open_read(const std::string& path);
  /// Byte size of an open_read fd (fstat).
  virtual Expected<std::uint64_t> fd_size(int fd);
  /// Closes an open_read fd.
  virtual void close_read(int fd);
};

/// The process-wide RealEnv singleton (POSIX-backed).
Env& real_env();
/// The current Env — real_env() unless a test installed an override.
Env& env();
/// Installs `e` as the current Env (nullptr restores RealEnv); returns the
/// previous override (nullptr when it was RealEnv). Not thread-safe against
/// concurrent I/O — install before spawning workers.
Env* set_env(Env* e);

/// RAII override for tests.
class ScopedEnv {
 public:
  explicit ScopedEnv(Env& e) : prev_(set_env(&e)) {}
  ~ScopedEnv() { set_env(prev_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  Env* prev_;
};

/// Process-wide I/O health counters: `io_retries_total` (transient faults
/// absorbed by retry loops) and `fsync_failures_total`.
obs::MetricsRegistry& io_metrics();

/// Writes `size` bytes durably: write + fsync, with a bounded whole-file
/// retry (the file is rewritten from scratch each attempt, so a failed
/// fsync never "succeeds" against dirty pages) on transient faults. On
/// failure the partial file is removed — no stray artifacts.
Status durable_write_file(const std::string& path, const std::uint8_t* data,
                          std::size_t size);
inline Status durable_write_file(const std::string& path,
                                 const std::vector<std::uint8_t>& data) {
  return durable_write_file(path, data.data(), data.size());
}

// ------------------------------------------------------------- fault layer

/// One recorded mutation. The crash-consistency harness replays prefixes of
/// a WriteOp sequence to materialize every crash state a workload can leave
/// behind (payloads are kept in full so torn variants can be synthesized).
struct WriteOp {
  enum class Kind : std::uint8_t { kWriteFile, kSyncFile, kSyncDir, kRename, kUnlink };
  Kind kind = Kind::kWriteFile;
  std::string path;                 ///< target (rename: source)
  std::string path2;                ///< rename destination
  std::vector<std::uint8_t> data;   ///< full payload (kWriteFile only)
};

/// Deterministic, seeded fault schedule. Operation counters are 1-based;
/// 0 disables an injection.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// The Nth write_file writes a seeded torn prefix, then fails (ENOSPC).
  std::uint64_t fail_write_at = 0;
  /// The Nth sync_file fails (EIO) — the fsyncgate scenario.
  std::uint64_t fail_sync_at = 0;
  /// Every Nth write_file fails transiently (nothing written; retryable).
  std::uint64_t transient_write_every = 0;
  /// Every Nth pread_some returns -1 with errno=EINTR.
  std::uint64_t pread_eintr_every = 0;
  /// Clamp pread_some to at most this many bytes (0 = no clamp).
  std::uint64_t short_pread_bytes = 0;
  /// Starting at the Nth pread_some (1-based), fail `pread_eio_count`
  /// consecutive preads with EIO. A short burst is absorbed by the ingest
  /// read path's bounded retries (counted in io_retries_total); a burst
  /// longer than the retry budget surfaces as a structured hard kIo error.
  std::uint64_t pread_eio_at = 0;
  std::uint64_t pread_eio_count = 1;
  /// Refuse mmap so readers take the pread fallback path.
  bool deny_mmap = false;
};

/// Fault-injecting Env over a base (default: the real filesystem). Records
/// every successful mutation — including the torn prefix of an injected
/// ENOSPC — into an in-order write trace.
class FaultEnv final : public Env {
 public:
  explicit FaultEnv(FaultPlan plan = {}, Env& base = real_env());

  Expected<std::vector<std::uint8_t>> read_file(const std::string& path) override;
  Status write_file(const std::string& path, const std::uint8_t* data,
                    std::size_t size) override;
  Status sync_file(const std::string& path) override;
  Status sync_dir(const std::string& dir) override;
  Status rename_file(const std::string& from, const std::string& to) override;
  Status remove_file(const std::string& path) override;
  [[nodiscard]] bool file_exists(const std::string& path) override;
  long pread_some(int fd, void* buf, std::size_t n, std::uint64_t offset) override;
  [[nodiscard]] bool mmap_allowed() const override { return !plan_.deny_mmap; }

  /// Snapshot of the recorded trace (copy; safe to replay after more ops).
  [[nodiscard]] std::vector<WriteOp> trace() const;
  void clear_trace();
  /// Replaces the schedule and resets its operation counters (the trace is
  /// kept — faults can be staged mid-workload).
  void set_plan(FaultPlan plan);
  [[nodiscard]] std::uint64_t writes_seen() const;
  [[nodiscard]] std::uint64_t syncs_seen() const;

 private:
  mutable std::mutex mu_;
  FaultPlan plan_;
  Env& base_;
  std::uint64_t rng_state_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t preads_ = 0;
  std::vector<WriteOp> trace_;
};

}  // namespace hetindex::io
