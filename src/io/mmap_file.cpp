#include "io/mmap_file.hpp"

#include <cerrno>
#include <utility>

#include "io/env.hpp"
#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define HETINDEX_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define HETINDEX_HAVE_MMAP 0
#endif

namespace hetindex {

MmapFile::~MmapFile() { reset(); }

void MmapFile::reset() noexcept {
#if HETINDEX_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
  fallback_.shrink_to_fit();
}

MmapFile::MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    path_ = std::move(other.path_);
    fallback_ = std::move(other.fallback_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

#if HETINDEX_HAVE_MMAP
namespace {
/// Closes the fd exactly once, whichever path leaves scope first — the fix
/// for the historical double-close on the pread fallback's error path.
class FdGuard {
 public:
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
  [[nodiscard]] int get() const { return fd_; }

 private:
  int fd_;
};

/// EINTR is a transient condition, not corruption — but an injected storm
/// must not hang the reader, so the retries are bounded (and counted).
constexpr int kMaxEintrRetries = 100;
}  // namespace
#endif

MmapFile MmapFile::open(const std::string& path) {
  auto f = try_open(path);
  if (!f.has_value()) {
    check_failed("MmapFile::open", __FILE__, __LINE__, f.error().message.c_str());
  }
  return std::move(f).value();
}

Expected<MmapFile> MmapFile::try_open(const std::string& path) {
  MmapFile f;
  f.path_ = path;
#if HETINDEX_HAVE_MMAP
  const int raw = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (raw < 0) {
    if (errno == ENOENT) return Error{ErrorCode::kNotFound, "no such file: " + path};
    return Error{ErrorCode::kIo, "cannot open file for mapping: " + path};
  }
  FdGuard fd(raw);
  struct stat st {};
  if (::fstat(fd.get(), &st) != 0) {
    return Error{ErrorCode::kIo, "cannot stat file for mapping: " + path};
  }
  f.size_ = static_cast<std::size_t>(st.st_size);
  if (f.size_ > 0 && io::env().mmap_allowed()) {
    void* p = ::mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd.get(), 0);
    if (p != MAP_FAILED) {
      f.data_ = static_cast<const std::uint8_t*>(p);
      f.mapped_ = true;
    }
  }
  if (!f.mapped_ && f.size_ > 0) {
    // pread fallback: mapping refused (some network/overlay filesystems).
    f.fallback_.resize(f.size_);
    std::size_t done = 0;
    int retries = 0;
    while (done < f.size_) {
      const long n = io::env().pread_some(fd.get(), f.fallback_.data() + done,
                                          f.size_ - done, done);
      if (n < 0 && errno == EINTR) {
        if (++retries > kMaxEintrRetries) {
          return Error{ErrorCode::kIo, "pread interrupted beyond retry bound: " + path};
        }
        io::io_metrics().counter("io_retries_total").add();
        continue;
      }
      if (n <= 0) {
        return Error{ErrorCode::kIo, "cannot read file (pread fallback): " + path};
      }
      done += static_cast<std::size_t>(n);
    }
    f.data_ = f.fallback_.data();
  }
#else
  auto data = io::env().read_file(path);
  if (!data.has_value()) return data.error();
  f.fallback_ = std::move(data).value();
  f.data_ = f.fallback_.data();
  f.size_ = f.fallback_.size();
#endif
  return f;
}

}  // namespace hetindex
