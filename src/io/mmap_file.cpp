#include "io/mmap_file.hpp"

#include <utility>

#include "util/binary_io.hpp"
#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define HETINDEX_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define HETINDEX_HAVE_MMAP 0
#endif

namespace hetindex {

MmapFile::~MmapFile() { reset(); }

void MmapFile::reset() noexcept {
#if HETINDEX_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
  fallback_.shrink_to_fit();
}

MmapFile::MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    path_ = std::move(other.path_);
    fallback_ = std::move(other.fallback_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

MmapFile MmapFile::open(const std::string& path) {
  MmapFile f;
  f.path_ = path;
#if HETINDEX_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  HET_CHECK_MSG(fd >= 0, "cannot open file for mapping");
  struct stat st {};
  const int rc = ::fstat(fd, &st);
  if (rc != 0) ::close(fd);
  HET_CHECK_MSG(rc == 0, "cannot stat file for mapping");
  f.size_ = static_cast<std::size_t>(st.st_size);
  if (f.size_ > 0) {
    void* p = ::mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p != MAP_FAILED) {
      f.data_ = static_cast<const std::uint8_t*>(p);
      f.mapped_ = true;
    }
  }
  if (!f.mapped_ && f.size_ > 0) {
    // pread fallback: mapping refused (some network/overlay filesystems).
    f.fallback_.resize(f.size_);
    std::size_t done = 0;
    while (done < f.size_) {
      const ssize_t n = ::pread(fd, f.fallback_.data() + done, f.size_ - done,
                                static_cast<off_t>(done));
      if (n <= 0) ::close(fd);
      HET_CHECK_MSG(n > 0, "cannot read file (pread fallback)");
      done += static_cast<std::size_t>(n);
    }
    f.data_ = f.fallback_.data();
  }
  ::close(fd);
#else
  f.fallback_ = read_file(path);
  f.data_ = f.fallback_.data();
  f.size_ = f.fallback_.size();
#endif
  return f;
}

}  // namespace hetindex
