#include "io/env.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

#include "util/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define HETINDEX_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define HETINDEX_HAVE_POSIX_IO 0
#include <cstdio>
#include <filesystem>
#endif

namespace hetindex::io {
namespace {

constexpr int kDurableWriteAttempts = 3;

[[maybe_unused]] Error io_error(const std::string& what, const std::string& path,
                                int err, bool transient = false) {
  return Error{ErrorCode::kIo, what + ": " + path + " (" + std::strerror(err) + ")",
               transient};
}

#if HETINDEX_HAVE_POSIX_IO
/// Single-close RAII guard — the fix for the historical double-close on the
/// pread error path (mmap_file.cpp) and the pattern every Env method uses.
class FdGuard {
 public:
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() { reset(); }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  /// Closes now and reports whether close() itself succeeded.
  bool close_now() {
    if (fd_ < 0) return true;
    const int rc = ::close(fd_);
    fd_ = -1;
    return rc == 0;
  }

 private:
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  int fd_;
};
#endif

class RealEnv final : public Env {
 public:
  Expected<std::vector<std::uint8_t>> read_file(const std::string& path) override {
#if HETINDEX_HAVE_POSIX_IO
    const int raw = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (raw < 0) {
      const int err = errno;
      if (err == ENOENT) return Error{ErrorCode::kNotFound, "no such file: " + path};
      return io_error("cannot open file for reading", path, err);
    }
    FdGuard fd(raw);
    struct stat st {};
    if (::fstat(fd.get(), &st) != 0) {
      return io_error("cannot stat file", path, errno);
    }
    std::vector<std::uint8_t> data(static_cast<std::size_t>(st.st_size));
    std::size_t done = 0;
    while (done < data.size()) {
      const ssize_t n =
          ::read(fd.get(), data.data() + done, data.size() - done);
      if (n < 0) {
        if (errno == EINTR) {
          io_metrics().counter("io_retries_total").add();
          continue;
        }
        return io_error("read failed", path, errno);
      }
      if (n == 0) {
        return Error{ErrorCode::kIo, "short read (file shrank?): " + path};
      }
      done += static_cast<std::size_t>(n);
    }
    return data;
#else
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Error{ErrorCode::kNotFound, "cannot open: " + path};
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> data(size > 0 ? static_cast<std::size_t>(size) : 0);
    const std::size_t got = data.empty() ? 0 : std::fread(data.data(), 1, data.size(), f);
    std::fclose(f);
    if (got != data.size()) return Error{ErrorCode::kIo, "short read: " + path};
    return data;
#endif
  }

  Status write_file(const std::string& path, const std::uint8_t* data,
                    std::size_t size) override {
#if HETINDEX_HAVE_POSIX_IO
    const int raw =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (raw < 0) return io_error("cannot open file for writing", path, errno);
    FdGuard fd(raw);
    std::size_t done = 0;
    while (done < size) {
      const ssize_t n = ::write(fd.get(), data + done, size - done);
      if (n < 0) {
        if (errno == EINTR) {
          // Absorb the interruption here: a full-write loop is the contract.
          io_metrics().counter("io_retries_total").add();
          continue;
        }
        return io_error("write failed", path, errno);
      }
      done += static_cast<std::size_t>(n);
    }
    if (!fd.close_now()) return io_error("close failed after write", path, errno);
    return Unit{};
#else
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Error{ErrorCode::kIo, "cannot open for writing: " + path};
    const std::size_t put = size == 0 ? 0 : std::fwrite(data, 1, size, f);
    const bool closed = std::fclose(f) == 0;
    if (put != size || !closed) return Error{ErrorCode::kIo, "short write: " + path};
    return Unit{};
#endif
  }

  Status sync_file(const std::string& path) override {
#if HETINDEX_HAVE_POSIX_IO
    const int raw = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (raw < 0) return io_error("cannot open file for fsync", path, errno);
    FdGuard fd(raw);
    if (::fsync(fd.get()) != 0) {
      io_metrics().counter("fsync_failures_total").add();
      return io_error("fsync failed", path, errno);
    }
    return Unit{};
#else
    (void)path;
    return Unit{};
#endif
  }

  Status sync_dir(const std::string& dir) override {
#if HETINDEX_HAVE_POSIX_IO
    const int raw = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (raw < 0) return io_error("cannot open directory for fsync", dir, errno);
    FdGuard fd(raw);
    if (::fsync(fd.get()) != 0) {
      // Some filesystems refuse directory fsync outright; that is the
      // platform's durability ceiling, not a commit failure.
      if (errno == EINVAL || errno == ENOTSUP) return Unit{};
      io_metrics().counter("fsync_failures_total").add();
      return io_error("directory fsync failed", dir, errno);
    }
    return Unit{};
#else
    (void)dir;
    return Unit{};
#endif
  }

  Status rename_file(const std::string& from, const std::string& to) override {
#if HETINDEX_HAVE_POSIX_IO
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return io_error("rename failed", from + " -> " + to, errno);
    }
    return Unit{};
#else
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec) return Error{ErrorCode::kIo, "rename failed: " + from + " -> " + to};
    return Unit{};
#endif
  }

  Status remove_file(const std::string& path) override {
#if HETINDEX_HAVE_POSIX_IO
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return io_error("unlink failed", path, errno);
    }
    return Unit{};
#else
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (ec) return Error{ErrorCode::kIo, "remove failed: " + path};
    return Unit{};
#endif
  }

  bool file_exists(const std::string& path) override {
#if HETINDEX_HAVE_POSIX_IO
    struct stat st {};
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
#else
    std::error_code ec;
    return std::filesystem::is_regular_file(path, ec);
#endif
  }

  long pread_some(int fd, void* buf, std::size_t n, std::uint64_t offset) override {
#if HETINDEX_HAVE_POSIX_IO
    return static_cast<long>(::pread(fd, buf, n, static_cast<off_t>(offset)));
#else
    (void)fd;
    (void)buf;
    (void)n;
    (void)offset;
    errno = ENOSYS;
    return -1;
#endif
  }
};

std::atomic<Env*> g_env_override{nullptr};

}  // namespace

// Base-class defaults for the fd-level ingest read hooks: plain POSIX
// passthroughs shared by RealEnv and FaultEnv (FaultEnv's injections live in
// pread_some, which both open paths funnel into).
Expected<int> Env::open_read(const std::string& path) {
#if HETINDEX_HAVE_POSIX_IO
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    const int err = errno;
    if (err == ENOENT) return Error{ErrorCode::kNotFound, "no such file: " + path};
    return io_error("cannot open file for reading", path, err);
  }
  return fd;
#else
  return Error{ErrorCode::kUnsupported, "fd-level reads unavailable: " + path};
#endif
}

Expected<std::uint64_t> Env::fd_size(int fd) {
#if HETINDEX_HAVE_POSIX_IO
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    return io_error("cannot stat fd", std::to_string(fd), errno);
  }
  return static_cast<std::uint64_t>(st.st_size);
#else
  (void)fd;
  return Error{ErrorCode::kUnsupported, "fd-level reads unavailable"};
#endif
}

void Env::close_read(int fd) {
#if HETINDEX_HAVE_POSIX_IO
  if (fd >= 0) ::close(fd);
#else
  (void)fd;
#endif
}

Env& real_env() {
  static RealEnv env;
  return env;
}

Env& env() {
  Env* e = g_env_override.load(std::memory_order_acquire);
  return e != nullptr ? *e : real_env();
}

Env* set_env(Env* e) { return g_env_override.exchange(e, std::memory_order_acq_rel); }

obs::MetricsRegistry& io_metrics() {
  static obs::MetricsRegistry registry;
  return registry;
}

Status durable_write_file(const std::string& path, const std::uint8_t* data,
                          std::size_t size) {
  Error last;
  for (int attempt = 0; attempt < kDurableWriteAttempts; ++attempt) {
    if (attempt > 0) io_metrics().counter("io_retries_total").add();
    auto written = env().write_file(path, data, size);
    if (!written.has_value()) {
      last = written.error();
      if (last.transient) continue;
      break;
    }
    auto synced = env().sync_file(path);
    if (!synced.has_value()) {
      last = synced.error();
      // Never retry fsync against possibly-dirty pages (the fsyncgate
      // lesson): each attempt rewrites the file from scratch above.
      if (last.transient) continue;
      break;
    }
    return Unit{};
  }
  // No stray partial artifacts: a failed durable write leaves nothing.
  (void)env().remove_file(path);
  return last;
}

// ----------------------------------------------------------------- FaultEnv

FaultEnv::FaultEnv(FaultPlan plan, Env& base)
    : plan_(plan), base_(base), rng_state_(plan.seed) {}

Expected<std::vector<std::uint8_t>> FaultEnv::read_file(const std::string& path) {
  return base_.read_file(path);
}

Status FaultEnv::write_file(const std::string& path, const std::uint8_t* data,
                            std::size_t size) {
  std::lock_guard lk(mu_);
  const std::uint64_t n = ++writes_;
  if (plan_.transient_write_every != 0 && n % plan_.transient_write_every == 0) {
    return Error{ErrorCode::kIo, "injected transient write failure: " + path,
                 /*transient=*/true};
  }
  if (plan_.fail_write_at != 0 && n == plan_.fail_write_at) {
    // Torn write: a seeded prefix reaches the disk, then the device is full.
    const std::size_t keep =
        size == 0 ? 0 : static_cast<std::size_t>(splitmix64(rng_state_) % size);
    auto torn = base_.write_file(path, data, keep);
    if (torn.has_value()) {
      trace_.push_back({WriteOp::Kind::kWriteFile, path, {},
                        std::vector<std::uint8_t>(data, data + keep)});
    }
    return Error{ErrorCode::kIo, "injected ENOSPC (torn write): " + path};
  }
  auto r = base_.write_file(path, data, size);
  if (r.has_value()) {
    trace_.push_back({WriteOp::Kind::kWriteFile, path, {},
                      std::vector<std::uint8_t>(data, data + size)});
  }
  return r;
}

Status FaultEnv::sync_file(const std::string& path) {
  std::lock_guard lk(mu_);
  const std::uint64_t n = ++syncs_;
  if (plan_.fail_sync_at != 0 && n == plan_.fail_sync_at) {
    io_metrics().counter("fsync_failures_total").add();
    return Error{ErrorCode::kIo, "injected fsync failure (EIO): " + path};
  }
  auto r = base_.sync_file(path);
  if (r.has_value()) trace_.push_back({WriteOp::Kind::kSyncFile, path, {}, {}});
  return r;
}

Status FaultEnv::sync_dir(const std::string& dir) {
  std::lock_guard lk(mu_);
  auto r = base_.sync_dir(dir);
  if (r.has_value()) trace_.push_back({WriteOp::Kind::kSyncDir, dir, {}, {}});
  return r;
}

Status FaultEnv::rename_file(const std::string& from, const std::string& to) {
  std::lock_guard lk(mu_);
  auto r = base_.rename_file(from, to);
  if (r.has_value()) trace_.push_back({WriteOp::Kind::kRename, from, to, {}});
  return r;
}

Status FaultEnv::remove_file(const std::string& path) {
  std::lock_guard lk(mu_);
  auto r = base_.remove_file(path);
  if (r.has_value()) trace_.push_back({WriteOp::Kind::kUnlink, path, {}, {}});
  return r;
}

bool FaultEnv::file_exists(const std::string& path) { return base_.file_exists(path); }

long FaultEnv::pread_some(int fd, void* buf, std::size_t n, std::uint64_t offset) {
  std::uint64_t clamp = 0;
  {
    std::lock_guard lk(mu_);
    const std::uint64_t call = ++preads_;
    if (plan_.pread_eio_at != 0 && call >= plan_.pread_eio_at &&
        call < plan_.pread_eio_at + std::max<std::uint64_t>(1, plan_.pread_eio_count)) {
      errno = EIO;
      return -1;
    }
    if (plan_.pread_eintr_every != 0 && call % plan_.pread_eintr_every == 0) {
      errno = EINTR;
      return -1;
    }
    clamp = plan_.short_pread_bytes;
  }
  if (clamp != 0 && n > clamp) n = static_cast<std::size_t>(clamp);
  return base_.pread_some(fd, buf, n, offset);
}

std::vector<WriteOp> FaultEnv::trace() const {
  std::lock_guard lk(mu_);
  return trace_;
}

void FaultEnv::clear_trace() {
  std::lock_guard lk(mu_);
  trace_.clear();
}

void FaultEnv::set_plan(FaultPlan plan) {
  std::lock_guard lk(mu_);
  plan_ = plan;
  rng_state_ = plan.seed;
  writes_ = 0;
  syncs_ = 0;
  preads_ = 0;
}

std::uint64_t FaultEnv::writes_seen() const {
  std::lock_guard lk(mu_);
  return writes_;
}

std::uint64_t FaultEnv::syncs_seen() const {
  std::lock_guard lk(mu_);
  return syncs_;
}

}  // namespace hetindex::io
