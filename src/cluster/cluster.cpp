#include "cluster/cluster.hpp"

#include <charconv>
#include <filesystem>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "io/env.hpp"
#include "util/check.hpp"

namespace hetindex {
namespace {

constexpr std::string_view kMetaMagic = "hetindex-cluster v1";

std::string meta_path(const std::string& dir) { return dir + "/CLUSTER"; }

std::string shard_dir(const std::string& dir, std::uint32_t shard) {
  return dir + "/shard-" + std::to_string(shard);
}

/// Topology as pinned on disk — everything the placement function depends on.
struct ClusterMeta {
  PartitionStrategy strategy = PartitionStrategy::kDocument;
  std::uint32_t shards = 0;
  std::uint32_t block_docs = 0;
};

std::vector<std::uint8_t> encode_meta(const ClusterMeta& meta) {
  std::ostringstream out;
  out << kMetaMagic << '\n'
      << "strategy=" << partition_strategy_name(meta.strategy) << '\n'
      << "shards=" << meta.shards << '\n'
      << "block_docs=" << meta.block_docs << '\n';
  const std::string text = out.str();
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

std::optional<std::uint32_t> parse_u32(std::string_view text) {
  std::uint32_t value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

Expected<ClusterMeta> decode_meta(const std::vector<std::uint8_t>& bytes) {
  const auto corrupt = [](const char* why) {
    return Error{ErrorCode::kCorrupt, std::string("CLUSTER meta: ") + why};
  };
  std::string_view text(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  ClusterMeta meta;
  bool saw_strategy = false, saw_shards = false, saw_blocks = false;
  std::size_t line_no = 0;
  while (!text.empty()) {
    const std::size_t eol = text.find('\n');
    const std::string_view line = text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{} : text.substr(eol + 1);
    if (line_no++ == 0) {
      if (line != kMetaMagic) return corrupt("bad magic line");
      continue;
    }
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) return corrupt("line is not key=value");
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "strategy") {
      const auto parsed = parse_partition_strategy(value);
      if (!parsed) return corrupt("unknown strategy");
      meta.strategy = *parsed;
      saw_strategy = true;
    } else if (key == "shards") {
      const auto parsed = parse_u32(value);
      if (!parsed || *parsed == 0) return corrupt("bad shard count");
      meta.shards = *parsed;
      saw_shards = true;
    } else if (key == "block_docs") {
      const auto parsed = parse_u32(value);
      if (!parsed) return corrupt("bad block_docs");
      meta.block_docs = *parsed;
      saw_blocks = true;
    }
    // Unknown keys are ignored — forward compatibility.
  }
  if (line_no == 0) return corrupt("empty file");
  if (!saw_strategy || !saw_shards || !saw_blocks) {
    return corrupt("missing strategy/shards/block_docs");
  }
  if (meta.strategy == PartitionStrategy::kBlock && meta.block_docs == 0) {
    return corrupt("block strategy with block_docs=0");
  }
  return meta;
}

}  // namespace

struct Cluster::State {
  std::string dir;
  ClusterOptions options;
  std::shared_ptr<const Partitioner> partitioner;
  std::vector<std::shared_ptr<Shard>> shards;
  std::uint64_t next_global = 0;
};

Cluster::Cluster(std::unique_ptr<State> state) : state_(std::move(state)) {}
Cluster::Cluster(Cluster&&) noexcept = default;
Cluster& Cluster::operator=(Cluster&&) noexcept = default;
Cluster::~Cluster() = default;

Expected<Cluster> Cluster::open(const std::string& dir, ClusterOptions options) {
  if (options.shards == 0) {
    return Error{ErrorCode::kInvalidArgument, "cluster needs at least one shard"};
  }
  if (options.replicas == 0) {
    return Error{ErrorCode::kInvalidArgument, "cluster needs at least one replica"};
  }
  if (options.strategy == PartitionStrategy::kBlock && options.block_docs == 0) {
    return Error{ErrorCode::kInvalidArgument, "block partitioning needs block_docs > 0"};
  }

  std::error_code fs_error;
  std::filesystem::create_directories(dir, fs_error);
  if (fs_error) {
    return Error{ErrorCode::kIo, "cannot create cluster dir " + dir + ": " + fs_error.message()};
  }

  const std::string meta_file = meta_path(dir);
  ClusterMeta meta{options.strategy, options.shards, options.block_docs};
  if (io::env().file_exists(meta_file)) {
    auto bytes = io::env().read_file(meta_file);
    if (!bytes) return bytes.error();
    auto decoded = decode_meta(*bytes);
    if (!decoded) return decoded.error();
    // The placement function is a property of the data on disk: reject
    // options that contradict it rather than silently rerouting documents.
    const ClusterOptions defaults{};
    const bool strategy_overridden = options.strategy != defaults.strategy;
    const bool shards_overridden = options.shards != defaults.shards;
    const bool blocks_overridden = options.block_docs != defaults.block_docs;
    if ((strategy_overridden && options.strategy != decoded->strategy) ||
        (shards_overridden && options.shards != decoded->shards) ||
        (blocks_overridden && options.block_docs != decoded->block_docs)) {
      return Error{ErrorCode::kInvalidArgument,
                   "cluster topology mismatch: on-disk is strategy=" +
                       std::string(partition_strategy_name(decoded->strategy)) +
                       " shards=" + std::to_string(decoded->shards) +
                       " block_docs=" + std::to_string(decoded->block_docs)};
    }
    meta = *decoded;
  } else {
    // New cluster: pin the topology durably before any shard exists, so a
    // crash between shard creations still reopens with the right placement.
    if (auto status = io::durable_write_file(meta_file + ".tmp", encode_meta(meta));
        !status) {
      return status.error();
    }
    if (auto status = io::env().rename_file(meta_file + ".tmp", meta_file); !status) {
      (void)io::env().remove_file(meta_file + ".tmp");
      return status.error();
    }
    if (auto status = io::env().sync_dir(dir); !status) return status.error();
  }

  auto state = std::make_unique<State>();
  state->dir = dir;
  state->options = options;
  state->options.strategy = meta.strategy;
  state->options.shards = meta.shards;
  state->options.block_docs = meta.block_docs;
  state->partitioner = make_partitioner(meta.strategy, meta.shards,
                                        meta.block_docs == 0 ? 1 : meta.block_docs);

  std::vector<std::uint64_t> widths;
  widths.reserve(meta.shards);
  for (std::uint32_t s = 0; s < meta.shards; ++s) {
    auto writer = IndexWriter::open(shard_dir(dir, s), options.writer);
    if (!writer) return writer.error();
    auto shared = std::make_shared<IndexWriter>(std::move(*writer));
    widths.push_back(shared->snapshot()->total_docs());
    state->shards.push_back(
        std::make_shared<Shard>(std::move(shared), options.replicas, options.serving));
  }

  // Recover the global id sequence from the shards' committed widths. The
  // placement closed forms make the per-shard widths a function of the
  // global width G; invert it, then validate every shard against the
  // expected distribution — a mismatch means the directories were tampered
  // with or mixed from different clusters.
  const std::uint64_t total = state->partitioner->replicates_documents()
                                  ? widths[0]
                                  : [&widths] {
                                      std::uint64_t sum = 0;
                                      for (const auto w : widths) sum += w;
                                      return sum;
                                    }();
  for (std::uint32_t s = 0; s < meta.shards; ++s) {
    if (state->partitioner->expected_shard_docs(s, total) != widths[s]) {
      return Error{ErrorCode::kCorrupt,
                   "shard-" + std::to_string(s) + " width " + std::to_string(widths[s]) +
                       " does not match strategy " +
                       std::string(partition_strategy_name(meta.strategy)) +
                       " at total " + std::to_string(total)};
    }
  }
  state->next_global = total;

  return Cluster(std::move(state));
}

std::uint32_t Cluster::add_document(const std::string& url, const std::string& body) {
  const auto global = static_cast<std::uint32_t>(state_->next_global);
  if (state_->partitioner->replicates_documents()) {
    for (const auto& shard : state_->shards) {
      const std::uint32_t local = shard->writer().add_document(url, body);
      HET_CHECK_MSG(local == global, "replicated shard drifted from global id space");
    }
  } else {
    const std::uint32_t owner = state_->partitioner->doc_shard(global);
    const std::uint32_t local = state_->shards[owner]->writer().add_document(url, body);
    HET_CHECK_MSG(local == state_->partitioner->local_doc(global),
                  "shard writer drifted from the placement closed form");
  }
  ++state_->next_global;
  return global;
}

Status Cluster::delete_document(std::uint32_t global_doc) {
  if (global_doc >= state_->next_global) {
    return Error{ErrorCode::kInvalidArgument,
                 "global doc " + std::to_string(global_doc) + " was never assigned"};
  }
  if (state_->partitioner->replicates_documents()) {
    for (const auto& shard : state_->shards) {
      if (auto status = shard->writer().delete_document(global_doc); !status) {
        return status;
      }
    }
    return Unit{};
  }
  const std::uint32_t owner = state_->partitioner->doc_shard(global_doc);
  return state_->shards[owner]->writer().delete_document(
      state_->partitioner->local_doc(global_doc));
}

Expected<std::uint32_t> Cluster::update_document(std::uint32_t global_doc,
                                                 const std::string& url,
                                                 const std::string& body) {
  // delete + add under the cluster's global sequence — the same two steps
  // IndexWriter::update_document performs, so the new revision gets exactly
  // the id a single-node union writer would assign.
  if (auto status = delete_document(global_doc); !status) return status.error();
  return add_document(url, body);
}

Status Cluster::flush() {
  for (const auto& shard : state_->shards) {
    if (auto flushed = shard->writer().flush(); !flushed) return flushed.error();
  }
  return Unit{};
}

Status Cluster::compact_now() {
  for (const auto& shard : state_->shards) {
    if (auto status = shard->writer().compact_now(); !status) return status;
  }
  return Unit{};
}

std::shared_ptr<ShardRouter> Cluster::make_router(RouterOptions options) const {
  return std::make_shared<ShardRouter>(state_->shards, state_->partitioner, options);
}

std::uint32_t Cluster::shard_count() const {
  return static_cast<std::uint32_t>(state_->shards.size());
}

std::uint32_t Cluster::replica_count() const { return state_->options.replicas; }

const Partitioner& Cluster::partitioner() const { return *state_->partitioner; }

Shard& Cluster::shard(std::uint32_t s) { return *state_->shards[s]; }

std::uint64_t Cluster::total_docs() const { return state_->next_global; }

const std::string& Cluster::dir() const { return state_->dir; }

bool Cluster::is_cluster_dir(const std::string& dir) {
  return io::env().file_exists(meta_path(dir));
}

}  // namespace hetindex
