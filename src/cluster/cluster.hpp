#pragma once
/// \file cluster.hpp
/// Cluster — the ingest-and-topology facade of the sharded serving tier
/// (docs/CLUSTER.md). A cluster directory holds N ordinary live index
/// directories (`shard-0` … `shard-N-1`, each an IndexWriter's world) plus
/// one durable CLUSTER meta file recording the placement function:
/// partition strategy, shard count, block size. Documents enter through
/// add/delete/update with GLOBAL doc ids; the Partitioner's closed forms
/// route each operation to the owning shard (or broadcast it, term
/// strategy), so no id mapping table is ever stored — a reopen recovers
/// the next global id from the shards' committed widths and validates it
/// against the strategy's expected distribution.
///
/// Serving is the ShardRouter's job: make_router() binds the shard set +
/// partitioner into a SearchBackend. Writer-side calls (add/delete/
/// update/flush/compact) are externally synchronized like IndexWriter
/// itself; router queries run concurrently against committed snapshots.

#include <cstdint>
#include <memory>
#include <string>

#include "cluster/partitioner.hpp"
#include "cluster/router.hpp"
#include "cluster/shard.hpp"
#include "live/writer.hpp"
#include "util/error.hpp"

namespace hetindex {

struct ClusterOptions {
  PartitionStrategy strategy = PartitionStrategy::kDocument;
  std::uint32_t shards = 2;
  std::uint32_t replicas = 1;     ///< serving replicas per shard
  std::uint32_t block_docs = 128; ///< kBlock granularity (ignored otherwise)
  IndexWriterOptions writer;      ///< applied to every shard's writer
  ShardServingOptions serving;    ///< applied to every replica
};

class Cluster {
 public:
  /// Opens (or creates) the cluster under `dir`. An existing CLUSTER meta
  /// file pins strategy/shards/block_docs — the placement function is a
  /// property of the data on disk, so mismatching options are rejected
  /// with kInvalidArgument (defaults defer to the file); a malformed meta
  /// file is kCorrupt, as is a shard-width distribution the strategy
  /// cannot have produced.
  static Expected<Cluster> open(const std::string& dir, ClusterOptions options = {});

  Cluster(Cluster&&) noexcept;
  Cluster& operator=(Cluster&&) noexcept;
  ~Cluster();

  /// Indexes one document cluster-wide and returns its GLOBAL doc id.
  /// Document/block strategies route it to its owning shard; the term
  /// strategy broadcasts it to every shard (replicated storage).
  [[nodiscard]] std::uint32_t add_document(const std::string& url,
                                           const std::string& body);
  /// Tombstones a global doc id on its owning shard (every shard, term
  /// strategy). Same durability contract as IndexWriter::delete_document.
  Status delete_document(std::uint32_t global_doc);
  /// Replace = delete + re-add under the global id sequence: the new
  /// revision gets the next global id (returned), exactly the id a
  /// single-node IndexWriter::update_document would assign — global id
  /// spaces stay aligned between a cluster and a union build.
  Expected<std::uint32_t> update_document(std::uint32_t global_doc,
                                          const std::string& url,
                                          const std::string& body);

  /// flush()/compact_now() across every shard (first failure wins).
  Status flush();
  Status compact_now();

  /// Binds the shard set into a scatter-gather SearchBackend. The router
  /// shares ownership of the shards; it outlives the Cluster handle safely.
  [[nodiscard]] std::shared_ptr<ShardRouter> make_router(RouterOptions options = {}) const;

  [[nodiscard]] std::uint32_t shard_count() const;
  [[nodiscard]] std::uint32_t replica_count() const;
  [[nodiscard]] const Partitioner& partitioner() const;
  [[nodiscard]] Shard& shard(std::uint32_t s);
  /// Width of the global doc-id space (next id to be assigned).
  [[nodiscard]] std::uint64_t total_docs() const;
  [[nodiscard]] const std::string& dir() const;

  /// True when `dir` holds a cluster (a CLUSTER meta file) — the CLI's
  /// backend dispatch.
  static bool is_cluster_dir(const std::string& dir);

 private:
  struct State;
  explicit Cluster(std::unique_ptr<State> state);

  std::unique_ptr<State> state_;
};

}  // namespace hetindex
