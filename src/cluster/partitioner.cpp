#include "cluster/partitioner.hpp"

#include "util/check.hpp"

namespace hetindex {
namespace {

/// FNV-1a 64: deterministic, seedless, stable across platforms — term
/// ownership must agree between the ingest path and every router forever.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

class DocumentPartitioner final : public Partitioner {
 public:
  explicit DocumentPartitioner(std::uint32_t shards) : Partitioner(shards) {}

  [[nodiscard]] PartitionStrategy strategy() const override {
    return PartitionStrategy::kDocument;
  }
  [[nodiscard]] std::uint32_t doc_shard(std::uint32_t g) const override {
    return g % shards();
  }
  [[nodiscard]] std::uint32_t local_doc(std::uint32_t g) const override {
    return g / shards();
  }
  [[nodiscard]] std::uint32_t global_doc(std::uint32_t shard,
                                         std::uint32_t local) const override {
    return local * shards() + shard;
  }
  [[nodiscard]] std::uint64_t expected_shard_docs(std::uint32_t shard,
                                                  std::uint64_t total) const override {
    return total / shards() + (shard < total % shards() ? 1 : 0);
  }
};

class BlockPartitioner final : public Partitioner {
 public:
  BlockPartitioner(std::uint32_t shards, std::uint32_t block_docs)
      : Partitioner(shards), block_docs_(block_docs) {}

  [[nodiscard]] PartitionStrategy strategy() const override {
    return PartitionStrategy::kBlock;
  }
  [[nodiscard]] std::uint32_t doc_shard(std::uint32_t g) const override {
    return (g / block_docs_) % shards();
  }
  [[nodiscard]] std::uint32_t local_doc(std::uint32_t g) const override {
    const std::uint32_t block = g / block_docs_;
    return (block / shards()) * block_docs_ + g % block_docs_;
  }
  [[nodiscard]] std::uint32_t global_doc(std::uint32_t shard,
                                         std::uint32_t local) const override {
    const std::uint32_t local_block = local / block_docs_;
    return (local_block * shards() + shard) * block_docs_ + local % block_docs_;
  }
  [[nodiscard]] std::uint64_t expected_shard_docs(std::uint32_t shard,
                                                  std::uint64_t total) const override {
    if (total == 0) return 0;
    const std::uint64_t blocks = (total + block_docs_ - 1) / block_docs_;
    // Full-block count this shard owns among blocks [0, blocks)...
    const std::uint64_t owned = blocks / shards() + (shard < blocks % shards() ? 1 : 0);
    std::uint64_t docs = owned * block_docs_;
    // ...minus the unfilled tail of the final (possibly partial) block.
    const std::uint64_t last_block = blocks - 1;
    if (shard == last_block % shards()) {
      docs -= last_block * block_docs_ + block_docs_ - total;
    }
    return docs;
  }

 private:
  std::uint32_t block_docs_;
};

class TermPartitioner final : public Partitioner {
 public:
  explicit TermPartitioner(std::uint32_t shards) : Partitioner(shards) {}

  [[nodiscard]] PartitionStrategy strategy() const override {
    return PartitionStrategy::kTerm;
  }
  // Documents are everywhere; local ids ARE global ids.
  [[nodiscard]] std::uint32_t doc_shard(std::uint32_t) const override { return 0; }
  [[nodiscard]] std::uint32_t local_doc(std::uint32_t g) const override { return g; }
  [[nodiscard]] std::uint32_t global_doc(std::uint32_t,
                                         std::uint32_t local) const override {
    return local;
  }
  [[nodiscard]] std::optional<std::uint32_t> term_shard(
      std::string_view term) const override {
    return static_cast<std::uint32_t>(fnv1a(term) % shards());
  }
  [[nodiscard]] bool replicates_documents() const override { return true; }
  [[nodiscard]] std::uint64_t expected_shard_docs(std::uint32_t,
                                                  std::uint64_t total) const override {
    return total;
  }
};

}  // namespace

std::optional<PartitionStrategy> parse_partition_strategy(std::string_view name) {
  if (name == "document") return PartitionStrategy::kDocument;
  if (name == "term") return PartitionStrategy::kTerm;
  if (name == "block") return PartitionStrategy::kBlock;
  return std::nullopt;
}

std::shared_ptr<const Partitioner> make_partitioner(PartitionStrategy strategy,
                                                    std::uint32_t shards,
                                                    std::uint32_t block_docs) {
  HET_CHECK_MSG(shards > 0, "a cluster needs at least one shard");
  switch (strategy) {
    case PartitionStrategy::kDocument:
      return std::make_shared<DocumentPartitioner>(shards);
    case PartitionStrategy::kTerm:
      return std::make_shared<TermPartitioner>(shards);
    case PartitionStrategy::kBlock:
      HET_CHECK_MSG(block_docs > 0, "block partitioning needs block_docs > 0");
      return std::make_shared<BlockPartitioner>(shards, block_docs);
  }
  HET_CHECK_MSG(false, "unknown partition strategy");
  return nullptr;
}

}  // namespace hetindex
