#include "cluster/router.hpp"

#include <algorithm>
#include <future>
#include <unordered_map>
#include <utility>

#include "live/tombstones.hpp"
#include "postings/boolean_ops.hpp"
#include "search/topk.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace hetindex {

struct ShardRouter::Instruments {
  obs::Counter& queries;
  obs::Counter& shard_timeouts;
  obs::Counter& shard_sheds;
  obs::Counter& shard_down;
  obs::Counter& failovers;
  obs::Counter& demotions;
  obs::Counter& partials;
  obs::Histo& stats_micros;
  obs::Histo& total_micros;

  explicit Instruments(obs::MetricsRegistry& m)
      : queries(m.counter("cluster_queries_total")),
        shard_timeouts(m.counter("cluster_shard_timeouts_total")),
        shard_sheds(m.counter("cluster_shard_sheds_total")),
        shard_down(m.counter("cluster_shard_down_total")),
        failovers(m.counter("cluster_failovers_total")),
        demotions(m.counter("cluster_replica_demotions_total")),
        partials(m.counter("cluster_partial_responses_total")),
        stats_micros(m.histogram("cluster_stats_micros", 0.0, 16384.0, 64)),
        total_micros(m.histogram("cluster_total_micros", 0.0, 16384.0, 64)) {}
};

namespace {

using Clock = std::chrono::steady_clock;
using Deadline = std::optional<Clock::time_point>;

bool past(const Deadline& deadline) {
  return deadline && Clock::now() >= *deadline;
}

/// Sub-deadline: now + fraction of the remaining budget. No deadline stays
/// no deadline.
Deadline carve(const Deadline& deadline, double fraction) {
  if (!deadline) return std::nullopt;
  const auto now = Clock::now();
  if (now >= *deadline) return now;
  const auto remaining =
      std::chrono::duration_cast<std::chrono::nanoseconds>(*deadline - now);
  return now + std::chrono::nanoseconds(
                   static_cast<std::int64_t>(
                       static_cast<double>(remaining.count()) * fraction));
}

/// The union index's exact result order: score desc, global doc id asc.
void merge_hits(std::vector<ScoredDoc>& hits, std::size_t k) {
  std::sort(hits.begin(), hits.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  if (hits.size() > k) hits.resize(k);
}

/// Central evaluator of the term-routed strategy: the Searcher's recursive
/// decoded evaluator re-expressed over owner-fetched postings (same
/// postings_and/or folds, same phrase_join/near_join verification), so
/// central answers are bit-identical to a single-node build of the union
/// corpus. One extra state an in-process Searcher never sees: a leaf whose
/// owner shard never answered. Such a leaf evaluates to "unavailable"
/// (nullopt) and is skipped where its fold allows — the identity in an
/// AND (the historical weakened-intersection partial), nothing in an OR,
/// the whole constraint in a phrase/NEAR (an unverifiable constraint
/// cannot admit docs) — and the caller flags the response kShardPartial.
struct RoutedEval {
  const std::unordered_map<std::string, std::shared_ptr<const QueryPostings>>& fetched;
  const Deadline& deadline;
  bool deadline_cut = false;

  Expected<std::optional<QueryPostings>> eval(const QueryNode& node) {
    switch (node.op) {
      case QueryOp::kTerm: {
        const auto it = fetched.find(node.term);
        if (it == fetched.end()) return std::optional<QueryPostings>{};  // owner down
        QueryPostings out;  // null value = known-absent term: empty list
        if (it->second != nullptr) {
          out.doc_ids = it->second->doc_ids;
          out.tfs = it->second->tfs;
        }
        return std::optional<QueryPostings>(std::move(out));
      }
      case QueryOp::kBag:
      case QueryOp::kOr: {
        std::optional<QueryPostings> acc;
        for (const auto& child : node.children) {
          if (past(deadline)) {  // partial union: a valid subset, flagged
            deadline_cut = true;
            break;
          }
          auto part = eval(child);
          if (!part.has_value()) return part.error();
          if (!part.value()) continue;  // unavailable: contributes nothing
          acc = acc ? postings_or(*acc, *part.value()) : std::move(*part.value());
        }
        return acc;  // nullopt when every child was unavailable
      }
      case QueryOp::kAnd: {
        std::optional<QueryPostings> acc;
        for (const auto& child : node.children) {
          if (past(deadline)) {
            // A prefix intersection is a SUPERSET of the truth — the one
            // degradation shape that would hand out wrong docs. Return
            // nothing instead (same rule as the single-node evaluator).
            if (acc) {
              acc->doc_ids.clear();
              acc->tfs.clear();
            }
            deadline_cut = true;
            break;
          }
          auto part = eval(child);
          if (!part.has_value()) return part.error();
          if (!part.value()) continue;  // unavailable: skipped, intersection weakened
          acc = acc ? postings_and(*acc, *part.value()) : std::move(*part.value());
          if (acc->doc_ids.empty()) break;  // settled: no doc can re-enter
        }
        return acc;
      }
      case QueryOp::kPhrase:
      case QueryOp::kNear: {
        std::vector<const QueryPostings*> refs;
        refs.reserve(node.terms.size());
        bool absent = false;
        for (const auto& term : node.terms) {
          const auto it = fetched.find(term);
          if (it == fetched.end()) return std::optional<QueryPostings>{};
          if (it->second == nullptr) {
            absent = true;  // known-absent term: the constraint matches nothing
            break;
          }
          if (it->second->positions.empty() && !it->second->doc_ids.empty()) {
            return Error{ErrorCode::kInvalidArgument,
                         "phrase/NEAR query requires a positional index"};
          }
          refs.push_back(it->second.get());
        }
        if (absent) return std::optional<QueryPostings>(QueryPostings{});
        return std::optional<QueryPostings>(node.op == QueryOp::kPhrase
                                                ? phrase_join(refs)
                                                : near_join(refs, node.window));
      }
    }
    return std::optional<QueryPostings>(QueryPostings{});
  }
};

}  // namespace

ShardRouter::ShardRouter(std::vector<std::shared_ptr<Shard>> shards,
                         std::shared_ptr<const Partitioner> partitioner,
                         RouterOptions options)
    : shards_(std::move(shards)),
      partitioner_(std::move(partitioner)),
      options_(options),
      metrics_(std::make_unique<obs::MetricsRegistry>()),
      ins_(std::make_unique<Instruments>(*metrics_)) {
  HET_CHECK_MSG(!shards_.empty(), "ShardRouter requires at least one shard");
  HET_CHECK_MSG(partitioner_ != nullptr, "ShardRouter requires a partitioner");
  HET_CHECK_MSG(partitioner_->shards() == shards_.size(),
                "partitioner shard count must match the shard set");
  health_.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    health_[s].resize(shards_[s]->replica_count());
  }
}

ShardRouter::~ShardRouter() = default;

std::vector<std::size_t> ShardRouter::replica_order(std::uint32_t shard) const {
  const auto now = Clock::now();
  std::vector<std::size_t> healthy;
  std::vector<std::size_t> demoted;
  {
    std::lock_guard lock(health_mu_);
    for (std::size_t r = 0; r < health_[shard].size(); ++r) {
      (health_[shard][r].demoted_until <= now ? healthy : demoted).push_back(r);
    }
    std::sort(demoted.begin(), demoted.end(), [&](std::size_t a, std::size_t b) {
      return health_[shard][a].demoted_until < health_[shard][b].demoted_until;
    });
  }
  healthy.insert(healthy.end(), demoted.begin(), demoted.end());
  return healthy;
}

void ShardRouter::record_failure(std::uint32_t shard, std::size_t replica,
                                 FailureKind) const {
  const auto now = Clock::now();
  std::lock_guard lock(health_mu_);
  auto& h = health_[shard][replica];
  h.failures.push_back(now);
  while (!h.failures.empty() && h.failures.front() < now - options_.failure_window) {
    h.failures.pop_front();
  }
  if (h.failures.size() >= options_.demote_after_failures) {
    h.demoted_until = now + options_.demotion_backoff;
    h.failures.clear();
    ins_->demotions.add();
  }
}

void ShardRouter::record_success(std::uint32_t shard, std::size_t replica) const {
  std::lock_guard lock(health_mu_);
  auto& h = health_[shard][replica];
  h.failures.clear();
  h.demoted_until = {};  // an answer IS the health check
}

ShardRouter::FailureKind ShardRouter::classify(const Error& error) {
  switch (error.code) {
    case ErrorCode::kOverloaded: return FailureKind::kShed;
    case ErrorCode::kDeadlineExceeded: return FailureKind::kTimeout;
    default: return FailureKind::kDown;
  }
}

ShardRouter::FailureKind ShardRouter::classify_and_count(const Error& error) const {
  const FailureKind kind = classify(error);
  switch (kind) {
    case FailureKind::kShed: ins_->shard_sheds.add(); break;
    case FailureKind::kTimeout: ins_->shard_timeouts.add(); break;
    case FailureKind::kDown: ins_->shard_down.add(); break;
  }
  return kind;
}

Expected<ShardStatsProbe> ShardRouter::probe_with_failover(
    std::uint32_t shard, const std::vector<std::string>& terms,
    const Deadline deadline) const {
  const auto order = replica_order(shard);
  Error last{ErrorCode::kUnavailable, "no replica tried"};
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (past(deadline)) {
      ins_->shard_timeouts.add();
      return Error{ErrorCode::kDeadlineExceeded, "stats budget exhausted"};
    }
    if (i > 0) ins_->failovers.add();
    auto probe = shards_[shard]->replica(order[i]).probe_stats(terms);
    if (probe) {
      record_success(shard, order[i]);
      return probe;
    }
    last = probe.error();
    record_failure(shard, order[i], classify_and_count(last));
  }
  return last;
}

Expected<std::shared_ptr<const QueryPostings>> ShardRouter::fetch_with_failover(
    std::uint32_t shard, const std::string& term, const Deadline deadline) const {
  const auto order = replica_order(shard);
  Error last{ErrorCode::kUnavailable, "no replica tried"};
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (past(deadline)) {
      ins_->shard_timeouts.add();
      return Error{ErrorCode::kDeadlineExceeded, "fetch budget exhausted"};
    }
    if (i > 0) ins_->failovers.add();
    auto postings = shards_[shard]->replica(order[i]).fetch_postings(term);
    if (postings) {
      record_success(shard, order[i]);
      return postings;
    }
    last = postings.error();
    record_failure(shard, order[i], classify_and_count(last));
  }
  return last;
}

Expected<QueryResponse> ShardRouter::search(const QueryRequest& request,
                                            const Deadline deadline) const {
  // Resolve the AST once (legacy terms/mode requests convert here) and
  // thread it through whichever strategy routes the query.
  const Query query = effective_query(request);
  if (query.empty()) {
    return Error{ErrorCode::kInvalidArgument, "query has no terms"};
  }
  if (request.scatter != nullptr) {
    return Error{ErrorCode::kInvalidArgument,
                 "scatter stats are router-internal; do not set them on a "
                 "cluster request"};
  }
  if (past(deadline)) {
    return Error{ErrorCode::kDeadlineExceeded, "deadline expired before fan-out"};
  }
  ins_->queries.add();
  return partitioner_->strategy() == PartitionStrategy::kTerm
             ? term_routed_search(request, query, deadline)
             : scatter_search(request, query, deadline);
}

Expected<QueryResponse> ShardRouter::scatter_search(const QueryRequest& request,
                                                    const Query& query,
                                                    const Deadline deadline) const {
  const WallTimer total_timer;
  const auto shard_count = static_cast<std::uint32_t>(shards_.size());
  std::vector<ShardState> state(shard_count);
  const QueryClass qclass = query.query_class();

  // Phase 1 (ranked only): aggregate the union corpus's collection stats
  // from exact per-shard integers. A shard that cannot even answer the
  // probe is excluded from the fan-out — its documents are what the
  // partial response is missing. Boolean/positional classes rank by tf,
  // which needs no global stats, so they skip straight to the fan-out.
  std::shared_ptr<ScatterStats> scatter;
  std::vector<bool> eligible(shard_count, true);
  const WallTimer stats_timer;
  if (qclass == QueryClass::kRanked) {
    const std::vector<std::string> terms = query.collect_terms();
    const Deadline stats_deadline = carve(deadline, options_.stats_budget_fraction);
    auto stats = std::make_shared<ScatterStats>();
    stats->term_dfs.assign(terms.size(), 0);
    std::uint64_t token_sum = 0;
    std::uint64_t live_docs = 0;
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      auto probe = probe_with_failover(s, terms, stats_deadline);
      if (!probe) {
        eligible[s] = false;
        state[s].failure = classify(probe.error());
        continue;
      }
      stats->n_docs += probe->n_docs;
      token_sum += probe->token_sum;
      live_docs += probe->live_docs;
      for (std::size_t t = 0; t < terms.size(); ++t) {
        stats->term_dfs[t] += probe->term_dfs[t];
      }
    }
    stats->avgdl = live_docs == 0 ? 0.0
                                  : static_cast<double>(token_sum) /
                                        static_cast<double>(live_docs);
    scatter = std::move(stats);
  }
  ins_->stats_micros.add(stats_timer.seconds() * 1e6);

  // Phase 2: fan out. Every eligible shard's first-choice replica gets the
  // sub-request concurrently (each replica runs its own admission pool);
  // failover retries are sequential per shard, bounded by the same slice.
  // Sub-requests carry the resolved AST: each shard executes the full tree
  // (phrase/NEAR verification included) over its own documents — doc/block
  // partitions hold every doc's postings and positions whole.
  const Deadline exec_deadline = carve(deadline, options_.shard_budget_fraction);
  QueryRequest sub = request;
  sub.query = query;
  sub.timeout = std::chrono::microseconds{0};  // the absolute deadline rules
  sub.use_result_cache = false;  // scatter stats are not in the cache key
  sub.scatter = scatter;

  struct Pending {
    std::future<Expected<QueryResponse>> future;
    std::vector<std::size_t> order;
    std::size_t tried = 0;  // order[tried - 1] is in flight
  };
  std::vector<std::optional<Pending>> pending(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    if (!eligible[s]) continue;
    Pending p;
    p.order = replica_order(s);
    p.future = shards_[s]->replica(p.order[0]).submit(sub, exec_deadline);
    p.tried = 1;
    pending[s] = std::move(p);
  }

  for (std::uint32_t s = 0; s < shard_count; ++s) {
    if (!pending[s]) continue;
    auto& p = *pending[s];
    for (;;) {
      const std::size_t replica = p.order[p.tried - 1];
      if (exec_deadline &&
          p.future.wait_until(*exec_deadline) != std::future_status::ready) {
        // The shard's budget slice is gone — no in-query retry is useful;
        // the recorded failure demotes toward the peer for the next query.
        // The abandoned future is promise-backed: dropping it never blocks.
        ins_->shard_timeouts.add();
        record_failure(s, replica, FailureKind::kTimeout);
        state[s].failure = FailureKind::kTimeout;
        break;
      }
      auto result = p.future.get();
      if (result) {
        record_success(s, replica);
        state[s].answered = true;
        state[s].response = std::move(*result);
        break;
      }
      const FailureKind kind = classify_and_count(result.error());
      record_failure(s, replica, kind);
      state[s].failure = kind;
      if (p.tried < p.order.size() && !past(exec_deadline)) {
        ins_->failovers.add();
        p.future = shards_[s]->replica(p.order[p.tried]).submit(sub, exec_deadline);
        ++p.tried;
        continue;
      }
      break;
    }
  }

  // Gather: translate shard-local ids through the partitioner's closed
  // form and merge into the union order.
  QueryResponse response;
  response.classified = qclass;
  response.shards_total = shard_count;
  bool sub_degraded = false;
  bool all_failures_shed = true;
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    if (!state[s].answered) {
      all_failures_shed = all_failures_shed && state[s].failure == FailureKind::kShed;
      continue;
    }
    ++response.shards_answered;
    sub_degraded = sub_degraded || state[s].response.degraded();
    for (const ScoredDoc& hit : state[s].response.hits) {
      response.hits.push_back({partitioner_->global_doc(s, hit.doc_id), hit.score});
    }
  }
  if (response.shards_answered == 0) {
    return Error{ErrorCode::kUnavailable, "no shard answered the fan-out"};
  }
  if (response.shards_answered < shard_count && !options_.allow_partial) {
    return Error{ErrorCode::kUnavailable,
                 "shard unanswered and partial results are disabled"};
  }
  merge_hits(response.hits, request.k);

  if (response.shards_answered < shard_count) {
    ins_->partials.add();
    response.degradation = all_failures_shed ? Degradation::kShedPartial
                                             : Degradation::kShardPartial;
  } else if (sub_degraded) {
    response.degradation = Degradation::kDeadlinePartial;
  }
  response.timings.lookup_seconds = stats_timer.seconds();  // probe phase
  response.timings.total_seconds = total_timer.seconds();
  response.timings.score_seconds =
      response.timings.total_seconds - response.timings.lookup_seconds;
  ins_->total_micros.add(response.timings.total_seconds * 1e6);
  return response;
}

Expected<QueryResponse> ShardRouter::term_routed_search(const QueryRequest& request,
                                                        const Query& query,
                                                        const Deadline deadline) const {
  const WallTimer total_timer;
  const Deadline exec_deadline = carve(deadline, options_.shard_budget_fraction);
  const std::vector<std::string> terms = query.collect_terms();

  // Fetch each distinct AST leaf's postings from its owner shard.
  // Duplicated leaves score twice (single-node semantics) but fetch once;
  // lists arrive with positions, so phrase/NEAR constraints verify
  // centrally on the same decoded data a single node would use.
  std::unordered_map<std::string, std::shared_ptr<const QueryPostings>> fetched;
  std::vector<bool> owner_consulted(shards_.size(), false);
  std::vector<bool> owner_answered(shards_.size(), false);
  std::vector<bool> term_ok(terms.size(), false);
  bool any_shed_failure = false;
  bool any_nonshed_failure = false;
  const WallTimer fetch_timer;
  for (std::size_t t = 0; t < terms.size(); ++t) {
    const std::string& term = terms[t];
    const auto it = fetched.find(term);
    if (it != fetched.end()) {
      term_ok[t] = true;
      continue;
    }
    const auto owner = partitioner_->term_shard(term);
    HET_CHECK_MSG(owner.has_value(), "term partitioner must own every term");
    owner_consulted[*owner] = true;
    auto postings = fetch_with_failover(*owner, term, exec_deadline);
    if (!postings) {
      if (postings.error().code == ErrorCode::kOverloaded) {
        any_shed_failure = true;
      } else {
        any_nonshed_failure = true;
      }
      continue;
    }
    owner_answered[*owner] = true;
    fetched.emplace(term, std::move(*postings));
    term_ok[t] = true;
  }

  QueryResponse response;
  response.classified = query.query_class();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (owner_consulted[s]) ++response.shards_total;
    if (owner_answered[s]) ++response.shards_answered;
  }
  const bool all_terms = std::all_of(term_ok.begin(), term_ok.end(),
                                     [](bool ok) { return ok; });
  if (!all_terms && std::none_of(term_ok.begin(), term_ok.end(),
                                 [](bool ok) { return ok; })) {
    return Error{ErrorCode::kUnavailable, "no term owner answered"};
  }
  if (!all_terms && !options_.allow_partial) {
    return Error{ErrorCode::kUnavailable,
                 "term owner unanswered and partial results are disabled"};
  }
  response.timings.lookup_seconds = fetch_timer.seconds();

  // Documents are replicated everywhere; shard 0's committed snapshot is
  // the canonical doc-stats source (storage-level — fault switches model
  // the serving path, not the disk).
  const auto snap = shards_[0]->shared_writer()->snapshot();
  const TombstoneSet* excluded = snap->tombstones();

  const WallTimer score_timer;
  const QueryNode& root = query.root();
  if (root.op == QueryOp::kTerm || root.op == QueryOp::kBag) {
    // Central exhaustive scoring, leaf order (== legacy request-term
    // order) — the single-node accumulation sequence, so scores are
    // bit-identical to the union index (and to its MaxScore executor,
    // which re-sums canonically).
    const auto tokens = snap->token_stats();
    const std::uint64_t n_docs = snap->doc_count();
    const double avgdl =
        tokens.live_docs == 0
            ? 1e-9
            : std::max(static_cast<double>(tokens.token_sum) /
                           static_cast<double>(tokens.live_docs),
                       1e-9);
    DocLengthIndex lengths;
    for (const auto& seg : snap->segments()) {
      const DocMap* map = seg->doc_map();
      if (map != nullptr) lengths.add_range(map->base(), map->doc_count(), map);
    }
    if (snap->memtable() != nullptr) {
      lengths.add_range(snap->memtable()->doc_base(), snap->memtable()->doc_count(),
                        snap->memtable());
    }
    std::unordered_map<std::uint32_t, double> scores;
    bool deadline_cut = false;
    for (std::size_t t = 0; t < terms.size(); ++t) {
      if (!term_ok[t]) continue;  // owner down: term skipped, kShardPartial
      if (past(deadline)) {
        deadline_cut = true;
        break;
      }
      const auto& postings = fetched[terms[t]];
      if (postings == nullptr || postings->doc_ids.empty()) continue;
      const double idf = bm25_idf(postings->doc_ids.size(), n_docs);
      for (std::size_t i = 0; i < postings->doc_ids.size(); ++i) {
        const std::uint32_t doc = postings->doc_ids[i];
        if (excluded != nullptr && excluded->contains(doc)) continue;
        const double tf = postings->tfs[i];
        const double dl = lengths.token_count(doc);
        scores[doc] += bm25_contribution(idf, tf, dl, avgdl, request.bm25);
      }
    }
    response.hits.reserve(scores.size());
    for (const auto& [doc, score] : scores) response.hits.push_back({doc, score});
    merge_hits(response.hits, request.k);
    if (deadline_cut) response.degradation = Degradation::kDeadlinePartial;
  } else {
    // Every other root — AND/OR trees, phrase, NEAR — runs the recursive
    // central evaluator (tf semantics of query_ast.hpp) and ranks by
    // (tf desc, doc id asc), exactly like the single-node decoded path.
    // Tombstones filtered at rank, like the single-node candidate filter.
    RoutedEval ev{fetched, deadline};
    auto acc = ev.eval(root);
    if (!acc.has_value()) return acc.error();
    if (acc.value()) response.hits = rank_by_tf(*acc.value(), request.k, excluded);
    if (ev.deadline_cut) response.degradation = Degradation::kDeadlinePartial;
  }
  response.timings.score_seconds = score_timer.seconds();
  response.timings.total_seconds = total_timer.seconds();

  if (!all_terms) {
    ins_->partials.add();
    response.degradation = (any_shed_failure && !any_nonshed_failure)
                               ? Degradation::kShedPartial
                               : Degradation::kShardPartial;
  }
  ins_->total_micros.add(response.timings.total_seconds * 1e6);
  return response;
}

}  // namespace hetindex
