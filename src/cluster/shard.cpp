#include "cluster/shard.hpp"

#include <utility>

#include "postings/cursor.hpp"
#include "util/check.hpp"

namespace hetindex {

ShardReplica::ShardReplica(std::shared_ptr<IndexWriter> writer,
                           ShardServingOptions options)
    : writer_(std::move(writer)) {
  HET_CHECK_MSG(writer_ != nullptr, "ShardReplica requires a writer");
  searcher_ = Searcher::open(
                  SearchSource::live([w = writer_] { return w->snapshot(); }),
                  options.searcher)
                  .value();
  service_ = std::make_unique<SearchService>(searcher_, options.service);
}

std::optional<Error> ShardReplica::fault() const {
  if (down_.load(std::memory_order_relaxed)) {
    return Error{ErrorCode::kUnavailable, "replica down (fault-injected)"};
  }
  if (shed_.load(std::memory_order_relaxed)) {
    return Error{ErrorCode::kOverloaded, "replica shedding (fault-injected)"};
  }
  return std::nullopt;
}

Expected<QueryResponse> ShardReplica::search(
    const QueryRequest& request,
    std::optional<std::chrono::steady_clock::time_point> deadline) const {
  if (auto f = fault()) return *f;
  return service_->search(request, deadline);
}

std::future<Expected<QueryResponse>> ShardReplica::submit(
    QueryRequest request,
    std::optional<std::chrono::steady_clock::time_point> deadline) const {
  if (auto f = fault()) {
    std::promise<Expected<QueryResponse>> failed;
    failed.set_value(std::move(*f));
    return failed.get_future();
  }
  return service_->submit(std::move(request), deadline);
}

Expected<ShardStatsProbe> ShardReplica::probe_stats(
    const std::vector<std::string>& terms) const {
  if (auto f = fault()) return *f;
  const auto snap = writer_->snapshot();
  ShardStatsProbe probe;
  probe.n_docs = snap->doc_count();
  const auto tokens = snap->token_stats();
  probe.token_sum = tokens.token_sum;
  probe.live_docs = tokens.live_docs;
  probe.term_dfs.reserve(terms.size());
  for (const auto& term : terms) {
    // Raw df from cursor skip data — the exact integer a decoded list's
    // length would give (PR 6 invariant), without decoding anything.
    const auto cursor = snap->open_cursor(term);
    probe.term_dfs.push_back(cursor != nullptr ? cursor->size() : 0);
  }
  return probe;
}

Expected<std::shared_ptr<const QueryPostings>> ShardReplica::fetch_postings(
    const std::string& term) const {
  if (auto f = fault()) return *f;
  auto looked_up = writer_->snapshot()->lookup(term);
  if (!looked_up) return std::shared_ptr<const QueryPostings>{};
  return std::shared_ptr<const QueryPostings>(
      std::make_shared<const QueryPostings>(std::move(*looked_up)));
}

Shard::Shard(std::shared_ptr<IndexWriter> writer, std::uint32_t replicas,
             const ShardServingOptions& options)
    : writer_(std::move(writer)) {
  HET_CHECK_MSG(writer_ != nullptr, "Shard requires a writer");
  HET_CHECK_MSG(replicas > 0, "a shard needs at least one replica");
  replicas_.reserve(replicas);
  for (std::uint32_t r = 0; r < replicas; ++r) {
    replicas_.push_back(std::make_unique<ShardReplica>(writer_, options));
  }
}

}  // namespace hetindex
