#pragma once
/// \file shard.hpp
/// One shard of the serving cluster: the shard's IndexWriter (its slice of
/// the corpus, a normal live directory) plus R ShardReplicas — independent
/// serving stacks (Searcher caches + SearchService admission pool) over
/// the shard's data. In this in-process cluster the replicas share the
/// writer's committed state the way real replicas share a replicated log;
/// what is replicated is the *serving* capacity and failure domain: each
/// replica has its own queue to saturate, its own caches to warm, and its
/// own fault switches (set_down / force_shed) for the router's failover
/// machinery to react to.
///
/// A ShardReplica is a SearchBackend like everything else; the router
/// talks to it through three verbs:
///   submit()        a ranked/boolean sub-request with a budget slice
///   probe_stats()   the exact-integer stats ingredients of ScatterStats
///   fetch_postings() raw term postings (term-partitioned central scoring)

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "live/writer.hpp"
#include "search/backend.hpp"
#include "search/searcher.hpp"
#include "search/service.hpp"

namespace hetindex {

/// Serving knobs of every replica in a shard.
struct ShardServingOptions {
  SearcherOptions searcher;
  SearchServiceOptions service{/*threads=*/2, /*queue_capacity=*/64};
};

/// Exact-integer collection stats of one shard, the router's ScatterStats
/// ingredients (summed across shards before any division — see
/// LiveSnapshot::token_stats on why integers and not per-shard doubles).
struct ShardStatsProbe {
  std::uint64_t n_docs = 0;     ///< live docs on this shard
  std::uint64_t token_sum = 0;  ///< live indexed tokens
  std::uint64_t live_docs = 0;  ///< docs carrying token counts (== n_docs)
  std::vector<std::uint64_t> term_dfs;  ///< raw df per probed term
};

class ShardReplica final : public SearchBackend {
 public:
  ShardReplica(std::shared_ptr<IndexWriter> writer, ShardServingOptions options);

  using SearchBackend::search;
  [[nodiscard]] Expected<QueryResponse> search(
      const QueryRequest& request,
      std::optional<std::chrono::steady_clock::time_point> deadline) const override;

  /// Asynchronous entry the router fans out through. Resolves immediately
  /// with kUnavailable/kOverloaded when a fault switch is on; otherwise
  /// enqueues into this replica's admission pool.
  [[nodiscard]] std::future<Expected<QueryResponse>> submit(
      QueryRequest request,
      std::optional<std::chrono::steady_clock::time_point> deadline) const;

  /// Stats phase of the router's two-phase ranked scatter. Synchronous
  /// (reads the committed snapshot, no decode beyond cursor skip data).
  [[nodiscard]] Expected<ShardStatsProbe> probe_stats(
      const std::vector<std::string>& terms) const;

  /// Raw postings of `term` on this shard (term-partitioned serving); a
  /// null value means the term is absent here. Tombstoned docs included —
  /// the router filters, like any Searcher.
  [[nodiscard]] Expected<std::shared_ptr<const QueryPostings>> fetch_postings(
      const std::string& term) const;

  /// The committed snapshot — storage-level access for the router's
  /// term-partitioned document stats (not gated by the fault switches,
  /// which model the serving path, not the disk).
  [[nodiscard]] std::shared_ptr<const LiveSnapshot> snapshot() const {
    return writer_->snapshot();
  }

  /// Fault injection: a down replica answers everything kUnavailable, a
  /// shedding one kOverloaded — what a crashed / saturated process would
  /// look like from the router's side.
  void set_down(bool down) { down_.store(down, std::memory_order_relaxed); }
  void force_shed(bool shed) { shed_.store(shed, std::memory_order_relaxed); }
  [[nodiscard]] bool is_down() const { return down_.load(std::memory_order_relaxed); }

  [[nodiscard]] const obs::MetricsRegistry& metrics() const override {
    return searcher_->metrics();
  }
  [[nodiscard]] obs::MetricsRegistry& metrics() override { return searcher_->metrics(); }

 private:
  [[nodiscard]] std::optional<Error> fault() const;

  std::shared_ptr<IndexWriter> writer_;
  std::shared_ptr<Searcher> searcher_;
  std::unique_ptr<SearchService> service_;
  std::atomic<bool> down_{false};
  std::atomic<bool> shed_{false};
};

/// The shard: its writer plus the replica set.
class Shard {
 public:
  Shard(std::shared_ptr<IndexWriter> writer, std::uint32_t replicas,
        const ShardServingOptions& options);

  [[nodiscard]] IndexWriter& writer() { return *writer_; }
  [[nodiscard]] const IndexWriter& writer() const { return *writer_; }
  [[nodiscard]] std::shared_ptr<IndexWriter> shared_writer() const { return writer_; }

  [[nodiscard]] std::size_t replica_count() const { return replicas_.size(); }
  [[nodiscard]] ShardReplica& replica(std::size_t r) { return *replicas_[r]; }
  [[nodiscard]] const ShardReplica& replica(std::size_t r) const { return *replicas_[r]; }

 private:
  std::shared_ptr<IndexWriter> writer_;
  std::vector<std::unique_ptr<ShardReplica>> replicas_;
};

}  // namespace hetindex
