#pragma once
/// \file partitioner.hpp
/// Pluggable placement strategies for the sharded serving cluster
/// (docs/CLUSTER.md). A Partitioner answers three questions with closed
/// forms — which shard stores a document, what local id it gets there, and
/// how a shard-local id translates back to a global one — so the cluster
/// never persists a mapping table: the whole placement is a function of
/// (strategy, shard count, block size), recorded once in the CLUSTER meta
/// file.
///
/// Three strategies (the classic splits, cf. the rdma-inverted-index
/// partitioners named in ROADMAP item 1):
///
///   document  global id g lives on shard g % N as local id g / N — fine-
///             grained round-robin, the §III.F byte-concatenation property
///             makes every shard an independent inverted file. Queries
///             scatter to all shards; each scores its own docs.
///   block     contiguous runs of `block_docs` ids placed round-robin by
///             block index — same scatter path as document partitioning
///             but preserves locality of ingest order (adjacent docs land
///             in the same segment block, so range-narrowed reads and
///             §III.F merges stay contiguous).
///   term      every document replicated to every shard (local == global);
///             what is split is the *query*: a term's postings are served
///             by the shard that owns hash(term) % N, and the router
///             gathers lists and scores centrally.
///
/// All mappings are monotone in g within a shard, so shard-local doc-id
/// tie-breaking (score desc, id asc) agrees with global tie-breaking after
/// translation — one of the two pillars of the router's bit-identity
/// guarantee (the other is ScatterStats).

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

namespace hetindex {

enum class PartitionStrategy {
  kDocument,
  kTerm,
  kBlock,
};

/// Stable lowercase identifier for the CLUSTER meta file, CLI flags, logs.
constexpr const char* partition_strategy_name(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kDocument: return "document";
    case PartitionStrategy::kTerm: return "term";
    case PartitionStrategy::kBlock: return "block";
  }
  return "unknown";
}

/// Inverse of partition_strategy_name; nullopt for anything else.
std::optional<PartitionStrategy> parse_partition_strategy(std::string_view name);

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  [[nodiscard]] virtual PartitionStrategy strategy() const = 0;
  [[nodiscard]] std::uint32_t shards() const { return shards_; }

  /// Shard storing global doc `g`. Term partitioning returns 0 — the
  /// canonical copy; replicates_documents() tells the cluster to broadcast
  /// writes to every shard instead.
  [[nodiscard]] virtual std::uint32_t doc_shard(std::uint32_t global_doc) const = 0;
  /// `g`'s id within its owning shard's local doc-id space.
  [[nodiscard]] virtual std::uint32_t local_doc(std::uint32_t global_doc) const = 0;
  /// Inverse: the global id of shard-local doc `local` on `shard`.
  [[nodiscard]] virtual std::uint32_t global_doc(std::uint32_t shard,
                                                 std::uint32_t local) const = 0;

  /// Shard owning the postings of `term` at query time; nullopt when terms
  /// are not what is partitioned (document/block strategies: every shard
  /// serves its own docs' postings for every term).
  [[nodiscard]] virtual std::optional<std::uint32_t> term_shard(
      std::string_view /*term*/) const {
    return std::nullopt;
  }

  /// True when every document is written to every shard (term strategy).
  [[nodiscard]] virtual bool replicates_documents() const { return false; }

  /// How many of the first `total` global ids live on `shard` — what a
  /// reopen expects each shard's doc-id width to be (recovery validation).
  [[nodiscard]] virtual std::uint64_t expected_shard_docs(std::uint32_t shard,
                                                          std::uint64_t total) const = 0;

 protected:
  explicit Partitioner(std::uint32_t shards) : shards_(shards) {}

 private:
  std::uint32_t shards_;
};

/// Builds the strategy. `block_docs` applies to kBlock only (ignored
/// otherwise); must be > 0. `shards` must be > 0.
std::shared_ptr<const Partitioner> make_partitioner(PartitionStrategy strategy,
                                                    std::uint32_t shards,
                                                    std::uint32_t block_docs = 128);

}  // namespace hetindex
