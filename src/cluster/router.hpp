#pragma once
/// \file router.hpp
/// ShardRouter — scatter-gather serving over N shards behind the same
/// SearchBackend interface a single Searcher implements (docs/CLUSTER.md).
///
/// Ranked queries over document/block partitions run a two-phase protocol
/// that keeps cluster results bit-identical to a single-node build of the
/// union corpus:
///
///   1. stats phase   every shard is probed for its exact-integer stats
///                    (live docs, token sum, raw df per term); the router
///                    sums them and derives ONE global (N, avgdl, df) set —
///                    the same integers the union index would compute.
///   2. execute phase the request fans out with those ScatterStats
///                    attached; each shard scores its own documents with
///                    global weights (pruned or exhaustive, both exact) and
///                    returns its local top-k; the router translates local
///                    ids through the Partitioner's closed form and merges
///                    by (score desc, global id asc) — the union's exact
///                    order, because every global top-k doc is in its own
///                    shard's top-k and the id mapping is monotone.
///
/// Term-partitioned clusters route differently: each query leaf term's
/// postings are fetched from the shard owning hash(term) — one whole-list
/// fetch per distinct AST leaf, in Query::collect_terms() order — and the
/// router evaluates centrally: BM25 in leaf order for a ranked root
/// (per-shard partial score sums would not re-add bit-identically, whole
/// postings lists do), and the recursive AST evaluator for boolean/
/// positional roots. Fetched lists carry positions, so phrase/NEAR
/// verification runs at the router with the same phrase_join/near_join
/// primitives the single-node decoded evaluator uses.
///
/// Document/block partitions need no special phrase handling: every doc's
/// postings (and positions) live whole on its shard, so each shard
/// verifies phrase/NEAR locally over the fanned-out AST and the merged
/// (score desc, global id asc) order equals the union index's.
///
/// Deadlines are budgeted: the stats phase gets stats_budget_fraction of
/// the remaining budget, the execute fan-out shard_budget_fraction of what
/// is left (the remainder is the merge reserve). A shard that misses its
/// slice is dropped and the response degrades to a partial
/// (kShardPartial / kShedPartial, with shards_answered < shards_total)
/// instead of blowing the caller's deadline.
///
/// Failover: replicas are tried in health order. A replica that fails
/// `demote_after_failures` times within `failure_window` is demoted for
/// `demotion_backoff` — the router prefers its peers until the backoff
/// lapses (a fully-demoted shard is still probed, so recovery needs no
/// side channel). Down/shed replicas fail fast and the router retries the
/// peer within the same query; a timed-out replica already consumed the
/// shard's budget, so its demotion redirects the next query instead.

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "cluster/partitioner.hpp"
#include "cluster/shard.hpp"
#include "search/backend.hpp"

namespace hetindex {

struct RouterOptions {
  /// Fraction of the remaining budget granted to the ranked stats phase.
  double stats_budget_fraction = 0.35;
  /// Fraction of the post-stats budget granted to the shard fan-out; the
  /// rest is reserved for translation + merge.
  double shard_budget_fraction = 0.85;
  /// Health policy: demote a replica after this many failures...
  std::uint32_t demote_after_failures = 2;
  /// ...within this window...
  std::chrono::milliseconds failure_window{5000};
  /// ...for this long (peers are preferred until it lapses).
  std::chrono::milliseconds demotion_backoff{2000};
  /// When false, any unanswered shard fails the whole query with
  /// kUnavailable instead of returning a flagged partial.
  bool allow_partial = true;
};

class ShardRouter final : public SearchBackend {
 public:
  /// `shards` and `partitioner` must describe the same cluster (the
  /// Partitioner's shard count must equal shards.size()).
  ShardRouter(std::vector<std::shared_ptr<Shard>> shards,
              std::shared_ptr<const Partitioner> partitioner,
              RouterOptions options = {});
  ~ShardRouter() override;

  using SearchBackend::search;
  [[nodiscard]] Expected<QueryResponse> search(
      const QueryRequest& request,
      std::optional<std::chrono::steady_clock::time_point> deadline) const override;

  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const Partitioner& partitioner() const { return *partitioner_; }

  /// cluster_* instruments: cluster_queries_total,
  /// cluster_shard_timeouts_total, cluster_shard_sheds_total,
  /// cluster_shard_down_total, cluster_failovers_total,
  /// cluster_replica_demotions_total, cluster_partial_responses_total,
  /// plus stats/total latency histograms (docs/OBSERVABILITY.md).
  [[nodiscard]] const obs::MetricsRegistry& metrics() const override { return *metrics_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() override { return *metrics_; }

 private:
  struct Instruments;
  enum class FailureKind { kTimeout, kShed, kDown };
  struct ReplicaHealth {
    std::deque<std::chrono::steady_clock::time_point> failures;
    std::chrono::steady_clock::time_point demoted_until{};
  };
  /// Per-shard outcome of one fan-out.
  struct ShardState {
    bool answered = false;
    FailureKind failure = FailureKind::kDown;
    QueryResponse response;
  };

  /// Both strategies receive the resolved AST (effective_query of the
  /// request) so legacy flat requests route identically to AST ones.
  [[nodiscard]] Expected<QueryResponse> scatter_search(
      const QueryRequest& request, const Query& query,
      std::optional<std::chrono::steady_clock::time_point> deadline) const;
  [[nodiscard]] Expected<QueryResponse> term_routed_search(
      const QueryRequest& request, const Query& query,
      std::optional<std::chrono::steady_clock::time_point> deadline) const;

  /// Replica indices of `shard` in health order: non-demoted first (by
  /// index), then demoted (earliest-recovering first) so a fully-demoted
  /// shard still gets probed.
  [[nodiscard]] std::vector<std::size_t> replica_order(std::uint32_t shard) const;
  void record_failure(std::uint32_t shard, std::size_t replica, FailureKind kind) const;
  void record_success(std::uint32_t shard, std::size_t replica) const;

  [[nodiscard]] Expected<ShardStatsProbe> probe_with_failover(
      std::uint32_t shard, const std::vector<std::string>& terms,
      std::optional<std::chrono::steady_clock::time_point> deadline) const;
  [[nodiscard]] Expected<std::shared_ptr<const QueryPostings>> fetch_with_failover(
      std::uint32_t shard, const std::string& term,
      std::optional<std::chrono::steady_clock::time_point> deadline) const;

  /// Failure taxonomy by error code; classify_and_count also bumps the
  /// per-kind cluster_* counter (one bump per failed replica call).
  [[nodiscard]] static FailureKind classify(const Error& error);
  FailureKind classify_and_count(const Error& error) const;

  std::vector<std::shared_ptr<Shard>> shards_;
  std::shared_ptr<const Partitioner> partitioner_;
  RouterOptions options_;

  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<Instruments> ins_;

  mutable std::mutex health_mu_;
  mutable std::vector<std::vector<ReplicaHealth>> health_;  // [shard][replica]
};

}  // namespace hetindex
