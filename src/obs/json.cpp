#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hetindex::obs {

void json_append_string(std::string& out, std::string_view raw) {
  out.push_back('"');
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  // %.17g is exact for doubles; prefer the shorter %.15g when it round-trips.
  std::snprintf(buf, sizeof buf, "%.15g", value);
  if (std::strtod(buf, nullptr) != value) std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse_document() {
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // The writers only emit \u for control characters; decode BMP
            // code points as UTF-8 and reject surrogates.
            if (code >= 0xD800 && code <= 0xDFFF) return false;
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return false;
        }
      } else {
        out.push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return literal("null");
    }
    return parse_number(out);
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace hetindex::obs
