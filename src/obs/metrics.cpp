#include "obs/metrics.hpp"

#include <algorithm>
#include <map>

#include "obs/json.hpp"

namespace hetindex::obs {

struct MetricsRegistry::Instruments {
  // Node-based maps: element addresses are stable across registration, so
  // the references handed out stay valid while the registry lives.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<TimeCounter>, std::less<>> times;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Stat>, std::less<>> stats;
  std::map<std::string, std::unique_ptr<Histo>, std::less<>> histograms;
};

MetricsRegistry::MetricsRegistry() : instruments_(std::make_unique<Instruments>()) {}

MetricsRegistry::~MetricsRegistry() = default;

namespace {
template <typename Map, typename Make>
auto& get_or_create(Map& map, std::string_view name, Make make) {
  auto it = map.find(name);
  if (it == map.end()) it = map.emplace(std::string(name), make()).first;
  return *it->second;
}
}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::scoped_lock lock(mu_);
  return get_or_create(instruments_->counters, name,
                       [] { return std::make_unique<Counter>(); });
}

TimeCounter& MetricsRegistry::time_counter(std::string_view name) {
  std::scoped_lock lock(mu_);
  return get_or_create(instruments_->times, name,
                       [] { return std::make_unique<TimeCounter>(); });
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::scoped_lock lock(mu_);
  return get_or_create(instruments_->gauges, name,
                       [] { return std::make_unique<Gauge>(); });
}

Stat& MetricsRegistry::stat(std::string_view name) {
  std::scoped_lock lock(mu_);
  return get_or_create(instruments_->stats, name,
                       [] { return std::make_unique<Stat>(); });
}

Histo& MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                  std::size_t buckets) {
  std::scoped_lock lock(mu_);
  return get_or_create(instruments_->histograms, name,
                       [&] { return std::make_unique<Histo>(lo, hi, buckets); });
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::scoped_lock lock(mu_);
  snap.counters.reserve(instruments_->counters.size());
  for (const auto& [name, c] : instruments_->counters) {
    snap.counters.push_back({name, c->value()});
  }
  snap.times.reserve(instruments_->times.size());
  for (const auto& [name, t] : instruments_->times) {
    snap.times.push_back({name, t->value()});
  }
  snap.gauges.reserve(instruments_->gauges.size());
  for (const auto& [name, g] : instruments_->gauges) {
    snap.gauges.push_back({name, g->value(), g->max()});
  }
  snap.stats.reserve(instruments_->stats.size());
  for (const auto& [name, s] : instruments_->stats) {
    const OnlineStats st = s->value();
    snap.stats.push_back(
        {name, st.count(), st.sum(), st.mean(), st.min(), st.max(), st.variance()});
  }
  snap.histograms.reserve(instruments_->histograms.size());
  for (const auto& [name, h] : instruments_->histograms) {
    const Histogram hist = h->value();
    MetricsSnapshot::HistoValue hv;
    hv.name = name;
    hv.lo = h->lo();
    hv.hi = h->hi();
    hv.total = hist.total();
    hv.counts.reserve(hist.buckets());
    for (std::size_t i = 0; i < hist.buckets(); ++i) hv.counts.push_back(hist.bucket_count(i));
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

namespace {
template <typename Vec>
auto find_by_name(const Vec& v, std::string_view name) -> const typename Vec::value_type* {
  const auto it = std::lower_bound(v.begin(), v.end(), name,
                                   [](const auto& e, std::string_view n) { return e.name < n; });
  return it != v.end() && it->name == name ? &*it : nullptr;
}
}  // namespace

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto* e = find_by_name(counters, name);
  return e != nullptr ? e->value : 0;
}

double MetricsSnapshot::time_seconds(std::string_view name) const {
  const auto* e = find_by_name(times, name);
  return e != nullptr ? e->seconds : 0.0;
}

const MetricsSnapshot::GaugeValue* MetricsSnapshot::gauge(std::string_view name) const {
  return find_by_name(gauges, name);
}

const MetricsSnapshot::StatValue* MetricsSnapshot::stat(std::string_view name) const {
  return find_by_name(stats, name);
}

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out.reserve(1024);
  auto object = [&out](const char* key, auto&& body) {
    json_append_string(out, key);
    out += ":{";
    body();
    out += "}";
  };
  out += "{";
  object("counters", [&] {
    for (std::size_t i = 0; i < counters.size(); ++i) {
      if (i) out += ",";
      json_append_string(out, counters[i].name);
      out += ":" + std::to_string(counters[i].value);
    }
  });
  out += ",";
  object("time_counters", [&] {
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (i) out += ",";
      json_append_string(out, times[i].name);
      out += ":" + json_number(times[i].seconds);
    }
  });
  out += ",";
  object("gauges", [&] {
    for (std::size_t i = 0; i < gauges.size(); ++i) {
      if (i) out += ",";
      json_append_string(out, gauges[i].name);
      out += ":{\"value\":" + std::to_string(gauges[i].value) +
             ",\"max\":" + std::to_string(gauges[i].max) + "}";
    }
  });
  out += ",";
  object("stats", [&] {
    for (std::size_t i = 0; i < stats.size(); ++i) {
      if (i) out += ",";
      const auto& s = stats[i];
      json_append_string(out, s.name);
      out += ":{\"count\":" + std::to_string(s.count) + ",\"sum\":" + json_number(s.sum) +
             ",\"mean\":" + json_number(s.mean) + ",\"min\":" + json_number(s.min) +
             ",\"max\":" + json_number(s.max) + ",\"variance\":" + json_number(s.variance) +
             "}";
    }
  });
  out += ",";
  object("histograms", [&] {
    for (std::size_t i = 0; i < histograms.size(); ++i) {
      if (i) out += ",";
      const auto& h = histograms[i];
      json_append_string(out, h.name);
      out += ":{\"lo\":" + json_number(h.lo) + ",\"hi\":" + json_number(h.hi) +
             ",\"total\":" + std::to_string(h.total) + ",\"counts\":[";
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        if (b) out += ",";
        out += std::to_string(h.counts[b]);
      }
      out += "]}";
    }
  });
  out += "}";
  return out;
}

std::string MetricsSnapshot::to_prometheus(std::string_view prefix) const {
  std::string out;
  out.reserve(1024);
  const std::string p = std::string(prefix) + "_";
  for (const auto& c : counters) {
    out += "# TYPE " + p + c.name + " counter\n";
    out += p + c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& t : times) {
    out += "# TYPE " + p + t.name + " counter\n";
    out += p + t.name + " " + json_number(t.seconds) + "\n";
  }
  for (const auto& g : gauges) {
    out += "# TYPE " + p + g.name + " gauge\n";
    out += p + g.name + " " + std::to_string(g.value) + "\n";
    out += "# TYPE " + p + g.name + "_max gauge\n";
    out += p + g.name + "_max " + std::to_string(g.max) + "\n";
  }
  for (const auto& s : stats) {
    out += "# TYPE " + p + s.name + " summary\n";
    out += p + s.name + "_count " + std::to_string(s.count) + "\n";
    out += p + s.name + "_sum " + json_number(s.sum) + "\n";
    out += p + s.name + "_min " + json_number(s.min) + "\n";
    out += p + s.name + "_max " + json_number(s.max) + "\n";
  }
  for (const auto& h : histograms) {
    out += "# TYPE " + p + h.name + " histogram\n";
    const double width =
        h.counts.empty() ? 0.0 : (h.hi - h.lo) / static_cast<double>(h.counts.size());
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      const double le = h.lo + width * static_cast<double>(b + 1);
      out += p + h.name + "_bucket{le=\"" +
             (b + 1 == h.counts.size() ? "+Inf" : json_number(le)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += p + h.name + "_count " + std::to_string(h.total) + "\n";
  }
  return out;
}

}  // namespace hetindex::obs
