#pragma once
/// \file metrics.hpp
/// Pipeline observability: a lightweight, thread-safe metrics subsystem.
/// The Fig. 9 dataflow (sampler → serialized disk reads → M parsers →
/// reorder buffer → CPU/GPU indexers → run-file flush → merger) emits into
/// one MetricsRegistry per PipelineEngine, giving a live view of queue
/// depths, back-pressure stalls and per-stage rates that the coarse
/// end-of-build PipelineReport cannot provide. Instruments are created
/// once (get-or-create by name, stable addresses) and then updated
/// lock-free (counters/gauges) or under a tiny per-instrument mutex
/// (stats/histograms), so emission from parser threads is cheap enough to
/// stay enabled in production builds.
///
/// Instrument kinds:
///   Counter      monotonically increasing uint64 (events, bytes, docs)
///   TimeCounter  monotonically increasing double seconds (stage time)
///   Gauge        instantaneous int64 level plus high-watermark (queue depth)
///   Stat         per-sample OnlineStats (per-run stage seconds)
///   Histo        fixed-bucket Histogram (per-run throughput profile)
///
/// StageSpan is the RAII timer that attributes wall time to a TimeCounter
/// (and optionally a per-run Stat) on scope exit; stop() returns the
/// elapsed seconds so the same measurement also feeds RunRecords.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hpp"
#include "util/timer.hpp"

namespace hetindex::obs {

/// Monotonically increasing event/byte counter. All updates are relaxed
/// atomics: totals are exact once the emitting threads are joined, and
/// monotone at any instant in between.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Monotonically increasing seconds counter (CAS loop: atomic<double>
/// fetch_add is C++20 but not guaranteed lock-free everywhere).
class TimeCounter {
 public:
  void add(double seconds) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + seconds, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Instantaneous level with a high-watermark (queue depths, in-flight runs).
class Gauge {
 public:
  void set(std::int64_t x) {
    value_.store(x, std::memory_order_relaxed);
    raise_max(x);
  }
  void add(std::int64_t d) {
    raise_max(value_.fetch_add(d, std::memory_order_relaxed) + d);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void raise_max(std::int64_t x) {
    std::int64_t m = max_.load(std::memory_order_relaxed);
    while (x > m && !max_.compare_exchange_weak(m, x, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Per-sample statistics (mean/min/max/variance) behind a mutex — used for
/// per-run samples (a few per second), never per-token paths.
class Stat {
 public:
  void add(double x) {
    std::scoped_lock lock(mu_);
    stats_.add(x);
  }
  [[nodiscard]] OnlineStats value() const {
    std::scoped_lock lock(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  OnlineStats stats_;
};

/// Thread-safe fixed-bucket histogram (see util/stats.hpp Histogram).
class Histo {
 public:
  Histo(double lo, double hi, std::size_t buckets) : hist_(lo, hi, buckets), lo_(lo), hi_(hi) {}
  void add(double x) {
    std::scoped_lock lock(mu_);
    hist_.add(x);
  }
  [[nodiscard]] Histogram value() const {
    std::scoped_lock lock(mu_);
    return hist_;
  }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
  double lo_, hi_;
};

/// A consistent point-in-time copy of every registered instrument, sorted
/// by name within each kind. This is the exchange format: PipelineReport
/// embeds one, and both JSON and Prometheus text render from it.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct TimeValue {
    std::string name;
    double seconds = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
    std::int64_t max = 0;
  };
  struct StatValue {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0, mean = 0, min = 0, max = 0, variance = 0;
  };
  struct HistoValue {
    std::string name;
    double lo = 0, hi = 0;
    std::uint64_t total = 0;
    std::vector<std::uint64_t> counts;
  };

  std::vector<CounterValue> counters;
  std::vector<TimeValue> times;
  std::vector<GaugeValue> gauges;
  std::vector<StatValue> stats;
  std::vector<HistoValue> histograms;

  /// Lookup helpers; absent names read as zero so callers need no branches.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] double time_seconds(std::string_view name) const;
  [[nodiscard]] const GaugeValue* gauge(std::string_view name) const;
  [[nodiscard]] const StatValue* stat(std::string_view name) const;

  /// JSON object {"counters":{...},"time_counters":{...},"gauges":{...},
  /// "stats":{...},"histograms":{...}} — schema in docs/OBSERVABILITY.md.
  [[nodiscard]] std::string to_json() const;
  /// Prometheus text exposition (counters as <prefix>_<name>, gauges also
  /// emit a _max series, stats emit _count/_sum/_min/_max, histograms emit
  /// cumulative _bucket{le="..."} series).
  [[nodiscard]] std::string to_prometheus(std::string_view prefix = "hetindex") const;
};

/// Named instrument registry. Get-or-create accessors are thread-safe and
/// return references that stay valid for the registry's lifetime, so hot
/// paths resolve names once and then touch only the instrument.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  Counter& counter(std::string_view name);
  TimeCounter& time_counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Stat& stat(std::string_view name);
  /// Bucket geometry is fixed by the first call for a given name.
  Histo& histogram(std::string_view name, double lo, double hi, std::size_t buckets);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::string to_json() const { return snapshot().to_json(); }
  [[nodiscard]] std::string to_prometheus(std::string_view prefix = "hetindex") const {
    return snapshot().to_prometheus(prefix);
  }

 private:
  struct Instruments;  // name→unique_ptr maps, one per kind
  mutable std::mutex mu_;  // guards registration and snapshot iteration only
  std::unique_ptr<Instruments> instruments_;
};

/// RAII wall-clock span feeding a TimeCounter total and optionally a
/// per-sample Stat. stop() is idempotent and returns the measured seconds,
/// so one measurement serves both the registry and a RunRecord field.
class StageSpan {
 public:
  explicit StageSpan(TimeCounter* total, Stat* per_sample = nullptr)
      : total_(total), per_sample_(per_sample) {}
  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;
  ~StageSpan() { stop(); }

  double stop() {
    if (!stopped_) {
      stopped_ = true;
      seconds_ = timer_.seconds();
      if (total_ != nullptr) total_->add(seconds_);
      if (per_sample_ != nullptr) per_sample_->add(seconds_);
    }
    return seconds_;
  }

 private:
  TimeCounter* total_;
  Stat* per_sample_;
  WallTimer timer_;
  bool stopped_ = false;
  double seconds_ = 0;
};

/// Optional instrumentation hooks for the bounded queues / reorder buffer.
/// All pointers may be null; a default-constructed probe is a no-op.
struct QueueProbe {
  Gauge* depth = nullptr;                      ///< items currently queued
  TimeCounter* producer_stall_seconds = nullptr;  ///< time producers blocked
  TimeCounter* consumer_stall_seconds = nullptr;  ///< time consumers blocked
};

}  // namespace hetindex::obs
