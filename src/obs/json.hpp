#pragma once
/// \file json.hpp
/// Minimal JSON support for the observability exports: an append-style
/// writer helper plus a small recursive-descent parser. The parser exists
/// so tests (and downstream tooling) can round-trip the reports without an
/// external dependency; it accepts the subset the writers emit (objects,
/// arrays, strings, finite numbers, booleans, null) which is also plain
/// standard JSON.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hetindex::obs {

/// Appends `raw` to `out` as a quoted JSON string with escaping.
void json_append_string(std::string& out, std::string_view raw);

/// Shortest round-trippable rendering of a finite double ("%.17g" trimmed);
/// NaN/inf render as null per JSON's number grammar.
std::string json_number(double value);

/// Parsed JSON document. Object member order is preserved.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member with the given key, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
};

/// Parses a complete JSON document; nullopt on any syntax error or
/// trailing garbage.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace hetindex::obs
