#pragma once
/// \file simt.hpp
/// SIMT execution engine: runs warp-level kernels functionally on the host
/// while charging cycles under the GpuSpec cost model. This substitutes for
/// real CUDA hardware (see DESIGN.md §2): kernels are written against the
/// WarpContext API, which exposes exactly the performance-relevant events
/// the paper optimizes — coalesced vs. scattered device-memory traffic,
/// shared-memory bank conflicts, warp-parallel compare/reduce steps and
/// divergent execution.
///
/// Scheduling model: thread blocks are dispatched to the SM that becomes
/// free first (list scheduling), which is what the hardware's block
/// scheduler approximates and what the paper's "dynamic round-robin" work
/// assignment relies on. Kernel time = latest SM finish time; per-SM busy
/// times are reported so load imbalance (§IV.B "possibility of load
/// imbalance among the CUDA threads") is measurable.

#include <cstdint>
#include <functional>
#include <vector>

#include "gpusim/gpu_spec.hpp"

namespace hetindex {

/// Aggregate counters of one kernel launch.
struct KernelStats {
  double sim_seconds = 0;            ///< simulated wall time of the launch
  double total_cycles = 0;           ///< sum of cycles over all blocks
  std::uint64_t blocks = 0;
  std::uint64_t global_load_transactions = 0;
  std::uint64_t global_store_transactions = 0;
  std::uint64_t uncoalesced_transactions = 0;  ///< subset that was scattered
  std::uint64_t shared_accesses = 0;
  std::uint64_t bank_conflict_cycles = 0;
  std::uint64_t simd_steps = 0;
  /// max SM busy time / mean SM busy time (1.0 = perfect balance).
  double load_imbalance = 1.0;
};

/// Per-block execution context handed to kernels. All cost-charging calls
/// accumulate into the block's cycle count; the functional work itself is
/// plain host C++.
class WarpContext {
 public:
  WarpContext(const GpuSpec& spec, std::uint32_t block_id, KernelStats& stats)
      : spec_(&spec), block_id_(block_id), stats_(&stats) {}

  [[nodiscard]] std::uint32_t block_id() const { return block_id_; }
  [[nodiscard]] std::uint32_t warp_size() const { return spec_->warp_size; }

  /// Charges `n` ALU cycles (one SIMD instruction across the warp ≈ 4
  /// cycles on the C1060's 8-SP SMs).
  void cycles(double n) { cycles_ += n; }

  /// One warp-wide SIMD step (e.g. 32 parallel 4-byte comparisons).
  void simd_step(double instructions = 1) {
    cycles_ += 4.0 * instructions;  // 32 lanes / 8 SPs = 4 cycles per instr
    stats_->simd_steps += static_cast<std::uint64_t>(instructions);
  }

  /// Warp-parallel reduction over 32 lanes (Fig. 7's "parallel reduction
  /// step", [11]): log2(32) = 5 SIMD steps.
  void reduce_step() { simd_step(5); }

  /// Loads `bytes` from device memory. Coalesced: ceil(bytes/64)
  /// transactions streamed at peak bandwidth after one latency. Scattered:
  /// one 64-byte transaction per 4-byte word touched (the paper's motive
  /// for staging strings through shared memory).
  void load_global(std::uint64_t bytes, bool coalesced) {
    charge_global(bytes, coalesced, /*store=*/false);
  }
  void store_global(std::uint64_t bytes, bool coalesced) {
    charge_global(bytes, coalesced, /*store=*/true);
  }

  /// Shared-memory access of the warp with a given word stride between
  /// lanes. Stride 1 (or broadcast) is conflict-free; stride s costs the
  /// maximum bank multiplicity across the 16 banks per half-warp.
  void shared_access(std::uint32_t stride_words = 1) {
    // Bank multiplicity of a strided half-warp access: 16 lanes hit
    // banks/gcd(stride,banks) distinct banks, so gcd(stride,16) lanes share
    // each bank and the access serializes that many times. Stride 0 is a
    // broadcast (conflict-free by hardware).
    const std::uint32_t banks = spec_->shared_banks;
    const std::uint32_t conflict = stride_words == 0 ? 1 : gcd(stride_words, banks);
    // Two half-warps per warp; each conflict-free access = 1 cycle.
    cycles_ += 2.0 * conflict;
    stats_->shared_accesses += 1;
    if (conflict > 1) stats_->bank_conflict_cycles += 2ull * (conflict - 1);
  }

  /// Serialized divergent section: `active_fraction` of lanes execute
  /// `steps` SIMD steps while the rest idle (costs the same as full warp —
  /// that is the cost of divergence).
  void divergent(double steps) { simd_step(steps); }

  /// Device-memory latency stall that could not be hidden by other warps
  /// (dependent pointer chase, e.g. descending the B-tree).
  void latency_stall() { cycles_ += spec_->global_latency_cycles; }

  [[nodiscard]] double block_cycles() const { return cycles_; }

 private:
  static std::uint32_t gcd(std::uint32_t a, std::uint32_t b) {
    while (b != 0) {
      const std::uint32_t t = a % b;
      a = b;
      b = t;
    }
    return a;
  }

  void charge_global(std::uint64_t bytes, bool coalesced, bool store) {
    if (bytes == 0) return;
    std::uint64_t transactions;
    if (coalesced) {
      transactions = (bytes + spec_->coalesce_segment_bytes - 1) / spec_->coalesce_segment_bytes;
    } else {
      transactions = (bytes + 3) / 4;  // one segment per scattered word
      stats_->uncoalesced_transactions += transactions;
    }
    cycles_ += static_cast<double>(transactions) * spec_->cycles_per_segment();
    if (store)
      stats_->global_store_transactions += transactions;
    else
      stats_->global_load_transactions += transactions;
  }

  const GpuSpec* spec_;
  std::uint32_t block_id_;
  KernelStats* stats_;
  double cycles_ = 0;
};

/// The engine: owns the spec and runs launches.
class SimtEngine {
 public:
  explicit SimtEngine(GpuSpec spec = {}) : spec_(spec) {}

  [[nodiscard]] const GpuSpec& spec() const { return spec_; }

  /// Executes `fn(ctx)` once per thread block (block ids 0..num_blocks-1),
  /// then schedules the measured block costs onto the SMs.
  KernelStats launch(std::uint32_t num_blocks,
                     const std::function<void(WarpContext&)>& fn) const;

  /// Simulated host→device / device→host copy times (pre/post-processing
  /// of Fig. 8 — these phases are serialized with indexing).
  [[nodiscard]] double copy_seconds(std::uint64_t bytes) const {
    return spec_.pcie_latency_s +
           static_cast<double>(bytes) / (spec_.pcie_bandwidth_gb_s * 1e9);
  }

 private:
  GpuSpec spec_;
};

}  // namespace hetindex
