#pragma once
/// \file gpu_spec.hpp
/// Architectural parameters of the simulated GPU. Defaults model the NVIDIA
/// Tesla C1060 exactly as §I describes it: 30 SMs × 8 SPs, 32-lane warps,
/// 16 KB shared memory with 16 banks, coalesced 16-word (64 B) global
/// transactions, 400–600-cycle device-memory latency, 102 GB/s peak
/// bandwidth, 4 GB device memory.

#include <cstdint>

namespace hetindex {

struct GpuSpec {
  std::uint32_t sm_count = 30;
  std::uint32_t warp_size = 32;
  std::uint32_t shared_mem_bytes = 16 * 1024;
  std::uint32_t shared_banks = 16;
  std::uint64_t device_mem_bytes = 4ull << 30;
  double clock_ghz = 1.296;                    ///< C1060 shader clock
  double device_bandwidth_gb_s = 102.0;        ///< peak, coalesced
  std::uint32_t global_latency_cycles = 500;   ///< §I: "around 400-600 cycles"
  std::uint32_t coalesce_segment_bytes = 64;   ///< 16 words × 4 B
  double pcie_bandwidth_gb_s = 5.0;            ///< host↔device transfer
  double pcie_latency_s = 10e-6;
  double kernel_launch_s = 8e-6;
  /// Fraction of the ideal issue rate an irregular pointer-chasing kernel
  /// sustains. The analytic cycle charges assume perfect scheduling; real
  /// C1060 kernels of this shape lose most of that to occupancy limits
  /// (8 resident 32-thread blocks/SM), intra-warp divergence on byte-wise
  /// string code and memory-controller contention. Calibrated so the
  /// warp-per-collection B-tree kernel lands in the throughput ratio the
  /// paper measures (Table IV: two GPU-only C1060s run the full workload
  /// ~1.7× slower than one Xeon core; adding them to 2 CPU indexers still
  /// gains ~38%).
  double kernel_efficiency = 0.12;

  /// Cycles to stream `segments` coalesced 64 B segments at peak bandwidth
  /// (latency is charged separately and can overlap across warps).
  [[nodiscard]] double cycles_per_segment() const {
    const double bytes_per_cycle = device_bandwidth_gb_s / clock_ghz;  // GB/Gcycle = B/cycle
    return static_cast<double>(coalesce_segment_bytes) / bytes_per_cycle;
  }

  [[nodiscard]] double seconds_from_cycles(double cycles) const {
    return cycles / (clock_ghz * 1e9);
  }
};

}  // namespace hetindex
