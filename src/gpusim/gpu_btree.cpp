#include "gpusim/gpu_btree.hpp"

namespace hetindex {

void GpuBTreeKernel::charge_stage_strings(std::uint64_t bytes, WarpContext& ctx) {
  // Coalesced 512 B chunk loads: each chunk is 8 segments; lanes then read
  // their words from shared memory conflict-free.
  const std::uint64_t chunks = (bytes + 511) / 512;
  ctx.load_global(chunks * 512, /*coalesced=*/true);
  ctx.cycles(static_cast<double>(chunks));  // issue overhead per chunk
  for (std::uint64_t c = 0; c < chunks; ++c) ctx.shared_access(1);
}

std::pair<std::uint32_t, bool> GpuBTreeKernel::warp_compare(BTree& tree, const BTreeNode& nd,
                                                            std::string_view suffix,
                                                            std::uint32_t probe_cache,
                                                            WarpContext& ctx) {
  // One SIMD step: every lane i < valid compares its key's 4-byte cache
  // with the broadcast probe cache (shared-memory broadcast, stride 0).
  ctx.shared_access(0);  // broadcast probe
  ctx.shared_access(1);  // lanes read their cache words
  ctx.simd_step(2);      // compare + predicate write

  // Lanes whose cache comparison ties must dereference the string pointer:
  // scattered (uncoalesced) global reads, serialized by the memory system
  // but overlapping one latency.
  std::uint64_t scattered_bytes = 0;
  std::uint32_t ties = 0;
  for (std::uint32_t i = 0; i < nd.valid; ++i) {
    if (compare_cache_words(nd.cache[i], probe_cache) == 0 && nd.term_ptr[i] != kArenaNull) {
      const std::uint8_t* rec = tree.arena_->pointer(nd.term_ptr[i]);
      scattered_bytes += 1u + rec[0];
      ++ties;
    }
  }
  if (ties > 0) {
    ctx.latency_stall();
    ctx.load_global(scattered_bytes, /*coalesced=*/false);
    ctx.divergent(2);  // byte-wise compare loop runs on the tying lanes only
  }

  // Functional lower bound (the warp's parallel predicate + reduction).
  std::uint32_t lo = 0;
  bool found = false;
  for (std::uint32_t i = 0; i < nd.valid; ++i) {
    const int d = tree.compare_key(nd, i, suffix, probe_cache);
    if (d == 0) {
      lo = i;
      found = true;
      break;
    }
    if (d < 0) lo = i + 1;  // key < probe
  }
  ctx.reduce_step();  // Fig. 7: parallel reduction locates the position
  return {lo, found};
}

BTreeInsertResult GpuBTreeKernel::insert(BTree& tree, std::string_view suffix,
                                         WarpContext& ctx) {
  const std::uint32_t probe_cache = make_cache_word(suffix);

  // Preemptive root split (§III.D.2 "Splitting: before accessing a B-Tree
  // node, we check to determine whether this node is full").
  if (tree.node(tree.root_)->valid == kBTreeMaxKeys) {
    const ArenaOffset new_root = tree.allocate_node(/*leaf=*/false);
    tree.node(new_root)->child[0] = tree.root_;
    tree.root_ = new_root;
    tree.split_child(*tree.node(new_root), 0);
    // Split cost: read the full child, write two halves + new parent.
    ctx.load_global(512, true);
    ctx.store_global(3 * 512, true);
    ctx.simd_step(4);
  }

  ArenaOffset cur = tree.root_;
  while (true) {
    // Fetch the node into shared memory: 512 B coalesced (32 lanes × 16 B).
    // The fetch depends on the previous level's comparison outcome, so its
    // device-memory latency is on the warp's critical path (the C1060 has
    // no cache to absorb it — §III.E's reason to keep hot paths on the CPU).
    ctx.latency_stall();
    ctx.load_global(512, /*coalesced=*/true);
    auto* nd = tree.node(cur);

    auto [lo, found] = warp_compare(tree, *nd, suffix, probe_cache, ctx);
    if (found) return {&nd->postings[lo], false};

    if (nd->leaf) {
      // Parallel shift: lanes holding keys > probe move one slot right
      // (term_ptr, postings and cache arrays move together), then one lane
      // writes the new key.
      if (nd->valid > lo) {
        ctx.shared_access(1);
        ctx.simd_step(3);
      }
      for (std::uint32_t k = nd->valid; k > lo; --k) {
        nd->term_ptr[k] = nd->term_ptr[k - 1];
        nd->postings[k] = nd->postings[k - 1];
        nd->cache[k] = nd->cache[k - 1];
      }
      tree.store_key(*nd, lo, suffix);
      ++nd->valid;
      ++tree.key_count_;
      if (suffix.size() > 4) {
        // The remainder of the string goes to device memory (Fig. 6 record).
        ctx.store_global(1 + suffix.size(), /*coalesced=*/false);
      }
      ctx.store_global(512, /*coalesced=*/true);  // write the node back
      return {&nd->postings[lo], true};
    }

    if (tree.node(nd->child[lo])->valid == kBTreeMaxKeys) {
      tree.split_child(*nd, lo);
      ctx.load_global(512, true);
      ctx.store_global(3 * 512, true);
      ctx.simd_step(4);
      const int d = tree.compare_key(*nd, lo, suffix, probe_cache);
      if (d == 0) return {&nd->postings[lo], false};
      if (d < 0) ++lo;
    }
    cur = nd->child[lo];  // the dependent fetch latency is charged above
  }
}

}  // namespace hetindex
