#include "gpusim/simt.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace hetindex {

KernelStats SimtEngine::launch(std::uint32_t num_blocks,
                               const std::function<void(WarpContext&)>& fn) const {
  KernelStats stats;
  stats.blocks = num_blocks;
  if (num_blocks == 0) return stats;

  // Phase 1: functional execution, measuring each block's cycle cost.
  std::vector<double> block_cycles(num_blocks);
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    WarpContext ctx(spec_, b, stats);
    fn(ctx);
    block_cycles[b] = ctx.block_cycles();
    stats.total_cycles += ctx.block_cycles();
  }

  // Phase 2: list-schedule blocks (in launch order) onto the SM that frees
  // up first — the hardware block scheduler's behaviour, and what makes
  // the paper's dynamic round-robin collection assignment balance load.
  std::priority_queue<double, std::vector<double>, std::greater<>> sm_free;
  for (std::uint32_t s = 0; s < spec_.sm_count; ++s) sm_free.push(0.0);
  std::vector<double> busy(spec_.sm_count, 0.0);
  double finish = 0.0;
  std::size_t sm_rr = 0;  // attribute busy time round-robin for reporting
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    const double start = sm_free.top();
    sm_free.pop();
    const double end = start + block_cycles[b];
    sm_free.push(end);
    finish = std::max(finish, end);
    busy[sm_rr % busy.size()] += block_cycles[b];
    ++sm_rr;
  }
  // Recompute per-SM busy via the schedule's end times for imbalance: use
  // the spread between total work spread evenly vs the critical path.
  const double mean = stats.total_cycles / static_cast<double>(spec_.sm_count);
  stats.load_imbalance = mean > 0 ? finish / mean : 1.0;
  stats.sim_seconds =
      spec_.kernel_launch_s + spec_.seconds_from_cycles(finish / spec_.kernel_efficiency);
  return stats;
}

}  // namespace hetindex
