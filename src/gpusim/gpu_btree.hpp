#pragma once
/// \file gpu_btree.hpp
/// The warp-parallel B-tree insertion kernel of §III.D.2 (Figs. 6 & 7),
/// executed on the SIMT engine. One thread block (one 32-lane warp) owns
/// one trie collection's B-tree; the node's 31 keys are compared against
/// the probe term by 31 lanes in a single SIMD step followed by a parallel
/// reduction, and shifts/splits move keys with parallel lanes.
///
/// The kernel operates on the *same* 512-byte node layout and arena as the
/// CPU B-tree, and must produce byte-identical dictionaries — the
/// differential test in tests/test_gpusim.cpp enforces this. Costs are
/// charged to the WarpContext per the paper's description:
///   - node fetch: one coalesced 512 B load into shared memory (8 segments,
///     32 lanes × 4 B each — Table II's layout makes this exact);
///   - parallel compare: one SIMD step on the 4-byte caches; lanes whose
///     cache ties dereference term-string pointers (scattered loads);
///   - reduction to find the insert position: log2(32) steps;
///   - descent: a dependent-pointer latency stall per level;
///   - shift/split: SIMD steps plus coalesced write-backs.

#include <string_view>

#include "dict/btree.hpp"
#include "gpusim/simt.hpp"

namespace hetindex {

class GpuBTreeKernel {
 public:
  /// Warp-parallel find-or-insert. Functionally equivalent to
  /// BTree::find_or_insert; charges SIMT costs to `ctx`.
  static BTreeInsertResult insert(BTree& tree, std::string_view suffix, WarpContext& ctx);

  /// Charges the cost of staging `bytes` of length-prefixed term strings
  /// (Fig. 6) from device memory into shared memory in coalesced 512 B
  /// chunks (§III.D.2: "We read these term strings in contiguous chunks
  /// (512B) and store them into the shared memory").
  static void charge_stage_strings(std::uint64_t bytes, WarpContext& ctx);

 private:
  /// Warp compare of probe vs. all valid keys of a node: returns the
  /// lower-bound position and whether an exact match was found.
  static std::pair<std::uint32_t, bool> warp_compare(BTree& tree, const BTreeNode& nd,
                                                     std::string_view suffix,
                                                     std::uint32_t probe_cache,
                                                     WarpContext& ctx);
};

}  // namespace hetindex
