#include "index/sampler.hpp"

#include <algorithm>
#include <queue>

#include "corpus/container.hpp"
#include "dict/trie_table.hpp"
#include "parse/parser.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace hetindex {

bool WorkSplit::is_popular(std::uint32_t trie_idx) const {
  return std::find(popular.begin(), popular.end(), trie_idx) != popular.end();
}

WorkSplit sample_and_split(const std::vector<std::string>& files,
                           const SamplerConfig& config) {
  WallTimer timer;
  WorkSplit split;
  split.sampled_tokens.assign(kTrieCollections, 0);

  Parser parser;
  for (const auto& file : files) {
    // §III.E sampling: inflate only a prefix of each file (e.g. 1MB/1GB),
    // never the whole thing.
    const auto bytes = read_file(file);
    const std::uint64_t raw_size = container_uncompressed_size(file);
    const std::uint64_t want = std::max<std::uint64_t>(
        64 << 10,
        static_cast<std::uint64_t>(config.sample_fraction * static_cast<double>(raw_size)));
    auto docs = container_sample(bytes.data(), bytes.size(), want);
    if (docs.size() < config.min_docs_per_file) {
      docs = container_decompress(bytes.data(), bytes.size());
      if (docs.size() > config.min_docs_per_file) docs.resize(config.min_docs_per_file);
    }
    const auto block = parser.parse(docs, 0, 0, 0);
    for (const auto& g : block.groups) split.sampled_tokens[g.trie_idx] += g.tokens;
  }

  // Rank collections by sampled token count; the top popular_count become
  // the CPU's popular set.
  std::vector<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < kTrieCollections; ++i) {
    if (split.sampled_tokens[i] > 0) seen.push_back(i);
  }
  std::sort(seen.begin(), seen.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (split.sampled_tokens[a] != split.sampled_tokens[b])
      return split.sampled_tokens[a] > split.sampled_tokens[b];
    return a < b;
  });
  const std::size_t popular_n = std::min(config.popular_count, seen.size());
  split.popular.assign(seen.begin(), seen.begin() + static_cast<std::ptrdiff_t>(popular_n));
  split.unpopular.assign(seen.begin() + static_cast<std::ptrdiff_t>(popular_n), seen.end());
  std::sort(split.unpopular.begin(), split.unpopular.end());
  split.sampling_seconds = timer.seconds();
  return split;
}

std::vector<std::vector<std::uint32_t>> balance_popular(
    const std::vector<std::uint32_t>& popular, const std::vector<std::uint64_t>& tokens,
    std::size_t n) {
  HET_CHECK(n >= 1);
  // Greedy LPT: biggest collection first onto the lightest set.
  std::vector<std::uint32_t> order = popular;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return tokens.at(a) > tokens.at(b);
  });
  std::vector<std::vector<std::uint32_t>> sets(n);
  using Load = std::pair<std::uint64_t, std::size_t>;  // (mass, set)
  std::priority_queue<Load, std::vector<Load>, std::greater<>> heap;
  for (std::size_t i = 0; i < n; ++i) heap.push({0, i});
  for (const auto idx : order) {
    auto [mass, set] = heap.top();
    heap.pop();
    sets[set].push_back(idx);
    heap.push({mass + tokens.at(idx), set});
  }
  return sets;
}

std::vector<std::vector<std::uint32_t>> split_unpopular_mod(
    const std::vector<std::uint32_t>& unpopular, std::size_t n) {
  HET_CHECK(n >= 1);
  // §III.E: "assigning the trie collection TC_i with index i to the GPU
  // whose index is given by i mod N2".
  std::vector<std::vector<std::uint32_t>> sets(n);
  for (const auto idx : unpopular) sets[idx % n].push_back(idx);
  return sets;
}

}  // namespace hetindex
