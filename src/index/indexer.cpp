#include "index/indexer.hpp"

namespace hetindex {

CpuIndexer::CpuIndexer(DictionaryShard& shard, PostingsStore& store,
                       const std::vector<std::uint32_t>& collections)
    : shard_(&shard), store_(&store), owned_(collections) {}

IndexerWorkStats CpuIndexer::index_block(const ParsedBlock& block) {
  IndexerWorkStats stats;
  for (const auto& group : block.groups) {
    if (!owned_.contains(group.trie_idx)) continue;
    ++stats.collections_touched;
    BTree& tree = shard_->tree(group.trie_idx);
    auto handle_posting = [&](std::uint32_t local_doc, std::string_view suffix,
                              std::uint32_t position, bool positional) {
      auto res = tree.find_or_insert(suffix);
      if (res.created) {
        *res.postings_slot = store_->create();
        ++stats.new_terms;
      }
      if (positional) {
        store_->add(*res.postings_slot, block.doc_id_base + local_doc, position);
      } else {
        store_->add(*res.postings_slot, block.doc_id_base + local_doc);
      }
      ++stats.tokens;
      stats.chars += suffix.size();
    };
    if (!group.positions.empty()) {
      for_each_posting_positional(group,
                                  [&](std::uint32_t doc, std::string_view s, std::uint32_t p) {
                                    handle_posting(doc, s, p, true);
                                  });
    } else {
      for_each_posting(group, [&](std::uint32_t doc, std::string_view s) {
        handle_posting(doc, s, 0, false);
      });
    }
  }
  lifetime_ += stats;
  return stats;
}

GpuIndexer::GpuIndexer(DictionaryShard& shard, PostingsStore& store,
                       const std::vector<std::uint32_t>& collections, GpuSpec spec,
                       std::uint32_t thread_blocks)
    : shard_(&shard),
      store_(&store),
      owned_(collections),
      engine_(spec),
      thread_blocks_(thread_blocks) {}

IndexerWorkStats GpuIndexer::index_block(const ParsedBlock& block, Timing* timing) {
  // Gather the owned groups — this is the data pre-processing ships to the
  // device before the kernel runs (Fig. 8's serialized pre-processing).
  std::vector<const ParsedGroup*> work;
  std::uint64_t h2d_bytes = 0;
  for (const auto& group : block.groups) {
    if (!owned_.contains(group.trie_idx)) continue;
    work.push_back(&group);
    h2d_bytes += group.data.size();
  }

  // The parsed input must fit the card (C1060: 4 GB device memory). Real
  // deployments split over-large runs; at this library's run granularity
  // (~1 GB of parsed data, §III.C) the check never fires, but silent
  // overcommit would invalidate the timing model.
  HET_CHECK_MSG(h2d_bytes <= engine_.spec().device_mem_bytes,
                "parsed run exceeds GPU device memory");

  IndexerWorkStats stats;
  stats.collections_touched = work.size();
  std::uint64_t new_postings = 0;

  // §III.D.2: "we use a dynamic round-robin scheduling strategy such as
  // whenever a thread block completes the processing of a particular trie
  // collection, it starts processing the next available trie collection."
  // Thread block b starts from work item b and strides by the block count;
  // the engine's list scheduler then packs blocks onto free SMs.
  const auto kernel = engine_.launch(
      std::min<std::uint32_t>(thread_blocks_, std::max<std::size_t>(work.size(), 1)),
      [&](WarpContext& ctx) {
        for (std::size_t w = ctx.block_id(); w < work.size(); w += thread_blocks_) {
          const ParsedGroup& group = *work[w];
          BTree& tree = shard_->tree(group.trie_idx);
          GpuBTreeKernel::charge_stage_strings(group.data.size(), ctx);
          const bool positional = !group.positions.empty();
          auto handle_posting = [&](std::uint32_t local_doc, std::string_view suffix,
                                    std::uint32_t position) {
            auto res = GpuBTreeKernel::insert(tree, suffix, ctx);
            if (res.created) {
              *res.postings_slot = store_->create();
              ++stats.new_terms;
            }
            if (positional) {
              store_->add(*res.postings_slot, block.doc_id_base + local_doc, position);
            } else {
              store_->add(*res.postings_slot, block.doc_id_base + local_doc);
            }
            ++new_postings;
            // Appending a posting is a dependent read-modify-write on the
            // device-resident list tail (read tail doc id, compare, append
            // or bump tf): one un-hideable latency plus a scattered store.
            // Positional lists store one extra word per occurrence — the
            // "extra cost" the paper attributes to Ivory's positional
            // postings (§IV.D).
            ctx.latency_stall();
            ctx.store_global(positional ? 12 : 8, /*coalesced=*/false);
            ctx.simd_step(positional ? 4 : 3);
            ++stats.tokens;
            stats.chars += suffix.size();
          };
          if (positional) {
            for_each_posting_positional(group, handle_posting);
          } else {
            for_each_posting(group, [&](std::uint32_t doc, std::string_view s) {
              handle_posting(doc, s, 0);
            });
          }
        }
      });

  if (timing != nullptr) {
    timing->pre_seconds = engine_.copy_seconds(h2d_bytes);
    timing->index_seconds = kernel.sim_seconds;
    timing->post_seconds = engine_.copy_seconds(new_postings * 8);
    timing->kernel = kernel;
  }
  lifetime_ += stats;
  return stats;
}

}  // namespace hetindex
