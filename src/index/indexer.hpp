#pragma once
/// \file indexer.hpp
/// The indexers of §III.D: each owns an exclusive set of trie collections,
/// a dictionary shard and a postings store, and consumes parsed blocks.
/// CpuIndexer runs the standard serial B-tree procedure per collection;
/// GpuIndexer runs the warp-parallel kernel on the SIMT engine with the
/// paper's dynamic round-robin collection scheduling and reports simulated
/// device time plus the serialized pre/post-processing transfer times
/// (Fig. 8).

#include <cstdint>
#include <memory>
#include <vector>

#include "dict/dictionary.hpp"
#include "gpusim/gpu_btree.hpp"
#include "gpusim/simt.hpp"
#include "parse/parsed_block.hpp"
#include "postings/postings_store.hpp"

namespace hetindex {

/// Table V counters: what an indexer processed.
struct IndexerWorkStats {
  std::uint64_t tokens = 0;      ///< postings inserted (token occurrences)
  std::uint64_t new_terms = 0;   ///< terms first seen by this indexer
  std::uint64_t chars = 0;       ///< suffix bytes processed
  std::uint64_t collections_touched = 0;

  IndexerWorkStats& operator+=(const IndexerWorkStats& o) {
    tokens += o.tokens;
    new_terms += o.new_terms;
    chars += o.chars;
    collections_touched += o.collections_touched;
    return *this;
  }
};

/// Ownership filter shared by both indexer kinds: true when this indexer
/// owns the collection.
class CollectionSet {
 public:
  CollectionSet() : member_(kTrieCollections, false) {}
  explicit CollectionSet(const std::vector<std::uint32_t>& collections) : CollectionSet() {
    for (auto c : collections) member_[c] = true;
  }
  void add(std::uint32_t trie_idx) { member_[trie_idx] = true; }
  [[nodiscard]] bool contains(std::uint32_t trie_idx) const { return member_[trie_idx]; }

 private:
  std::vector<bool> member_;
};

/// CPU indexer (§III.D.1): one thread, serial B-tree inserts, relying on
/// the node string caches and the cache residency of popular collections.
class CpuIndexer {
 public:
  /// The shard and store must outlive the indexer; both are exclusively
  /// owned by it during the build (no locking, per the paper's design).
  CpuIndexer(DictionaryShard& shard, PostingsStore& store,
             const std::vector<std::uint32_t>& collections);

  /// Indexes the owned groups of one parsed block; doc IDs are globalized
  /// with the block's base. Returns the work processed.
  IndexerWorkStats index_block(const ParsedBlock& block);

  [[nodiscard]] const IndexerWorkStats& lifetime_stats() const { return lifetime_; }
  [[nodiscard]] const CollectionSet& collections() const { return owned_; }

 private:
  DictionaryShard* shard_;
  PostingsStore* store_;
  CollectionSet owned_;
  IndexerWorkStats lifetime_;
};

/// GPU indexer (§III.D.2): 480 thread blocks × 32 threads on one simulated
/// Tesla C1060; trie collections are pulled by thread blocks in dynamic
/// round-robin order. Functionally it builds the same dictionary/postings
/// as a CpuIndexer over the same input.
class GpuIndexer {
 public:
  struct Timing {
    double pre_seconds = 0;    ///< H2D copy of the owned parsed groups
    double index_seconds = 0;  ///< simulated kernel time
    double post_seconds = 0;   ///< D2H copy of new postings
    KernelStats kernel;
  };

  GpuIndexer(DictionaryShard& shard, PostingsStore& store,
             const std::vector<std::uint32_t>& collections, GpuSpec spec = {},
             std::uint32_t thread_blocks = 480);

  /// Indexes the owned groups of one block; returns work stats and fills
  /// `timing` (when non-null) with the simulated device-side times.
  IndexerWorkStats index_block(const ParsedBlock& block, Timing* timing = nullptr);

  [[nodiscard]] const IndexerWorkStats& lifetime_stats() const { return lifetime_; }
  [[nodiscard]] const CollectionSet& collections() const { return owned_; }
  [[nodiscard]] const SimtEngine& engine() const { return engine_; }
  [[nodiscard]] std::uint32_t thread_blocks() const { return thread_blocks_; }

 private:
  DictionaryShard* shard_;
  PostingsStore* store_;
  CollectionSet owned_;
  SimtEngine engine_;
  std::uint32_t thread_blocks_;
  IndexerWorkStats lifetime_;
};

}  // namespace hetindex
