#pragma once
/// \file sampler.hpp
/// Sampling-based popular/unpopular classification and the CPU/GPU work
/// split of §III.E: popular trie collections (dominated by a few frequent
/// terms — cache-friendly) go to CPU indexers; the long tail of unpopular
/// collections (Zipf flat region — cache-hostile, comparison-parallel) goes
/// to the GPUs. "To determine which collections belong to which group, we
/// extract a sample from the document collection, e.g. 1MB out of every
/// 1GB."

#include <cstdint>
#include <string>
#include <vector>

namespace hetindex {

struct SamplerConfig {
  /// Fraction of each file's documents to sample (paper: 1MB / 1GB).
  double sample_fraction = 0.001;
  /// Minimum sampled documents per file regardless of fraction.
  std::uint32_t min_docs_per_file = 4;
  /// Number of popular collections routed to the CPU (§III.E: "there are
  /// relatively very few popular trie collections (around one hundred)").
  std::size_t popular_count = 100;
};

/// The sampling outcome: per-collection token estimates and the resulting
/// popularity partition.
struct WorkSplit {
  /// Collections ranked most-popular-first (size = popular_count or fewer).
  std::vector<std::uint32_t> popular;
  /// Everything else that appeared in the sample. Collections never seen in
  /// the sample are implicitly unpopular (rare terms by construction).
  std::vector<std::uint32_t> unpopular;
  /// Sampled token counts, indexed by trie collection.
  std::vector<std::uint64_t> sampled_tokens;
  double sampling_seconds = 0;

  [[nodiscard]] bool is_popular(std::uint32_t trie_idx) const;
};

/// Runs the sampling pass over the collection files (reading only the
/// sampled prefix of each file's documents through the real parse path).
WorkSplit sample_and_split(const std::vector<std::string>& files, const SamplerConfig& config);

/// Splits the popular collections into `n` sets of nearly equal sampled
/// token mass (§III.E: "we split these trie collections into N1 independent
/// sets such that each contains almost the same number of tokens") using
/// greedy longest-processing-time assignment.
std::vector<std::vector<std::uint32_t>> balance_popular(
    const std::vector<std::uint32_t>& popular, const std::vector<std::uint64_t>& tokens,
    std::size_t n);

/// Assigns unpopular collection TC_i to GPU (i mod n) — the paper's static
/// mod split across GPUs.
std::vector<std::vector<std::uint32_t>> split_unpopular_mod(
    const std::vector<std::uint32_t>& unpopular, std::size_t n);

}  // namespace hetindex
