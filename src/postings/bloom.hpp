#pragma once
/// \file bloom.hpp
/// Per-postings-list Bloom filters — the `.blm` sidecar — used to reject
/// AND/PHRASE/NEAR candidates before any postings decode (Zambezi's
/// `-bloom` trick). Each term of a segment gets one filter over the
/// absolute doc ids of its list; a conjunctive driver tests a candidate
/// doc against every other term's filter and skips the follower seeks
/// (and their block decodes) when any filter says "definitely absent".
///
/// Filters are probabilistic one way only: may_contain() == false is
/// exact, true may be a false positive, so Bloom chains can never change
/// results — only the amount of decode work (the
/// `search_blooms_rejected_total` metric counts what they saved).
///
/// Sidecar lifecycle mirrors `.maxtf`/`.bmx`: written next to every
/// freshly-encoded segment (batch build, memtable flush, rewrite merge),
/// CRC-guarded, and *absent* after a §III.F byte-concatenation merge —
/// concatenation cannot merge filters sized to each input's list, so
/// merged segments degrade (no rejection) until a rewrite rebuilds the
/// sidecar. Readers treat a missing sidecar as "never reject".

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace hetindex {

class SegmentReader;

/// Sizing knobs, recorded in the sidecar header. The defaults (10 bits
/// per posting, 7 probes) give ~1% false positives.
struct BloomOptions {
  std::uint32_t bits_per_element = 10;
  std::uint32_t hashes = 7;
};

/// One segment's per-term filters, ordinal-indexed like the dictionary.
/// Build-side: construct with options and add_term() each list in ordinal
/// order. Read-side: read_bloom_sidecar() reconstructs it.
class BloomSidecar {
 public:
  BloomSidecar() = default;
  explicit BloomSidecar(BloomOptions options) : options_(options) {}

  /// Appends the filter for the next term's doc ids.
  void add_term(const std::uint32_t* doc_ids, std::size_t count);

  /// False ⇒ `doc` is definitely not in term `ordinal`'s list.
  [[nodiscard]] bool may_contain(std::uint64_t ordinal, std::uint32_t doc) const;

  [[nodiscard]] std::uint64_t term_count() const { return bits_.size(); }
  [[nodiscard]] const BloomOptions& options() const { return options_; }

 private:
  friend Status write_bloom_sidecar(const std::string&, const BloomSidecar&);
  friend Expected<BloomSidecar> read_bloom_sidecar(const std::string&, std::uint64_t);

  BloomOptions options_;
  std::vector<std::uint64_t> bits_;        ///< filter size in bits, per term
  std::vector<std::uint64_t> word_begin_{0};  ///< per-term start into words_
  std::vector<std::uint64_t> words_;       ///< all filters, back to back
};

/// `<segment path>.blm`.
std::string bloom_sidecar_path(const std::string& segment_path);

/// Writes the sidecar durably (CRC-guarded, like `.maxtf`/`.bmx`).
Status write_bloom_sidecar(const std::string& segment_path, const BloomSidecar& sidecar);

/// Loads and validates the sidecar. kNotFound when absent (the caller
/// degrades to no rejection), kCorrupt on CRC/structure mismatch,
/// kUnsupported on a newer version.
Expected<BloomSidecar> read_bloom_sidecar(const std::string& segment_path,
                                          std::uint64_t expected_terms);

/// Rebuilds the filters from a finished segment (one decode pass) — the
/// rebuild-on-rewrite path for segments whose sidecar a concat merge
/// dropped.
BloomSidecar compute_blooms(const SegmentReader& reader, BloomOptions options = {});

/// One segment's filter for one term, bound to the doc-id range that
/// segment owns. Candidates outside every link's range can never be
/// rejected (conservative).
struct BloomChainLink {
  std::uint32_t min_doc = 0;
  std::uint32_t max_doc = 0;
  const BloomSidecar* sidecar = nullptr;  ///< borrowed; the snapshot pin keeps it alive
  std::uint64_t ordinal = 0;
};

/// A term's rejection chain across a snapshot's segments (links in
/// ascending disjoint doc order; ranges without a filter — the memtable,
/// a merged segment with no sidecar — are simply not linked and pass).
class BloomChain {
 public:
  void add_link(BloomChainLink link) { links_.push_back(link); }
  [[nodiscard]] bool empty() const { return links_.empty(); }

  /// False ⇒ `doc` is definitely absent from the term's postings.
  [[nodiscard]] bool may_contain(std::uint32_t doc) const {
    for (const auto& link : links_) {
      if (doc < link.min_doc) return true;  // links ascend: uncovered gap
      if (doc <= link.max_doc) return link.sidecar->may_contain(link.ordinal, doc);
    }
    return true;
  }

 private:
  std::vector<BloomChainLink> links_;
};

}  // namespace hetindex
