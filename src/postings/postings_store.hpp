#pragma once
/// \file postings_store.hpp
/// Per-shard in-memory postings accumulation for the current run. The
/// dictionary's B-tree slots hold handles into this store; at the end of a
/// run the non-empty lists are flushed to a run file and the in-memory
/// lists reset, while handles stay stable for the program lifetime so later
/// runs extend the same logical postings list (§III.F).
///
/// Because the indexers consume parser buffers in round-robin document
/// order, documents arrive in increasing doc-ID order and a posting is a
/// pure append (or a term-frequency bump when the same document mentions
/// the term again) — the property the paper engineers the pipeline around
/// ("the postings lists are intrinsically in sorted order").

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace hetindex {

/// One in-memory postings list: parallel doc-id / term-frequency arrays,
/// plus (in positional mode) a flattened position stream — posting i owns
/// the next tfs[i] entries, in increasing order within a document.
struct PostingsList {
  std::vector<std::uint32_t> doc_ids;
  std::vector<std::uint32_t> tfs;
  std::vector<std::uint32_t> positions;  ///< empty unless positional mode

  [[nodiscard]] std::size_t size() const { return doc_ids.size(); }
  [[nodiscard]] bool empty() const { return doc_ids.empty(); }
  [[nodiscard]] bool positional() const { return !positions.empty(); }
};

class PostingsStore {
 public:
  /// Creates a new empty list; handles start at 1 (0 is the B-tree slot's
  /// "no postings yet" value).
  std::uint32_t create() {
    lists_.emplace_back();
    return static_cast<std::uint32_t>(lists_.size());
  }

  /// Records one occurrence of the term with handle `h` in `doc_id`.
  /// doc_id must be ≥ the list's current tail (monotone stream).
  void add(std::uint32_t h, std::uint32_t doc_id) {
    PostingsList& list = resolve(h);
    if (!list.doc_ids.empty() && list.doc_ids.back() == doc_id) {
      ++list.tfs.back();
      return;
    }
    HET_DCHECK(list.doc_ids.empty() || list.doc_ids.back() < doc_id);
    list.doc_ids.push_back(doc_id);
    list.tfs.push_back(1);
    ++postings_added_;
  }

  /// Positional variant: also records the in-document token position
  /// (positions must be non-decreasing within a document). A store must be
  /// used consistently — either always with or always without positions.
  void add(std::uint32_t h, std::uint32_t doc_id, std::uint32_t position) {
    add(h, doc_id);
    resolve(h).positions.push_back(position);
  }

  [[nodiscard]] const PostingsList& list(std::uint32_t h) const {
    HET_CHECK(h >= 1 && h <= lists_.size());
    return lists_[h - 1];
  }
  [[nodiscard]] PostingsList& resolve(std::uint32_t h) {
    HET_CHECK(h >= 1 && h <= lists_.size());
    return lists_[h - 1];
  }

  [[nodiscard]] std::uint32_t list_count() const {
    return static_cast<std::uint32_t>(lists_.size());
  }
  /// Postings appended since construction (not reset by clear_lists).
  [[nodiscard]] std::uint64_t postings_added() const { return postings_added_; }

  /// Empties every list (keeping handles and capacity) after a run flush.
  void clear_lists() {
    for (auto& l : lists_) {
      l.doc_ids.clear();
      l.tfs.clear();
      l.positions.clear();
    }
  }

 private:
  std::vector<PostingsList> lists_;
  std::uint64_t postings_added_ = 0;
};

}  // namespace hetindex
