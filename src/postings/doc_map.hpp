#pragma once
/// \file doc_map.hpp
/// The ⟨document ID, document location on disk⟩ table of Fig. 3 Step 1:
/// maps every global doc id back to its URL and source container file, so
/// query results can be resolved to actual documents. Stored LZ-compressed
/// (URLs share long prefixes).

#include <cstdint>
#include <string>
#include <vector>

namespace hetindex {

/// Location of one document.
struct DocLocation {
  std::string url;
  std::uint32_t file_seq = 0;     ///< source container file index
  std::uint32_t local_id = 0;     ///< record index within that file
  std::uint32_t token_count = 0;  ///< indexed tokens (BM25 length norm)
};

/// Build-side accumulator; doc ids are assigned densely from 0.
class DocMapBuilder {
 public:
  /// Registers a file's documents starting at `doc_id_base` (ids within a
  /// file are consecutive). Thread-safe for distinct, non-overlapping
  /// ranges; the pipeline calls it once per run in sequence order.
  void add_file(std::uint32_t doc_id_base, std::uint32_t file_seq,
                const std::vector<std::string>& urls,
                const std::vector<std::uint32_t>& token_counts);

  [[nodiscard]] std::uint32_t doc_count() const;

  /// Writes the map to `path` (format: header + LZ frame of records).
  void write(const std::string& path) const;

 private:
  struct FileSpan {
    std::uint32_t doc_id_base;
    std::uint32_t file_seq;
    std::vector<std::string> urls;
    std::vector<std::uint32_t> token_counts;
  };
  std::vector<FileSpan> spans_;
};

/// Read-side map.
class DocMap {
 public:
  static DocMap open(const std::string& path);

  [[nodiscard]] std::uint32_t doc_count() const {
    return static_cast<std::uint32_t>(locations_.size());
  }
  /// Location of a doc id; hard-fails when out of range.
  [[nodiscard]] const DocLocation& location(std::uint32_t doc_id) const;
  /// Mean indexed tokens per document (BM25's avgdl).
  [[nodiscard]] double average_doc_tokens() const;

 private:
  std::vector<DocLocation> locations_;
};

/// Canonical file name inside an index directory.
std::string doc_map_path(const std::string& index_dir);

}  // namespace hetindex
