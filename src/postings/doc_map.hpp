#pragma once
/// \file doc_map.hpp
/// The ⟨document ID, document location on disk⟩ table of Fig. 3 Step 1:
/// maps every global doc id back to its URL and source container file, so
/// query results can be resolved to actual documents. Stored LZ-compressed
/// (URLs share long prefixes).
///
/// A map covers the contiguous global doc-id range [base, base+doc_count).
/// The batch pipeline always builds base-0 maps; the live indexing layer
/// (docs/LIVE_INDEXING.md) writes one map per flushed segment at that
/// segment's doc-id base, and compaction folds them back together with
/// DocMapBuilder::append() — ids never shift, so postings blobs keep
/// referring to the same documents across merges.

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace hetindex {

class DocMap;

/// Location of one document.
struct DocLocation {
  std::string url;
  std::uint32_t file_seq = 0;     ///< source container file index
  std::uint32_t local_id = 0;     ///< record index within that file
  std::uint32_t token_count = 0;  ///< indexed tokens (BM25 length norm)
};

/// Build-side accumulator; doc ids are assigned densely from base().
class DocMapBuilder {
 public:
  /// Doc ids tile [0, doc_count) — the batch pipeline's map.
  DocMapBuilder() = default;
  /// Doc ids tile [doc_id_base, doc_id_base + doc_count) — a per-segment
  /// map of the live indexing layer.
  explicit DocMapBuilder(std::uint32_t doc_id_base) : base_(doc_id_base) {}

  /// Registers a file's documents starting at `doc_id_base` (ids within a
  /// file are consecutive). Thread-safe for distinct, non-overlapping
  /// ranges; the pipeline calls it once per run in sequence order.
  void add_file(std::uint32_t doc_id_base, std::uint32_t file_seq,
                const std::vector<std::string>& urls,
                const std::vector<std::uint32_t>& token_counts);

  /// Appends every span of an already-built map, preserving its file_seq
  /// grouping — the doc-map side of segment compaction. The map's range
  /// must continue this builder's ids exactly (no gap, no overlap); write()
  /// verifies.
  void append(const DocMap& map);

  /// First doc id covered.
  [[nodiscard]] std::uint32_t base() const { return base_; }
  /// Documents registered so far.
  [[nodiscard]] std::uint32_t doc_count() const;

  /// Writes the map to `path` (format: header + LZ frame of records).
  /// Base-0 maps keep the original v1 header; a nonzero base writes the v2
  /// header that carries it. Hard-fails on I/O errors (batch path).
  void write(const std::string& path) const;

  /// Durable, non-aborting variant for the live commit path: write + fsync
  /// via io::durable_write_file; kIo with no partial file on failure.
  [[nodiscard]] Status try_write(const std::string& path) const;

 private:
  struct FileSpan {
    std::uint32_t doc_id_base;
    std::uint32_t file_seq;
    std::vector<std::string> urls;
    std::vector<std::uint32_t> token_counts;
  };
  std::uint32_t base_ = 0;
  std::vector<FileSpan> spans_;
};

/// Read-side map over global ids [base, base+doc_count).
class DocMap {
 public:
  static DocMap open(const std::string& path);

  /// First global doc id covered (0 for batch-built maps).
  [[nodiscard]] std::uint32_t base() const { return base_; }
  [[nodiscard]] std::uint32_t doc_count() const {
    return static_cast<std::uint32_t>(locations_.size());
  }
  /// True when `doc_id` falls inside [base, base+doc_count).
  [[nodiscard]] bool contains(std::uint32_t doc_id) const {
    return doc_id >= base_ && doc_id - base_ < locations_.size();
  }
  /// Location of a global doc id; hard-fails when outside the range.
  [[nodiscard]] const DocLocation& location(std::uint32_t doc_id) const;
  /// Mean indexed tokens per document (BM25's avgdl).
  [[nodiscard]] double average_doc_tokens() const;
  /// Exact total of indexed tokens — the integer numerator behind
  /// average_doc_tokens(). The live tier's tombstone-aware collection
  /// stats subtract deleted docs from this without float drift.
  [[nodiscard]] std::uint64_t token_sum() const;

 private:
  friend class DocMapBuilder;  // append() walks spans_ + locations_

  /// Span metadata retained from the file so append() can round-trip the
  /// file_seq grouping without re-deriving it from locations_.
  struct SpanInfo {
    std::uint32_t doc_id_base;  ///< global
    std::uint32_t file_seq;
    std::uint32_t count;
  };

  std::uint32_t base_ = 0;
  std::vector<DocLocation> locations_;
  std::vector<SpanInfo> spans_;
};

/// Canonical file name inside an index directory.
std::string doc_map_path(const std::string& index_dir);

}  // namespace hetindex
