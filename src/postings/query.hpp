#pragma once
/// \file query.hpp
/// Read path over a built index. Two backends share one interface:
///
///   run files   every `run_*.post` loaded into memory, terms resolved via
///               the dictionary — the build-time view, and still the §III.F
///               per-run layout whose doc-ID-range narrowing only touches
///               runs overlapping the query range
///   segment     one mmapped `index.seg` (see postings/segment.hpp) with
///               zero-copy terms and per-lookup lazy decode — the serving
///               view produced by emit_segment or compact_index()
///
/// open() auto-detects (segment preferred when present). Both backends are
/// safe for concurrent readers: the segment keeps no per-lookup state, and
/// read-path metrics go to lock-free/lightly-locked obs instruments.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dict/dictionary.hpp"
#include "obs/metrics.hpp"
#include "postings/bloom.hpp"
#include "postings/run_file.hpp"
#include "postings/segment.hpp"
#include "util/error.hpp"

namespace hetindex {

class PostingsCursor;  // postings/cursor.hpp

/// Canonical on-disk layout of an index directory.
struct IndexLayout {
  static std::string dictionary_path(const std::string& dir) { return dir + "/dictionary.bin"; }
  static std::string directory_path(const std::string& dir) { return dir + "/runs.dir"; }
  static std::string run_path(const std::string& dir, std::uint32_t run_id) {
    return dir + "/run_" + std::to_string(run_id) + ".post";
  }
  static std::string merged_path(const std::string& dir) { return dir + "/merged.post"; }
  static std::string segment_path(const std::string& dir) { return dir + "/index.seg"; }
};

/// A decoded postings list. `positions` is filled only by positional
/// lookups over positional indexes: posting i owns the next tfs[i]
/// entries.
struct QueryPostings {
  std::vector<std::uint32_t> doc_ids;
  std::vector<std::uint32_t> tfs;
  std::vector<std::uint32_t> positions;
};

/// Which backend InvertedIndex::open() should serve from.
enum class IndexBackend {
  kAuto,     ///< segment when `index.seg` exists, else run files
  kRuns,     ///< force the run-file backend (dictionary + runs in memory)
  kSegment,  ///< force the mmapped-segment backend
};

/// Options for InvertedIndex::open(). An aggregate so call sites can spell
/// the default as `open(dir, {})` and a forced backend as
/// `open(dir, {IndexBackend::kRuns})`.
struct OpenOptions {
  IndexBackend backend = IndexBackend::kAuto;
};

/// Queryable view of an index directory (run-file or segment backed).
class InvertedIndex {
 public:
  /// Opens `dir` with the requested backend. Missing index files report
  /// ErrorCode::kNotFound, a failed segment checksum or structural check
  /// kCorrupt, an unknown segment version or codec kUnsupported — instead
  /// of aborting, so callers can fall back or surface the message. (Deep
  /// corruption inside the run-file loaders still hard-fails; the CRC'd
  /// segment is the backend with end-to-end soft validation.)
  static Expected<InvertedIndex> open(const std::string& dir, const OpenOptions& options);

  InvertedIndex(InvertedIndex&&) noexcept;
  InvertedIndex& operator=(InvertedIndex&&) noexcept;
  ~InvertedIndex();

  /// Full postings list of `term` (stemmed form); nullopt when the term is
  /// not in the dictionary.
  [[nodiscard]] std::optional<QueryPostings> lookup(std::string_view term) const;

  /// Block-level cursor over `term`'s postings (see postings/cursor.hpp);
  /// nullptr when the term is unknown or its list is empty. Segment-backed
  /// with a loaded skip table this is a zero-copy blob cursor that decodes
  /// only the blocks it lands on; otherwise it wraps a decoded list. The
  /// cursor borrows the index — it must not outlive this object.
  /// `with_positions` asks for current_positions() support: the segment
  /// cursor serves positions natively (lazy per-block re-decode); the
  /// decoded fallback then materializes the positional list up front.
  [[nodiscard]] std::unique_ptr<PostingsCursor> open_cursor(
      std::string_view term, bool with_positions = false) const;

  /// Like lookup() but also decodes in-document token positions (empty
  /// when the index was not built with record_positions).
  [[nodiscard]] std::optional<QueryPostings> lookup_positional(std::string_view term) const;

  /// Postings restricted to doc ids in [min_doc, max_doc]; only blobs whose
  /// doc ranges overlap are decoded. `runs_touched` (optional out) reports
  /// how many run files (or, segment-backed, whether the term's blob) were
  /// actually read — the quantity the §III.F range-narrowing claim is
  /// about.
  [[nodiscard]] std::optional<QueryPostings> lookup_range(
      std::string_view term, std::uint32_t min_doc, std::uint32_t max_doc,
      std::size_t* runs_touched = nullptr) const;

  /// All dictionary terms starting with `prefix`, in lexicographic order —
  /// a by-product of the sorted dictionary (and of the trie + B-tree
  /// in-order layout that produced it). Useful for query expansion and
  /// spell-out tooling.
  [[nodiscard]] std::vector<std::string> terms_with_prefix(std::string_view prefix) const;

  /// fn(term) over every dictionary term in lexicographic order. The view
  /// is only valid during the call (segment terms are decoded on the fly).
  void for_each_term(const std::function<void(std::string_view)>& fn) const;

  /// Per-term maximum term frequency from the score-bound sidecar
  /// (segment backend, `index.seg.maxtf` present — see postings/segment.hpp);
  /// nullopt for unknown terms or when no sidecar was loaded. The top-k
  /// executor turns this into a BM25 score upper bound for early
  /// termination, falling back to the loose idf·(k1+1) bound otherwise.
  [[nodiscard]] std::optional<std::uint32_t> max_tf(std::string_view term) const;
  /// True when per-term score bounds were loaded at open().
  [[nodiscard]] bool has_score_bounds() const { return !max_tfs_.empty(); }
  /// True when the block skip-table sidecar (`index.seg.bmx`) was loaded at
  /// open() — the precondition for Block-Max skipping over raw blobs.
  [[nodiscard]] bool has_block_index() const { return block_index_.has_value(); }
  /// True when the Bloom sidecar (`index.seg.blm`) was loaded at open().
  [[nodiscard]] bool has_blooms() const { return blooms_.has_value(); }
  /// The term's Bloom rejection chain (postings/bloom.hpp): empty — never
  /// rejects — when no sidecar was loaded or the term is unknown. The
  /// chain borrows this index and must not outlive it.
  [[nodiscard]] BloomChain bloom_chain(std::string_view term) const;

  /// True when serving from a compacted segment.
  [[nodiscard]] bool segment_backed() const { return segment_ != nullptr; }
  /// The underlying segment reader; nullptr when run-file backed.
  [[nodiscard]] const SegmentReader* segment() const { return segment_.get(); }

  /// Raw dictionary entries — run-file backend only (the segment never
  /// materializes them); hard-fails otherwise. Prefer for_each_term().
  [[nodiscard]] const std::vector<DictionaryEntry>& entries() const;
  /// Loaded run files (0 when segment-backed).
  [[nodiscard]] std::size_t run_count() const { return runs_.size(); }
  [[nodiscard]] std::uint64_t term_count() const;

  /// Read-path metrics: query_lookups_total, query_lookup_misses_total,
  /// query_postings_decoded_total, query_bytes_decoded_total,
  /// segment_bytes_mapped, query_lookup_micros.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  struct ReadInstruments;

  InvertedIndex();
  [[nodiscard]] const DictionaryEntry* find_entry(std::string_view term) const;
  [[nodiscard]] std::optional<QueryPostings> lookup_impl(std::string_view term,
                                                         bool positional) const;

  std::unique_ptr<obs::MetricsRegistry> metrics_;  // stable instrument addresses
  std::unique_ptr<ReadInstruments> ins_;
  std::vector<DictionaryEntry> entries_;  // sorted by term (run-file backend)
  std::vector<RunFile> runs_;             // ascending run id (run-file backend)
  std::unique_ptr<SegmentReader> segment_;
  std::vector<std::uint32_t> max_tfs_;     // by term ordinal; empty = no sidecar
  std::optional<BlockIndex> block_index_;  // skip tables; nullopt = no sidecar
  std::optional<BloomSidecar> blooms_;     // rejection filters; nullopt = no sidecar
};

}  // namespace hetindex
