#pragma once
/// \file query.hpp
/// Read path over a built index: dictionary lookup + partial-postings
/// retrieval across run files, including the doc-ID-range narrowing that
/// §III.F highlights as a benefit of the per-run output layout (only runs
/// whose ranges overlap the query range are touched).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dict/dictionary.hpp"
#include "postings/run_file.hpp"

namespace hetindex {

/// Canonical on-disk layout of an index directory.
struct IndexLayout {
  static std::string dictionary_path(const std::string& dir) { return dir + "/dictionary.bin"; }
  static std::string directory_path(const std::string& dir) { return dir + "/runs.dir"; }
  static std::string run_path(const std::string& dir, std::uint32_t run_id) {
    return dir + "/run_" + std::to_string(run_id) + ".post";
  }
  static std::string merged_path(const std::string& dir) { return dir + "/merged.post"; }
};

/// A decoded postings list. `positions` is filled only by positional
/// lookups over positional indexes: posting i owns the next tfs[i]
/// entries.
struct QueryPostings {
  std::vector<std::uint32_t> doc_ids;
  std::vector<std::uint32_t> tfs;
  std::vector<std::uint32_t> positions;
};

/// Memory-resident queryable view of an index directory.
class InvertedIndex {
 public:
  /// Loads dictionary, run directory and all run files under `dir`.
  static InvertedIndex open(const std::string& dir);

  /// Full postings list of `term` (stemmed form); nullopt when the term is
  /// not in the dictionary.
  [[nodiscard]] std::optional<QueryPostings> lookup(std::string_view term) const;

  /// Like lookup() but also decodes in-document token positions (empty
  /// when the index was not built with record_positions).
  [[nodiscard]] std::optional<QueryPostings> lookup_positional(std::string_view term) const;

  /// Postings restricted to doc ids in [min_doc, max_doc]; only run files
  /// whose ranges overlap are decoded. `runs_touched` (optional out)
  /// reports how many runs were actually read — the quantity the §III.F
  /// range-narrowing claim is about.
  [[nodiscard]] std::optional<QueryPostings> lookup_range(
      std::string_view term, std::uint32_t min_doc, std::uint32_t max_doc,
      std::size_t* runs_touched = nullptr) const;

  /// All dictionary terms starting with `prefix`, in lexicographic order —
  /// a by-product of the sorted dictionary (and of the trie + B-tree
  /// in-order layout that produced it). Useful for query expansion and
  /// spell-out tooling.
  [[nodiscard]] std::vector<std::string_view> terms_with_prefix(std::string_view prefix) const;

  [[nodiscard]] const std::vector<DictionaryEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t run_count() const { return runs_.size(); }
  [[nodiscard]] std::uint64_t term_count() const { return entries_.size(); }

 private:
  [[nodiscard]] const DictionaryEntry* find_entry(std::string_view term) const;

  std::vector<DictionaryEntry> entries_;  // sorted by term
  std::vector<RunFile> runs_;             // ascending run id
};

}  // namespace hetindex
