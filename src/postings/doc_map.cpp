#include "postings/doc_map.hpp"

#include <algorithm>

#include "codec/lz.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"

namespace hetindex {
namespace {
constexpr std::uint32_t kDocMapMagic = 0x4D434F44;  // "DOCM"
}

void DocMapBuilder::add_file(std::uint32_t doc_id_base, std::uint32_t file_seq,
                             const std::vector<std::string>& urls,
                             const std::vector<std::uint32_t>& token_counts) {
  HET_CHECK(urls.size() == token_counts.size());
  spans_.push_back({doc_id_base, file_seq, urls, token_counts});
}

std::uint32_t DocMapBuilder::doc_count() const {
  std::uint32_t n = 0;
  for (const auto& s : spans_) {
    n = std::max(n, s.doc_id_base + static_cast<std::uint32_t>(s.urls.size()));
  }
  return n;
}

void DocMapBuilder::write(const std::string& path) const {
  auto spans = spans_;
  std::sort(spans.begin(), spans.end(),
            [](const FileSpan& a, const FileSpan& b) { return a.doc_id_base < b.doc_id_base; });
  // Doc ids must tile [0, doc_count) without gaps or overlaps.
  std::uint32_t expected = 0;
  std::vector<std::uint8_t> raw;
  ByteWriter w(raw);
  w.u32(static_cast<std::uint32_t>(spans.size()));
  for (const auto& s : spans) {
    HET_CHECK_MSG(s.doc_id_base == expected, "doc map spans must be dense and disjoint");
    expected += static_cast<std::uint32_t>(s.urls.size());
    w.u32(s.doc_id_base);
    w.u32(s.file_seq);
    w.u32(static_cast<std::uint32_t>(s.urls.size()));
    for (std::size_t i = 0; i < s.urls.size(); ++i) {
      w.str(s.urls[i]);
      w.u32(s.token_counts[i]);
    }
  }
  const auto compressed = lz_compress(raw);
  std::vector<std::uint8_t> out;
  ByteWriter header(out);
  header.u32(kDocMapMagic);
  header.u32(expected);
  out.insert(out.end(), compressed.begin(), compressed.end());
  write_file(path, out);
}

DocMap DocMap::open(const std::string& path) {
  const auto file = read_file(path);
  ByteReader header(file);
  HET_CHECK_MSG(header.u32() == kDocMapMagic, "not a hetindex doc map");
  const std::uint32_t total = header.u32();
  const auto raw = lz_decompress(file.data() + 8, file.size() - 8);
  ByteReader r(raw);
  DocMap map;
  map.locations_.resize(total);
  const std::uint32_t spans = r.u32();
  for (std::uint32_t s = 0; s < spans; ++s) {
    const std::uint32_t base = r.u32();
    const std::uint32_t file_seq = r.u32();
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      HET_CHECK(base + i < total);
      auto& loc = map.locations_[base + i];
      loc.url = r.str();
      loc.token_count = r.u32();
      loc.file_seq = file_seq;
      loc.local_id = i;
    }
  }
  return map;
}

double DocMap::average_doc_tokens() const {
  if (locations_.empty()) return 0.0;
  double total = 0;
  for (const auto& loc : locations_) total += loc.token_count;
  return total / static_cast<double>(locations_.size());
}

const DocLocation& DocMap::location(std::uint32_t doc_id) const {
  HET_CHECK_MSG(doc_id < locations_.size(), "doc id out of range");
  return locations_[doc_id];
}

std::string doc_map_path(const std::string& index_dir) { return index_dir + "/docmap.bin"; }

}  // namespace hetindex
