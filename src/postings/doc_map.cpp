#include "postings/doc_map.hpp"

#include <algorithm>

#include "codec/lz.hpp"
#include "io/env.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"

namespace hetindex {
namespace {
constexpr std::uint32_t kDocMapMagic = 0x4D434F44;    // "DOCM" — base-0 v1
constexpr std::uint32_t kDocMapMagicV2 = 0x32434F44;  // "DOC2" — carries base
}  // namespace

void DocMapBuilder::add_file(std::uint32_t doc_id_base, std::uint32_t file_seq,
                             const std::vector<std::string>& urls,
                             const std::vector<std::uint32_t>& token_counts) {
  HET_CHECK(urls.size() == token_counts.size());
  spans_.push_back({doc_id_base, file_seq, urls, token_counts});
}

void DocMapBuilder::append(const DocMap& map) {
  for (const auto& s : map.spans_) {
    std::vector<std::string> urls;
    std::vector<std::uint32_t> token_counts;
    urls.reserve(s.count);
    token_counts.reserve(s.count);
    for (std::uint32_t i = 0; i < s.count; ++i) {
      const auto& loc = map.locations_[s.doc_id_base - map.base_ + i];
      urls.push_back(loc.url);
      token_counts.push_back(loc.token_count);
    }
    spans_.push_back({s.doc_id_base, s.file_seq, std::move(urls), std::move(token_counts)});
  }
}

std::uint32_t DocMapBuilder::doc_count() const {
  std::uint32_t end = base_;
  for (const auto& s : spans_) {
    end = std::max(end, s.doc_id_base + static_cast<std::uint32_t>(s.urls.size()));
  }
  return end - base_;
}

void DocMapBuilder::write(const std::string& path) const {
  auto written = try_write(path);
  if (!written.has_value()) {
    check_failed("DocMapBuilder::write", __FILE__, __LINE__,
                 written.error().message.c_str());
  }
}

Status DocMapBuilder::try_write(const std::string& path) const {
  auto spans = spans_;
  std::sort(spans.begin(), spans.end(),
            [](const FileSpan& a, const FileSpan& b) { return a.doc_id_base < b.doc_id_base; });
  // Doc ids must tile [base, base + doc_count) without gaps or overlaps.
  std::uint32_t expected = base_;
  std::vector<std::uint8_t> raw;
  ByteWriter w(raw);
  w.u32(static_cast<std::uint32_t>(spans.size()));
  for (const auto& s : spans) {
    HET_CHECK_MSG(s.doc_id_base == expected, "doc map spans must be dense and disjoint");
    expected += static_cast<std::uint32_t>(s.urls.size());
    w.u32(s.doc_id_base);
    w.u32(s.file_seq);
    w.u32(static_cast<std::uint32_t>(s.urls.size()));
    for (std::size_t i = 0; i < s.urls.size(); ++i) {
      w.str(s.urls[i]);
      w.u32(s.token_counts[i]);
    }
  }
  const auto compressed = lz_compress(raw);
  std::vector<std::uint8_t> out;
  ByteWriter header(out);
  if (base_ == 0) {
    // v1 stays the batch pipeline's format, byte-for-byte.
    header.u32(kDocMapMagic);
    header.u32(expected);
  } else {
    header.u32(kDocMapMagicV2);
    header.u32(expected - base_);
    header.u32(base_);
  }
  out.insert(out.end(), compressed.begin(), compressed.end());
  return io::durable_write_file(path, out);
}

DocMap DocMap::open(const std::string& path) {
  const auto file = read_file(path);
  ByteReader header(file);
  const std::uint32_t magic = header.u32();
  HET_CHECK_MSG(magic == kDocMapMagic || magic == kDocMapMagicV2, "not a hetindex doc map");
  const std::uint32_t total = header.u32();
  DocMap map;
  std::size_t payload_off = 8;
  if (magic == kDocMapMagicV2) {
    map.base_ = header.u32();
    payload_off = 12;
  }
  const auto raw = lz_decompress(file.data() + payload_off, file.size() - payload_off);
  ByteReader r(raw);
  map.locations_.resize(total);
  const std::uint32_t spans = r.u32();
  map.spans_.reserve(spans);
  for (std::uint32_t s = 0; s < spans; ++s) {
    const std::uint32_t base = r.u32();  // global
    const std::uint32_t file_seq = r.u32();
    const std::uint32_t count = r.u32();
    map.spans_.push_back({base, file_seq, count});
    for (std::uint32_t i = 0; i < count; ++i) {
      HET_CHECK(base >= map.base_ && base - map.base_ + i < total);
      auto& loc = map.locations_[base - map.base_ + i];
      loc.url = r.str();
      loc.token_count = r.u32();
      loc.file_seq = file_seq;
      loc.local_id = i;
    }
  }
  return map;
}

double DocMap::average_doc_tokens() const {
  if (locations_.empty()) return 0.0;
  return static_cast<double>(token_sum()) / static_cast<double>(locations_.size());
}

std::uint64_t DocMap::token_sum() const {
  std::uint64_t total = 0;
  for (const auto& loc : locations_) total += loc.token_count;
  return total;
}

const DocLocation& DocMap::location(std::uint32_t doc_id) const {
  HET_CHECK_MSG(contains(doc_id), "doc id out of range");
  return locations_[doc_id - base_];
}

std::string doc_map_path(const std::string& index_dir) { return index_dir + "/docmap.bin"; }

}  // namespace hetindex
