#pragma once
/// \file segment.hpp
/// Immutable single-file index segments — the serving-time counterpart of
/// the build-time run files. The paper's pipeline ends at "combine
/// dictionary + write run files" (§III.F); a segment packs that whole
/// output into one checksummed artifact so a serving process opens the
/// index with one mmap and no eager decode:
///
///   header      magic, version, codec, block geometry, section offsets
///   term dict   front-coded blocks (codec/front_coding scheme) of K terms;
///               each block stores its first term verbatim so a sparse
///               in-memory block index can hold zero-copy string_views
///               into the mapping
///   table       one fixed-width row per term, in term order:
///               offset/bytes/count/min_doc/max_doc of its postings blob
///   blob area   the concatenated compressed postings lists (byte-wise
///               concatenation of the per-run partial lists — every
///               sub-list's first doc id is absolute, the §III.F merge
///               property, so no re-encode happens at compaction)
///   footer      total size + CRC32 of everything before it
///
/// A SegmentReader is immutable after open() and keeps no per-lookup
/// state, so any number of threads may share one instance with no locking.
/// Exact byte layout: docs/INDEX_FORMAT.md.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "codec/posting_codecs.hpp"
#include "dict/dictionary.hpp"
#include "io/mmap_file.hpp"
#include "postings/run_file.hpp"
#include "util/error.hpp"

namespace hetindex {

/// Terms per front-coded dictionary block. Small enough that a lookup
/// scans a handful of suffixes, large enough that the in-memory block
/// index stays ~1/16th of the term count.
inline constexpr std::uint32_t kSegmentTermsPerBlock = 16;

/// Builds one segment file in memory and writes it out on finalize().
/// Terms must arrive in strictly increasing lexicographic order with their
/// final (fully merged) postings blob.
class SegmentWriter {
 public:
  SegmentWriter(std::string path, PostingCodec codec,
                std::uint32_t terms_per_block = kSegmentTermsPerBlock);

  /// Appends one term and its encoded postings blob (one or more
  /// back-to-back encoded sub-lists; `count` postings across all of them
  /// covering doc ids [min_doc, max_doc]).
  void add_term(std::string_view term, const std::uint8_t* blob, std::size_t blob_bytes,
                std::uint32_t count, std::uint32_t min_doc, std::uint32_t max_doc);

  /// Writes header + sections + CRC footer durably (write + fsync via the
  /// io::Env seam, bounded retry on transient faults). Returns total bytes
  /// written, or kIo with no partial file left behind.
  Expected<std::uint64_t> finalize();

  [[nodiscard]] std::uint64_t term_count() const { return term_count_; }

 private:
  std::string path_;
  PostingCodec codec_;
  std::uint32_t terms_per_block_;
  std::uint64_t term_count_ = 0;
  std::uint32_t block_fill_ = 0;
  std::string prev_term_;
  std::uint32_t min_doc_ = 0xFFFFFFFFu;
  std::uint32_t max_doc_ = 0;
  std::vector<std::uint8_t> dict_;
  std::vector<std::uint8_t> table_;
  std::vector<std::uint8_t> blobs_;
  bool finalized_ = false;
};

/// Shared-nothing reader over one mapped segment. All accessors are const
/// and touch only immutable state + call-local scratch, so one instance
/// serves concurrent readers without locks.
class SegmentReader {
 public:
  /// Maps and validates `path`: footer magic, size, CRC32 of the whole
  /// file, header magic/version, section bounds. Any mismatch raises a
  /// descriptive check failure — corrupt bytes never reach a decoder.
  static SegmentReader open(const std::string& path);

  /// Non-aborting variant of open(): a missing file reports kNotFound, a
  /// failed checksum or structural check kCorrupt, an unknown version or
  /// codec kUnsupported. Corrupt bytes still never reach a decoder — the
  /// same validations run, they just return instead of aborting.
  static Expected<SegmentReader> try_open(const std::string& path);

  /// One postings table row, resolved against the mapping.
  struct PostingsMeta {
    std::uint64_t offset = 0;  ///< into the blob area
    std::uint32_t bytes = 0;
    std::uint32_t count = 0;
    std::uint32_t min_doc = 0;
    std::uint32_t max_doc = 0;
  };

  /// Ordinal of `term` in the sorted term dictionary; nullopt when absent.
  /// Cost: binary search over the sparse block index + a scan of at most
  /// terms_per_block front-coded suffixes.
  [[nodiscard]] std::optional<std::uint64_t> find(std::string_view term) const;

  /// The postings table row of term `ordinal` (< term_count()).
  [[nodiscard]] PostingsMeta meta(std::uint64_t ordinal) const;

  /// Lazily decodes the blob behind `m` straight out of the mapping,
  /// appending to the output vectors (positions only when the index was
  /// built positionally and `positions` is non-null).
  void decode(const PostingsMeta& m, std::vector<std::uint32_t>& doc_ids,
              std::vector<std::uint32_t>& tfs,
              std::vector<std::uint32_t>* positions = nullptr) const;

  /// The raw encoded bytes behind `m`, straight out of the mapping — the
  /// unit of the §III.F byte-concatenation merge (valid while the reader
  /// lives). Every sub-list's first doc id is absolute, so two segments'
  /// blobs for the same term concatenate without a decode as long as their
  /// doc ranges are disjoint and given in ascending order.
  [[nodiscard]] std::pair<const std::uint8_t*, std::size_t> raw_blob(
      const PostingsMeta& m) const;

  /// Pull-style iterator over the term dictionary in lexicographic order —
  /// the building block of multi-segment k-way merges (for_each_term is
  /// push-style and cannot interleave several segments).
  class TermCursor {
   public:
    explicit TermCursor(const SegmentReader& reader);
    /// False once every term has been consumed.
    [[nodiscard]] bool valid() const { return ordinal_ < reader_->term_count_; }
    /// Current term (materialized; stable until next()).
    [[nodiscard]] const std::string& term() const { return term_; }
    [[nodiscard]] std::uint64_t ordinal() const { return ordinal_; }
    [[nodiscard]] SegmentReader::PostingsMeta meta() const {
      return reader_->meta(ordinal_);
    }
    void next();

   private:
    const SegmentReader* reader_;
    std::uint64_t ordinal_ = 0;
    std::string term_;
    std::size_t pos_ = 0;  ///< into the dict section, after the current term
  };

  /// All terms starting with `prefix`, lexicographic order (materialized —
  /// front-coded terms have no contiguous bytes to view).
  [[nodiscard]] std::vector<std::string> terms_with_prefix(std::string_view prefix) const;

  /// fn(term, ordinal) over every term in order; return false to stop
  /// early. The string_view is only valid during the call.
  void for_each_term(
      const std::function<bool(std::string_view, std::uint64_t)>& fn) const;

  [[nodiscard]] std::uint64_t term_count() const { return term_count_; }
  [[nodiscard]] PostingCodec codec() const { return codec_; }
  [[nodiscard]] std::uint32_t min_doc() const { return min_doc_; }
  [[nodiscard]] std::uint32_t max_doc() const { return max_doc_; }
  /// Total file size on disk.
  [[nodiscard]] std::uint64_t file_bytes() const { return file_.size(); }
  /// Bytes served by a live mapping (0 when the pread fallback engaged).
  [[nodiscard]] std::uint64_t mapped_bytes() const {
    return file_.is_mapped() ? file_.size() : 0;
  }
  [[nodiscard]] const std::string& path() const { return file_.path(); }

 private:
  /// Sparse block index entry: zero-copy view of the block's first term
  /// (stored verbatim in the file) + where its coded suffixes start.
  struct Block {
    std::string_view first;
    std::size_t coded_pos = 0;  ///< into the dict section, after the first term
    std::uint64_t base = 0;     ///< ordinal of the first term
  };

  [[nodiscard]] const std::uint8_t* dict_data() const { return file_.data() + dict_off_; }
  /// Decodes the next front-coded term at `pos` into `cur`.
  void next_term(std::string& cur, std::size_t& pos) const;
  /// fn(term, ordinal) from the start of block `block_idx` onwards.
  void scan_from_block(
      std::size_t block_idx,
      const std::function<bool(std::string_view, std::uint64_t)>& fn) const;

  MmapFile file_;
  PostingCodec codec_ = PostingCodec::kVByte;
  std::uint32_t terms_per_block_ = kSegmentTermsPerBlock;
  std::uint64_t term_count_ = 0;
  std::uint32_t min_doc_ = 0;
  std::uint32_t max_doc_ = 0;
  std::uint64_t dict_off_ = 0, dict_bytes_ = 0;
  std::uint64_t table_off_ = 0, table_bytes_ = 0;
  std::uint64_t blob_off_ = 0, blob_bytes_ = 0;
  std::vector<Block> blocks_;
};

// ------------------------------------------------------------------------
// Score-bound sidecar. MaxScore-style top-k pruning (src/search/topk.hpp)
// needs a per-term upper bound on any document's BM25 contribution. The
// tf-dependent part of that bound is max_tf — the largest term frequency
// in the term's postings list — which is known at build time and stable
// under the §III.F byte-concatenation merge (the max over a concatenation
// is the max of the per-input maxes, so compaction propagates sidecars
// without decoding a single posting). The idf part depends on collection
// statistics that change with every live commit, so it is computed at
// query time from the table row's `count` instead of being persisted.
//
// The sidecar is strictly optional: a segment without one still serves
// every query — the executor just falls back to the looser tf-independent
// bound idf·(k1+1). Layout (`<segment>.maxtf`): magic, version, term
// count, one u32 max_tf per term in term order, CRC32 footer.

/// `<segment_path>.maxtf`.
std::string max_tf_sidecar_path(const std::string& segment_path);

/// Writes the sidecar for a segment with `max_tfs.size()` terms, durably.
/// kIo on failure (no partial sidecar remains — a missing sidecar only
/// loosens score bounds, a torn one would be rejected by CRC anyway).
Status write_max_tf_sidecar(const std::string& segment_path,
                            const std::vector<std::uint32_t>& max_tfs);

/// Reads a sidecar back; kNotFound when absent, kCorrupt on CRC/structure
/// mismatch or when the term count disagrees with `expected_terms`.
Expected<std::vector<std::uint32_t>> read_max_tf_sidecar(const std::string& segment_path,
                                                         std::uint64_t expected_terms);

/// Decodes every postings list of `reader` once and returns per-term
/// max_tf in term order — the build-time pass behind compact_index().
std::vector<std::uint32_t> compute_max_tfs(const SegmentReader& reader);

// ------------------------------------------------------------------------
// Block-index sidecar. Postings blobs are written as back-to-back blocks of
// ≤ kPostingsBlockSize docs (each re-anchored at an absolute doc id). The
// `.bmx` sidecar stores one skip-table row per block — offset/bytes (seek),
// last_doc (skip target) and count/max_tf (Block-Max score bounds) — so a
// cursor can jump and bound whole blocks without decoding them. Like the
// max-tf sidecar it is optional (serving falls back to decoded cursors) and
// it survives the §III.F merge without a decode: concatenating blobs just
// concatenates their block rows with a byte-offset fix-up.
//
// Layout (`<segment>.bmx`): magic, version, term count, total block count,
// per-term u32 block counts, then the flat entry rows in term order, CRC32
// footer. Exact bytes: docs/INDEX_FORMAT.md.

/// Per-term view over the flat skip table of one segment.
class BlockIndex {
 public:
  /// Appends one term's block rows (terms must arrive in term order; every
  /// term in a segment has ≥ 1 block).
  void add_term(const std::vector<PostingBlockEntry>& entries);

  [[nodiscard]] std::uint64_t term_count() const { return begin_.size() - 1; }
  [[nodiscard]] std::uint64_t total_blocks() const { return entries_.size(); }
  /// The block rows of term `ordinal`, in blob order.
  [[nodiscard]] std::pair<const PostingBlockEntry*, std::size_t> blocks(
      std::uint64_t ordinal) const;
  /// max over the term's block max_tfs — the whole-list bound the `.maxtf`
  /// sidecar stores, derived here for free.
  [[nodiscard]] std::uint32_t term_max_tf(std::uint64_t ordinal) const;

 private:
  std::vector<PostingBlockEntry> entries_;
  std::vector<std::uint64_t> begin_{0};  ///< per-term start into entries_
};

/// `<segment_path>.bmx`.
std::string block_index_sidecar_path(const std::string& segment_path);

/// Writes the skip-table sidecar durably; kIo on failure.
Status write_block_index_sidecar(const std::string& segment_path,
                                 const BlockIndex& index);

/// Reads a sidecar back; kNotFound when absent, kUnsupported on a future
/// version, kCorrupt on CRC/structure mismatch, a term count that disagrees
/// with `expected_terms`, or rows that are not contiguous ascending blocks.
Expected<BlockIndex> read_block_index_sidecar(const std::string& segment_path,
                                              std::uint64_t expected_terms);

/// Decodes every blob once, recovering each block's row from the sub-list
/// boundaries — the build-time pass (and the merge-correctness oracle in
/// tests: a merged segment's fixed-up sidecar must equal this recompute).
BlockIndex compute_block_index(const SegmentReader& reader);

/// Cross-checks the sidecar against the segment's postings table (per-term
/// byte/count totals and last doc) without decoding blobs. kCorrupt on any
/// disagreement — a stale sidecar must never steer a cursor.
Status validate_block_index(const SegmentReader& reader, const BlockIndex& index);

/// What a segment build folded together.
struct SegmentBuildStats {
  std::uint64_t terms = 0;
  std::uint64_t postings = 0;
  std::uint64_t runs = 0;          ///< run files folded
  std::uint64_t input_bytes = 0;   ///< encoded blob bytes read from runs
  std::uint64_t output_bytes = 0;  ///< segment file size
};

/// Folds the given run files into `<dir>/index.seg` using the already
/// loaded dictionary entries (sorted by term) — the writer path shared by
/// PipelineEngine (entries still in memory at finalize) and compact_index
/// (entries re-read from disk). Blobs concatenate byte-wise via the
/// §III.F merge property; nothing is re-encoded.
Expected<SegmentBuildStats> build_segment_from_runs(
    const std::string& dir, const std::vector<DictionaryEntry>& entries,
    const std::vector<IndexDirectoryEntry>& directory);

/// Reads dictionary + run directory under `dir` and compacts the run files
/// into `<dir>/index.seg`. Run files are left in place: they stay the
/// build-time interchange format (and the merger's input). kIo when the
/// segment or sidecar cannot be written durably.
Expected<SegmentBuildStats> compact_index(const std::string& dir);

/// What a segment-to-segment merge folded together.
struct SegmentMergeStats {
  std::uint64_t segments = 0;      ///< input segments
  std::uint64_t terms = 0;         ///< unique terms in the output
  std::uint64_t postings = 0;
  std::uint64_t input_bytes = 0;   ///< encoded blob bytes read
  std::uint64_t output_bytes = 0;  ///< merged segment file size
};

/// Merges already-built segments into one new segment at `out_path`
/// without decoding postings: terms stream through a k-way cursor merge
/// and equal terms' blobs concatenate byte-wise (§III.F — every sub-list's
/// first doc id is absolute). Inputs must share one codec and be given in
/// ascending, pairwise-disjoint doc-id order; per-term order is verified
/// from the table metadata. This is the compaction primitive of the live
/// indexing layer (docs/LIVE_INDEXING.md). kIo when the output cannot be
/// written durably; the partial output (and its sidecar) is removed.
Expected<SegmentMergeStats> merge_segments(
    const std::vector<const SegmentReader*>& inputs, const std::string& out_path);

}  // namespace hetindex
