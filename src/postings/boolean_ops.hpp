#pragma once
/// \file boolean_ops.hpp
/// Boolean retrieval primitives over decoded postings lists — the standard
/// consumer of inverted files (conjunctive/disjunctive web queries). Lists
/// are doc-ID sorted, so AND/OR/NOT are linear merges; AND additionally
/// offers a galloping variant for asymmetric list sizes.

#include <vector>

#include "postings/query.hpp"

namespace hetindex {

/// docs(a) ∩ docs(b); tf of a match is the sum of both sides' tfs (a
/// simple proximity-free relevance signal).
QueryPostings postings_and(const QueryPostings& a, const QueryPostings& b);

/// docs(a) ∪ docs(b), tfs summed on overlap.
QueryPostings postings_or(const QueryPostings& a, const QueryPostings& b);

/// docs(a) \ docs(b), tfs taken from a.
QueryPostings postings_and_not(const QueryPostings& a, const QueryPostings& b);

/// Galloping (exponential-search) intersection: O(min·log(max/min)), the
/// right tool when one term is rare and the other common (Zipf makes this
/// the typical case).
QueryPostings postings_and_galloping(const QueryPostings& a, const QueryPostings& b);

/// Phrase query over a positional index: documents where the normalized
/// terms appear at consecutive token positions. Returns nullopt when any
/// term is absent or the index carries no positions.
std::optional<QueryPostings> phrase_query(const InvertedIndex& index,
                                          const std::vector<std::string>& terms);

}  // namespace hetindex
