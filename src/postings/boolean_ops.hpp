#pragma once
/// \file boolean_ops.hpp
/// Boolean retrieval primitives over decoded postings lists — the standard
/// consumer of inverted files (conjunctive/disjunctive web queries). Lists
/// are doc-ID sorted, so AND/OR/NOT are linear merges; AND additionally
/// offers a galloping variant for asymmetric list sizes.

#include <vector>

#include "postings/query.hpp"

namespace hetindex {

/// docs(a) ∩ docs(b); tf of a match is the sum of both sides' tfs (a
/// simple proximity-free relevance signal).
QueryPostings postings_and(const QueryPostings& a, const QueryPostings& b);

/// docs(a) ∪ docs(b), tfs summed on overlap.
QueryPostings postings_or(const QueryPostings& a, const QueryPostings& b);

/// docs(a) \ docs(b), tfs taken from a.
QueryPostings postings_and_not(const QueryPostings& a, const QueryPostings& b);

/// Galloping (exponential-search) intersection: O(min·log(max/min)), the
/// right tool when one term is rare and the other common (Zipf makes this
/// the typical case).
QueryPostings postings_and_galloping(const QueryPostings& a, const QueryPostings& b);

/// Per-term positions of one document, in query order: entry t holds the
/// ascending in-doc positions of term t (as current_positions() or a
/// positional lookup slice yields them). The shared currency of the
/// phrase/NEAR verifiers, so the single-node cursor path and the cluster's
/// central verification count matches with the same code.
using DocTermPositions = std::vector<std::vector<std::uint32_t>>;

/// Number of phrase starts in one document: positions p of term 0 such
/// that term t occurs at p + t for every t. The tf of a phrase match.
std::uint32_t phrase_match_count(const DocTermPositions& term_positions);

/// Number of proximity anchors in one document: positions p of term 0
/// (the anchor term) such that every other term has an occurrence within
/// distance `window` of p, in either direction. The tf of a NEAR match.
std::uint32_t near_match_count(const DocTermPositions& term_positions, std::uint32_t window);

/// Docs present in every positional list that contain the exact phrase
/// (lists in phrase order); tf = phrase_match_count. Lists must carry
/// positions for every posting.
QueryPostings phrase_join(const std::vector<const QueryPostings*>& lists);

/// Docs present in every positional list where each term occurs within
/// `window` of an occurrence of the first; tf = near_match_count.
QueryPostings near_join(const std::vector<const QueryPostings*>& lists, std::uint32_t window);

/// Phrase query over a positional index: documents where the normalized
/// terms appear at consecutive token positions. Returns nullopt when any
/// term is absent or the index carries no positions.
std::optional<QueryPostings> phrase_query(const InvertedIndex& index,
                                          const std::vector<std::string>& terms);

}  // namespace hetindex
