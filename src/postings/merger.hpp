#pragma once
/// \file merger.hpp
/// Combines the per-run partial postings lists of each term into a single
/// contiguous list — the optional post-processing step of §III.F ("we can
/// combine the partial postings lists of each term into a single list in a
/// post-processing step, with an additional cost of less than 10% of the
/// total running time"). The output is a regular run file with
/// run_id = kMergedRunId so the same reader serves both layouts.

#include <cstdint>
#include <string>
#include <vector>

#include "codec/posting_codecs.hpp"

namespace hetindex {

inline constexpr std::uint32_t kMergedRunId = 0xFFFFFFFFu;

struct MergeStats {
  std::uint64_t terms = 0;
  std::uint64_t postings = 0;
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
};

/// Merges `run_paths` (ascending run order) into `out_path`. Doc IDs must
/// be globally increasing across runs for every key — guaranteed by the
/// pipeline's round-robin buffer consumption and checked here.
MergeStats merge_runs(const std::vector<std::string>& run_paths, const std::string& out_path,
                      PostingCodec codec = PostingCodec::kVByte);

}  // namespace hetindex
