#pragma once
/// \file run_file.hpp
/// Per-run postings output files (§III.F): each single run produces one
/// file whose header is a mapping table from (shard, handle) — the pointer
/// stored in the dictionary — to the location/length of the compressed
/// partial postings list inside the file. Each entry also records the
/// doc-ID range it covers, enabling the paper's "faster search when
/// narrowed down to a range of document IDs" benefit.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "codec/posting_codecs.hpp"
#include "postings/postings_store.hpp"

namespace hetindex {

/// Key of a postings list within a run: which shard's store and which
/// handle inside that store.
struct PostingKey {
  std::uint32_t shard;
  std::uint32_t handle;

  bool operator==(const PostingKey&) const = default;
};

struct PostingKeyHash {
  std::size_t operator()(const PostingKey& k) const {
    // Mix in 64 bits (shifting a 32-bit size_t by 32 would be UB), then
    // fold with the splitmix64 finalizer so narrowing keeps entropy.
    std::uint64_t v = (static_cast<std::uint64_t>(k.shard) << 32) | k.handle;
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    return static_cast<std::size_t>(v);
  }
};

/// One mapping-table row.
struct RunTableEntry {
  PostingKey key;
  std::uint64_t offset;  ///< byte offset of the encoded list in the blob area
  std::uint32_t bytes;   ///< encoded length
  std::uint32_t count;   ///< number of postings
  std::uint32_t min_doc;
  std::uint32_t max_doc;
};

/// Builds one run file in memory and writes it out on finalize().
class RunFileWriter {
 public:
  RunFileWriter(std::string path, std::uint32_t run_id,
                PostingCodec codec = PostingCodec::kVByte);

  /// Appends one term's partial postings list (already globally-doc-id'd,
  /// strictly increasing). Empty lists are skipped.
  void add_list(PostingKey key, const PostingsList& list);

  /// Appends pre-encoded segments verbatim (the §III.F merge pass: partial
  /// lists concatenate byte-wise because every segment's first doc id is
  /// absolute). Caller supplies the already-known table metadata.
  void add_raw(PostingKey key, const std::vector<std::uint8_t>& encoded,
               std::uint32_t count, std::uint32_t min_doc, std::uint32_t max_doc);

  /// Writes header + mapping table + blobs. Returns total bytes written.
  std::uint64_t finalize();

  [[nodiscard]] std::uint32_t run_id() const { return run_id_; }
  [[nodiscard]] std::size_t list_count() const { return table_.size(); }

 private:
  std::string path_;
  std::uint32_t run_id_;
  PostingCodec codec_;
  std::vector<RunTableEntry> table_;
  std::vector<std::uint8_t> blobs_;
  bool finalized_ = false;
};

/// Memory-resident reader of a run file.
class RunFile {
 public:
  static RunFile open(const std::string& path);

  [[nodiscard]] std::uint32_t run_id() const { return run_id_; }
  [[nodiscard]] PostingCodec codec() const { return codec_; }
  [[nodiscard]] const std::vector<RunTableEntry>& table() const { return table_; }
  /// Overall doc-id range covered by this run (for range narrowing).
  [[nodiscard]] std::uint32_t min_doc() const { return min_doc_; }
  [[nodiscard]] std::uint32_t max_doc() const { return max_doc_; }

  /// Decodes the (possibly multi-segment) list for `key`; returns false
  /// when the run has no postings for it. Appends to the output vectors.
  /// `positions` (optional) receives in-doc token positions when the run
  /// was built positionally.
  bool fetch(PostingKey key, std::vector<std::uint32_t>& doc_ids,
             std::vector<std::uint32_t>& tfs,
             std::vector<std::uint32_t>* positions = nullptr) const;

  /// Raw encoded bytes of `key`'s list (for byte-level merging); nullptr
  /// table entry when absent.
  [[nodiscard]] const RunTableEntry* entry(PostingKey key) const;
  [[nodiscard]] std::vector<std::uint8_t> raw_blob(const RunTableEntry& entry) const;

 private:
  std::uint32_t run_id_ = 0;
  PostingCodec codec_ = PostingCodec::kVByte;
  std::uint32_t min_doc_ = 0;
  std::uint32_t max_doc_ = 0;
  std::vector<RunTableEntry> table_;
  std::unordered_map<PostingKey, std::size_t, PostingKeyHash> by_key_;
  std::vector<std::uint8_t> blobs_;
};

/// The auxiliary "mapping of document IDs to output file names" of §III.F:
/// a directory of run files with their doc ranges, written next to the
/// dictionary.
struct IndexDirectoryEntry {
  std::string file;
  std::uint32_t run_id;
  std::uint32_t min_doc;
  std::uint32_t max_doc;
};

void index_directory_write(const std::string& path,
                           const std::vector<IndexDirectoryEntry>& entries);
std::vector<IndexDirectoryEntry> index_directory_read(const std::string& path);

}  // namespace hetindex
