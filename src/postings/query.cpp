#include "postings/query.hpp"

#include <algorithm>

#include "postings/cursor.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace hetindex {

/// One reference per read-path instrument, resolved once at open() so the
/// per-lookup cost is an atomic add or two plus a histogram bucket.
struct InvertedIndex::ReadInstruments {
  obs::Counter& lookups;
  obs::Counter& misses;
  obs::Counter& postings_decoded;
  obs::Counter& bytes_decoded;
  obs::Gauge& bytes_mapped;
  obs::Histo& lookup_micros;

  explicit ReadInstruments(obs::MetricsRegistry& m)
      : lookups(m.counter("query_lookups_total")),
        misses(m.counter("query_lookup_misses_total")),
        postings_decoded(m.counter("query_postings_decoded_total")),
        bytes_decoded(m.counter("query_bytes_decoded_total")),
        bytes_mapped(m.gauge("segment_bytes_mapped")),
        lookup_micros(m.histogram("query_lookup_micros", 0.0, 1024.0, 64)) {}
};

namespace {

/// Feeds the lookup-latency histogram on scope exit (µs).
class LatencyScope {
 public:
  explicit LatencyScope(obs::Histo& hist) : hist_(hist) {}
  LatencyScope(const LatencyScope&) = delete;
  LatencyScope& operator=(const LatencyScope&) = delete;
  ~LatencyScope() { hist_.add(timer_.seconds() * 1e6); }

 private:
  obs::Histo& hist_;
  WallTimer timer_;
};

}  // namespace

InvertedIndex::InvertedIndex()
    : metrics_(std::make_unique<obs::MetricsRegistry>()),
      ins_(std::make_unique<ReadInstruments>(*metrics_)) {}

InvertedIndex::InvertedIndex(InvertedIndex&&) noexcept = default;
InvertedIndex& InvertedIndex::operator=(InvertedIndex&&) noexcept = default;
InvertedIndex::~InvertedIndex() = default;

Expected<InvertedIndex> InvertedIndex::open(const std::string& dir,
                                            const OpenOptions& options) {
  IndexBackend backend = options.backend;
  if (backend == IndexBackend::kAuto) {
    if (file_exists(IndexLayout::segment_path(dir))) {
      backend = IndexBackend::kSegment;
    } else if (file_exists(IndexLayout::dictionary_path(dir))) {
      backend = IndexBackend::kRuns;
    } else {
      return Error{ErrorCode::kNotFound,
                   "no index found under: " + dir + " (neither index.seg nor dictionary.bin)"};
    }
  }

  if (backend == IndexBackend::kSegment) {
    auto segment = SegmentReader::try_open(IndexLayout::segment_path(dir));
    if (!segment.has_value()) return segment.error();
    InvertedIndex idx;
    idx.segment_ = std::make_unique<SegmentReader>(std::move(segment).value());
    idx.ins_->bytes_mapped.set(static_cast<std::int64_t>(idx.segment_->mapped_bytes()));
    // Sidecars are optional — absence (kNotFound) only costs the executor
    // its tight bounds / block skipping — but one that is present yet
    // truncated or corrupt must fail the open, never silently degrade.
    auto bounds = read_max_tf_sidecar(idx.segment_->path(), idx.segment_->term_count());
    if (bounds.has_value()) {
      idx.max_tfs_ = std::move(bounds).value();
    } else if (bounds.error().code != ErrorCode::kNotFound) {
      return bounds.error();
    }
    auto blocks = read_block_index_sidecar(idx.segment_->path(), idx.segment_->term_count());
    if (blocks.has_value()) {
      // A structurally sound sidecar can still be stale (from an older
      // segment under the same name); cross-check before letting it steer
      // seeks over raw blobs.
      auto consistent = validate_block_index(*idx.segment_, blocks.value());
      if (!consistent.has_value()) return consistent.error();
      idx.block_index_ = std::move(blocks).value();
    } else if (blocks.error().code != ErrorCode::kNotFound) {
      return blocks.error();
    }
    auto blooms = read_bloom_sidecar(idx.segment_->path(), idx.segment_->term_count());
    if (blooms.has_value()) {
      idx.blooms_ = std::move(blooms).value();
    } else if (blooms.error().code != ErrorCode::kNotFound) {
      return blooms.error();
    }
    return idx;
  }

  // Run-file backend. Presence is the soft-checked part; the loaders keep
  // their hard structural validation (these files carry no CRC).
  if (!file_exists(IndexLayout::dictionary_path(dir))) {
    return Error{ErrorCode::kNotFound,
                 "cannot open index dictionary: " + IndexLayout::dictionary_path(dir)};
  }
  if (!file_exists(IndexLayout::directory_path(dir))) {
    return Error{ErrorCode::kNotFound,
                 "cannot open run directory: " + IndexLayout::directory_path(dir)};
  }
  InvertedIndex idx;
  idx.entries_ = dictionary_read(IndexLayout::dictionary_path(dir));
  HET_CHECK_MSG(std::is_sorted(idx.entries_.begin(), idx.entries_.end(),
                               [](const DictionaryEntry& a, const DictionaryEntry& b) {
                                 return a.term < b.term;
                               }),
                "dictionary file must be sorted by term");
  const auto directory = index_directory_read(IndexLayout::directory_path(dir));
  idx.runs_.reserve(directory.size());
  for (const auto& e : directory) idx.runs_.push_back(RunFile::open(dir + "/" + e.file));
  std::sort(idx.runs_.begin(), idx.runs_.end(),
            [](const RunFile& a, const RunFile& b) { return a.run_id() < b.run_id(); });
  return idx;
}

const std::vector<DictionaryEntry>& InvertedIndex::entries() const {
  HET_CHECK_MSG(segment_ == nullptr,
                "entries() requires the run-file backend; use for_each_term()");
  return entries_;
}

std::uint64_t InvertedIndex::term_count() const {
  return segment_ != nullptr ? segment_->term_count() : entries_.size();
}

std::optional<std::uint32_t> InvertedIndex::max_tf(std::string_view term) const {
  if (segment_ == nullptr || max_tfs_.empty()) return std::nullopt;
  const auto ordinal = segment_->find(term);
  if (!ordinal) return std::nullopt;
  return max_tfs_[static_cast<std::size_t>(*ordinal)];
}

const DictionaryEntry* InvertedIndex::find_entry(std::string_view term) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), term,
      [](const DictionaryEntry& e, std::string_view t) { return e.term < t; });
  if (it == entries_.end() || it->term != term) return nullptr;
  return &*it;
}

std::vector<std::string> InvertedIndex::terms_with_prefix(std::string_view prefix) const {
  if (segment_ != nullptr) return segment_->terms_with_prefix(prefix);
  std::vector<std::string> out;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const DictionaryEntry& e, std::string_view p) { return e.term < p; });
  for (; it != entries_.end(); ++it) {
    const std::string_view term = it->term;
    if (term.size() < prefix.size() || term.substr(0, prefix.size()) != prefix) break;
    out.emplace_back(term);
  }
  return out;
}

void InvertedIndex::for_each_term(const std::function<void(std::string_view)>& fn) const {
  if (segment_ != nullptr) {
    segment_->for_each_term([&](std::string_view term, std::uint64_t) {
      fn(term);
      return true;
    });
    return;
  }
  for (const auto& e : entries_) fn(e.term);
}

std::optional<QueryPostings> InvertedIndex::lookup_impl(std::string_view term,
                                                        bool positional) const {
  ins_->lookups.add();
  const LatencyScope latency(ins_->lookup_micros);
  QueryPostings out;
  auto* positions = positional ? &out.positions : nullptr;
  if (segment_ != nullptr) {
    const auto ordinal = segment_->find(term);
    if (!ordinal) {
      ins_->misses.add();
      return std::nullopt;
    }
    const auto m = segment_->meta(*ordinal);
    segment_->decode(m, out.doc_ids, out.tfs, positions);
    ins_->postings_decoded.add(m.count);
    ins_->bytes_decoded.add(m.bytes);
    return out;
  }
  const DictionaryEntry* entry = find_entry(term);
  if (entry == nullptr) {
    ins_->misses.add();
    return std::nullopt;
  }
  const PostingKey key{entry->shard, entry->handle};
  for (const auto& run : runs_) run.fetch(key, out.doc_ids, out.tfs, positions);
  ins_->postings_decoded.add(out.doc_ids.size());
  return out;
}

std::optional<QueryPostings> InvertedIndex::lookup(std::string_view term) const {
  return lookup_impl(term, /*positional=*/false);
}

std::unique_ptr<PostingsCursor> InvertedIndex::open_cursor(std::string_view term,
                                                           bool with_positions) const {
  if (segment_ != nullptr && block_index_.has_value()) {
    ins_->lookups.add();
    const LatencyScope latency(ins_->lookup_micros);
    const auto ordinal = segment_->find(term);
    if (!ordinal) {
      ins_->misses.add();
      return nullptr;
    }
    const auto m = segment_->meta(*ordinal);
    if (m.count == 0) return nullptr;
    const auto blob = segment_->raw_blob(m);
    const auto rows = block_index_->blocks(*ordinal);
    // Zero-copy: decode cost accrues only for the blocks the cursor enters,
    // so nothing is added to the decode counters here.
    return make_segment_cursor(blob.first, blob.second, rows.first, rows.second,
                               /*pin=*/nullptr);
  }
  // No skip table loaded: serve the identical interface over a decoded
  // list (lookup_impl does the lookup/miss/decode accounting). Positional
  // cursors decode positions with the list.
  auto decoded = lookup_impl(term, /*positional=*/with_positions);
  if (!decoded.has_value() || decoded->doc_ids.empty()) return nullptr;
  return make_decoded_cursor(std::make_shared<const QueryPostings>(std::move(decoded).value()));
}

std::optional<QueryPostings> InvertedIndex::lookup_positional(std::string_view term) const {
  return lookup_impl(term, /*positional=*/true);
}

BloomChain InvertedIndex::bloom_chain(std::string_view term) const {
  BloomChain chain;
  if (segment_ == nullptr || !blooms_.has_value()) return chain;
  const auto ordinal = segment_->find(term);
  if (!ordinal) return chain;
  // One segment owns every doc of a batch index, so the single link covers
  // the whole doc-id space — the filter was built over the full list and
  // can answer for any candidate.
  chain.add_link({0, 0xFFFFFFFFu, &*blooms_, *ordinal});
  return chain;
}

std::optional<QueryPostings> InvertedIndex::lookup_range(std::string_view term,
                                                         std::uint32_t min_doc,
                                                         std::uint32_t max_doc,
                                                         std::size_t* runs_touched) const {
  ins_->lookups.add();
  const LatencyScope latency(ins_->lookup_micros);
  if (runs_touched) *runs_touched = 0;

  if (segment_ != nullptr) {
    const auto ordinal = segment_->find(term);
    if (!ordinal) {
      ins_->misses.add();
      return std::nullopt;
    }
    QueryPostings out;
    const auto m = segment_->meta(*ordinal);
    // Per-term range narrowing: the table row carries the blob's doc range,
    // so a non-overlapping query skips the decode entirely.
    if (m.max_doc < min_doc || m.min_doc > max_doc) return out;
    if (runs_touched) *runs_touched = 1;
    QueryPostings raw;
    segment_->decode(m, raw.doc_ids, raw.tfs);
    ins_->postings_decoded.add(m.count);
    ins_->bytes_decoded.add(m.bytes);
    for (std::size_t i = 0; i < raw.doc_ids.size(); ++i) {
      if (raw.doc_ids[i] >= min_doc && raw.doc_ids[i] <= max_doc) {
        out.doc_ids.push_back(raw.doc_ids[i]);
        out.tfs.push_back(raw.tfs[i]);
      }
    }
    return out;
  }

  const DictionaryEntry* entry = find_entry(term);
  if (entry == nullptr) {
    ins_->misses.add();
    return std::nullopt;
  }
  QueryPostings raw;
  const PostingKey key{entry->shard, entry->handle};
  for (const auto& run : runs_) {
    if (run.max_doc() < min_doc || run.min_doc() > max_doc) continue;  // range narrowing
    if (runs_touched) ++*runs_touched;
    run.fetch(key, raw.doc_ids, raw.tfs);
  }
  ins_->postings_decoded.add(raw.doc_ids.size());
  QueryPostings out;
  for (std::size_t i = 0; i < raw.doc_ids.size(); ++i) {
    if (raw.doc_ids[i] >= min_doc && raw.doc_ids[i] <= max_doc) {
      out.doc_ids.push_back(raw.doc_ids[i]);
      out.tfs.push_back(raw.tfs[i]);
    }
  }
  return out;
}

}  // namespace hetindex
