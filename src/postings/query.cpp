#include "postings/query.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hetindex {

InvertedIndex InvertedIndex::open(const std::string& dir) {
  InvertedIndex idx;
  idx.entries_ = dictionary_read(IndexLayout::dictionary_path(dir));
  HET_CHECK_MSG(std::is_sorted(idx.entries_.begin(), idx.entries_.end(),
                               [](const DictionaryEntry& a, const DictionaryEntry& b) {
                                 return a.term < b.term;
                               }),
                "dictionary file must be sorted by term");
  const auto directory = index_directory_read(IndexLayout::directory_path(dir));
  idx.runs_.reserve(directory.size());
  for (const auto& e : directory) idx.runs_.push_back(RunFile::open(dir + "/" + e.file));
  std::sort(idx.runs_.begin(), idx.runs_.end(),
            [](const RunFile& a, const RunFile& b) { return a.run_id() < b.run_id(); });
  return idx;
}

const DictionaryEntry* InvertedIndex::find_entry(std::string_view term) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), term,
      [](const DictionaryEntry& e, std::string_view t) { return e.term < t; });
  if (it == entries_.end() || it->term != term) return nullptr;
  return &*it;
}

std::vector<std::string_view> InvertedIndex::terms_with_prefix(std::string_view prefix) const {
  std::vector<std::string_view> out;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const DictionaryEntry& e, std::string_view p) { return e.term < p; });
  for (; it != entries_.end(); ++it) {
    const std::string_view term = it->term;
    if (term.size() < prefix.size() || term.substr(0, prefix.size()) != prefix) break;
    out.push_back(term);
  }
  return out;
}

std::optional<QueryPostings> InvertedIndex::lookup(std::string_view term) const {
  const DictionaryEntry* entry = find_entry(term);
  if (entry == nullptr) return std::nullopt;
  QueryPostings out;
  const PostingKey key{entry->shard, entry->handle};
  for (const auto& run : runs_) run.fetch(key, out.doc_ids, out.tfs);
  return out;
}

std::optional<QueryPostings> InvertedIndex::lookup_positional(std::string_view term) const {
  const DictionaryEntry* entry = find_entry(term);
  if (entry == nullptr) return std::nullopt;
  QueryPostings out;
  const PostingKey key{entry->shard, entry->handle};
  for (const auto& run : runs_) run.fetch(key, out.doc_ids, out.tfs, &out.positions);
  return out;
}

std::optional<QueryPostings> InvertedIndex::lookup_range(std::string_view term,
                                                         std::uint32_t min_doc,
                                                         std::uint32_t max_doc,
                                                         std::size_t* runs_touched) const {
  const DictionaryEntry* entry = find_entry(term);
  if (runs_touched) *runs_touched = 0;
  if (entry == nullptr) return std::nullopt;
  QueryPostings raw;
  const PostingKey key{entry->shard, entry->handle};
  for (const auto& run : runs_) {
    if (run.max_doc() < min_doc || run.min_doc() > max_doc) continue;  // range narrowing
    if (runs_touched) ++*runs_touched;
    run.fetch(key, raw.doc_ids, raw.tfs);
  }
  QueryPostings out;
  for (std::size_t i = 0; i < raw.doc_ids.size(); ++i) {
    if (raw.doc_ids[i] >= min_doc && raw.doc_ids[i] <= max_doc) {
      out.doc_ids.push_back(raw.doc_ids[i]);
      out.tfs.push_back(raw.tfs[i]);
    }
  }
  return out;
}

}  // namespace hetindex
