#include "postings/verify.hpp"

#include <algorithm>
#include <map>

#include "dict/dictionary.hpp"
#include "dict/trie_table.hpp"
#include "postings/query.hpp"
#include "postings/run_file.hpp"
#include "util/binary_io.hpp"

namespace hetindex {

VerifyReport verify_index(const std::string& dir) {
  VerifyReport report;

  // ---- Dictionary.
  const auto dict_path = IndexLayout::dictionary_path(dir);
  if (!file_exists(dict_path)) {
    report.fail("missing dictionary file: " + dict_path);
    return report;
  }
  const auto entries = dictionary_read(dict_path);
  report.terms = entries.size();
  std::map<std::pair<std::uint32_t, std::uint32_t>, const DictionaryEntry*> by_key;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    if (i > 0 && !(entries[i - 1].term < e.term)) {
      report.fail("dictionary terms not sorted/unique at '" + e.term + "'");
    }
    if (trie_index(e.term) != e.trie_idx) {
      report.fail("term '" + e.term + "' stored under wrong trie collection");
    }
    if (!by_key.emplace(std::make_pair(e.shard, e.handle), &e).second) {
      report.fail("duplicate postings key for term '" + e.term + "'");
    }
  }

  // ---- Run directory + run files.
  const auto dir_path = IndexLayout::directory_path(dir);
  if (!file_exists(dir_path)) {
    report.fail("missing run directory: " + dir_path);
    return report;
  }
  auto dir_entries = index_directory_read(dir_path);
  std::sort(dir_entries.begin(), dir_entries.end(),
            [](const IndexDirectoryEntry& a, const IndexDirectoryEntry& b) {
              return a.run_id < b.run_id;
            });
  report.runs = dir_entries.size();

  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> last_doc;  // key → max doc
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> posting_count;
  for (const auto& de : dir_entries) {
    const auto run_path = dir + "/" + de.file;
    if (!file_exists(run_path)) {
      report.fail("missing run file: " + de.file);
      continue;
    }
    const auto run = RunFile::open(run_path);  // blob CRC checked here
    if (run.run_id() != de.run_id) {
      report.fail(de.file + ": run id mismatch with directory");
    }
    if (!run.table().empty() &&
        (run.min_doc() < de.min_doc || run.max_doc() > de.max_doc)) {
      report.fail(de.file + ": doc range exceeds directory entry");
    }
    for (const auto& te : run.table()) {
      const auto key = std::make_pair(te.key.shard, te.key.handle);
      if (!by_key.contains(key)) {
        report.fail(de.file + ": table entry with no dictionary term");
        continue;
      }
      std::vector<std::uint32_t> ids, tfs, positions;
      run.fetch(te.key, ids, tfs, &positions);
      report.postings += ids.size();
      report.encoded_bytes += te.bytes;
      if (ids.size() != te.count) {
        report.fail(de.file + ": decoded count mismatch");
        continue;
      }
      if (ids.empty()) {
        report.fail(de.file + ": empty encoded list");
        continue;
      }
      if (ids.front() != te.min_doc || ids.back() != te.max_doc) {
        report.fail(de.file + ": entry min/max doc mismatch");
      }
      for (std::size_t i = 1; i < ids.size(); ++i) {
        if (ids[i - 1] >= ids[i]) {
          report.fail(de.file + ": postings not strictly doc-sorted");
          break;
        }
      }
      std::uint64_t tf_sum = 0;
      for (const auto tf : tfs) {
        if (tf == 0) {
          report.fail(de.file + ": zero term frequency");
          break;
        }
        tf_sum += tf;
      }
      if (!positions.empty()) {
        if (positions.size() != tf_sum) {
          report.fail(de.file + ": position count does not match term frequencies");
        } else {
          // Positions must be non-decreasing within each posting's slice.
          std::size_t cursor = 0;
          for (const auto tf : tfs) {
            for (std::uint32_t k = 1; k < tf; ++k) {
              if (positions[cursor + k] < positions[cursor + k - 1]) {
                report.fail(de.file + ": positions decrease within a document");
                break;
              }
            }
            cursor += tf;
          }
        }
      }
      const auto it = last_doc.find(key);
      if (it != last_doc.end() && ids.front() <= it->second) {
        report.fail(de.file + ": doc ids overlap an earlier run for the same term");
      }
      last_doc[key] = ids.back();
      posting_count[key] += ids.size();
    }
  }

  // ---- Every term must have postings (a dictionary entry with none means
  // a lost list).
  for (const auto& [key, entry] : by_key) {
    if (posting_count.find(key) == posting_count.end()) {
      report.fail("term '" + entry->term + "' has no postings in any run");
    }
  }
  return report;
}

}  // namespace hetindex
