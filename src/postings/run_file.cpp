#include "postings/run_file.hpp"

#include <limits>

#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"

namespace hetindex {
namespace {
constexpr std::uint32_t kRunMagic = 0x4E555248;  // "HRUN"
constexpr std::uint32_t kDirMagic = 0x52494448;  // "HDIR"
}  // namespace

RunFileWriter::RunFileWriter(std::string path, std::uint32_t run_id, PostingCodec codec)
    : path_(std::move(path)), run_id_(run_id), codec_(codec) {}

void RunFileWriter::add_list(PostingKey key, const PostingsList& list) {
  HET_CHECK(!finalized_);
  if (list.empty()) return;
  // Blocked from the start: segments inherit their block geometry from run
  // blobs via the §III.F byte concatenation, so the ≤128-doc chunking (and
  // the per-block density codec choice) happens exactly once, here.
  const auto encoded = encode_postings_blocked(codec_, list.doc_ids, list.tfs,
                                               list.positional() ? &list.positions : nullptr);
  RunTableEntry entry;
  entry.key = key;
  entry.offset = blobs_.size();
  entry.bytes = static_cast<std::uint32_t>(encoded.size());
  entry.count = static_cast<std::uint32_t>(list.size());
  entry.min_doc = list.doc_ids.front();
  entry.max_doc = list.doc_ids.back();
  table_.push_back(entry);
  blobs_.insert(blobs_.end(), encoded.begin(), encoded.end());
}

void RunFileWriter::add_raw(PostingKey key, const std::vector<std::uint8_t>& encoded,
                            std::uint32_t count, std::uint32_t min_doc,
                            std::uint32_t max_doc) {
  HET_CHECK(!finalized_);
  if (encoded.empty() || count == 0) return;
  RunTableEntry entry;
  entry.key = key;
  entry.offset = blobs_.size();
  entry.bytes = static_cast<std::uint32_t>(encoded.size());
  entry.count = count;
  entry.min_doc = min_doc;
  entry.max_doc = max_doc;
  table_.push_back(entry);
  blobs_.insert(blobs_.end(), encoded.begin(), encoded.end());
}

std::uint64_t RunFileWriter::finalize() {
  HET_CHECK(!finalized_);
  finalized_ = true;
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u32(kRunMagic);
  w.u32(run_id_);
  w.u8(static_cast<std::uint8_t>(codec_));
  std::uint32_t min_doc = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t max_doc = 0;
  for (const auto& e : table_) {
    min_doc = std::min(min_doc, e.min_doc);
    max_doc = std::max(max_doc, e.max_doc);
  }
  if (table_.empty()) min_doc = 0;
  w.u32(min_doc);
  w.u32(max_doc);
  w.u32(static_cast<std::uint32_t>(table_.size()));
  w.u64(blobs_.size());
  w.u32(crc32(blobs_.data(), blobs_.size()));
  for (const auto& e : table_) {
    w.u32(e.key.shard);
    w.u32(e.key.handle);
    w.u64(e.offset);
    w.u32(e.bytes);
    w.u32(e.count);
    w.u32(e.min_doc);
    w.u32(e.max_doc);
  }
  w.bytes(blobs_.data(), blobs_.size());
  write_file(path_, out);
  return out.size();
}

RunFile RunFile::open(const std::string& path) {
  const auto data = read_file(path);
  ByteReader r(data);
  HET_CHECK_MSG(r.u32() == kRunMagic, "not a hetindex run file");
  RunFile rf;
  rf.run_id_ = r.u32();
  rf.codec_ = static_cast<PostingCodec>(r.u8());
  rf.min_doc_ = r.u32();
  rf.max_doc_ = r.u32();
  const std::uint32_t count = r.u32();
  const std::uint64_t blob_bytes = r.u64();
  const std::uint32_t blob_crc = r.u32();
  rf.table_.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto& e = rf.table_[i];
    e.key.shard = r.u32();
    e.key.handle = r.u32();
    e.offset = r.u64();
    e.bytes = r.u32();
    e.count = r.u32();
    e.min_doc = r.u32();
    e.max_doc = r.u32();
    rf.by_key_.emplace(e.key, i);
  }
  rf.blobs_.resize(blob_bytes);
  r.bytes(rf.blobs_.data(), blob_bytes);
  HET_CHECK_MSG(crc32(rf.blobs_.data(), rf.blobs_.size()) == blob_crc,
                "run file blob corruption");
  return rf;
}

bool RunFile::fetch(PostingKey key, std::vector<std::uint32_t>& doc_ids,
                    std::vector<std::uint32_t>& tfs,
                    std::vector<std::uint32_t>* positions) const {
  const auto* e = entry(key);
  if (e == nullptr) return false;
  const auto blob = raw_blob(*e);
  // A merged blob is a byte-wise concatenation of self-describing blocks;
  // decode them all (a single-block blob is the degenerate case).
  std::size_t pos = 0;
  while (pos < blob.size()) {
    pos += decode_postings(blob.data(), blob.size(), doc_ids, tfs, positions, pos);
  }
  return true;
}

const RunTableEntry* RunFile::entry(PostingKey key) const {
  const auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : &table_[it->second];
}

std::vector<std::uint8_t> RunFile::raw_blob(const RunTableEntry& e) const {
  HET_CHECK(e.offset + e.bytes <= blobs_.size());
  return {blobs_.begin() + static_cast<std::ptrdiff_t>(e.offset),
          blobs_.begin() + static_cast<std::ptrdiff_t>(e.offset + e.bytes)};
}

void index_directory_write(const std::string& path,
                           const std::vector<IndexDirectoryEntry>& entries) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u32(kDirMagic);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.str(e.file);
    w.u32(e.run_id);
    w.u32(e.min_doc);
    w.u32(e.max_doc);
  }
  write_file(path, out);
}

std::vector<IndexDirectoryEntry> index_directory_read(const std::string& path) {
  const auto data = read_file(path);
  ByteReader r(data);
  HET_CHECK_MSG(r.u32() == kDirMagic, "not a hetindex index directory");
  const std::uint32_t count = r.u32();
  std::vector<IndexDirectoryEntry> entries(count);
  for (auto& e : entries) {
    e.file = r.str();
    e.run_id = r.u32();
    e.min_doc = r.u32();
    e.max_doc = r.u32();
  }
  return entries;
}

}  // namespace hetindex
