#include "postings/boolean_ops.hpp"

#include <algorithm>

namespace hetindex {

QueryPostings postings_and(const QueryPostings& a, const QueryPostings& b) {
  QueryPostings out;
  std::size_t i = 0, j = 0;
  while (i < a.doc_ids.size() && j < b.doc_ids.size()) {
    if (a.doc_ids[i] < b.doc_ids[j]) {
      ++i;
    } else if (a.doc_ids[i] > b.doc_ids[j]) {
      ++j;
    } else {
      out.doc_ids.push_back(a.doc_ids[i]);
      out.tfs.push_back(a.tfs[i] + b.tfs[j]);
      ++i;
      ++j;
    }
  }
  return out;
}

QueryPostings postings_or(const QueryPostings& a, const QueryPostings& b) {
  QueryPostings out;
  out.doc_ids.reserve(a.doc_ids.size() + b.doc_ids.size());
  std::size_t i = 0, j = 0;
  while (i < a.doc_ids.size() || j < b.doc_ids.size()) {
    if (j >= b.doc_ids.size() || (i < a.doc_ids.size() && a.doc_ids[i] < b.doc_ids[j])) {
      out.doc_ids.push_back(a.doc_ids[i]);
      out.tfs.push_back(a.tfs[i]);
      ++i;
    } else if (i >= a.doc_ids.size() || b.doc_ids[j] < a.doc_ids[i]) {
      out.doc_ids.push_back(b.doc_ids[j]);
      out.tfs.push_back(b.tfs[j]);
      ++j;
    } else {
      out.doc_ids.push_back(a.doc_ids[i]);
      out.tfs.push_back(a.tfs[i] + b.tfs[j]);
      ++i;
      ++j;
    }
  }
  return out;
}

QueryPostings postings_and_not(const QueryPostings& a, const QueryPostings& b) {
  QueryPostings out;
  std::size_t j = 0;
  for (std::size_t i = 0; i < a.doc_ids.size(); ++i) {
    while (j < b.doc_ids.size() && b.doc_ids[j] < a.doc_ids[i]) ++j;
    if (j < b.doc_ids.size() && b.doc_ids[j] == a.doc_ids[i]) continue;
    out.doc_ids.push_back(a.doc_ids[i]);
    out.tfs.push_back(a.tfs[i]);
  }
  return out;
}

QueryPostings postings_and_galloping(const QueryPostings& a, const QueryPostings& b) {
  // Iterate the shorter list, gallop in the longer one.
  const QueryPostings& small = a.doc_ids.size() <= b.doc_ids.size() ? a : b;
  const QueryPostings& large = a.doc_ids.size() <= b.doc_ids.size() ? b : a;
  QueryPostings out;
  std::size_t lo = 0;
  for (std::size_t i = 0; i < small.doc_ids.size(); ++i) {
    const std::uint32_t target = small.doc_ids[i];
    // Exponential probe from lo.
    std::size_t step = 1, hi = lo;
    while (hi < large.doc_ids.size() && large.doc_ids[hi] < target) {
      lo = hi;
      hi += step;
      step <<= 1;
    }
    hi = std::min(hi + 1, large.doc_ids.size());
    const auto it = std::lower_bound(large.doc_ids.begin() + static_cast<std::ptrdiff_t>(lo),
                                     large.doc_ids.begin() + static_cast<std::ptrdiff_t>(hi),
                                     target);
    lo = static_cast<std::size_t>(it - large.doc_ids.begin());
    if (lo < large.doc_ids.size() && large.doc_ids[lo] == target) {
      out.doc_ids.push_back(target);
      out.tfs.push_back(small.tfs[i] + large.tfs[lo]);
    }
  }
  return out;
}

namespace {

/// Positions of a term inside one document: the slice of the flattened
/// position stream owned by one posting.
struct PosSlice {
  const std::uint32_t* begin = nullptr;
  const std::uint32_t* end = nullptr;
};

/// Builds a doc → slice resolver over a positional QueryPostings.
std::vector<std::size_t> position_offsets(const QueryPostings& p) {
  std::vector<std::size_t> offsets(p.doc_ids.size() + 1, 0);
  for (std::size_t i = 0; i < p.tfs.size(); ++i) offsets[i + 1] = offsets[i] + p.tfs[i];
  return offsets;
}

/// Count phrase starts over one doc's per-term position slices: positions
/// p of term 0 with term t at p + t for every t.
std::uint32_t phrase_count_slices(const std::vector<PosSlice>& tp) {
  std::uint32_t matches = 0;
  for (const auto* it = tp[0].begin; it != tp[0].end; ++it) {
    const std::uint32_t p = *it;
    bool all = true;
    for (std::size_t t = 1; t < tp.size() && all; ++t) {
      all = std::binary_search(tp[t].begin, tp[t].end, p + static_cast<std::uint32_t>(t));
    }
    if (all) ++matches;
  }
  return matches;
}

/// Count proximity anchors: positions p of term 0 with every other term
/// within `window` of p in either direction.
std::uint32_t near_count_slices(const std::vector<PosSlice>& tp, std::uint32_t window) {
  std::uint32_t matches = 0;
  for (const auto* it = tp[0].begin; it != tp[0].end; ++it) {
    const std::uint32_t p = *it;
    const std::uint32_t lo = p >= window ? p - window : 0;
    bool all = true;
    for (std::size_t t = 1; t < tp.size() && all; ++t) {
      const auto* q = std::lower_bound(tp[t].begin, tp[t].end, lo);
      all = q != tp[t].end && *q <= p + window;  // nearest candidate ≥ lo
    }
    if (all) ++matches;
  }
  return matches;
}

/// Walks documents present in every list; for each aligned doc, calls
/// `count` on the per-term position slices and keeps docs with count > 0.
template <typename CountFn>
QueryPostings positional_join(const std::vector<const QueryPostings*>& lists,
                              CountFn&& count) {
  QueryPostings out;
  if (lists.empty()) return out;
  std::vector<std::vector<std::size_t>> offsets;
  offsets.reserve(lists.size());
  for (const auto* list : lists) offsets.push_back(position_offsets(*list));

  std::vector<std::size_t> cursor(lists.size(), 0);
  std::vector<PosSlice> slices(lists.size());
  while (true) {
    // Align all cursors on the same doc id: advance everyone to the max of
    // the current heads until they agree (or some list ends).
    bool done = false;
    bool aligned = false;
    std::uint32_t doc = 0;
    while (!done && !aligned) {
      doc = 0;
      for (std::size_t t = 0; t < lists.size(); ++t) {
        if (cursor[t] >= lists[t]->doc_ids.size()) {
          done = true;
          break;
        }
        doc = std::max(doc, lists[t]->doc_ids[cursor[t]]);
      }
      if (done) break;
      aligned = true;
      for (std::size_t t = 0; t < lists.size(); ++t) {
        while (cursor[t] < lists[t]->doc_ids.size() && lists[t]->doc_ids[cursor[t]] < doc)
          ++cursor[t];
        if (cursor[t] >= lists[t]->doc_ids.size()) {
          done = true;
          break;
        }
        if (lists[t]->doc_ids[cursor[t]] != doc) aligned = false;
      }
    }
    if (done) break;

    for (std::size_t t = 0; t < lists.size(); ++t) {
      const auto& lt = *lists[t];
      slices[t] = {lt.positions.data() + offsets[t][cursor[t]],
                   lt.positions.data() + offsets[t][cursor[t] + 1]};
    }
    const std::uint32_t matches = count(slices);
    if (matches > 0) {
      out.doc_ids.push_back(doc);
      out.tfs.push_back(matches);
    }
    for (std::size_t t = 0; t < lists.size(); ++t) ++cursor[t];
  }
  return out;
}

std::vector<PosSlice> to_slices(const DocTermPositions& term_positions) {
  std::vector<PosSlice> slices(term_positions.size());
  for (std::size_t t = 0; t < term_positions.size(); ++t) {
    slices[t] = {term_positions[t].data(),
                 term_positions[t].data() + term_positions[t].size()};
  }
  return slices;
}

}  // namespace

std::uint32_t phrase_match_count(const DocTermPositions& term_positions) {
  if (term_positions.empty()) return 0;
  return phrase_count_slices(to_slices(term_positions));
}

std::uint32_t near_match_count(const DocTermPositions& term_positions,
                               std::uint32_t window) {
  if (term_positions.empty()) return 0;
  return near_count_slices(to_slices(term_positions), window);
}

QueryPostings phrase_join(const std::vector<const QueryPostings*>& lists) {
  return positional_join(lists,
                         [](const std::vector<PosSlice>& tp) { return phrase_count_slices(tp); });
}

QueryPostings near_join(const std::vector<const QueryPostings*>& lists,
                        std::uint32_t window) {
  return positional_join(lists, [window](const std::vector<PosSlice>& tp) {
    return near_count_slices(tp, window);
  });
}

std::optional<QueryPostings> phrase_query(const InvertedIndex& index,
                                          const std::vector<std::string>& terms) {
  if (terms.empty()) return std::nullopt;
  std::vector<QueryPostings> lists;
  lists.reserve(terms.size());
  for (const auto& term : terms) {
    auto postings = index.lookup_positional(term);
    if (!postings) return std::nullopt;
    if (postings->positions.empty() && !postings->doc_ids.empty()) {
      return std::nullopt;  // index built without positions
    }
    lists.push_back(std::move(*postings));
  }
  std::vector<const QueryPostings*> refs;
  refs.reserve(lists.size());
  for (const auto& list : lists) refs.push_back(&list);
  // Terms stay in phrase order — no rarest-first trick here since
  // adjacency is order-sensitive anyway.
  return phrase_join(refs);
}

}  // namespace hetindex
