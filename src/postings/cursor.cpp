#include "postings/cursor.hpp"

#include <algorithm>

#include "search/topk.hpp"
#include "util/check.hpp"

namespace hetindex {

double PostingsCursor::block_max_score() {
  return bm25_upper_bound(idf_, block_max_tf(), params_);
}

namespace {

/// Shared block state machine. Subclasses describe their blocks
/// (block_count / meta / max tf) and decode one on demand; the base keeps
/// the shallow/positioned bookkeeping and the skipped-block accounting
/// identical across backends.
class BlockedCursorBase : public PostingsCursor {
 public:
  [[nodiscard]] bool valid() const final { return cur_block_ < n_blocks_; }
  [[nodiscard]] bool positioned() const final { return valid() && deep_; }

  [[nodiscard]] std::uint32_t docid() const final {
    HET_CHECK_MSG(positioned(), "docid() on unpositioned cursor");
    return cur_docs_[in_pos_];
  }

  [[nodiscard]] std::uint32_t tf() const final {
    HET_CHECK_MSG(positioned(), "tf() on unpositioned cursor");
    return cur_tfs_[in_pos_];
  }

  void next() final {
    HET_CHECK_MSG(positioned(), "next() on unpositioned cursor");
    if (++in_pos_ < cur_count_) return;
    // The spent block was decoded, so moving off it is not a skip.
    ++cur_block_;
    deep_ = false;
    in_pos_ = 0;
    if (valid()) enter_block();
  }

  void seek(std::uint32_t target) final {
    if (!valid()) return;
    if (deep_ && cur_docs_[in_pos_] >= target) return;  // never move backwards
    shallow_seek(target);
    if (!valid()) return;
    if (!deep_) enter_block();
    // The landing block's last_doc >= target, so the answer is inside it.
    const auto* begin = cur_docs_;
    const auto* end = cur_docs_ + cur_count_;
    in_pos_ = static_cast<std::size_t>(std::lower_bound(begin, end, target) - begin);
    HET_DCHECK(in_pos_ < cur_count_);
  }

  void shallow_seek(std::uint32_t target) final {
    while (valid() && block_meta(cur_block_).last_doc < target) {
      if (!deep_) ++skipped_;  // passed without ever decoding it
      ++cur_block_;
      deep_ = false;
      in_pos_ = 0;
    }
  }

  [[nodiscard]] std::uint32_t block_last_doc() const final {
    HET_CHECK_MSG(valid(), "block_last_doc() on exhausted cursor");
    return block_meta(cur_block_).last_doc;
  }

  [[nodiscard]] std::uint32_t block_max_tf() final {
    HET_CHECK_MSG(valid(), "block_max_tf() on exhausted cursor");
    return block_max_tf_of(cur_block_);
  }

  [[nodiscard]] std::uint32_t docs_in_block() const final {
    HET_CHECK_MSG(valid(), "docs_in_block() on exhausted cursor");
    return block_meta(cur_block_).count;
  }

  [[nodiscard]] std::uint64_t size() const final { return total_docs_; }

  [[nodiscard]] std::uint32_t last_doc() const final {
    HET_DCHECK(n_blocks_ > 0);
    return block_meta(n_blocks_ - 1).last_doc;
  }

  [[nodiscard]] std::uint64_t blocks_skipped() const final { return skipped_; }

  [[nodiscard]] bool current_positions(std::vector<std::uint32_t>& out) final {
    HET_CHECK_MSG(positioned(), "current_positions() on unpositioned cursor");
    if (pos_block_ != static_cast<std::ptrdiff_t>(cur_block_)) {
      pos_scratch_.clear();
      pos_ok_ = load_block_positions(cur_block_, pos_scratch_);
      pos_block_ = static_cast<std::ptrdiff_t>(cur_block_);
      if (pos_ok_) {
        // Per-posting slice offsets follow from the block's tfs.
        pos_offsets_.assign(cur_count_ + 1, 0);
        for (std::size_t i = 0; i < cur_count_; ++i) {
          pos_offsets_[i + 1] = pos_offsets_[i] + cur_tfs_[i];
        }
        HET_CHECK_MSG(pos_scratch_.size() == pos_offsets_[cur_count_],
                      "positional payload disagrees with block tfs");
      }
    }
    if (!pos_ok_) return false;
    out.insert(out.end(),
               pos_scratch_.begin() + static_cast<std::ptrdiff_t>(pos_offsets_[in_pos_]),
               pos_scratch_.begin() + static_cast<std::ptrdiff_t>(pos_offsets_[in_pos_ + 1]));
    return true;
  }

 protected:
  struct BlockMeta {
    std::uint32_t last_doc = 0;
    std::uint32_t count = 0;
  };

  [[nodiscard]] virtual BlockMeta block_meta(std::size_t block) const = 0;
  [[nodiscard]] virtual std::uint32_t block_max_tf_of(std::size_t block) = 0;
  /// Decodes `block` and points cur_docs_/cur_tfs_ at its postings.
  virtual void load_block(std::size_t block) = 0;
  /// Fills `positions` with the block's concatenated per-posting positions
  /// (absolute, ascending within each posting), or returns false when the
  /// backend carries none. Called only on the currently-loaded block.
  [[nodiscard]] virtual bool load_block_positions(std::size_t block,
                                                  std::vector<std::uint32_t>& positions) {
    (void)block;
    (void)positions;
    return false;
  }

  void enter_block() {
    load_block(cur_block_);
    cur_count_ = block_meta(cur_block_).count;
    deep_ = true;
    in_pos_ = 0;
  }

  // Set once by subclass constructors.
  std::size_t n_blocks_ = 0;
  std::uint64_t total_docs_ = 0;
  // Current-block postings, owned by (or borrowed through) the subclass.
  const std::uint32_t* cur_docs_ = nullptr;
  const std::uint32_t* cur_tfs_ = nullptr;

 private:
  std::size_t cur_block_ = 0;
  std::size_t in_pos_ = 0;
  std::size_t cur_count_ = 0;
  bool deep_ = false;
  std::uint64_t skipped_ = 0;
  // Lazily-decoded positions of one block (the current one, once asked).
  std::ptrdiff_t pos_block_ = -1;
  bool pos_ok_ = false;
  std::vector<std::uint32_t> pos_scratch_;
  std::vector<std::uint64_t> pos_offsets_;
};

/// Blob + skip-table cursor: decodes exactly the blocks it lands on.
class SegmentPostingsCursor final : public BlockedCursorBase {
 public:
  SegmentPostingsCursor(const std::uint8_t* blob, std::size_t blob_bytes,
                        const PostingBlockEntry* entries, std::size_t entry_count,
                        std::shared_ptr<const void> pin)
      : blob_(blob), blob_bytes_(blob_bytes), entries_(entries), pin_(std::move(pin)) {
    n_blocks_ = entry_count;
    for (std::size_t i = 0; i < entry_count; ++i) total_docs_ += entries[i].count;
    docs_scratch_.reserve(kPostingsBlockSize);
    tfs_scratch_.reserve(kPostingsBlockSize);
  }

 protected:
  [[nodiscard]] BlockMeta block_meta(std::size_t block) const override {
    const auto& e = entries_[block];
    return {e.last_doc, e.count};
  }

  [[nodiscard]] std::uint32_t block_max_tf_of(std::size_t block) override {
    return entries_[block].max_tf;
  }

  void load_block(std::size_t block) override {
    const auto& e = entries_[block];
    HET_CHECK_MSG(e.offset + e.bytes <= blob_bytes_, "skip entry outside blob");
    docs_scratch_.clear();
    tfs_scratch_.clear();
    const std::size_t consumed =
        decode_postings(blob_ + e.offset, e.bytes, docs_scratch_, tfs_scratch_);
    HET_CHECK_MSG(consumed == e.bytes && docs_scratch_.size() == e.count,
                  "skip entry disagrees with block payload");
    cur_docs_ = docs_scratch_.data();
    cur_tfs_ = tfs_scratch_.data();
  }

  [[nodiscard]] bool load_block_positions(std::size_t block,
                                          std::vector<std::uint32_t>& positions) override {
    // Re-decode the block with a positions sink. Dedicated scratch: the
    // base still points cur_docs_/cur_tfs_ into the load_block scratch.
    const auto& e = entries_[block];
    pos_docs_scratch_.clear();
    pos_tfs_scratch_.clear();
    const std::size_t consumed = decode_postings(blob_ + e.offset, e.bytes, pos_docs_scratch_,
                                                 pos_tfs_scratch_, &positions);
    HET_CHECK_MSG(consumed == e.bytes, "skip entry disagrees with block payload");
    return !positions.empty();
  }

 private:
  const std::uint8_t* blob_;
  std::size_t blob_bytes_;
  const PostingBlockEntry* entries_;
  std::shared_ptr<const void> pin_;
  std::vector<std::uint32_t> docs_scratch_;
  std::vector<std::uint32_t> tfs_scratch_;
  std::vector<std::uint32_t> pos_docs_scratch_;
  std::vector<std::uint32_t> pos_tfs_scratch_;
};

/// Already-decoded list behind the cursor interface. Blocks are synthetic
/// (every kPostingsBlockSize docs) and maxima are scanned lazily, so skips
/// here save per-document scoring work rather than decode work.
class DecodedPostingsCursor final : public BlockedCursorBase {
 public:
  explicit DecodedPostingsCursor(std::shared_ptr<const QueryPostings> postings)
      : postings_(std::move(postings)) {
    HET_CHECK(postings_ != nullptr);
    HET_CHECK(postings_->doc_ids.size() == postings_->tfs.size());
    total_docs_ = postings_->doc_ids.size();
    n_blocks_ = (total_docs_ + kPostingsBlockSize - 1) / kPostingsBlockSize;
    max_tf_cache_.assign(n_blocks_, 0);  // 0 = not yet computed (tfs are >= 1)
  }

 protected:
  [[nodiscard]] BlockMeta block_meta(std::size_t block) const override {
    const std::size_t begin = block * kPostingsBlockSize;
    const std::size_t end = std::min<std::size_t>(begin + kPostingsBlockSize,
                                                  postings_->doc_ids.size());
    return {postings_->doc_ids[end - 1], static_cast<std::uint32_t>(end - begin)};
  }

  [[nodiscard]] std::uint32_t block_max_tf_of(std::size_t block) override {
    std::uint32_t& slot = max_tf_cache_[block];
    if (slot == 0) {
      const std::size_t begin = block * kPostingsBlockSize;
      const std::size_t end = std::min<std::size_t>(begin + kPostingsBlockSize,
                                                    postings_->tfs.size());
      slot = *std::max_element(postings_->tfs.begin() + static_cast<std::ptrdiff_t>(begin),
                               postings_->tfs.begin() + static_cast<std::ptrdiff_t>(end));
    }
    return slot;
  }

  void load_block(std::size_t block) override {
    const std::size_t begin = block * kPostingsBlockSize;
    cur_docs_ = postings_->doc_ids.data() + begin;
    cur_tfs_ = postings_->tfs.data() + begin;
  }

  [[nodiscard]] bool load_block_positions(std::size_t block,
                                          std::vector<std::uint32_t>& positions) override {
    const auto& all = postings_->positions;
    if (all.empty()) return false;
    if (pos_block_starts_.empty()) {
      // One pass over the tfs gives every block's start offset in the flat
      // positions stream (posting i owns tfs[i] entries).
      pos_block_starts_.assign(n_blocks_ + 1, 0);
      std::uint64_t run = 0;
      for (std::size_t i = 0; i < postings_->tfs.size(); ++i) {
        run += postings_->tfs[i];
        pos_block_starts_[i / kPostingsBlockSize + 1] = run;
      }
      HET_CHECK_MSG(pos_block_starts_[n_blocks_] == all.size(),
                    "positional payload disagrees with list tfs");
    }
    positions.insert(
        positions.end(),
        all.begin() + static_cast<std::ptrdiff_t>(pos_block_starts_[block]),
        all.begin() + static_cast<std::ptrdiff_t>(pos_block_starts_[block + 1]));
    return true;
  }

 private:
  std::shared_ptr<const QueryPostings> postings_;
  std::vector<std::uint32_t> max_tf_cache_;
  std::vector<std::uint64_t> pos_block_starts_;
};

/// Borrowed memtable blocks behind the cursor interface. Nothing decodes
/// (the arrays are live uint32s already); block maxima are scanned on
/// first use and cached, exactly like the decoded backend, so Block-Max
/// pruning works on never-flushed documents too.
class MemtablePostingsCursor final : public BlockedCursorBase {
 public:
  MemtablePostingsCursor(std::vector<MemtableBlockRef> blocks,
                         std::shared_ptr<const void> pin)
      : blocks_(std::move(blocks)), pin_(std::move(pin)) {
    n_blocks_ = blocks_.size();
    for (const auto& b : blocks_) {
      HET_CHECK(b.count > 0);
      total_docs_ += b.count;
    }
    max_tf_cache_.assign(n_blocks_, 0);  // 0 = not yet computed (tfs are >= 1)
  }

 protected:
  [[nodiscard]] BlockMeta block_meta(std::size_t block) const override {
    const auto& b = blocks_[block];
    return {b.last_doc, b.count};
  }

  [[nodiscard]] std::uint32_t block_max_tf_of(std::size_t block) override {
    std::uint32_t& slot = max_tf_cache_[block];
    if (slot == 0) {
      const auto& b = blocks_[block];
      slot = *std::max_element(b.tfs, b.tfs + b.count);
    }
    return slot;
  }

  void load_block(std::size_t block) override {
    cur_docs_ = blocks_[block].docs;
    cur_tfs_ = blocks_[block].tfs;
  }

 private:
  std::vector<MemtableBlockRef> blocks_;
  std::shared_ptr<const void> pin_;
  std::vector<std::uint32_t> max_tf_cache_;
};

/// Ordered chain of disjoint per-segment cursors (live snapshot view).
/// Delegates to the active part; exhausted-part bookkeeping (including
/// skipped blocks in parts jumped over) stays inside the parts themselves.
class ConcatPostingsCursor final : public PostingsCursor {
 public:
  explicit ConcatPostingsCursor(std::vector<std::unique_ptr<PostingsCursor>> parts)
      : parts_(std::move(parts)) {
    for (const auto& p : parts_) {
      HET_CHECK(p != nullptr && p->valid());
      total_docs_ += p->size();
    }
  }

  [[nodiscard]] bool valid() const override { return cur_ < parts_.size(); }
  [[nodiscard]] bool positioned() const override {
    return valid() && parts_[cur_]->positioned();
  }
  [[nodiscard]] std::uint32_t docid() const override { return parts_[cur_]->docid(); }
  [[nodiscard]] std::uint32_t tf() const override { return parts_[cur_]->tf(); }
  [[nodiscard]] bool current_positions(std::vector<std::uint32_t>& out) override {
    return parts_[cur_]->current_positions(out);
  }

  void next() override {
    parts_[cur_]->next();
    if (!parts_[cur_]->valid()) {
      ++cur_;
      if (valid()) parts_[cur_]->seek(0);
    }
  }

  void seek(std::uint32_t target) override {
    skip_parts_below(target);
    if (valid()) parts_[cur_]->seek(target);
  }

  void shallow_seek(std::uint32_t target) override {
    skip_parts_below(target);
    if (valid()) parts_[cur_]->shallow_seek(target);
  }

  [[nodiscard]] std::uint32_t block_last_doc() const override {
    return parts_[cur_]->block_last_doc();
  }
  [[nodiscard]] std::uint32_t block_max_tf() override {
    return parts_[cur_]->block_max_tf();
  }
  [[nodiscard]] std::uint32_t docs_in_block() const override {
    return parts_[cur_]->docs_in_block();
  }

  [[nodiscard]] std::uint64_t size() const override { return total_docs_; }
  [[nodiscard]] std::uint32_t last_doc() const override {
    return parts_.back()->last_doc();
  }

  [[nodiscard]] std::uint64_t blocks_skipped() const override {
    std::uint64_t total = 0;
    for (const auto& p : parts_) total += p->blocks_skipped();
    return total;
  }

 private:
  void skip_parts_below(std::uint32_t target) {
    while (valid() && parts_[cur_]->last_doc() < target) {
      // Drain the part shallowly so its skipped-block count stays honest:
      // every remaining block has last_doc <= part last_doc < target.
      parts_[cur_]->shallow_seek(target);
      HET_DCHECK(!parts_[cur_]->valid());
      ++cur_;
    }
  }

  std::vector<std::unique_ptr<PostingsCursor>> parts_;
  std::size_t cur_ = 0;
  std::uint64_t total_docs_ = 0;
};

}  // namespace

std::unique_ptr<PostingsCursor> make_segment_cursor(
    const std::uint8_t* blob, std::size_t blob_bytes, const PostingBlockEntry* entries,
    std::size_t entry_count, std::shared_ptr<const void> pin) {
  return std::make_unique<SegmentPostingsCursor>(blob, blob_bytes, entries, entry_count,
                                                 std::move(pin));
}

std::unique_ptr<PostingsCursor> make_decoded_cursor(
    std::shared_ptr<const QueryPostings> postings) {
  return std::make_unique<DecodedPostingsCursor>(std::move(postings));
}

std::unique_ptr<PostingsCursor> make_concat_cursor(
    std::vector<std::unique_ptr<PostingsCursor>> parts) {
  return std::make_unique<ConcatPostingsCursor>(std::move(parts));
}

std::unique_ptr<PostingsCursor> make_memtable_cursor(
    std::vector<MemtableBlockRef> blocks, std::shared_ptr<const void> pin) {
  HET_CHECK(!blocks.empty());
  return std::make_unique<MemtablePostingsCursor>(std::move(blocks), std::move(pin));
}

QueryPostings materialize_cursor(PostingsCursor& cursor) {
  QueryPostings out;
  out.doc_ids.reserve(cursor.size());
  out.tfs.reserve(cursor.size());
  if (cursor.valid() && !cursor.positioned()) cursor.seek(0);
  while (cursor.valid()) {
    out.doc_ids.push_back(cursor.docid());
    out.tfs.push_back(cursor.tf());
    cursor.next();
  }
  return out;
}

}  // namespace hetindex
