#include "postings/merger.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "postings/run_file.hpp"
#include "util/check.hpp"

namespace hetindex {

MergeStats merge_runs(const std::vector<std::string>& run_paths, const std::string& out_path,
                      PostingCodec codec) {
  MergeStats stats;
  std::vector<RunFile> runs;
  runs.reserve(run_paths.size());
  for (const auto& p : run_paths) runs.push_back(RunFile::open(p));
  std::sort(runs.begin(), runs.end(),
            [](const RunFile& a, const RunFile& b) { return a.run_id() < b.run_id(); });

  // Byte-level merge (the reason §III.F's pass costs <10%): every encoded
  // segment's first doc id is absolute, so partial lists concatenate
  // verbatim — no decode/re-encode. One pass over the runs' tables (runs
  // are processed in ascending run order, so segments land in global doc
  // order); table metadata folds from the runs' tables and cross-run doc
  // order is checked from min/max alone.
  for (const auto& run : runs) {
    HET_CHECK_MSG(run.codec() == codec, "merge requires a uniform posting codec");
  }
  struct Accum {
    std::vector<std::uint8_t> blob;
    std::uint32_t count = 0;
    std::uint32_t min_doc = 0;
    std::uint32_t max_doc = 0;
  };
  std::unordered_map<std::uint64_t, Accum> accum;
  auto pack = [](PostingKey k) {
    return (static_cast<std::uint64_t>(k.shard) << 32) | k.handle;
  };
  for (const auto& run : runs) {
    for (const auto& e : run.table()) {
      stats.input_bytes += e.bytes;
      auto [it, inserted] = accum.try_emplace(pack(e.key));
      Accum& a = it->second;
      HET_CHECK_MSG(inserted || e.min_doc > a.max_doc,
                    "doc ids must be globally increasing across runs");
      const auto segment = run.raw_blob(e);
      a.blob.insert(a.blob.end(), segment.begin(), segment.end());
      a.count += e.count;
      if (inserted) a.min_doc = e.min_doc;
      a.max_doc = e.max_doc;
    }
  }
  // Deterministic output order.
  std::vector<std::uint64_t> ordered;
  ordered.reserve(accum.size());
  for (const auto& [k, a] : accum) ordered.push_back(k);
  std::sort(ordered.begin(), ordered.end());

  RunFileWriter writer(out_path, kMergedRunId, codec);
  for (const auto packed : ordered) {
    const Accum& a = accum.at(packed);
    stats.postings += a.count;
    ++stats.terms;
    writer.add_raw({static_cast<std::uint32_t>(packed >> 32),
                    static_cast<std::uint32_t>(packed & 0xFFFFFFFFu)},
                   a.blob, a.count, a.min_doc, a.max_doc);
  }
  stats.output_bytes = writer.finalize();
  return stats;
}

}  // namespace hetindex
