#pragma once
/// \file verify.hpp
/// Structural verification of an on-disk index directory: a downstream
/// operator's pre-flight check after copying indexes between machines.
/// Validates everything that can be checked without the original corpus.

#include <cstdint>
#include <string>
#include <vector>

namespace hetindex {

struct VerifyReport {
  bool ok = true;
  std::vector<std::string> errors;
  // Inventory gathered along the way.
  std::uint64_t terms = 0;
  std::uint64_t runs = 0;
  std::uint64_t postings = 0;
  std::uint64_t encoded_bytes = 0;

  void fail(std::string message) {
    ok = false;
    errors.push_back(std::move(message));
  }
};

/// Checks, in order:
///  - dictionary file parses, terms sorted and unique, every term's trie
///    index matches its stored collection;
///  - run directory parses; every listed run file exists, opens (blob CRC
///    verified by the reader) and has consistent in-file doc ranges;
///  - every run-file table entry's key exists in the dictionary;
///  - per key, postings are strictly doc-sorted within and across runs and
///    entry min/max match the decoded lists;
///  - every dictionary term has at least one posting somewhere.
VerifyReport verify_index(const std::string& dir);

}  // namespace hetindex
