#pragma once
/// \file ranking.hpp
/// Ranked retrieval over the inverted files: Okapi BM25 scoring using the
/// term/doc statistics the index already stores (postings + tf) and the
/// per-document token counts from the doc map. This is the standard
/// downstream consumer of the inverted files the paper builds.

#include <cstdint>
#include <string>
#include <vector>

#include "postings/doc_map.hpp"
#include "postings/query.hpp"

namespace hetindex {

struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// One ranked hit.
struct ScoredDoc {
  std::uint32_t doc_id = 0;
  double score = 0;
};

/// Top-k BM25-ranked documents for a bag of normalized terms (disjunctive
/// semantics: any matching term contributes). Ties break by doc id.
/// \deprecated Use Searcher (search/searcher.hpp): it hoists the N/avgdl
/// collection stats out of the per-query path, caches decoded postings and
/// results, and serves every query mode through QueryRequest. This shim
/// builds a throwaway Searcher per call — the historical per-call cost.
[[deprecated("use Searcher::search (search/searcher.hpp)")]]
std::vector<ScoredDoc> bm25_query(const InvertedIndex& index, const DocMap& docs,
                                  const std::vector<std::string>& terms, std::size_t k,
                                  const Bm25Params& params = {});

/// The BM25 idf of a term with document frequency df over N documents
/// (Robertson-Sparck Jones with +1 smoothing, non-negative).
double bm25_idf(std::uint64_t df, std::uint64_t n_docs);

}  // namespace hetindex
