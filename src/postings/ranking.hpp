#pragma once
/// \file ranking.hpp
/// Ranked retrieval over the inverted files: Okapi BM25 scoring using the
/// term/doc statistics the index already stores (postings + tf) and the
/// per-document token counts from the doc map. This is the standard
/// downstream consumer of the inverted files the paper builds.

#include <cstdint>
#include <string>
#include <vector>

#include "postings/doc_map.hpp"
#include "postings/query.hpp"

namespace hetindex {

struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// One ranked hit.
struct ScoredDoc {
  std::uint32_t doc_id = 0;
  double score = 0;
};

/// The BM25 idf of a term with document frequency df over N documents
/// (Robertson-Sparck Jones with +1 smoothing, non-negative).
double bm25_idf(std::uint64_t df, std::uint64_t n_docs);

}  // namespace hetindex
