#include "postings/ranking.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace hetindex {

double bm25_idf(std::uint64_t df, std::uint64_t n_docs) {
  const double n = static_cast<double>(n_docs);
  const double d = static_cast<double>(df);
  return std::log(1.0 + (n - d + 0.5) / (d + 0.5));
}

std::vector<ScoredDoc> bm25_query(const InvertedIndex& index, const DocMap& docs,
                                  const std::vector<std::string>& terms, std::size_t k,
                                  const Bm25Params& params) {
  const double avgdl = std::max(docs.average_doc_tokens(), 1e-9);
  const std::uint64_t n_docs = docs.doc_count();
  std::unordered_map<std::uint32_t, double> scores;

  for (const auto& term : terms) {
    const auto postings = index.lookup(term);
    if (!postings || postings->doc_ids.empty()) continue;
    const double idf = bm25_idf(postings->doc_ids.size(), n_docs);
    for (std::size_t i = 0; i < postings->doc_ids.size(); ++i) {
      const std::uint32_t doc = postings->doc_ids[i];
      const double tf = postings->tfs[i];
      const double dl = docs.location(doc).token_count;
      const double denom = tf + params.k1 * (1.0 - params.b + params.b * dl / avgdl);
      scores[doc] += idf * (tf * (params.k1 + 1.0)) / denom;
    }
  }

  std::vector<ScoredDoc> ranked;
  ranked.reserve(scores.size());
  for (const auto& [doc, score] : scores) ranked.push_back({doc, score});
  std::sort(ranked.begin(), ranked.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace hetindex
