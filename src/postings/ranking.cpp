#include "postings/ranking.hpp"

#include <cmath>

namespace hetindex {

double bm25_idf(std::uint64_t df, std::uint64_t n_docs) {
  const double n = static_cast<double>(n_docs);
  const double d = static_cast<double>(df);
  return std::log(1.0 + (n - d + 0.5) / (d + 0.5));
}

}  // namespace hetindex
