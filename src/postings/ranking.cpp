#include "postings/ranking.hpp"

#include <cmath>

#include "search/searcher.hpp"
#include "util/check.hpp"

namespace hetindex {

double bm25_idf(std::uint64_t df, std::uint64_t n_docs) {
  const double n = static_cast<double>(n_docs);
  const double d = static_cast<double>(df);
  return std::log(1.0 + (n - d + 0.5) / (d + 0.5));
}

// Deprecated shim: delegates to the Searcher facade's exhaustive engine,
// which reproduces this function's historical accumulation order exactly.
// A fresh Searcher per call recomputes collection stats every time — the
// very cost the facade exists to hoist; migrating callers keep one
// Searcher per index instead.
std::vector<ScoredDoc> bm25_query(const InvertedIndex& index, const DocMap& docs,
                                  const std::vector<std::string>& terms, std::size_t k,
                                  const Bm25Params& params) {
  const Searcher searcher(index, docs);
  QueryRequest request;
  request.terms = terms;
  request.mode = QueryMode::kRanked;
  request.k = k;
  request.bm25 = params;
  request.exhaustive = true;
  auto response = searcher.search(request);
  if (!response.has_value()) {
    // The legacy contract returned empty for a termless query and had no
    // other failure mode.
    return {};
  }
  return std::move(response.value().hits);
}

}  // namespace hetindex
