#pragma once
/// \file cursor.hpp
/// The one postings-iteration interface. A PostingsCursor walks a term's
/// postings block by block: document-level next()/seek() decode at most one
/// block at a time, and block-level shallow_seek()/block_max_score() let a
/// Block-Max executor step over whole blocks — bounding and skipping them
/// from the skip table alone, without decoding a posting. Every backend
/// implements it:
///
///   segment + .bmx   seeks via the skip table; skipped blocks are never
///                    decoded (the Block-Max fast path)
///   runs / no .bmx   a decoded list behind the same interface, with
///                    synthetic kPostingsBlockSize-doc blocks whose maxima
///                    are computed lazily — skips save scoring, not decode
///   live snapshot    per-segment cursors chained in doc_base order
///
/// State machine: a cursor starts *shallow* at its first block — block
/// accessors work, docid()/tf() do not until a seek() (or next() after one)
/// *positions* it. shallow_seek() only advances the block pointer and may
/// leave the cursor shallow; seek() always lands positioned (or exhausts).
/// Cursors are single-threaded; create one per query per term.

#include <cstdint>
#include <memory>
#include <vector>

#include "codec/posting_codecs.hpp"
#include "postings/query.hpp"
#include "postings/ranking.hpp"

namespace hetindex {

class PostingsCursor {
 public:
  virtual ~PostingsCursor() = default;

  /// False once every posting (and block) has been consumed or skipped.
  [[nodiscard]] virtual bool valid() const = 0;
  /// True when the cursor sits on a concrete posting — docid()/tf()/next()
  /// require this; a merely shallow cursor must seek() first.
  [[nodiscard]] virtual bool positioned() const = 0;
  [[nodiscard]] virtual std::uint32_t docid() const = 0;
  [[nodiscard]] virtual std::uint32_t tf() const = 0;
  /// Advances one posting, decoding the next block when the current one is
  /// spent. Requires positioned().
  virtual void next() = 0;
  /// Positions on the first posting with doc id >= target (never moves
  /// backwards), skipping intermediate blocks via the skip data and
  /// decoding only the landing block.
  virtual void seek(std::uint32_t target) = 0;

  /// Advances the block pointer to the first block whose last_doc >=
  /// target without decoding anything; the cursor may come out shallow.
  virtual void shallow_seek(std::uint32_t target) = 0;
  /// Largest doc id in the current block. Requires valid().
  [[nodiscard]] virtual std::uint32_t block_last_doc() const = 0;
  /// Largest term frequency in the current block (from the skip table, or
  /// a lazy scan on decoded backends). Requires valid().
  [[nodiscard]] virtual std::uint32_t block_max_tf() = 0;
  /// Postings in the current block. Requires valid().
  [[nodiscard]] virtual std::uint32_t docs_in_block() const = 0;

  /// Appends the current posting's term positions (absolute, ascending
  /// within the document) to `out` and returns true; returns false when
  /// the backend carries no positional payload for this list (then `out`
  /// is untouched) — phrase/NEAR verification degrades to "no positions
  /// available" instead of crashing. Decode is lazy and per block: the
  /// first request inside a block decodes that block's positions once,
  /// later postings in the same block slice the cached payload. Requires
  /// positioned().
  [[nodiscard]] virtual bool current_positions(std::vector<std::uint32_t>& out) {
    (void)out;
    return false;
  }

  /// Total postings in the list (the term's document frequency).
  [[nodiscard]] virtual std::uint64_t size() const = 0;
  /// Largest doc id in the whole list.
  [[nodiscard]] virtual std::uint32_t last_doc() const = 0;
  /// Blocks passed over without ever being decoded/entered — the quantity
  /// behind the search_blocks_skipped_total metric.
  [[nodiscard]] virtual std::uint64_t blocks_skipped() const = 0;

  /// Binds the term's idf + BM25 parameters so block_max_score() can turn
  /// block_max_tf() into a score bound. Call once before pruning.
  void set_score_params(double idf, const Bm25Params& params) {
    idf_ = idf;
    params_ = params;
  }
  /// Upper bound on this term's BM25 contribution within the current
  /// block: bm25_upper_bound(idf, block_max_tf). Requires valid().
  [[nodiscard]] double block_max_score();

 protected:
  double idf_ = 0;
  Bm25Params params_{};
};

/// Cursor over one term's blob in a mapped segment, steered by its skip
/// table rows. `pin` (optional) keeps the mapping alive — live segments
/// pass their shared_ptr, the batch index (whose lifetime the caller
/// guarantees) passes nullptr. `blob`/`entries` must stay valid as long as
/// the cursor lives.
std::unique_ptr<PostingsCursor> make_segment_cursor(
    const std::uint8_t* blob, std::size_t blob_bytes, const PostingBlockEntry* entries,
    std::size_t entry_count, std::shared_ptr<const void> pin);

/// Cursor over an already-decoded list (runs backend, segments without a
/// skip-table sidecar, cached lists). Blocks are synthesized every
/// kPostingsBlockSize docs; block maxima are computed on first use.
std::unique_ptr<PostingsCursor> make_decoded_cursor(
    std::shared_ptr<const QueryPostings> postings);

/// Chains per-segment cursors of one live snapshot into a single list.
/// Parts must be non-empty and cover pairwise-disjoint ascending doc-id
/// ranges (the snapshot's doc_base order guarantees this).
std::unique_ptr<PostingsCursor> make_concat_cursor(
    std::vector<std::unique_ptr<PostingsCursor>> parts);

/// One borrowed block of live-memtable postings (live/memtable.hpp):
/// parallel doc/tf arrays in the memtable arena, already clamped to the
/// publishing view's watermark. Declared here (not in live/) so the cursor
/// layer stays free of live-tier includes.
struct MemtableBlockRef {
  const std::uint32_t* docs = nullptr;
  const std::uint32_t* tfs = nullptr;
  std::uint32_t count = 0;     ///< visible postings in this block
  std::uint32_t last_doc = 0;  ///< docs[count - 1]
};

/// Cursor over a memtable term: one block per memtable chunk, maxima
/// scanned lazily like the decoded backend (the memtable has no skip
/// sidecar). `pin` keeps the arena the refs point into alive; `blocks`
/// must be non-empty with ascending disjoint doc ranges.
std::unique_ptr<PostingsCursor> make_memtable_cursor(
    std::vector<MemtableBlockRef> blocks, std::shared_ptr<const void> pin);

/// Decodes whatever the cursor has not consumed yet into a flat list —
/// the bridge from cursor-only backends to the decoded-list operators in
/// boolean_ops.hpp. Call on a fresh cursor to materialize the whole list.
QueryPostings materialize_cursor(PostingsCursor& cursor);

}  // namespace hetindex
