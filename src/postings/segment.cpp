#include "postings/segment.hpp"

#include <algorithm>
#include <cstring>

#include "codec/front_coding.hpp"
#include "io/env.hpp"
#include "postings/bloom.hpp"
#include "postings/query.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"

namespace hetindex {
namespace {

constexpr std::uint32_t kSegmentMagic = 0x47455348;        // "HSEG"
constexpr std::uint32_t kSegmentFooterMagic = 0x544F4F46;  // "FOOT"
constexpr std::uint32_t kSegmentVersion = 1;
constexpr std::size_t kHeaderBytes = 80;
constexpr std::size_t kFooterBytes = 16;
constexpr std::size_t kTableRowBytes = 24;

constexpr std::uint32_t kMaxTfMagic = 0x46544D48;  // "HMTF"
constexpr std::uint32_t kMaxTfVersion = 1;

constexpr std::uint32_t kBlockIndexMagic = 0x584D4248;  // "HBMX"
constexpr std::uint32_t kBlockIndexVersion = 1;
constexpr std::size_t kBlockEntryBytes = 24;

/// Removes a segment and its sidecars — the failure path of every writer
/// (a torn sidecar would be rejected by CRC, but leaving one next to a
/// removed segment just confuses the next open).
void remove_segment_outputs(const std::string& seg_path) {
  (void)io::env().remove_file(seg_path);
  (void)io::env().remove_file(max_tf_sidecar_path(seg_path));
  (void)io::env().remove_file(block_index_sidecar_path(seg_path));
  (void)io::env().remove_file(bloom_sidecar_path(seg_path));
}

}  // namespace

// ------------------------------------------------------------- maxtf sidecar

std::string max_tf_sidecar_path(const std::string& segment_path) {
  return segment_path + ".maxtf";
}

Status write_max_tf_sidecar(const std::string& segment_path,
                            const std::vector<std::uint32_t>& max_tfs) {
  std::vector<std::uint8_t> out;
  out.reserve(20 + 4 * max_tfs.size());
  ByteWriter w(out);
  w.u32(kMaxTfMagic);
  w.u32(kMaxTfVersion);
  w.u64(max_tfs.size());
  for (const std::uint32_t tf : max_tfs) w.u32(tf);
  w.u32(crc32(out.data(), out.size()));
  return io::durable_write_file(max_tf_sidecar_path(segment_path), out);
}

Expected<std::vector<std::uint32_t>> read_max_tf_sidecar(const std::string& segment_path,
                                                         std::uint64_t expected_terms) {
  const std::string path = max_tf_sidecar_path(segment_path);
  const auto corrupt = [&path](const char* what) {
    return Error{ErrorCode::kCorrupt, std::string(what) + ": " + path};
  };
  if (!file_exists(path)) {
    return Error{ErrorCode::kNotFound, "no max-tf sidecar: " + path};
  }
  const auto data = read_file(path);
  if (data.size() < 20) return corrupt("max-tf sidecar too small (truncated?)");
  if (crc32(data.data(), data.size() - 4) !=
      ByteReader(data.data() + (data.size() - 4), 4).u32()) {
    return corrupt("max-tf sidecar corruption (crc mismatch)");
  }
  ByteReader r(data.data(), data.size() - 4);
  if (r.u32() != kMaxTfMagic) return corrupt("not a max-tf sidecar");
  if (r.u32() != kMaxTfVersion) {
    return Error{ErrorCode::kUnsupported, "unsupported max-tf sidecar version: " + path};
  }
  const std::uint64_t count = r.u64();
  if (count != expected_terms || r.remaining() != count * 4) {
    return corrupt("max-tf sidecar term count mismatch");
  }
  std::vector<std::uint32_t> max_tfs(static_cast<std::size_t>(count));
  for (auto& tf : max_tfs) tf = r.u32();
  return max_tfs;
}

std::vector<std::uint32_t> compute_max_tfs(const SegmentReader& reader) {
  std::vector<std::uint32_t> max_tfs;
  max_tfs.reserve(static_cast<std::size_t>(reader.term_count()));
  std::vector<std::uint32_t> doc_ids, tfs;
  for (std::uint64_t ord = 0; ord < reader.term_count(); ++ord) {
    doc_ids.clear();
    tfs.clear();
    reader.decode(reader.meta(ord), doc_ids, tfs);
    std::uint32_t mx = 0;
    for (const std::uint32_t tf : tfs) mx = std::max(mx, tf);
    max_tfs.push_back(mx);
  }
  return max_tfs;
}

// ------------------------------------------------------------- .bmx sidecar

void BlockIndex::add_term(const std::vector<PostingBlockEntry>& entries) {
  HET_CHECK_MSG(!entries.empty(), "block index terms must have blocks");
  entries_.insert(entries_.end(), entries.begin(), entries.end());
  begin_.push_back(entries_.size());
}

std::pair<const PostingBlockEntry*, std::size_t> BlockIndex::blocks(
    std::uint64_t ordinal) const {
  HET_CHECK(ordinal < term_count());
  const std::size_t b = static_cast<std::size_t>(begin_[ordinal]);
  const std::size_t e = static_cast<std::size_t>(begin_[ordinal + 1]);
  return {entries_.data() + b, e - b};
}

std::uint32_t BlockIndex::term_max_tf(std::uint64_t ordinal) const {
  const auto [entries, count] = blocks(ordinal);
  std::uint32_t mx = 0;
  for (std::size_t i = 0; i < count; ++i) mx = std::max(mx, entries[i].max_tf);
  return mx;
}

std::string block_index_sidecar_path(const std::string& segment_path) {
  return segment_path + ".bmx";
}

Status write_block_index_sidecar(const std::string& segment_path,
                                 const BlockIndex& index) {
  std::vector<std::uint8_t> out;
  out.reserve(28 + 4 * index.term_count() + kBlockEntryBytes * index.total_blocks());
  ByteWriter w(out);
  w.u32(kBlockIndexMagic);
  w.u32(kBlockIndexVersion);
  w.u64(index.term_count());
  w.u64(index.total_blocks());
  for (std::uint64_t ord = 0; ord < index.term_count(); ++ord) {
    w.u32(static_cast<std::uint32_t>(index.blocks(ord).second));
  }
  for (std::uint64_t ord = 0; ord < index.term_count(); ++ord) {
    const auto [entries, count] = index.blocks(ord);
    for (std::size_t i = 0; i < count; ++i) {
      w.u64(entries[i].offset);
      w.u32(entries[i].bytes);
      w.u32(entries[i].last_doc);
      w.u32(entries[i].count);
      w.u32(entries[i].max_tf);
    }
  }
  w.u32(crc32(out.data(), out.size()));
  return io::durable_write_file(block_index_sidecar_path(segment_path), out);
}

Expected<BlockIndex> read_block_index_sidecar(const std::string& segment_path,
                                              std::uint64_t expected_terms) {
  const std::string path = block_index_sidecar_path(segment_path);
  const auto corrupt = [&path](const char* what) {
    return Error{ErrorCode::kCorrupt, std::string(what) + ": " + path};
  };
  if (!file_exists(path)) {
    return Error{ErrorCode::kNotFound, "no block-index sidecar: " + path};
  }
  const auto data = read_file(path);
  if (data.size() < 28) return corrupt("block-index sidecar too small (truncated?)");
  if (crc32(data.data(), data.size() - 4) !=
      ByteReader(data.data() + (data.size() - 4), 4).u32()) {
    return corrupt("block-index sidecar corruption (crc mismatch)");
  }
  ByteReader r(data.data(), data.size() - 4);
  if (r.u32() != kBlockIndexMagic) return corrupt("not a block-index sidecar");
  if (r.u32() != kBlockIndexVersion) {
    return Error{ErrorCode::kUnsupported,
                 "unsupported block-index sidecar version: " + path};
  }
  const std::uint64_t term_count = r.u64();
  const std::uint64_t total_blocks = r.u64();
  if (term_count != expected_terms) {
    return corrupt("block-index sidecar term count mismatch");
  }
  if (r.remaining() != term_count * 4 + total_blocks * kBlockEntryBytes) {
    return corrupt("block-index sidecar truncated");
  }
  std::vector<std::uint32_t> counts(static_cast<std::size_t>(term_count));
  std::uint64_t sum = 0;
  for (auto& c : counts) {
    c = r.u32();
    if (c == 0) return corrupt("block-index sidecar has a blockless term");
    sum += c;
  }
  if (sum != total_blocks) return corrupt("block-index sidecar block count mismatch");
  BlockIndex index;
  std::vector<PostingBlockEntry> term_entries;
  for (const std::uint32_t c : counts) {
    term_entries.clear();
    std::uint64_t next_offset = 0;
    std::uint32_t prev_last = 0;
    for (std::uint32_t i = 0; i < c; ++i) {
      PostingBlockEntry e;
      e.offset = r.u64();
      e.bytes = r.u32();
      e.last_doc = r.u32();
      e.count = r.u32();
      e.max_tf = r.u32();
      // Blocks tile the blob contiguously and ascend by doc id; anything
      // else cannot have come from the writer.
      if (e.offset != next_offset || e.bytes == 0 || e.count == 0 || e.max_tf == 0 ||
          (i > 0 && e.last_doc <= prev_last)) {
        return corrupt("block-index sidecar rows inconsistent");
      }
      next_offset = e.offset + e.bytes;
      prev_last = e.last_doc;
      term_entries.push_back(e);
    }
    index.add_term(term_entries);
  }
  return index;
}

BlockIndex compute_block_index(const SegmentReader& reader) {
  BlockIndex index;
  std::vector<PostingBlockEntry> term_entries;
  std::vector<std::uint32_t> doc_ids, tfs;
  for (std::uint64_t ord = 0; ord < reader.term_count(); ++ord) {
    const auto m = reader.meta(ord);
    const auto [blob, bytes] = reader.raw_blob(m);
    term_entries.clear();
    std::size_t pos = 0;
    while (pos < bytes) {
      doc_ids.clear();
      tfs.clear();
      const std::size_t consumed = decode_postings(blob, bytes, doc_ids, tfs, nullptr, pos);
      if (doc_ids.empty()) {  // empty sub-list: header only, no block row
        pos += consumed;
        continue;
      }
      PostingBlockEntry e;
      e.offset = pos;
      e.bytes = static_cast<std::uint32_t>(consumed);
      e.last_doc = doc_ids.back();
      e.count = static_cast<std::uint32_t>(doc_ids.size());
      e.max_tf = *std::max_element(tfs.begin(), tfs.end());
      term_entries.push_back(e);
      pos += consumed;
    }
    index.add_term(term_entries);
  }
  return index;
}

Status validate_block_index(const SegmentReader& reader, const BlockIndex& index) {
  const auto corrupt = [&reader](const char* what) {
    return Error{ErrorCode::kCorrupt,
                 std::string(what) + ": " + block_index_sidecar_path(reader.path())};
  };
  if (index.term_count() != reader.term_count()) {
    return corrupt("block-index sidecar term count mismatch");
  }
  for (std::uint64_t ord = 0; ord < reader.term_count(); ++ord) {
    const auto m = reader.meta(ord);
    const auto [entries, count] = index.blocks(ord);
    std::uint64_t bytes = 0, postings = 0;
    for (std::size_t i = 0; i < count; ++i) {
      bytes += entries[i].bytes;
      postings += entries[i].count;
    }
    if (bytes != m.bytes || postings != m.count ||
        entries[count - 1].last_doc != m.max_doc) {
      return corrupt("block-index sidecar disagrees with segment table");
    }
  }
  return Unit{};
}

SegmentWriter::SegmentWriter(std::string path, PostingCodec codec,
                             std::uint32_t terms_per_block)
    : path_(std::move(path)), codec_(codec), terms_per_block_(terms_per_block) {
  HET_CHECK_MSG(terms_per_block_ >= 1, "segment block size must be >= 1");
}

void SegmentWriter::add_term(std::string_view term, const std::uint8_t* blob,
                             std::size_t blob_bytes, std::uint32_t count,
                             std::uint32_t min_doc, std::uint32_t max_doc) {
  HET_CHECK(!finalized_);
  HET_CHECK_MSG(term_count_ == 0 || prev_term_ < term,
                "segment terms must be sorted and unique");
  HET_CHECK_MSG(count > 0 && blob_bytes > 0, "segment terms must have postings");
  HET_CHECK(min_doc <= max_doc && blob_bytes <= 0xFFFFFFFFull);

  ByteWriter tw(table_);
  tw.u64(blobs_.size());
  tw.u32(static_cast<std::uint32_t>(blob_bytes));
  tw.u32(count);
  tw.u32(min_doc);
  tw.u32(max_doc);
  blobs_.insert(blobs_.end(), blob, blob + blob_bytes);

  ByteWriter dw(dict_);
  if (block_fill_ == 0) {
    // Block leader: stored verbatim so the reader's block index can point a
    // string_view straight at the mapping.
    dw.u32(static_cast<std::uint32_t>(term.size()));
    dw.bytes(term.data(), term.size());
  } else {
    const std::size_t shared = common_prefix_length(prev_term_, term);
    vbyte_encode(shared, dict_);
    vbyte_encode(term.size() - shared, dict_);
    dw.bytes(term.data() + shared, term.size() - shared);
  }
  block_fill_ = (block_fill_ + 1) % terms_per_block_;

  prev_term_.assign(term);
  min_doc_ = std::min(min_doc_, min_doc);
  max_doc_ = std::max(max_doc_, max_doc);
  ++term_count_;
}

Expected<std::uint64_t> SegmentWriter::finalize() {
  HET_CHECK(!finalized_);
  finalized_ = true;

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + dict_.size() + table_.size() + blobs_.size() + kFooterBytes);
  ByteWriter w(out);
  w.u32(kSegmentMagic);
  w.u32(kSegmentVersion);
  w.u8(static_cast<std::uint8_t>(codec_));
  w.u8(0);   // reserved
  w.u16(0);  // reserved
  w.u32(terms_per_block_);
  w.u64(term_count_);
  w.u32(term_count_ == 0 ? 0 : min_doc_);
  w.u32(term_count_ == 0 ? 0 : max_doc_);
  const std::uint64_t dict_off = kHeaderBytes;
  const std::uint64_t table_off = dict_off + dict_.size();
  const std::uint64_t blob_off = table_off + table_.size();
  w.u64(dict_off);
  w.u64(dict_.size());
  w.u64(table_off);
  w.u64(table_.size());
  w.u64(blob_off);
  w.u64(blobs_.size());
  HET_CHECK(out.size() == kHeaderBytes);
  w.bytes(dict_.data(), dict_.size());
  w.bytes(table_.data(), table_.size());
  w.bytes(blobs_.data(), blobs_.size());

  const std::uint64_t total = out.size() + kFooterBytes;
  const std::uint32_t crc = crc32(out.data(), out.size());
  w.u64(total);
  w.u32(crc);
  w.u32(kSegmentFooterMagic);
  // Durable before anything references it: a manifest must never commit a
  // segment whose bytes could still be lost to a crash.
  auto written = io::durable_write_file(path_, out);
  if (!written.has_value()) return written.error();
  return total;
}

SegmentReader SegmentReader::open(const std::string& path) {
  auto r = try_open(path);
  if (!r.has_value()) {
    check_failed("SegmentReader::open", __FILE__, __LINE__, r.error().message.c_str());
  }
  return std::move(r).value();
}

Expected<SegmentReader> SegmentReader::try_open(const std::string& path) {
  const auto corrupt = [&path](const char* what) {
    return Error{ErrorCode::kCorrupt, std::string(what) + ": " + path};
  };
  if (!file_exists(path)) {
    return Error{ErrorCode::kNotFound, "cannot open segment file: " + path};
  }
  SegmentReader r;
  auto file = MmapFile::try_open(path);
  if (!file.has_value()) return file.error();
  r.file_ = std::move(file).value();
  const std::uint8_t* data = r.file_.data();
  const std::size_t n = r.file_.size();
  if (n < kHeaderBytes + kFooterBytes) return corrupt("segment file too small (truncated?)");

  // Footer first: it guards everything else, including the header.
  ByteReader fr(data + (n - kFooterBytes), kFooterBytes);
  const std::uint64_t total = fr.u64();
  const std::uint32_t crc = fr.u32();
  if (fr.u32() != kSegmentFooterMagic) return corrupt("bad segment footer magic");
  if (total != n) return corrupt("segment file truncated (size mismatch with footer)");
  if (crc32(data, n - kFooterBytes) != crc) {
    return corrupt("segment file corruption (crc mismatch)");
  }

  ByteReader h(data, n - kFooterBytes);
  if (h.u32() != kSegmentMagic) return corrupt("not a hetindex segment file");
  if (h.u32() != kSegmentVersion) {
    return Error{ErrorCode::kUnsupported, "unsupported segment version: " + path};
  }
  const std::uint8_t codec_byte = h.u8();
  if (codec_byte > static_cast<std::uint8_t>(PostingCodec::kBitPacked)) {
    return Error{ErrorCode::kUnsupported, "unknown segment posting codec: " + path};
  }
  r.codec_ = static_cast<PostingCodec>(codec_byte);
  h.skip(3);  // reserved
  r.terms_per_block_ = h.u32();
  if (r.terms_per_block_ < 1) return corrupt("segment block size must be >= 1");
  r.term_count_ = h.u64();
  r.min_doc_ = h.u32();
  r.max_doc_ = h.u32();
  r.dict_off_ = h.u64();
  r.dict_bytes_ = h.u64();
  r.table_off_ = h.u64();
  r.table_bytes_ = h.u64();
  r.blob_off_ = h.u64();
  r.blob_bytes_ = h.u64();
  const std::uint64_t payload_end = n - kFooterBytes;
  if (!(r.dict_off_ == kHeaderBytes && r.table_off_ == r.dict_off_ + r.dict_bytes_ &&
        r.blob_off_ == r.table_off_ + r.table_bytes_ &&
        r.blob_off_ + r.blob_bytes_ == payload_end)) {
    return corrupt("segment section out of bounds");
  }
  if (r.table_bytes_ != r.term_count_ * kTableRowBytes) {
    return corrupt("segment section out of bounds");
  }

  // One pass over the dictionary builds the sparse block index; term bytes
  // themselves stay in the mapping.
  const std::uint8_t* dict = r.dict_data();
  std::size_t pos = 0;
  r.blocks_.reserve(static_cast<std::size_t>(
      (r.term_count_ + r.terms_per_block_ - 1) / r.terms_per_block_));
  // Truncated coded terms here are a structural defect of the file, not a
  // programming error — report kCorrupt so TermCursor and find() never walk
  // past the section (they reuse the offsets validated in this pass).
  for (std::uint64_t base = 0; base < r.term_count_; base += r.terms_per_block_) {
    if (pos + 4 > r.dict_bytes_) return corrupt("segment dictionary truncated");
    std::uint32_t first_len = 0;
    std::memcpy(&first_len, dict + pos, 4);
    pos += 4;
    if (pos + first_len > r.dict_bytes_) return corrupt("segment dictionary truncated");
    Block b;
    b.first = std::string_view(reinterpret_cast<const char*>(dict + pos), first_len);
    pos += first_len;
    b.coded_pos = pos;
    b.base = base;
    const std::uint64_t in_block = std::min<std::uint64_t>(r.terms_per_block_,
                                                           r.term_count_ - base);
    for (std::uint64_t i = 1; i < in_block; ++i) {
      (void)vbyte_decode(dict, r.dict_bytes_, pos);  // shared prefix length
      const std::uint64_t suffix = vbyte_decode(dict, r.dict_bytes_, pos);
      if (pos + suffix > r.dict_bytes_) return corrupt("segment dictionary truncated");
      pos += suffix;
    }
    r.blocks_.push_back(b);
  }
  if (pos != r.dict_bytes_) return corrupt("segment dictionary truncated");
  return r;
}

void SegmentReader::next_term(std::string& cur, std::size_t& pos) const {
  const std::uint8_t* dict = dict_data();
  const std::uint64_t shared = vbyte_decode(dict, dict_bytes_, pos);
  const std::uint64_t suffix = vbyte_decode(dict, dict_bytes_, pos);
  HET_CHECK(shared <= cur.size() && pos + suffix <= dict_bytes_);
  cur.resize(shared);
  cur.append(reinterpret_cast<const char*>(dict + pos), suffix);
  pos += suffix;
}

std::optional<std::uint64_t> SegmentReader::find(std::string_view term) const {
  // Last block whose leader is <= term, then a bounded front-coded scan.
  auto it = std::upper_bound(
      blocks_.begin(), blocks_.end(), term,
      [](std::string_view t, const Block& b) { return t < b.first; });
  if (it == blocks_.begin()) return std::nullopt;
  --it;
  if (it->first == term) return it->base;
  const std::uint64_t in_block = std::min<std::uint64_t>(terms_per_block_,
                                                         term_count_ - it->base);
  std::string cur(it->first);
  std::size_t pos = it->coded_pos;
  for (std::uint64_t i = 1; i < in_block; ++i) {
    next_term(cur, pos);
    if (cur == term) return it->base + i;
    if (cur > term) return std::nullopt;
  }
  return std::nullopt;
}

SegmentReader::PostingsMeta SegmentReader::meta(std::uint64_t ordinal) const {
  HET_CHECK(ordinal < term_count_);
  ByteReader t(file_.data() + table_off_ + ordinal * kTableRowBytes, kTableRowBytes);
  PostingsMeta m;
  m.offset = t.u64();
  m.bytes = t.u32();
  m.count = t.u32();
  m.min_doc = t.u32();
  m.max_doc = t.u32();
  return m;
}

void SegmentReader::decode(const PostingsMeta& m, std::vector<std::uint32_t>& doc_ids,
                           std::vector<std::uint32_t>& tfs,
                           std::vector<std::uint32_t>* positions) const {
  HET_CHECK_MSG(m.offset + m.bytes <= blob_bytes_, "segment blob out of bounds");
  const std::uint8_t* blob = file_.data() + blob_off_ + m.offset;
  // A compacted blob is one or more back-to-back encoded blocks (each a
  // self-describing sub-list starting with an absolute doc id), so they
  // decode in sequence straight out of the mapping.
  std::size_t pos = 0;
  while (pos < m.bytes) pos += decode_postings(blob, m.bytes, doc_ids, tfs, positions, pos);
}

void SegmentReader::scan_from_block(
    std::size_t block_idx,
    const std::function<bool(std::string_view, std::uint64_t)>& fn) const {
  std::string cur;
  for (std::size_t b = block_idx; b < blocks_.size(); ++b) {
    const Block& blk = blocks_[b];
    if (!fn(blk.first, blk.base)) return;
    const std::uint64_t in_block = std::min<std::uint64_t>(terms_per_block_,
                                                           term_count_ - blk.base);
    cur.assign(blk.first);
    std::size_t pos = blk.coded_pos;
    for (std::uint64_t i = 1; i < in_block; ++i) {
      next_term(cur, pos);
      if (!fn(cur, blk.base + i)) return;
    }
  }
}

std::vector<std::string> SegmentReader::terms_with_prefix(std::string_view prefix) const {
  std::vector<std::string> out;
  auto it = std::upper_bound(
      blocks_.begin(), blocks_.end(), prefix,
      [](std::string_view p, const Block& b) { return p < b.first; });
  // The match range can start inside the preceding block (its leader sorts
  // before the prefix but later members may match).
  const std::size_t start = it == blocks_.begin()
                                ? 0
                                : static_cast<std::size_t>(it - blocks_.begin()) - 1;
  scan_from_block(start, [&](std::string_view term, std::uint64_t) {
    const bool matches =
        term.size() >= prefix.size() && term.substr(0, prefix.size()) == prefix;
    if (matches) {
      out.emplace_back(term);
    } else if (term > prefix) {
      return false;  // past the match range in the sorted order
    }
    return true;
  });
  return out;
}

void SegmentReader::for_each_term(
    const std::function<bool(std::string_view, std::uint64_t)>& fn) const {
  scan_from_block(0, fn);
}

std::pair<const std::uint8_t*, std::size_t> SegmentReader::raw_blob(
    const PostingsMeta& m) const {
  HET_CHECK_MSG(m.offset + m.bytes <= blob_bytes_, "segment blob out of bounds");
  return {file_.data() + blob_off_ + m.offset, m.bytes};
}

SegmentReader::TermCursor::TermCursor(const SegmentReader& reader) : reader_(&reader) {
  if (valid()) {
    term_.assign(reader_->blocks_.front().first);
    pos_ = reader_->blocks_.front().coded_pos;
  }
}

void SegmentReader::TermCursor::next() {
  HET_CHECK(valid());
  ++ordinal_;
  if (!valid()) return;
  if (ordinal_ % reader_->terms_per_block_ == 0) {
    // Block boundary: the leader is stored verbatim, not front-coded.
    const Block& blk = reader_->blocks_[ordinal_ / reader_->terms_per_block_];
    term_.assign(blk.first);
    pos_ = blk.coded_pos;
  } else {
    reader_->next_term(term_, pos_);
  }
}

Expected<SegmentMergeStats> merge_segments(
    const std::vector<const SegmentReader*>& inputs, const std::string& out_path) {
  HET_CHECK_MSG(!inputs.empty(), "segment merge requires at least one input");
  const PostingCodec codec = inputs.front()->codec();
  for (const auto* in : inputs) {
    HET_CHECK_MSG(in->codec() == codec, "segment merge requires a uniform posting codec");
  }

  SegmentMergeStats stats;
  stats.segments = inputs.size();
  SegmentWriter writer(out_path, codec);

  // Score-bound sidecars propagate without decoding: the max_tf of a
  // concatenated list is the max of the inputs' per-term maxima, and the
  // merged skip table is the inputs' block rows with a byte-offset fix-up.
  // Only written when every input carries one — a partial merge would
  // produce bounds that silently under-cover the uncovered input. A missing
  // sidecar degrades; a corrupt or unreadable one is a structured refusal
  // (merging around it would launder the corruption into the output).
  std::vector<std::vector<std::uint32_t>> input_max_tfs;
  bool all_have_max_tfs = true;
  for (const auto* in : inputs) {
    auto side = read_max_tf_sidecar(in->path(), in->term_count());
    if (!side) {
      if (side.error().code != ErrorCode::kNotFound) return side.error();
      all_have_max_tfs = false;
      break;
    }
    input_max_tfs.push_back(std::move(side).value());
  }
  std::vector<std::uint32_t> out_max_tfs;

  std::vector<BlockIndex> input_bmx;
  bool all_have_bmx = true;
  for (const auto* in : inputs) {
    auto side = read_block_index_sidecar(in->path(), in->term_count());
    if (!side) {
      if (side.error().code != ErrorCode::kNotFound) return side.error();
      all_have_bmx = false;
      break;
    }
    input_bmx.push_back(std::move(side).value());
  }
  BlockIndex out_bmx;

  // K-way cursor merge. K is the merge factor (a handful), so a linear
  // min-scan per output term beats the heap's constant factor.
  std::vector<SegmentReader::TermCursor> cursors;
  cursors.reserve(inputs.size());
  for (const auto* in : inputs) cursors.emplace_back(*in);

  std::vector<std::uint8_t> blob;
  while (true) {
    const std::string* min_term = nullptr;
    for (const auto& c : cursors) {
      if (c.valid() && (min_term == nullptr || c.term() < *min_term)) {
        min_term = &c.term();
      }
    }
    if (min_term == nullptr) break;
    const std::string term = *min_term;  // cursors advance below; copy first

    // Equal terms concatenate byte-wise in input order — every encoded
    // sub-list starts with an absolute doc id (§III.F), so the combined
    // blob decodes as one list provided doc ranges ascend across inputs.
    blob.clear();
    std::vector<PostingBlockEntry> term_blocks;
    std::uint32_t count = 0, mn = 0, mx = 0, max_tf = 0;
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      auto& c = cursors[i];
      if (!c.valid() || c.term() != term) continue;
      const auto m = c.meta();
      HET_CHECK_MSG(count == 0 || m.min_doc > mx,
                    "doc ids must be globally increasing across segments");
      if (all_have_bmx) {
        // Skip-table fix-up: the input's block rows are reused verbatim,
        // shifted by the bytes this term's blob already holds.
        const auto [rows, n_rows] = input_bmx[i].blocks(c.ordinal());
        for (std::size_t k = 0; k < n_rows; ++k) {
          PostingBlockEntry row = rows[k];
          row.offset += blob.size();
          term_blocks.push_back(row);
        }
      }
      const auto [bytes, len] = inputs[i]->raw_blob(m);
      blob.insert(blob.end(), bytes, bytes + len);
      stats.input_bytes += len;
      if (count == 0) mn = m.min_doc;
      mx = m.max_doc;
      count += m.count;
      if (all_have_max_tfs) {
        max_tf = std::max(max_tf, input_max_tfs[i][static_cast<std::size_t>(c.ordinal())]);
      }
      c.next();
    }
    writer.add_term(term, blob.data(), blob.size(), count, mn, mx);
    if (all_have_max_tfs) out_max_tfs.push_back(max_tf);
    if (all_have_bmx) out_bmx.add_term(term_blocks);
    ++stats.terms;
    stats.postings += count;
  }
  auto output_bytes = writer.finalize();
  if (!output_bytes.has_value()) {
    remove_segment_outputs(out_path);
    return output_bytes.error();
  }
  stats.output_bytes = output_bytes.value();
  if (all_have_max_tfs) {
    auto side = write_max_tf_sidecar(out_path, out_max_tfs);
    if (!side.has_value()) {
      remove_segment_outputs(out_path);
      return side.error();
    }
  }
  if (all_have_bmx) {
    auto side = write_block_index_sidecar(out_path, out_bmx);
    if (!side.has_value()) {
      remove_segment_outputs(out_path);
      return side.error();
    }
  }
  // Bloom filters do NOT propagate through a byte-concatenation merge:
  // each input's filters are sized to its own lists, and OR-ing unequal
  // filters is meaningless. The merged segment serves without one
  // (degrade: no rejection) until a rewrite merge rebuilds it; make sure
  // no stale sidecar from a recycled path lingers.
  (void)io::env().remove_file(bloom_sidecar_path(out_path));
  return stats;
}

Expected<SegmentBuildStats> build_segment_from_runs(
    const std::string& dir, const std::vector<DictionaryEntry>& entries,
    const std::vector<IndexDirectoryEntry>& directory) {
  SegmentBuildStats stats;
  std::vector<RunFile> runs;
  runs.reserve(directory.size());
  for (const auto& e : directory) runs.push_back(RunFile::open(dir + "/" + e.file));
  std::sort(runs.begin(), runs.end(),
            [](const RunFile& a, const RunFile& b) { return a.run_id() < b.run_id(); });
  stats.runs = runs.size();
  const PostingCodec codec = runs.empty() ? PostingCodec::kVByte : runs.front().codec();
  for (const auto& run : runs) {
    HET_CHECK_MSG(run.codec() == codec, "segment build requires a uniform posting codec");
  }
  HET_CHECK_MSG(std::is_sorted(entries.begin(), entries.end(),
                               [](const DictionaryEntry& a, const DictionaryEntry& b) {
                                 return a.term < b.term;
                               }),
                "segment build requires a sorted dictionary");

  // Same byte-level fold as merge_runs, but driven by the sorted dictionary
  // so terms stream into the writer in final order: per term, concatenate
  // its partial blobs in ascending run order (doc order, checked from the
  // runs' min/max metadata) — no decode/re-encode.
  SegmentWriter writer(IndexLayout::segment_path(dir), codec);
  std::vector<std::uint8_t> blob;
  for (const auto& de : entries) {
    const PostingKey key{de.shard, de.handle};
    blob.clear();
    std::uint32_t count = 0, mn = 0, mx = 0;
    for (const auto& run : runs) {
      const RunTableEntry* e = run.entry(key);
      if (e == nullptr) continue;
      HET_CHECK_MSG(count == 0 || e->min_doc > mx,
                    "doc ids must be globally increasing across runs");
      const auto part = run.raw_blob(*e);
      blob.insert(blob.end(), part.begin(), part.end());
      stats.input_bytes += e->bytes;
      if (count == 0) mn = e->min_doc;
      mx = e->max_doc;
      count += e->count;
    }
    if (count == 0) continue;  // dictionary term with no flushed postings
    writer.add_term(de.term, blob.data(), blob.size(), count, mn, mx);
    ++stats.terms;
    stats.postings += count;
  }
  const std::string seg_path = IndexLayout::segment_path(dir);
  auto output_bytes = writer.finalize();
  if (!output_bytes.has_value()) {
    remove_segment_outputs(seg_path);
    return output_bytes.error();
  }
  stats.output_bytes = output_bytes.value();

  // One decode pass over the fresh segment derives both sidecars: the
  // skip table (block rows recovered from the sub-list boundaries) and the
  // score bounds (per-term max over the block maxima). This is the only
  // place either is ever computed from postings — merges and live flushes
  // propagate or emit them without touching blobs.
  auto reader = SegmentReader::try_open(seg_path);
  if (!reader.has_value()) {
    remove_segment_outputs(seg_path);
    return reader.error();
  }
  const BlockIndex block_index = compute_block_index(reader.value());
  std::vector<std::uint32_t> max_tfs;
  max_tfs.reserve(static_cast<std::size_t>(block_index.term_count()));
  for (std::uint64_t ord = 0; ord < block_index.term_count(); ++ord) {
    max_tfs.push_back(block_index.term_max_tf(ord));
  }
  auto side = write_max_tf_sidecar(seg_path, max_tfs);
  if (!side.has_value()) {
    remove_segment_outputs(seg_path);
    return side.error();
  }
  auto bmx = write_block_index_sidecar(seg_path, block_index);
  if (!bmx.has_value()) {
    remove_segment_outputs(seg_path);
    return bmx.error();
  }
  // Same decode pass (conceptually) feeds the Bloom sidecar: conjunctive
  // rejection filters over each term's absolute doc ids.
  auto blm = write_bloom_sidecar(seg_path, compute_blooms(reader.value()));
  if (!blm.has_value()) {
    remove_segment_outputs(seg_path);
    return blm.error();
  }
  return stats;
}

Expected<SegmentBuildStats> compact_index(const std::string& dir) {
  const auto entries = dictionary_read(IndexLayout::dictionary_path(dir));
  const auto directory = index_directory_read(IndexLayout::directory_path(dir));
  return build_segment_from_runs(dir, entries, directory);
}

}  // namespace hetindex
