#include "postings/bloom.hpp"

#include <algorithm>

#include "io/env.hpp"
#include "postings/segment.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"

namespace hetindex {
namespace {

constexpr std::uint32_t kBloomMagic = 0x4D4C4248;  // "HBLM"
constexpr std::uint32_t kBloomVersion = 1;
constexpr std::size_t kBloomHeaderBytes = 32;  // magic,version,bpe,k,terms,words

/// splitmix64 — a cheap, well-distributed 64-bit mix; the two halves feed
/// classic double hashing (probe i tests bit h1 + i·h2).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t words_for_bits(std::uint64_t bits) { return (bits + 63) / 64; }

}  // namespace

void BloomSidecar::add_term(const std::uint32_t* doc_ids, std::size_t count) {
  HET_CHECK_MSG(options_.bits_per_element > 0 && options_.hashes > 0,
                "bloom options must be positive");
  // Round up to whole words (at least one): probes always have bits to
  // land on and the sidecar stores no partial words.
  const std::uint64_t bits =
      64 * words_for_bits(std::max<std::uint64_t>(
               1, static_cast<std::uint64_t>(count) * options_.bits_per_element));
  const std::uint64_t begin = word_begin_.back();
  words_.resize(static_cast<std::size_t>(begin + words_for_bits(bits)), 0);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t h = mix64(doc_ids[i]);
    const std::uint64_t h1 = h;
    const std::uint64_t h2 = mix64(h) | 1;  // odd stride: probes cover all bits
    for (std::uint32_t probe = 0; probe < options_.hashes; ++probe) {
      const std::uint64_t bit = (h1 + probe * h2) % bits;
      words_[static_cast<std::size_t>(begin + bit / 64)] |= 1ull << (bit % 64);
    }
  }
  bits_.push_back(bits);
  word_begin_.push_back(words_.size());
}

bool BloomSidecar::may_contain(std::uint64_t ordinal, std::uint32_t doc) const {
  HET_CHECK(ordinal < term_count());
  const std::uint64_t bits = bits_[static_cast<std::size_t>(ordinal)];
  const std::uint64_t begin = word_begin_[static_cast<std::size_t>(ordinal)];
  const std::uint64_t h = mix64(doc);
  const std::uint64_t h1 = h;
  const std::uint64_t h2 = mix64(h) | 1;
  for (std::uint32_t probe = 0; probe < options_.hashes; ++probe) {
    const std::uint64_t bit = (h1 + probe * h2) % bits;
    if ((words_[static_cast<std::size_t>(begin + bit / 64)] & (1ull << (bit % 64))) == 0) {
      return false;
    }
  }
  return true;
}

std::string bloom_sidecar_path(const std::string& segment_path) {
  return segment_path + ".blm";
}

Status write_bloom_sidecar(const std::string& segment_path, const BloomSidecar& sidecar) {
  std::vector<std::uint8_t> out;
  out.reserve(kBloomHeaderBytes + 8 * (sidecar.bits_.size() + sidecar.words_.size()) + 4);
  ByteWriter w(out);
  w.u32(kBloomMagic);
  w.u32(kBloomVersion);
  w.u32(sidecar.options_.bits_per_element);
  w.u32(sidecar.options_.hashes);
  w.u64(sidecar.term_count());
  w.u64(sidecar.words_.size());
  for (const std::uint64_t bits : sidecar.bits_) w.u64(bits);
  for (const std::uint64_t word : sidecar.words_) w.u64(word);
  w.u32(crc32(out.data(), out.size()));
  return io::durable_write_file(bloom_sidecar_path(segment_path), out);
}

Expected<BloomSidecar> read_bloom_sidecar(const std::string& segment_path,
                                          std::uint64_t expected_terms) {
  const std::string path = bloom_sidecar_path(segment_path);
  const auto corrupt = [&path](const char* what) {
    return Error{ErrorCode::kCorrupt, std::string(what) + ": " + path};
  };
  if (!file_exists(path)) {
    return Error{ErrorCode::kNotFound, "no bloom sidecar: " + path};
  }
  const auto data = read_file(path);
  if (data.size() < kBloomHeaderBytes + 4) {
    return corrupt("bloom sidecar too small (truncated?)");
  }
  if (crc32(data.data(), data.size() - 4) !=
      ByteReader(data.data() + (data.size() - 4), 4).u32()) {
    return corrupt("bloom sidecar corruption (crc mismatch)");
  }
  ByteReader r(data.data(), data.size() - 4);
  if (r.u32() != kBloomMagic) return corrupt("not a bloom sidecar");
  if (r.u32() != kBloomVersion) {
    return Error{ErrorCode::kUnsupported, "unsupported bloom sidecar version: " + path};
  }
  BloomSidecar sidecar;
  sidecar.options_.bits_per_element = r.u32();
  sidecar.options_.hashes = r.u32();
  if (sidecar.options_.bits_per_element == 0 || sidecar.options_.hashes == 0 ||
      sidecar.options_.hashes > 64) {
    return corrupt("bloom sidecar has nonsense options");
  }
  const std::uint64_t term_count = r.u64();
  const std::uint64_t total_words = r.u64();
  if (term_count != expected_terms) return corrupt("bloom sidecar term count mismatch");
  if (r.remaining() != (term_count + total_words) * 8) {
    return corrupt("bloom sidecar truncated");
  }
  sidecar.bits_.resize(static_cast<std::size_t>(term_count));
  std::uint64_t words_sum = 0;
  for (auto& bits : sidecar.bits_) {
    bits = r.u64();
    if (bits == 0 || bits % 64 != 0) return corrupt("bloom sidecar has a bad filter size");
    words_sum += words_for_bits(bits);
    sidecar.word_begin_.push_back(words_sum);
  }
  if (words_sum != total_words) return corrupt("bloom sidecar word count mismatch");
  sidecar.words_.resize(static_cast<std::size_t>(total_words));
  for (auto& word : sidecar.words_) word = r.u64();
  return sidecar;
}

BloomSidecar compute_blooms(const SegmentReader& reader, BloomOptions options) {
  BloomSidecar sidecar(options);
  std::vector<std::uint32_t> doc_ids, tfs;
  for (std::uint64_t ord = 0; ord < reader.term_count(); ++ord) {
    doc_ids.clear();
    tfs.clear();
    reader.decode(reader.meta(ord), doc_ids, tfs);
    sidecar.add_term(doc_ids.data(), doc_ids.size());
  }
  return sidecar;
}

}  // namespace hetindex
