#pragma once
/// \file segment_set.hpp
/// Snapshot-isolated multi-segment read path of the live indexing layer
/// (docs/LIVE_INDEXING.md). The committed segment set is published as an
/// immutable LiveSnapshot behind one atomic shared_ptr: a reader grabs the
/// pointer once and then works against frozen state with no further
/// synchronization — flushes and compactions swap in a new snapshot but
/// never touch a published one. A segment replaced by compaction is marked
/// obsolete and its files are unlinked when the last snapshot holding it
/// drops — readers mid-query keep a valid mapping for as long as they hold
/// the snapshot.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "live/manifest.hpp"
#include "live/memtable.hpp"
#include "live/tombstones.hpp"
#include "postings/doc_map.hpp"
#include "postings/query.hpp"
#include "postings/segment.hpp"
#include "util/error.hpp"

namespace hetindex {

class PostingsCursor;  // postings/cursor.hpp

/// One committed segment plus its doc map. Shared by every snapshot that
/// includes it; destruction unlinks the files once compaction has marked
/// it obsolete.
class LiveSegment {
 public:
  /// Opens seg-<id>.seg (+ sibling doc map when present) under `dir`.
  static Expected<std::shared_ptr<LiveSegment>> open(const std::string& dir,
                                                     std::uint64_t segment_id,
                                                     std::uint32_t doc_base,
                                                     std::uint32_t doc_count);
  ~LiveSegment();

  LiveSegment(const LiveSegment&) = delete;
  LiveSegment& operator=(const LiveSegment&) = delete;

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] std::uint32_t doc_base() const { return doc_base_; }
  [[nodiscard]] std::uint32_t doc_count() const { return doc_count_; }
  [[nodiscard]] const SegmentReader& reader() const { return reader_; }
  [[nodiscard]] const DocMap* doc_map() const {
    return doc_map_ ? &*doc_map_ : nullptr;
  }
  /// Per-term max term frequency from the segment's score-bound sidecar
  /// (written by flush, propagated by compaction); nullptr when the segment
  /// predates the sidecar format.
  [[nodiscard]] const std::vector<std::uint32_t>* max_tfs() const {
    return max_tfs_.empty() ? nullptr : &max_tfs_;
  }
  /// The segment's block skip table (.bmx sidecar, validated at open);
  /// nullptr when the segment predates the sidecar format.
  [[nodiscard]] const BlockIndex* block_index() const {
    return block_index_ ? &*block_index_ : nullptr;
  }
  /// The segment's Bloom rejection filters (.blm sidecar); nullptr when
  /// the segment predates the format or a concat merge dropped it (the
  /// caller degrades to no rejection).
  [[nodiscard]] const BloomSidecar* blooms() const {
    return blooms_ ? &*blooms_ : nullptr;
  }

  /// Marks the backing files for deletion when the last reference drops
  /// (called by compaction after the replacement commit).
  void mark_obsolete() { obsolete_.store(true, std::memory_order_release); }

 private:
  LiveSegment(std::uint64_t id, std::uint32_t doc_base, std::uint32_t doc_count,
              SegmentReader reader, std::optional<DocMap> doc_map,
              std::string seg_path, std::string map_path);

  std::uint64_t id_;
  std::uint32_t doc_base_;
  std::uint32_t doc_count_;
  SegmentReader reader_;
  std::optional<DocMap> doc_map_;
  std::vector<std::uint32_t> max_tfs_;     // by term ordinal; empty = no sidecar
  std::optional<BlockIndex> block_index_;  // skip tables; nullopt = no sidecar
  std::optional<BloomSidecar> blooms_;     // rejection filters; nullopt = no sidecar
  std::string seg_path_;
  std::string map_path_;
  std::atomic<bool> obsolete_{false};
};

/// An immutable view of the live index: the committed segment set (ordered
/// by doc_base), plus the searchable memtable view holding documents not
/// yet flushed, plus the tombstone set naming deleted doc ids. Safe to
/// share across threads without locks; all queries are const.
///
/// Tombstones are a *search-layer* filter: lookup()/open_cursor() stay raw
/// (unfiltered) so a term's document frequency is one well-defined number
/// regardless of execution path — the Searcher applies the filter at
/// candidate generation. doc_count()/average_doc_tokens()/locate() are the
/// exceptions: they describe the live collection, so they exclude deleted
/// docs (collection stats must match what ranking can return).
class LiveSnapshot {
 public:
  explicit LiveSnapshot(std::vector<std::shared_ptr<LiveSegment>> segments,
                        std::shared_ptr<const MemtableView> memtable = nullptr,
                        std::shared_ptr<const TombstoneSet> tombstones = nullptr);

  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] const std::vector<std::shared_ptr<LiveSegment>>& segments() const {
    return segments_;
  }
  /// The unflushed in-memory documents; nullptr when the memtable was
  /// empty at publish time (or the snapshot came from LiveIndex::open,
  /// which only ever sees committed state).
  [[nodiscard]] const MemtableView* memtable() const { return memtable_.get(); }
  /// Deleted doc ids; nullptr when no delete was ever committed.
  [[nodiscard]] const TombstoneSet* tombstones() const { return tombstones_.get(); }
  [[nodiscard]] bool is_deleted(std::uint32_t doc_id) const {
    return tombstones_ != nullptr && tombstones_->contains(doc_id);
  }

  /// LIVE documents: committed + memtable, minus tombstoned ids.
  [[nodiscard]] std::uint64_t doc_count() const { return total_docs_ - deleted_docs_; }
  /// Width of the snapshot's doc id space (committed + memtable, deleted
  /// ids included — ids never shift).
  [[nodiscard]] std::uint64_t total_docs() const { return total_docs_; }
  /// Tombstoned ids within this snapshot's doc id space.
  [[nodiscard]] std::uint64_t deleted_docs() const { return deleted_docs_; }

  /// Process-unique identity of this snapshot, assigned at construction
  /// from a monotone counter. The search layer keys its caches on it:
  /// unlike the snapshot's address (which malloc can reuse — the ABA
  /// hazard), an id is never handed out twice, so a stale cache entry can
  /// never alias a new snapshot. A compaction that reproduces identical
  /// content still gets a fresh id — a harmless cold cache, never a wrong
  /// answer.
  [[nodiscard]] std::uint64_t snapshot_id() const { return snapshot_id_; }

  /// Exact integer ingredients of avgdl: total indexed tokens and document
  /// count over LIVE docs (segments + memtable, tombstoned excluded). The
  /// cluster router sums these across shards before the one division, so
  /// the global avgdl is bit-identical to a single-node build of the union
  /// corpus — per-shard doubles would not re-aggregate exactly.
  struct TokenStats {
    std::uint64_t token_sum = 0;
    std::uint64_t live_docs = 0;
  };
  [[nodiscard]] TokenStats token_stats() const;

  /// Mean indexed tokens per LIVE document (BM25's avgdl): segment doc
  /// maps plus the memtable, excluding tombstoned docs; 0 when nothing
  /// carries token counts.
  [[nodiscard]] double average_doc_tokens() const;

  /// Max term frequency of `term` across segments and memtable — a BM25
  /// score-bound ingredient, valid because max over concatenated postings
  /// is the max of per-part maxima. Deliberately NOT tombstone-filtered: a
  /// too-high bound only weakens pruning, never correctness. nullopt when
  /// the term is absent or any segment holding it lacks a sidecar (a
  /// partial max would under-cover).
  [[nodiscard]] std::optional<std::uint32_t> max_tf(std::string_view term) const;

  /// Postings of `term` across every segment plus the memtable, globally
  /// doc-id sorted (all parts hold disjoint ascending doc ranges, memtable
  /// last). RAW — tombstoned docs included; the search layer filters.
  /// nullopt when no part knows the term.
  [[nodiscard]] std::optional<QueryPostings> lookup(std::string_view term) const;

  /// Block-level cursor over `term` across every segment plus the
  /// memtable, globally doc-id ordered; nullptr when no part knows the
  /// term. RAW, like lookup() — so size() (the df) agrees between the
  /// pruned and exhaustive executors. Segments with a skip table serve
  /// zero-copy block cursors (each pinning its segment); segments without
  /// decode once; the memtable serves borrowed block refs pinning the
  /// arena.
  ///
  /// `with_positions` asks for current_positions() support on every part:
  /// skip-table segment cursors serve positions natively (lazy per-block
  /// re-decode); sidecar-less segments then decode positionally up front;
  /// the memtable part is materialized as a positional decoded cursor
  /// (its position chunks do not align with posting chunk boundaries, so
  /// borrowed block refs cannot carry them).
  [[nodiscard]] std::unique_ptr<PostingsCursor> open_cursor(
      std::string_view term, bool with_positions = false) const;

  /// The term's Bloom rejection chain across this snapshot's segments
  /// (postings/bloom.hpp): one link per sidecar-bearing segment holding
  /// the term, in ascending doc order. Segments without a sidecar and the
  /// memtable range are simply uncovered — the chain passes those docs.
  /// Empty chain = never rejects. Borrows the snapshot; must not outlive
  /// it.
  [[nodiscard]] BloomChain bloom_chain(std::string_view term) const;

  /// Range-narrowed lookup: segments whose doc range misses
  /// [min_doc, max_doc] are skipped entirely (the §III.F narrowing applied
  /// at segment granularity). `segments_touched` (optional out) reports how
  /// many segments were actually decoded.
  [[nodiscard]] std::optional<QueryPostings> lookup_range(
      std::string_view term, std::uint32_t min_doc, std::uint32_t max_doc,
      std::size_t* segments_touched = nullptr) const;

  /// Union of the segments' and memtable's prefix matches, deduplicated,
  /// sorted.
  [[nodiscard]] std::vector<std::string> terms_with_prefix(std::string_view prefix) const;

  /// fn(term) for every distinct term across segments and memtable,
  /// lexicographic order (k-way cursor merge with dedup); return false to
  /// stop early.
  void for_each_term(const std::function<bool(std::string_view)>& fn) const;

  /// Distinct terms across segments and memtable (k-way merged count).
  [[nodiscard]] std::uint64_t term_count() const;

  /// Location of a global doc id, resolved through the owning segment's
  /// doc map or the memtable. nullopt when no part covers the id, the
  /// owning segment has no map, or the doc is tombstoned (a deleted doc
  /// has no live location).
  [[nodiscard]] std::optional<DocLocation> locate(std::uint32_t doc_id) const;

 private:
  std::vector<std::shared_ptr<LiveSegment>> segments_;  // ascending doc_base
  std::shared_ptr<const MemtableView> memtable_;        // nullptr = empty
  std::shared_ptr<const TombstoneSet> tombstones_;      // nullptr = none
  std::uint64_t total_docs_ = 0;    // id-space width (committed + memtable)
  std::uint64_t deleted_docs_ = 0;  // tombstoned ids below total_docs_
  std::uint64_t snapshot_id_ = 0;
};

/// Publication point between the writer and readers: a slot holding the
/// current snapshot, guarded by a micro-spinlock that is held only for the
/// duration of a shared_ptr copy or swap (a few atomic refcount ops) —
/// never across flush, merge, or any I/O, so readers are never blocked
/// behind writer work. This is the same technique libstdc++ uses inside
/// std::atomic<std::shared_ptr> (which is not lock-free either), except
/// the reader path here unlocks with release order: GCC 12's
/// _Sp_atomic::load() unlocks relaxed, which leaves the reader's critical
/// section unordered against the next publish in the C++ memory model —
/// a formal data race that ThreadSanitizer (correctly) reports.
class SegmentSet {
 public:
  SegmentSet() : current_(std::make_shared<const LiveSnapshot>(
                     std::vector<std::shared_ptr<LiveSegment>>{})) {}

  /// The current committed view. The returned snapshot stays valid (files
  /// included) for as long as the pointer is held.
  [[nodiscard]] std::shared_ptr<const LiveSnapshot> snapshot() const {
    lock();
    auto copy = current_;
    unlock();
    return copy;
  }

  /// Swaps in a new committed view (writer side only). The previous
  /// snapshot's refcount drop (and any segment file reclamation it
  /// triggers) happens after the slot is unlocked.
  void publish(std::shared_ptr<const LiveSnapshot> next) {
    lock();
    current_.swap(next);
    unlock();
  }

 private:
  void lock() const {
    while (busy_.exchange(1, std::memory_order_acquire) != 0) {
    }
  }
  void unlock() const { busy_.store(0, std::memory_order_release); }

  std::shared_ptr<const LiveSnapshot> current_;
  mutable std::atomic<unsigned> busy_{0};
};

/// Read-only view of a live index directory — the serving-process
/// counterpart of IndexWriter (which owns the directory for writing).
/// Opens the committed manifest and serves its snapshot; reopen() picks up
/// later commits.
class LiveIndex {
 public:
  /// Opens the committed state of `dir`. kNotFound when no manifest exists.
  static Expected<LiveIndex> open(const std::string& dir);

  /// The committed snapshot this index was opened against.
  [[nodiscard]] std::shared_ptr<const LiveSnapshot> snapshot() const { return snap_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  explicit LiveIndex(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
  std::shared_ptr<const LiveSnapshot> snap_;
};

/// Opens every segment of `m` under `dir`, loads the committed tombstone
/// generation (kCorrupt if the manifest names one that cannot be read —
/// a committed delete must never silently resurrect), and freezes them
/// into a snapshot. Shared by IndexWriter::open and LiveIndex::open; the
/// memtable is by definition empty here (it never survives a reopen).
Expected<std::shared_ptr<const LiveSnapshot>> snapshot_from_manifest(
    const std::string& dir, const Manifest& m);

}  // namespace hetindex
