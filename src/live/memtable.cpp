#include "live/memtable.hpp"

#include <algorithm>
#include <cstring>
#include <new>

#include "util/check.hpp"

namespace hetindex {
namespace {

/// FNV-1a — stable across runs (no std::hash salting), cheap, good enough
/// for a short-lived table that never resizes.
std::size_t term_hash(std::string_view term) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : term) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

struct Memtable::DocChunk {
  DocMeta docs[kDocChunkCap];
};

Memtable::Memtable(std::uint32_t doc_base, bool positional)
    : arena_(256u << 10),
      doc_base_(doc_base),
      positional_(positional),
      buckets_(new std::atomic<TermNode*>[kBuckets]),
      doc_dir_(new std::atomic<DocChunk*>[kDocDirSlots]) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    buckets_[i].store(nullptr, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kDocDirSlots; ++i) {
    doc_dir_[i].store(nullptr, std::memory_order_relaxed);
  }
}

std::uint32_t Memtable::begin_document(std::string_view url) {
  HET_CHECK(!in_document_);
  const std::uint32_t idx = doc_count_w_;
  HET_CHECK_MSG(idx < kDocDirSlots * kDocChunkCap, "memtable doc directory full");
  const std::uint32_t slot = idx / kDocChunkCap;
  DocChunk* chunk = doc_dir_[slot].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    auto* raw = arena_.pointer(arena_.allocate(sizeof(DocChunk), alignof(DocChunk)));
    chunk = new (raw) DocChunk();
    // Release: a reader's acquire load of the slot must see the zeroed
    // chunk, not uninitialized arena bytes.
    doc_dir_[slot].store(chunk, std::memory_order_release);
  }
  DocMeta& meta = chunk->docs[idx % kDocChunkCap];
  if (!url.empty()) {
    meta.url = reinterpret_cast<const char*>(
        arena_.pointer(arena_.store(url.data(), url.size())));
  }
  meta.url_len = static_cast<std::uint32_t>(url.size());
  current_doc_ = doc_base_ + idx;
  in_document_ = true;
  return current_doc_;
}

void Memtable::finish_document(std::uint32_t token_count) {
  HET_CHECK(in_document_);
  const std::uint32_t idx = doc_count_w_;
  DocChunk* chunk = doc_dir_[idx / kDocChunkCap].load(std::memory_order_relaxed);
  chunk->docs[idx % kDocChunkCap].tokens = token_count;
  token_sum_w_ += token_count;
  in_document_ = false;
  // Only now does the document exist for future views: a view's watermark
  // is the finished count, so a reader never sees half a document.
  ++doc_count_w_;
}

Memtable::PostChunk* Memtable::new_post_chunk(std::uint32_t capacity) {
  auto* raw = arena_.pointer(arena_.allocate(sizeof(PostChunk), alignof(PostChunk)));
  auto* chunk = new (raw) PostChunk();
  chunk->capacity = capacity;
  chunk->docs = reinterpret_cast<std::uint32_t*>(
      arena_.pointer(arena_.allocate(capacity * 4u, alignof(std::uint32_t))));
  chunk->tfs = reinterpret_cast<std::uint32_t*>(
      arena_.pointer(arena_.allocate(capacity * 4u, alignof(std::uint32_t))));
  return chunk;
}

Memtable::PosChunk* Memtable::new_pos_chunk(std::uint32_t capacity) {
  auto* raw = arena_.pointer(arena_.allocate(sizeof(PosChunk), alignof(PosChunk)));
  auto* chunk = new (raw) PosChunk();
  chunk->capacity = capacity;
  chunk->positions = reinterpret_cast<std::uint32_t*>(
      arena_.pointer(arena_.allocate(capacity * 4u, alignof(std::uint32_t))));
  return chunk;
}

Memtable::TermNode* Memtable::find_node(std::string_view term) const {
  const std::size_t bucket = term_hash(term) & (kBuckets - 1);
  TermNode* node = buckets_[bucket].load(std::memory_order_acquire);
  while (node != nullptr) {
    if (node->term_len == term.size() &&
        std::memcmp(node->term, term.data(), term.size()) == 0) {
      return node;
    }
    node = node->bucket_next.load(std::memory_order_acquire);
  }
  return nullptr;
}

Memtable::TermNode* Memtable::insert_node(std::string_view term, std::size_t bucket) {
  auto* raw = arena_.pointer(arena_.allocate(sizeof(TermNode), alignof(TermNode)));
  auto* node = new (raw) TermNode();
  if (!term.empty()) {
    node->term = reinterpret_cast<const char*>(
        arena_.pointer(arena_.store(term.data(), term.size())));
  }
  node->term_len = static_cast<std::uint32_t>(term.size());
  node->head = node->tail = new_post_chunk(kFirstPostCap);
  if (positional_) node->pos_head = node->pos_tail = new_pos_chunk(kFirstPosCap);
  // Link last, with release: once a reader can reach the node, everything
  // it points at is fully built.
  node->bucket_next.store(buckets_[bucket].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  buckets_[bucket].store(node, std::memory_order_release);
  term_count_w_.fetch_add(1, std::memory_order_relaxed);
  return node;
}

void Memtable::append_position(TermNode* node, std::uint32_t position) {
  PosChunk* tail = node->pos_tail;
  std::uint32_t n = tail->count.load(std::memory_order_relaxed);
  if (n == tail->capacity) {
    PosChunk* grown = new_pos_chunk(std::min(tail->capacity * 2, kMaxPosCap));
    tail->next.store(grown, std::memory_order_release);
    node->pos_tail = grown;
    tail = grown;
    n = 0;
  }
  tail->positions[n] = position;
  tail->count.store(n + 1, std::memory_order_release);
}

void Memtable::add_occurrence(std::string_view term, std::uint32_t position) {
  HET_CHECK(in_document_);
  const std::size_t bucket = term_hash(term) & (kBuckets - 1);
  TermNode* node = buckets_[bucket].load(std::memory_order_relaxed);
  while (node != nullptr &&
         (node->term_len != term.size() ||
          std::memcmp(node->term, term.data(), term.size()) != 0)) {
    node = node->bucket_next.load(std::memory_order_relaxed);
  }
  if (node == nullptr) node = insert_node(term, bucket);
  if (positional_) append_position(node, position);
  if (node->postings_w != 0 && node->last_doc == current_doc_) {
    // Tail bump: the slot belongs to the in-progress doc, which is above
    // every published watermark, so no reader dereferences its tf.
    PostChunk* tail = node->tail;
    const std::uint32_t at = tail->count.load(std::memory_order_relaxed) - 1;
    const std::uint32_t tf = tail->tfs[at] + 1;
    tail->tfs[at] = tf;
    if (tf > node->max_tf.load(std::memory_order_relaxed)) {
      node->max_tf.store(tf, std::memory_order_relaxed);
    }
    return;
  }
  PostChunk* tail = node->tail;
  std::uint32_t n = tail->count.load(std::memory_order_relaxed);
  if (n == tail->capacity) {
    PostChunk* grown = new_post_chunk(std::min(tail->capacity * 2, kMaxPostCap));
    tail->next.store(grown, std::memory_order_release);
    node->tail = grown;
    tail = grown;
    n = 0;
  }
  tail->docs[n] = current_doc_;
  tail->tfs[n] = 1;
  tail->count.store(n + 1, std::memory_order_release);
  node->last_doc = current_doc_;
  ++node->postings_w;
  ++postings_w_;
}

const Memtable::DocMeta* Memtable::meta_of(std::uint32_t doc) const {
  const std::uint32_t idx = doc - doc_base_;
  const DocChunk* chunk = doc_dir_[idx / kDocChunkCap].load(std::memory_order_acquire);
  HET_DCHECK(chunk != nullptr);
  return &chunk->docs[idx % kDocChunkCap];
}

bool Memtable::node_visible(const TermNode* node, std::uint32_t limit) {
  const PostChunk* head = node->head;
  return head->count.load(std::memory_order_acquire) != 0 && head->docs[0] < limit;
}

bool Memtable::read_postings(std::string_view term, std::uint32_t limit,
                             std::vector<std::uint32_t>& docs,
                             std::vector<std::uint32_t>& tfs,
                             std::vector<std::uint32_t>* positions) const {
  const TermNode* node = find_node(term);
  if (node == nullptr || !node_visible(node, limit)) return false;
  std::uint64_t tf_sum = 0;
  for (const PostChunk* chunk = node->head; chunk != nullptr;
       chunk = chunk->next.load(std::memory_order_acquire)) {
    const std::uint32_t n = chunk->count.load(std::memory_order_acquire);
    std::uint32_t i = 0;
    for (; i < n; ++i) {
      // Doc first, then stop at the watermark WITHOUT touching the tf:
      // the in-flight doc's tf may still be bumped by the writer.
      const std::uint32_t doc = chunk->docs[i];
      if (doc >= limit) break;
      const std::uint32_t tf = chunk->tfs[i];
      docs.push_back(doc);
      tfs.push_back(tf);
      tf_sum += tf;
    }
    if (i < n) break;  // hit the watermark — nothing visible further on
  }
  if (positions != nullptr && positional_) {
    // Visible postings are a prefix of the append stream, so their
    // positions are exactly the first tf_sum entries of the pos chain.
    std::uint64_t remaining = tf_sum;
    for (const PosChunk* chunk = node->pos_head; chunk != nullptr && remaining != 0;
         chunk = chunk->next.load(std::memory_order_acquire)) {
      const std::uint32_t n = chunk->count.load(std::memory_order_acquire);
      const std::uint32_t take =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(n, remaining));
      positions->insert(positions->end(), chunk->positions, chunk->positions + take);
      remaining -= take;
    }
    HET_DCHECK(remaining == 0);
  }
  return true;
}

std::vector<MemtableBlockRef> Memtable::cursor_blocks(std::string_view term,
                                                      std::uint32_t limit) const {
  std::vector<MemtableBlockRef> blocks;
  const TermNode* node = find_node(term);
  if (node == nullptr) return blocks;
  for (const PostChunk* chunk = node->head; chunk != nullptr;
       chunk = chunk->next.load(std::memory_order_acquire)) {
    const std::uint32_t n = chunk->count.load(std::memory_order_acquire);
    if (n == 0) break;
    std::uint32_t visible = n;
    if (chunk->docs[n - 1] >= limit) {
      visible = static_cast<std::uint32_t>(
          std::lower_bound(chunk->docs, chunk->docs + n, limit) - chunk->docs);
    }
    if (visible == 0) break;
    blocks.push_back(MemtableBlockRef{chunk->docs, chunk->tfs, visible,
                                      chunk->docs[visible - 1]});
    if (visible < n) break;
  }
  return blocks;
}

std::vector<const Memtable::TermNode*> Memtable::sorted_visible_nodes(
    std::uint32_t limit) const {
  std::vector<const TermNode*> nodes;
  // Reserve hint only — the walk below is bounded by each bucket's
  // release-published chain, not by this count.
  nodes.reserve(
      static_cast<std::size_t>(term_count_w_.load(std::memory_order_relaxed)));
  for (std::size_t b = 0; b < kBuckets; ++b) {
    for (const TermNode* node = buckets_[b].load(std::memory_order_acquire);
         node != nullptr; node = node->bucket_next.load(std::memory_order_acquire)) {
      if (node_visible(node, limit)) nodes.push_back(node);
    }
  }
  std::sort(nodes.begin(), nodes.end(), [](const TermNode* a, const TermNode* b) {
    return a->term_view() < b->term_view();
  });
  return nodes;
}

// ---------------------------------------------------------------------------
// MemtableView

MemtableView::MemtableView(std::shared_ptr<const Memtable> mt)
    : mt_(std::move(mt)), doc_count_(mt_->doc_count()), token_sum_(mt_->token_sum()) {}

bool MemtableView::lookup(std::string_view term, QueryPostings& out) const {
  return mt_->read_postings(term, doc_limit(), out.doc_ids, out.tfs,
                            mt_->positional() ? &out.positions : nullptr);
}

std::vector<MemtableBlockRef> MemtableView::cursor_blocks(std::string_view term) const {
  return mt_->cursor_blocks(term, doc_limit());
}

std::optional<std::uint32_t> MemtableView::max_tf(std::string_view term) const {
  const Memtable::TermNode* node = mt_->find_node(term);
  if (node == nullptr || !Memtable::node_visible(node, doc_limit())) {
    return std::nullopt;
  }
  return node->max_tf.load(std::memory_order_relaxed);
}

std::uint32_t MemtableView::doc_tokens(std::uint32_t doc) const {
  HET_DCHECK(doc >= doc_base() && doc < doc_limit());
  return mt_->meta_of(doc)->tokens;
}

std::optional<DocLocation> MemtableView::locate(std::uint32_t doc) const {
  if (doc < doc_base() || doc >= doc_limit()) return std::nullopt;
  const auto* meta = mt_->meta_of(doc);
  DocLocation loc;
  loc.url.assign(meta->url, meta->url_len);
  loc.file_seq = 0;  // not yet in a segment
  loc.local_id = doc - doc_base();
  loc.token_count = meta->tokens;
  return loc;
}

void MemtableView::for_each_term(const std::function<void(std::string_view)>& fn) const {
  for (const auto* node : mt_->sorted_visible_nodes(doc_limit())) {
    fn(node->term_view());
  }
}

std::vector<std::string> MemtableView::terms_with_prefix(std::string_view prefix,
                                                         std::size_t limit) const {
  std::vector<std::string> out;
  for (const auto* node : mt_->sorted_visible_nodes(doc_limit())) {
    const std::string_view term = node->term_view();
    if (term.size() >= prefix.size() && term.substr(0, prefix.size()) == prefix) {
      out.emplace_back(term);
      if (out.size() == limit) break;
    }
  }
  return out;
}

std::uint64_t MemtableView::term_count() const {
  std::uint64_t n = 0;
  const std::uint32_t limit = doc_limit();
  for (std::size_t b = 0; b < Memtable::kBuckets; ++b) {
    for (const auto* node = mt_->buckets_[b].load(std::memory_order_acquire);
         node != nullptr; node = node->bucket_next.load(std::memory_order_acquire)) {
      if (Memtable::node_visible(node, limit)) ++n;
    }
  }
  return n;
}

void MemtableView::for_each_term_postings(
    const std::function<void(std::string_view, const std::vector<std::uint32_t>&,
                             const std::vector<std::uint32_t>&,
                             const std::vector<std::uint32_t>&)>& fn) const {
  std::vector<std::uint32_t> docs;
  std::vector<std::uint32_t> tfs;
  std::vector<std::uint32_t> positions;
  const std::uint32_t limit = doc_limit();
  for (const auto* node : mt_->sorted_visible_nodes(limit)) {
    docs.clear();
    tfs.clear();
    positions.clear();
    mt_->read_postings(node->term_view(), limit, docs, tfs,
                       mt_->positional() ? &positions : nullptr);
    fn(node->term_view(), docs, tfs, positions);
  }
}

}  // namespace hetindex
