#pragma once
/// \file tombstones.hpp
/// Delete markers of the live tier (docs/LIVE_INDEXING.md). A delete never
/// touches committed postings in place — the doc id is recorded in an
/// immutable bitmap (the tombstone set) that every LiveSnapshot carries and
/// the search layer applies as a candidate filter. Doc ids never shift:
/// a tombstoned id stays allocated forever; compaction merely drops the
/// dead ids' postings when it rewrites a segment (physical reclaim).
///
/// Durability: the current set is persisted as a CRC-guarded sidecar
/// (`tomb-<gen>.tmb`) written durably *before* the MANIFEST commit that
/// names its generation — the same write-ahead discipline as segments, so
/// a committed delete can never resurrect and an uncommitted one simply
/// never happened (docs/INDEX_FORMAT.md has the byte layout).
///
/// The set is copy-on-write: each delete batch produces a fresh immutable
/// TombstoneSet, so readers holding an older snapshot keep the exact
/// delete state they started with, lock-free.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace hetindex {

/// Immutable bitmap over global doc ids. Thread-safe by construction —
/// every member is const after the factory returns.
class TombstoneSet {
 public:
  TombstoneSet() = default;

  /// True when `doc` is tombstoned. Ids beyond the bitmap are live.
  [[nodiscard]] bool contains(std::uint32_t doc) const {
    const std::size_t w = doc >> 6;
    return w < words_.size() && ((words_[w] >> (doc & 63u)) & 1u) != 0;
  }

  /// Total tombstoned ids.
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Tombstoned ids in [base, base + n) — what a segment rewrite can
  /// physically reclaim from that doc range.
  [[nodiscard]] std::uint64_t count_in_range(std::uint32_t base, std::uint64_t n) const;
  /// Tombstoned ids below `limit` (= count_in_range(0, limit)).
  [[nodiscard]] std::uint64_t count_below(std::uint64_t limit) const {
    return count_in_range(0, limit);
  }
  [[nodiscard]] bool any_in_range(std::uint32_t base, std::uint64_t n) const {
    return count_in_range(base, n) != 0;
  }

  /// fn(doc) for every tombstoned id in [base, base + n), ascending —
  /// O(set bits), not O(range).
  template <typename Fn>
  void for_each_in_range(std::uint32_t base, std::uint64_t n, Fn&& fn) const {
    if (n == 0 || words_.empty()) return;
    const std::uint64_t begin = base;
    const std::uint64_t end = std::min<std::uint64_t>(begin + n, words_.size() * 64u);
    for (std::uint64_t w = begin / 64; w * 64 < end; ++w) {
      std::uint64_t word = words_[w];
      const std::uint64_t lo = w * 64;
      if (begin > lo) word &= ~0ull << (begin - lo);
      if (end < lo + 64) word &= ~(~0ull << (end - lo));
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<std::uint32_t>(lo + static_cast<std::uint64_t>(bit)));
        word &= word - 1;
      }
    }
  }

  /// Copy-on-write union: `base` (may be null = empty) plus `ids`. Already
  /// tombstoned ids are ignored; `newly_set` (optional out) reports how
  /// many bits actually flipped — 0 means the result equals the base.
  [[nodiscard]] static std::shared_ptr<const TombstoneSet> with(
      const TombstoneSet* base, const std::vector<std::uint32_t>& ids,
      std::uint64_t* newly_set = nullptr);

  /// The raw words (little-endian bit order within a word) — serialization
  /// and test introspection.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::vector<std::uint64_t> words_;  ///< bit d of word d/64 = doc d deleted
  std::uint64_t count_ = 0;

  friend Expected<TombstoneSet> tombstones_read(const std::string& dir,
                                                std::uint64_t gen);
};

/// `<dir>/tomb-<gen>.tmb` (zero-padded like segment names).
std::string tombstone_path(const std::string& dir, std::uint64_t gen);

/// Durably writes generation `gen` of the tombstone sidecar (magic,
/// version, generation, deleted count, bitmap words, CRC32 footer) via
/// io::durable_write_file — kIo leaves no partial file.
Status tombstones_write(const std::string& dir, std::uint64_t gen,
                        const TombstoneSet& set);

/// Reads and validates generation `gen`. kNotFound when absent; kCorrupt
/// on bad magic/version/CRC or a header that disagrees with the payload.
/// A manifest-named generation that fails to read is a kCorrupt index — a
/// committed delete must never silently resurrect.
Expected<TombstoneSet> tombstones_read(const std::string& dir, std::uint64_t gen);

}  // namespace hetindex
