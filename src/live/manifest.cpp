#include "live/manifest.hpp"

#include <cstdio>

#include "io/env.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"

namespace hetindex {
namespace {
constexpr std::uint32_t kManifestMagic = 0x464E414D;  // "MANF"
// v2 added the tombstone fields (tombstone_gen/tombstone_docs in the header,
// reclaimed_docs per entry). v1 files remain readable; writes emit v2.
constexpr std::uint32_t kManifestVersionV1 = 1;
constexpr std::uint32_t kManifestVersion = 2;
}  // namespace

std::string manifest_path(const std::string& dir) { return dir + "/MANIFEST"; }

std::string live_segment_path(const std::string& dir, std::uint64_t segment_id) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%04llu.seg",
                static_cast<unsigned long long>(segment_id));
  return dir + "/" + name;
}

std::string live_docmap_path(const std::string& dir, std::uint64_t segment_id) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%04llu.docmap",
                static_cast<unsigned long long>(segment_id));
  return dir + "/" + name;
}

Expected<Manifest> manifest_read(const std::string& dir) {
  const std::string path = manifest_path(dir);
  if (!file_exists(path)) {
    return Error{ErrorCode::kNotFound, "no manifest under: " + dir};
  }
  const auto data = read_file(path);
  // header(8) + next ids(12) + count(4) + crc(4)
  if (data.size() < 28) {
    return Error{ErrorCode::kCorrupt, "manifest truncated: " + path};
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data.data() + data.size() - 4, 4);
  if (crc32(data.data(), data.size() - 4) != stored_crc) {
    return Error{ErrorCode::kCorrupt, "manifest crc mismatch: " + path};
  }
  ByteReader r(data.data(), data.size() - 4);
  if (r.u32() != kManifestMagic) {
    return Error{ErrorCode::kCorrupt, "not a hetindex manifest: " + path};
  }
  const std::uint32_t version = r.u32();
  if (version != kManifestVersionV1 && version != kManifestVersion) {
    return Error{ErrorCode::kUnsupported, "unsupported manifest version: " + path};
  }
  Manifest m;
  m.next_segment_id = r.u64();
  m.next_doc_id = r.u32();
  const std::uint32_t count = r.u32();
  if (version >= 2) {
    m.tombstone_gen = r.u64();
    m.tombstone_docs = r.u64();
  }
  m.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ManifestEntry e;
    e.segment_id = r.u64();
    e.doc_base = r.u32();
    e.doc_count = r.u32();
    e.term_count = r.u64();
    e.file_bytes = r.u64();
    if (version >= 2) e.reclaimed_docs = r.u64();
    m.entries.push_back(e);
  }
  return m;
}

Status manifest_write(const std::string& dir, const Manifest& m) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u32(kManifestMagic);
  w.u32(kManifestVersion);
  w.u64(m.next_segment_id);
  w.u32(m.next_doc_id);
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  w.u64(m.tombstone_gen);
  w.u64(m.tombstone_docs);
  for (const auto& e : m.entries) {
    w.u64(e.segment_id);
    w.u32(e.doc_base);
    w.u32(e.doc_count);
    w.u64(e.term_count);
    w.u64(e.file_bytes);
    w.u64(e.reclaimed_docs);
  }
  w.u32(crc32(out.data(), out.size()));
  const std::string tmp = manifest_path(dir) + ".tmp";
  // The tmp file must be durable BEFORE the rename: otherwise a crash can
  // journal the rename while the data is still in the page cache, leaving a
  // committed-looking but zero-length/torn MANIFEST. durable_write_file
  // also guarantees no stray MANIFEST.tmp survives a failed write (ENOSPC).
  auto written = io::durable_write_file(tmp, out);
  if (!written.has_value()) return written.error();
  // rename() is the commit point: readers see the old or the new manifest,
  // never a partial one.
  auto renamed = io::env().rename_file(tmp, manifest_path(dir));
  if (!renamed.has_value()) {
    (void)io::env().remove_file(tmp);
    return renamed.error();
  }
  // …and the directory fsync makes the commit point itself durable (the
  // rename is metadata; without this it can be lost with the dir entry).
  auto dir_synced = io::env().sync_dir(dir);
  if (!dir_synced.has_value()) return dir_synced.error();
  return Unit{};
}

}  // namespace hetindex
