#include "live/writer.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "dict/dictionary.hpp"
#include "index/indexer.hpp"
#include "io/env.hpp"
#include "postings/postings_store.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace hetindex {
namespace {

/// LSM tier of a segment: tier 0 holds sizes up to tier_base, each next
/// tier doubles the ceiling.
int size_tier(std::uint64_t bytes, std::uint64_t tier_base) {
  int t = 0;
  while (bytes > tier_base) {
    bytes >>= 1;
    ++t;
  }
  return t;
}

/// First window of `merge_factor` adjacent entries worth folding, or
/// {0,0}. Adjacency matters: only doc-contiguous segments may merge, or
/// the per-term byte concatenation would break doc-id order.
///
/// A window qualifies when the combined bytes land strictly above the
/// deepest input tier — every byte then climbs at least one tier per
/// merge, so a byte is rewritten O(log(total/tier_base)) times over the
/// index's lifetime. All-tier-0 windows are exempt from the climb rule:
/// tiny segments are always worth folding, and such runs collapse to a
/// single entry, so that case terminates too.
std::pair<std::size_t, std::size_t> find_merge_window(
    const std::vector<ManifestEntry>& entries, std::uint32_t merge_factor,
    std::uint64_t tier_base) {
  if (merge_factor < 2 || entries.size() < merge_factor) return {0, 0};
  for (std::size_t start = 0; start + merge_factor <= entries.size(); ++start) {
    std::uint64_t sum = 0;
    int max_tier = 0;
    for (std::size_t i = start; i < start + merge_factor; ++i) {
      sum += entries[i].file_bytes;
      max_tier = std::max(max_tier, size_tier(entries[i].file_bytes, tier_base));
    }
    if (max_tier == 0 || sum > (tier_base << max_tier)) {
      return {start, start + merge_factor};
    }
  }
  return {0, 0};
}

}  // namespace

struct IndexWriter::State {
  std::string dir;
  IndexWriterOptions opts;

  obs::MetricsRegistry metrics;
  obs::Counter& flushes = metrics.counter("live_flushes_total");
  obs::Counter& documents = metrics.counter("live_documents_total");
  obs::Counter& flushed_bytes = metrics.counter("live_flushed_bytes_total");
  obs::Counter& compactions = metrics.counter("compactions_total");
  obs::Counter& compaction_bytes = metrics.counter("compaction_bytes_written_total");
  obs::TimeCounter& flush_seconds = metrics.time_counter("live_flush_seconds_total");
  obs::TimeCounter& compaction_seconds = metrics.time_counter("compaction_seconds_total");
  obs::Gauge& segments_active = metrics.gauge("live_segments_active");
  obs::Gauge& snapshot_refcount = metrics.gauge("snapshot_refcount");
  obs::Counter& flush_failures = metrics.counter("live_flush_failures_total");
  obs::Counter& compaction_failures = metrics.counter("compaction_failures_total");
  obs::Counter& recovery_dropped = metrics.counter("recovery_dropped_files_total");

  /// Guards the in-memory buffer, the manifest, and commits (manifest
  /// rewrite + snapshot publication). Never held during a segment merge.
  mutable std::mutex mu;
  Parser parser;
  // Buffer-lifetime indexing state, rebuilt after every flush so each
  // flush enumerates only the terms of its own document range — keeping a
  // dictionary across flushes would make flush cost grow with the total
  // vocabulary ever seen, not the buffer's.
  std::unique_ptr<Dictionary> dict;
  std::unique_ptr<PostingsStore> store;
  std::unique_ptr<CpuIndexer> indexer;
  std::uint32_t buffered = 0;        ///< documents in the buffer
  std::uint64_t buffered_bytes = 0;  ///< raw body bytes in the buffer
  std::uint64_t flush_seq = 0;       ///< parse-block sequence number
  std::vector<std::string> urls;     ///< per buffered doc
  std::vector<std::uint32_t> doc_tokens;
  Manifest manifest;  ///< committed state
  SegmentSet set;

  /// Serializes merge work (background thread vs compact_now callers).
  std::mutex compaction_mu;
  std::mutex wake_mu;
  std::condition_variable_any wake_cv;
  bool wake = false;
  std::jthread compactor;  ///< last member: joins before the rest dies

  State(std::string d, IndexWriterOptions o)
      : dir(std::move(d)), opts(o), parser(o.parser) {
    reset_buffer();
  }

  /// Fresh dictionary + postings store + indexer for the next buffer.
  void reset_buffer() {
    dict = std::make_unique<Dictionary>(true);
    dict->add_shard();
    store = std::make_unique<PostingsStore>();
    std::vector<std::uint32_t> all(kTrieCollections);
    std::iota(all.begin(), all.end(), 0u);
    indexer = std::make_unique<CpuIndexer>(dict->shard(0), *store, all);
  }

  std::uint32_t add_document(const std::string& url, const std::string& body);
  Expected<std::uint64_t> flush_locked();
  Status publish_locked();
  Status run_compactions();
  Expected<bool> run_one_compaction();
  /// Removes every on-disk artifact of an uncommitted segment attempt.
  void remove_segment_files(std::uint64_t segment_id) {
    const std::string seg = live_segment_path(dir, segment_id);
    (void)io::env().remove_file(seg);
    (void)io::env().remove_file(max_tf_sidecar_path(seg));
    (void)io::env().remove_file(block_index_sidecar_path(seg));
    (void)io::env().remove_file(live_docmap_path(dir, segment_id));
  }
};

// ---------------------------------------------------------------- open

Expected<IndexWriter> IndexWriter::open(const std::string& dir,
                                        IndexWriterOptions options) {
  std::filesystem::create_directories(dir);
  auto state = std::make_unique<State>(dir, options);

  auto committed = manifest_read(dir);
  if (committed.has_value()) {
    state->manifest = std::move(committed).value();
  } else if (committed.error().code != ErrorCode::kNotFound) {
    return committed.error();  // corrupt manifest: refuse to guess
  }

  // Recovery: anything on disk the manifest does not name is a leftover
  // from a crash between segment write and manifest rename — drop it.
  // Removals go through the Env so the crash harness sees (and can fault)
  // them, and each one counts in recovery_dropped_files_total.
  if (io::env().file_exists(manifest_path(dir) + ".tmp")) {
    (void)io::env().remove_file(manifest_path(dir) + ".tmp");
    state->recovery_dropped.add();
  }
  std::vector<bool> committed_ids;  // indexed by segment id
  for (const auto& e : state->manifest.entries) {
    if (e.segment_id >= committed_ids.size()) committed_ids.resize(e.segment_id + 1);
    committed_ids[e.segment_id] = true;
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) != 0) continue;
    if (name.find('.') == std::string::npos) continue;
    const std::uint64_t id = std::strtoull(name.c_str() + 4, nullptr, 10);
    if (id < committed_ids.size() && committed_ids[id]) continue;
    (void)io::env().remove_file(entry.path().string());
    state->recovery_dropped.add();
  }

  auto snap = snapshot_from_manifest(dir, state->manifest);
  if (!snap.has_value()) return snap.error();
  state->set.publish(std::move(snap).value());
  state->segments_active.set(static_cast<std::int64_t>(state->manifest.entries.size()));

  IndexWriter writer(std::move(state));
  if (options.background_compaction) {
    State* s = writer.state_.get();
    s->compactor = std::jthread([s](std::stop_token st) {
      std::unique_lock lk(s->wake_mu);
      while (true) {
        if (!s->wake_cv.wait(lk, st, [s] { return s->wake; })) return;
        s->wake = false;
        lk.unlock();
        // Failures are absorbed here (counted in compaction_failures_total);
        // the next flush re-kicks the policy, which retries the same window.
        (void)s->run_compactions();
        lk.lock();
      }
    });
  }
  return writer;
}

IndexWriter::IndexWriter(std::unique_ptr<State> state) : state_(std::move(state)) {}
IndexWriter::IndexWriter(IndexWriter&&) noexcept = default;
IndexWriter& IndexWriter::operator=(IndexWriter&&) noexcept = default;

IndexWriter::~IndexWriter() {
  if (state_ == nullptr) return;
  state_->compactor.request_stop();
  state_->wake_cv.notify_all();
}

// ---------------------------------------------------------------- ingest

std::uint32_t IndexWriter::add_document(const std::string& url, const std::string& body) {
  return state_->add_document(url, body);
}

std::uint32_t IndexWriter::State::add_document(const std::string& url,
                                               const std::string& body) {
  std::lock_guard lk(mu);
  const std::uint32_t doc_id = manifest.next_doc_id + buffered;
  // One-document parse batch: local id 0, globalized by the block base, so
  // the buffer's postings carry absolute doc ids — the invariant that lets
  // compaction concatenate blobs without re-encoding.
  const std::vector<Document> docs{{0, url, body}};
  const ParsedBlock block = parser.parse(docs, flush_seq, /*parser_id=*/0, doc_id);
  indexer->index_block(block);
  urls.push_back(url);
  doc_tokens.push_back(block.doc_tokens.empty() ? 0 : block.doc_tokens[0]);
  ++buffered;
  buffered_bytes += body.size();
  documents.add();
  if (opts.flush_threshold_bytes > 0 && buffered_bytes >= opts.flush_threshold_bytes) {
    // An auto-flush failure keeps the buffer intact (flush_locked rolls
    // back); the next threshold crossing retries. Counted in
    // live_flush_failures_total — callers wanting the error call flush().
    (void)flush_locked();
  }
  return doc_id;
}

Expected<std::uint64_t> IndexWriter::flush() {
  std::lock_guard lk(state_->mu);
  return state_->flush_locked();
}

Expected<std::uint64_t> IndexWriter::State::flush_locked() {
  if (buffered == 0) return std::uint64_t{0};
  const WallTimer timer;

  const std::uint64_t segment_id = manifest.next_segment_id;
  const std::uint32_t doc_base = manifest.next_doc_id;

  // Freeze the buffer: enumerate the buffer's dictionary in sorted order
  // and encode each in-memory list into the segment. The dictionary is
  // rebuilt after every flush, so it holds exactly this doc range's terms.
  SegmentWriter writer(live_segment_path(dir, segment_id), opts.codec);
  std::vector<std::uint32_t> max_tfs;
  BlockIndex block_index;
  std::vector<PostingBlockEntry> blocks;
  for (const auto& entry : dict->combine()) {
    const PostingsList& list = store->list(entry.handle);
    if (list.empty()) continue;
    // Blocked encode: the skip rows drop out of the chunking, so flushed
    // segments get the same Block-Max sidecar as batch-built ones.
    blocks.clear();
    const auto blob =
        encode_postings_blocked(opts.codec, list.doc_ids, list.tfs,
                                list.positional() ? &list.positions : nullptr, &blocks);
    writer.add_term(entry.term, blob.data(), blob.size(),
                    static_cast<std::uint32_t>(list.size()), list.doc_ids.front(),
                    list.doc_ids.back());
    block_index.add_term(blocks);
    // Score-bound sidecar comes for free here: the lists are still decoded.
    max_tfs.push_back(*std::max_element(list.tfs.begin(), list.tfs.end()));
  }
  const std::uint64_t term_count = writer.term_count();

  // Any failure from here to the manifest commit rolls back to a clean
  // directory: partial files removed, buffer and committed state untouched,
  // writer still usable. Segment, sidecar and doc map are all durable
  // (fsynced) BEFORE the commit, so a durable manifest never names data
  // still sitting in the page cache.
  auto fail = [&](Error e) -> Expected<std::uint64_t> {
    remove_segment_files(segment_id);
    flush_failures.add();
    return e;
  };

  auto file_bytes = writer.finalize();
  if (!file_bytes.has_value()) return fail(file_bytes.error());
  auto sidecar = write_max_tf_sidecar(live_segment_path(dir, segment_id), max_tfs);
  if (!sidecar.has_value()) return fail(sidecar.error());
  auto skip_table =
      write_block_index_sidecar(live_segment_path(dir, segment_id), block_index);
  if (!skip_table.has_value()) return fail(skip_table.error());

  DocMapBuilder maps(doc_base);
  maps.add_file(doc_base, static_cast<std::uint32_t>(segment_id), urls, doc_tokens);
  auto map_written = maps.try_write(live_docmap_path(dir, segment_id));
  if (!map_written.has_value()) return fail(map_written.error());

  // Commit point: manifest rename. A crash before this line leaves stray
  // seg files that the next open() removes; after it, the segment is live.
  Manifest next = manifest;
  next.next_segment_id = segment_id + 1;
  next.next_doc_id = doc_base + buffered;
  next.entries.push_back(
      {segment_id, doc_base, buffered, term_count, file_bytes.value()});
  auto committed = manifest_write(dir, next);
  if (!committed.has_value()) return fail(committed.error());
  manifest = std::move(next);

  auto published = publish_locked();

  reset_buffer();
  urls.clear();
  doc_tokens.clear();
  buffered = 0;
  buffered_bytes = 0;
  ++flush_seq;

  flushes.add();
  flushed_bytes.add(file_bytes.value());
  flush_seconds.add(timer.seconds());

  if (opts.background_compaction) {
    {
      std::lock_guard wake_lk(wake_mu);
      wake = true;
    }
    wake_cv.notify_one();
  }
  if (!published.has_value()) {
    // The commit is durable — only the in-memory snapshot refresh failed
    // (e.g. the fresh segment would not map). Readers keep the previous
    // snapshot; a reopen serves the new commit.
    return Error{published.error().code,
                 "segment committed but snapshot refresh failed: " +
                     published.error().message};
  }
  return segment_id;
}

/// Rebuilds the published snapshot from the committed manifest, reusing
/// already-open segments. Caller holds mu. kIo when a freshly committed
/// segment cannot be opened — the previous snapshot stays published.
Status IndexWriter::State::publish_locked() {
  const auto current = set.snapshot();
  std::vector<std::shared_ptr<LiveSegment>> segments;
  segments.reserve(manifest.entries.size());
  for (const auto& e : manifest.entries) {
    std::shared_ptr<LiveSegment> reused;
    for (const auto& seg : current->segments()) {
      if (seg->id() == e.segment_id) {
        reused = seg;
        break;
      }
    }
    if (reused == nullptr) {
      auto opened = LiveSegment::open(dir, e.segment_id, e.doc_base, e.doc_count);
      if (!opened.has_value()) return opened.error();
      reused = std::move(opened).value();
    }
    segments.push_back(std::move(reused));
  }
  snapshot_refcount.set(static_cast<std::int64_t>(current.use_count()));
  set.publish(std::make_shared<const LiveSnapshot>(std::move(segments)));
  segments_active.set(static_cast<std::int64_t>(manifest.entries.size()));
  return Unit{};
}

// ---------------------------------------------------------------- compaction

Status IndexWriter::compact_now() { return state_->run_compactions(); }

Status IndexWriter::State::run_compactions() {
  // Serialized: the background thread and compact_now callers take turns;
  // each pass folds one window, cascading until the tiers are stable.
  std::lock_guard serialize(compaction_mu);
  while (true) {
    auto more = run_one_compaction();
    if (!more.has_value()) return more.error();
    if (!more.value()) return Unit{};
  }
}

Expected<bool> IndexWriter::State::run_one_compaction() {
  // Pick a window and allocate the output id under mu; the merge itself
  // runs unlocked against immutable inputs.
  std::vector<std::shared_ptr<LiveSegment>> inputs;
  std::uint64_t out_id = 0;
  {
    std::lock_guard lk(mu);
    const auto [begin, end] =
        find_merge_window(manifest.entries, opts.merge_factor, opts.tier_base_bytes);
    if (begin == end) return false;
    const auto snap = set.snapshot();
    // Snapshot segments are doc_base-ordered like manifest entries.
    for (std::size_t i = begin; i < end; ++i) {
      HET_CHECK(snap->segments()[i]->id() == manifest.entries[i].segment_id);
      inputs.push_back(snap->segments()[i]);
    }
    out_id = manifest.next_segment_id++;
  }

  // Any failure before the commit removes the merge output and leaves the
  // committed set untouched; the skipped out_id is harmless (ids just gap).
  auto fail = [&](Error e) -> Expected<bool> {
    remove_segment_files(out_id);
    compaction_failures.add();
    return e;
  };

  const WallTimer timer;
  std::vector<const SegmentReader*> readers;
  readers.reserve(inputs.size());
  for (const auto& seg : inputs) readers.push_back(&seg->reader());
  const auto merged = merge_segments(readers, live_segment_path(dir, out_id));
  if (!merged.has_value()) return fail(merged.error());
  const auto stats = merged.value();

  // Fold the doc maps, preserving per-source spans; ids do not shift.
  DocMapBuilder maps(inputs.front()->doc_base());
  std::uint32_t doc_count = 0;
  bool have_all_maps = true;
  for (const auto& seg : inputs) {
    doc_count += seg->doc_count();
    if (seg->doc_map() == nullptr) {
      have_all_maps = false;
      continue;
    }
    maps.append(*seg->doc_map());
  }
  if (have_all_maps) {
    auto map_written = maps.try_write(live_docmap_path(dir, out_id));
    if (!map_written.has_value()) return fail(map_written.error());
  }

  // Commit: splice the merged entry over the window. flush() may have
  // appended segments meanwhile, but only this (serialized) code removes
  // entries, so the window is still present, contiguous, by id. The new
  // manifest is built as a candidate and in-memory state only mutates
  // after the commit lands on disk.
  {
    std::lock_guard lk(mu);
    Manifest next = manifest;
    auto& entries = next.entries;
    const auto first = std::find_if(entries.begin(), entries.end(), [&](const auto& e) {
      return e.segment_id == inputs.front()->id();
    });
    HET_CHECK(first != entries.end());
    const auto at = first - entries.begin();
    entries.erase(first, first + static_cast<std::ptrdiff_t>(inputs.size()));
    entries.insert(entries.begin() + at,
                   {out_id, inputs.front()->doc_base(), doc_count, stats.terms,
                    stats.output_bytes});
    auto committed = manifest_write(dir, next);
    if (!committed.has_value()) return fail(committed.error());
    manifest = std::move(next);
    // Old segments die when the last snapshot holding them drops.
    for (const auto& seg : inputs) seg->mark_obsolete();
    auto published = publish_locked();
    if (!published.has_value()) {
      compaction_failures.add();
      return Error{published.error().code,
                   "merge committed but snapshot refresh failed: " +
                       published.error().message};
    }
  }

  compactions.add();
  compaction_bytes.add(stats.output_bytes);
  compaction_seconds.add(timer.seconds());
  return true;
}

// ---------------------------------------------------------------- accessors

std::shared_ptr<const LiveSnapshot> IndexWriter::snapshot() const {
  return state_->set.snapshot();
}

Manifest IndexWriter::manifest() const {
  std::lock_guard lk(state_->mu);
  return state_->manifest;
}

std::uint32_t IndexWriter::committed_docs() const {
  std::lock_guard lk(state_->mu);
  return state_->manifest.next_doc_id;
}

std::uint32_t IndexWriter::buffered_docs() const {
  std::lock_guard lk(state_->mu);
  return state_->buffered;
}

const std::string& IndexWriter::dir() const { return state_->dir; }

const obs::MetricsRegistry& IndexWriter::metrics() const { return state_->metrics; }

}  // namespace hetindex
