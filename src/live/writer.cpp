#include "live/writer.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dict/trie_table.hpp"
#include "io/env.hpp"
#include "live/memtable.hpp"
#include "live/tombstones.hpp"
#include "parse/parsed_block.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace hetindex {
namespace {

/// LSM tier of a segment: tier 0 holds sizes up to tier_base, each next
/// tier doubles the ceiling.
int size_tier(std::uint64_t bytes, std::uint64_t tier_base) {
  int t = 0;
  while (bytes > tier_base) {
    bytes >>= 1;
    ++t;
  }
  return t;
}

/// First window of `merge_factor` adjacent entries worth folding, or
/// {0,0}. Adjacency matters: only doc-contiguous segments may merge, or
/// the per-term byte concatenation would break doc-id order.
///
/// A window qualifies when the combined bytes land strictly above the
/// deepest input tier — every byte then climbs at least one tier per
/// merge, so a byte is rewritten O(log(total/tier_base)) times over the
/// index's lifetime. All-tier-0 windows are exempt from the climb rule:
/// tiny segments are always worth folding, and such runs collapse to a
/// single entry, so that case terminates too.
std::pair<std::size_t, std::size_t> find_merge_window(
    const std::vector<ManifestEntry>& entries, std::uint32_t merge_factor,
    std::uint64_t tier_base) {
  if (merge_factor < 2 || entries.size() < merge_factor) return {0, 0};
  for (std::size_t start = 0; start + merge_factor <= entries.size(); ++start) {
    std::uint64_t sum = 0;
    int max_tier = 0;
    for (std::size_t i = start; i < start + merge_factor; ++i) {
      sum += entries[i].file_bytes;
      max_tier = std::max(max_tier, size_tier(entries[i].file_bytes, tier_base));
    }
    if (max_tier == 0 || sum > (tier_base << max_tier)) {
      return {start, start + merge_factor};
    }
  }
  return {0, 0};
}

struct RewriteStats {
  std::uint64_t terms = 0;
  std::uint64_t output_bytes = 0;
};

/// The reclaiming counterpart of merge_segments: a k-way term merge that
/// decodes every list, drops postings of tombstoned documents (and their
/// positions), and re-encodes the survivors. Slower than the §III.F byte
/// concatenation — used only when the window still carries dead postings.
/// Writes the merged segment plus all three sidecars (.maxtf, .bmx, .blm)
/// durably; terms whose every posting is dead vanish from the output.
/// Inputs must share one codec and be given in ascending disjoint doc-id
/// order. (The concat merge cannot carry `.blm` forward — see
/// postings/bloom.hpp — so the rewrite path is where merged segments
/// regain their filters.)
Expected<RewriteStats> rewrite_segments(const std::vector<const SegmentReader*>& inputs,
                                        const TombstoneSet& dead, PostingCodec codec,
                                        BloomOptions bloom, const std::string& out_path) {
  SegmentWriter writer(out_path, codec);
  std::vector<std::uint32_t> max_tfs;
  BloomSidecar blooms(bloom);
  BlockIndex block_index;
  std::vector<PostingBlockEntry> blocks;
  std::vector<SegmentReader::TermCursor> cursors;
  cursors.reserve(inputs.size());
  for (const auto* reader : inputs) cursors.emplace_back(*reader);

  std::vector<std::uint32_t> docs, tfs, positions;
  std::vector<std::uint32_t> out_docs, out_tfs, out_positions;
  while (true) {
    const std::string* min_term = nullptr;
    for (const auto& c : cursors) {
      if (!c.valid()) continue;
      if (min_term == nullptr || c.term() < *min_term) min_term = &c.term();
    }
    if (min_term == nullptr) break;
    const std::string term = *min_term;  // copy: next() invalidates the ref

    // Inputs are doc-ascending and disjoint, so decoding matching cursors
    // in input order yields one sorted list.
    docs.clear();
    tfs.clear();
    positions.clear();
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      auto& c = cursors[i];
      if (!c.valid() || c.term() != term) continue;
      inputs[i]->decode(c.meta(), docs, tfs, &positions);
      c.next();
    }

    // Posting i owns the next tfs[i] position entries; dropping a posting
    // drops its slice.
    const bool positional = !positions.empty();
    out_docs.clear();
    out_tfs.clear();
    out_positions.clear();
    std::size_t pos_at = 0;
    for (std::size_t i = 0; i < docs.size(); ++i) {
      const std::uint32_t tf = tfs[i];
      if (!dead.contains(docs[i])) {
        out_docs.push_back(docs[i]);
        out_tfs.push_back(tf);
        if (positional) {
          out_positions.insert(out_positions.end(), positions.begin() + static_cast<std::ptrdiff_t>(pos_at),
                               positions.begin() + static_cast<std::ptrdiff_t>(pos_at + tf));
        }
      }
      pos_at += tf;
    }
    if (out_docs.empty()) continue;  // every posting was dead: term vanishes

    blocks.clear();
    const auto blob = encode_postings_blocked(codec, out_docs, out_tfs,
                                              positional ? &out_positions : nullptr, &blocks);
    writer.add_term(term, blob.data(), blob.size(),
                    static_cast<std::uint32_t>(out_docs.size()), out_docs.front(),
                    out_docs.back());
    block_index.add_term(blocks);
    max_tfs.push_back(*std::max_element(out_tfs.begin(), out_tfs.end()));
    blooms.add_term(out_docs.data(), out_docs.size());
  }

  RewriteStats stats;
  stats.terms = writer.term_count();
  auto file_bytes = writer.finalize();
  if (!file_bytes.has_value()) return file_bytes.error();
  stats.output_bytes = file_bytes.value();
  auto sidecar = write_max_tf_sidecar(out_path, max_tfs);
  if (!sidecar.has_value()) return sidecar.error();
  auto skip_table = write_block_index_sidecar(out_path, block_index);
  if (!skip_table.has_value()) return skip_table.error();
  auto filters = write_bloom_sidecar(out_path, blooms);
  if (!filters.has_value()) return filters.error();
  return stats;
}

}  // namespace

struct IndexWriter::State {
  std::string dir;
  IndexWriterOptions opts;

  obs::MetricsRegistry metrics;
  obs::Counter& flushes = metrics.counter("live_flushes_total");
  obs::Counter& documents = metrics.counter("live_documents_total");
  obs::Counter& flushed_bytes = metrics.counter("live_flushed_bytes_total");
  obs::Counter& deletes = metrics.counter("live_deletes_total");
  obs::Counter& updates = metrics.counter("live_updates_total");
  obs::Counter& compactions = metrics.counter("compactions_total");
  obs::Counter& compaction_bytes = metrics.counter("compaction_bytes_written_total");
  obs::Counter& reclaimed_docs_total = metrics.counter("compaction_reclaimed_docs_total");
  obs::TimeCounter& flush_seconds = metrics.time_counter("live_flush_seconds_total");
  obs::TimeCounter& compaction_seconds = metrics.time_counter("compaction_seconds_total");
  obs::Gauge& segments_active = metrics.gauge("live_segments_active");
  obs::Gauge& snapshot_refcount = metrics.gauge("snapshot_refcount");
  obs::Gauge& memtable_docs = metrics.gauge("live_memtable_docs");
  obs::Gauge& memtable_bytes = metrics.gauge("live_memtable_bytes");
  obs::Gauge& memtable_terms = metrics.gauge("live_memtable_terms");
  obs::Gauge& deleted_docs_gauge = metrics.gauge("live_deleted_docs");
  obs::Counter& flush_failures = metrics.counter("live_flush_failures_total");
  obs::Counter& delete_failures = metrics.counter("live_delete_failures_total");
  obs::Counter& compaction_failures = metrics.counter("compaction_failures_total");
  obs::Counter& recovery_dropped = metrics.counter("recovery_dropped_files_total");

  /// Guards the memtable, the tombstone set, the manifest, and commits
  /// (manifest rewrite + snapshot publication). Never held during a
  /// segment merge.
  mutable std::mutex mu;
  Parser parser;
  /// The searchable buffer: single writer (this State, under mu), lock-free
  /// readers via the MemtableView each published snapshot carries. Held by
  /// shared_ptr because snapshots (and cursors pinned on them) may outlive
  /// the flush that retires it.
  std::shared_ptr<Memtable> memtable;
  /// Committed tombstones; null until the first delete. Immutable —
  /// every delete batch swaps in a fresh copy-on-write set.
  std::shared_ptr<const TombstoneSet> tombstones;
  std::uint64_t buffered_bytes = 0;  ///< raw body bytes in the memtable
  std::uint64_t flush_seq = 0;       ///< parse-block sequence number
  Manifest manifest;                 ///< committed state
  SegmentSet set;

  /// Serializes merge work (background thread vs compact_now callers).
  std::mutex compaction_mu;
  std::mutex wake_mu;
  std::condition_variable_any wake_cv;
  bool wake = false;
  std::jthread compactor;  ///< last member: joins before the rest dies

  State(std::string d, IndexWriterOptions o)
      : dir(std::move(d)), opts(o), parser(o.parser) {
    reset_memtable();
  }

  /// Fresh memtable for the next doc range (after open() loads the
  /// manifest, and after every flush). Old memtables stay alive through
  /// the snapshots still viewing them.
  void reset_memtable() {
    memtable = std::make_shared<Memtable>(manifest.next_doc_id, opts.parser.record_positions);
  }

  void kick_compactor() {
    if (!opts.background_compaction) return;
    {
      std::lock_guard wake_lk(wake_mu);
      wake = true;
    }
    wake_cv.notify_one();
  }

  std::uint32_t add_document(const std::string& url, const std::string& body);
  std::uint32_t add_document_locked(const std::string& url, const std::string& body);
  Status delete_documents(const std::vector<std::uint32_t>& ids);
  Status delete_documents_locked(const std::vector<std::uint32_t>& ids);
  Expected<std::uint32_t> update_document(std::uint32_t doc_id, const std::string& url,
                                          const std::string& body);
  Expected<std::uint64_t> flush_locked();
  Status publish_locked();
  Status run_compactions(bool full_reclaim);
  Expected<bool> run_one_compaction(bool full_reclaim);
  /// Removes every on-disk artifact of an uncommitted segment attempt.
  void remove_segment_files(std::uint64_t segment_id) {
    const std::string seg = live_segment_path(dir, segment_id);
    (void)io::env().remove_file(seg);
    (void)io::env().remove_file(max_tf_sidecar_path(seg));
    (void)io::env().remove_file(block_index_sidecar_path(seg));
    (void)io::env().remove_file(bloom_sidecar_path(seg));
    (void)io::env().remove_file(live_docmap_path(dir, segment_id));
  }
};

// ---------------------------------------------------------------- open

Expected<IndexWriter> IndexWriter::open(const std::string& dir,
                                        IndexWriterOptions options) {
  std::filesystem::create_directories(dir);
  auto state = std::make_unique<State>(dir, options);

  auto committed = manifest_read(dir);
  if (committed.has_value()) {
    state->manifest = std::move(committed).value();
  } else if (committed.error().code != ErrorCode::kNotFound) {
    return committed.error();  // corrupt manifest: refuse to guess
  }

  // Recovery step 1: a MANIFEST.tmp is a rename that never happened.
  if (io::env().file_exists(manifest_path(dir) + ".tmp")) {
    (void)io::env().remove_file(manifest_path(dir) + ".tmp");
    state->recovery_dropped.add();
  }

  // Recovery step 2: the committed tombstone generation must load — a
  // committed delete never resurrects (kCorrupt otherwise). Bits at or
  // above next_doc_id named memtable documents that died with the crash;
  // those doc ids WILL be reassigned, so truncate the bits away durably
  // before serving, or a reborn id would inherit a stale delete.
  if (state->manifest.tombstone_gen != 0) {
    auto tombs = tombstones_read(dir, state->manifest.tombstone_gen);
    if (!tombs.has_value()) {
      return Error{ErrorCode::kCorrupt, "committed tombstone generation unreadable: " +
                                            tombs.error().message};
    }
    auto full = std::make_shared<const TombstoneSet>(std::move(tombs).value());
    const std::uint64_t durable = full->count_below(state->manifest.next_doc_id);
    if (durable == full->count()) {
      state->tombstones = std::move(full);
    } else {
      std::vector<std::uint32_t> kept;
      kept.reserve(durable);
      full->for_each_in_range(0, state->manifest.next_doc_id,
                              [&](std::uint32_t doc) { kept.push_back(doc); });
      Manifest next = state->manifest;
      std::shared_ptr<const TombstoneSet> truncated;
      if (kept.empty()) {
        next.tombstone_gen = 0;
        next.tombstone_docs = 0;
      } else {
        truncated = TombstoneSet::with(nullptr, kept);
        next.tombstone_gen = state->manifest.tombstone_gen + 1;
        next.tombstone_docs = truncated->count();
        auto written = tombstones_write(dir, next.tombstone_gen, *truncated);
        if (!written.has_value()) return written.error();
      }
      auto recommitted = manifest_write(dir, next);
      if (!recommitted.has_value()) return recommitted.error();
      state->manifest = std::move(next);
      state->tombstones = std::move(truncated);
      state->recovery_dropped.add();
    }
  }

  // Recovery step 3: anything on disk the manifest does not name is a
  // leftover from a crash between sidecar write and manifest rename — drop
  // it. Removals go through the Env so the crash harness sees (and can
  // fault) them, and each one counts in recovery_dropped_files_total.
  std::vector<bool> committed_ids;  // indexed by segment id
  for (const auto& e : state->manifest.entries) {
    if (e.segment_id >= committed_ids.size()) committed_ids.resize(e.segment_id + 1);
    committed_ids[e.segment_id] = true;
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0 && name.find('.') != std::string::npos) {
      const std::uint64_t id = std::strtoull(name.c_str() + 4, nullptr, 10);
      if (id < committed_ids.size() && committed_ids[id]) continue;
      (void)io::env().remove_file(entry.path().string());
      state->recovery_dropped.add();
    } else if (name.rfind("tomb-", 0) == 0) {
      const std::uint64_t gen = std::strtoull(name.c_str() + 5, nullptr, 10);
      if (gen == state->manifest.tombstone_gen) continue;
      (void)io::env().remove_file(entry.path().string());
      state->recovery_dropped.add();
    }
  }

  // The memtable allocated at construction assumed doc base 0; rebase it
  // on the recovered manifest (it is empty — no work is lost).
  state->reset_memtable();

  auto snap = snapshot_from_manifest(dir, state->manifest);
  if (!snap.has_value()) return snap.error();
  state->set.publish(std::move(snap).value());
  state->segments_active.set(static_cast<std::int64_t>(state->manifest.entries.size()));
  state->deleted_docs_gauge.set(
      state->tombstones == nullptr ? 0
                                   : static_cast<std::int64_t>(state->tombstones->count()));

  IndexWriter writer(std::move(state));
  if (options.background_compaction) {
    State* s = writer.state_.get();
    s->compactor = std::jthread([s](std::stop_token st) {
      std::unique_lock lk(s->wake_mu);
      while (true) {
        if (!s->wake_cv.wait(lk, st, [s] { return s->wake; })) return;
        s->wake = false;
        lk.unlock();
        // Failures are absorbed here (counted in compaction_failures_total);
        // the next flush re-kicks the policy, which retries the same window.
        (void)s->run_compactions(/*full_reclaim=*/false);
        lk.lock();
      }
    });
  }
  return writer;
}

IndexWriter::IndexWriter(std::unique_ptr<State> state) : state_(std::move(state)) {}
IndexWriter::IndexWriter(IndexWriter&&) noexcept = default;
IndexWriter& IndexWriter::operator=(IndexWriter&&) noexcept = default;

IndexWriter::~IndexWriter() {
  if (state_ == nullptr) return;
  state_->compactor.request_stop();
  state_->wake_cv.notify_all();
}

// ---------------------------------------------------------------- ingest

std::uint32_t IndexWriter::add_document(const std::string& url, const std::string& body) {
  return state_->add_document(url, body);
}

std::uint32_t IndexWriter::State::add_document(const std::string& url,
                                               const std::string& body) {
  std::lock_guard lk(mu);
  return add_document_locked(url, body);
}

std::uint32_t IndexWriter::State::add_document_locked(const std::string& url,
                                                      const std::string& body) {
  const std::uint32_t doc_id = memtable->begin_document(url);
  // One-document parse batch: local id 0, globalized by the block base, so
  // the memtable's postings carry absolute doc ids — the invariant that
  // lets flush write blobs compaction can concatenate without re-encoding.
  const std::vector<Document> docs{{0, url, body}};
  const ParsedBlock block = parser.parse(docs, flush_seq, /*parser_id=*/0, doc_id);
  // Re-assemble full terms from the parser's trie grouping (prefix lives in
  // the group, suffix in the posting) — the same reconstruction CpuIndexer
  // performs, so live and batch index the exact same term stream.
  std::string term;
  for (const auto& group : block.groups) {
    term = trie_prefix(group.trie_idx);
    const std::size_t prefix_len = term.size();
    auto add = [&](std::string_view suffix, std::uint32_t position) {
      term.resize(prefix_len);
      term.append(suffix);
      memtable->add_occurrence(term, position);
    };
    if (!group.positions.empty()) {
      for_each_posting_positional(
          group, [&](std::uint32_t, std::string_view suffix, std::uint32_t position) {
            add(suffix, position);
          });
    } else {
      for_each_posting(group,
                       [&](std::uint32_t, std::string_view suffix) { add(suffix, 0); });
    }
  }
  memtable->finish_document(block.doc_tokens.empty() ? 0 : block.doc_tokens[0]);
  buffered_bytes += body.size();
  documents.add();
  // The document becomes searchable NOW: republish over the same open
  // segments with the memtable watermark advanced past it. Pure in-memory
  // snapshot rebuild — no segment opens, cannot fail.
  HET_CHECK(publish_locked().has_value());
  if (opts.flush_threshold_bytes > 0 && buffered_bytes >= opts.flush_threshold_bytes) {
    // An auto-flush failure keeps the memtable intact (flush_locked rolls
    // back); the next threshold crossing retries. Counted in
    // live_flush_failures_total — callers wanting the error call flush().
    (void)flush_locked();
  }
  return doc_id;
}

// ---------------------------------------------------------------- mutate

Status IndexWriter::delete_document(std::uint32_t doc_id) {
  return state_->delete_documents({doc_id});
}

Status IndexWriter::delete_documents(const std::vector<std::uint32_t>& ids) {
  return state_->delete_documents(ids);
}

Status IndexWriter::State::delete_documents(const std::vector<std::uint32_t>& ids) {
  std::lock_guard lk(mu);
  return delete_documents_locked(ids);
}

Status IndexWriter::State::delete_documents_locked(const std::vector<std::uint32_t>& ids) {
  const std::uint64_t assigned =
      static_cast<std::uint64_t>(manifest.next_doc_id) + memtable->doc_count();
  for (const std::uint32_t id : ids) {
    if (id >= assigned) {
      return Error{ErrorCode::kInvalidArgument,
                   "delete of unassigned doc id " + std::to_string(id)};
    }
  }
  std::uint64_t newly = 0;
  auto next_set = TombstoneSet::with(tombstones.get(), ids, &newly);
  if (newly == 0) return Unit{};  // all already tombstoned: nothing to commit

  // Write-ahead, like segments: the new generation is durable on disk
  // BEFORE the manifest commit that names it, so a committed delete can
  // never resurrect. On any failure the previous state stays committed.
  const std::uint64_t gen = manifest.tombstone_gen + 1;
  auto fail = [&](Error e) -> Status {
    (void)io::env().remove_file(tombstone_path(dir, gen));
    delete_failures.add();
    return e;
  };
  auto written = tombstones_write(dir, gen, *next_set);
  if (!written.has_value()) return fail(written.error());
  Manifest next = manifest;
  next.tombstone_gen = gen;
  next.tombstone_docs = next_set->count();
  auto recommitted = manifest_write(dir, next);
  if (!recommitted.has_value()) return fail(recommitted.error());

  const std::uint64_t old_gen = manifest.tombstone_gen;
  manifest = std::move(next);
  tombstones = std::move(next_set);
  deletes.add(newly);
  // Same reuse-everything republish as add: cannot fail.
  HET_CHECK(publish_locked().has_value());
  // The superseded generation is garbage — readers hold the decoded bitmap
  // in memory, never the file.
  if (old_gen != 0) (void)io::env().remove_file(tombstone_path(dir, old_gen));
  // Deletes can make a window reclaim-worthy without any flush happening.
  kick_compactor();
  return Unit{};
}

Expected<std::uint32_t> IndexWriter::update_document(std::uint32_t doc_id,
                                                     const std::string& url,
                                                     const std::string& body) {
  return state_->update_document(doc_id, url, body);
}

Expected<std::uint32_t> IndexWriter::State::update_document(std::uint32_t doc_id,
                                                            const std::string& url,
                                                            const std::string& body) {
  std::lock_guard lk(mu);
  // Delete + re-add under one lock: no interleaved writer can observe the
  // gap, and the snapshot published by the re-add carries both effects.
  auto removed = delete_documents_locked({doc_id});
  if (!removed.has_value()) return removed.error();
  updates.add();
  return add_document_locked(url, body);
}

// ---------------------------------------------------------------- flush

Expected<std::uint64_t> IndexWriter::flush() {
  std::lock_guard lk(state_->mu);
  return state_->flush_locked();
}

Expected<std::uint64_t> IndexWriter::State::flush_locked() {
  if (memtable->doc_count() == 0) return std::uint64_t{0};
  const WallTimer timer;

  const std::uint64_t segment_id = manifest.next_segment_id;
  const std::uint32_t doc_base = manifest.next_doc_id;
  HET_CHECK(memtable->doc_base() == doc_base);
  const std::uint32_t flushed_docs = memtable->doc_count();

  // Freeze the memtable at today's watermark and enumerate its terms in
  // sorted order with fully decoded lists. Tombstoned docs flush as-is:
  // the search layer keeps filtering them, compaction reclaims them.
  const MemtableView frozen(memtable);
  SegmentWriter writer(live_segment_path(dir, segment_id), opts.codec);
  std::vector<std::uint32_t> max_tfs;
  BloomSidecar blooms(opts.bloom);
  BlockIndex block_index;
  std::vector<PostingBlockEntry> blocks;
  frozen.for_each_term_postings([&](std::string_view term,
                                    const std::vector<std::uint32_t>& list_docs,
                                    const std::vector<std::uint32_t>& tfs,
                                    const std::vector<std::uint32_t>& positions) {
    // Blocked encode: the skip rows drop out of the chunking, so flushed
    // segments get the same Block-Max sidecar as batch-built ones.
    blocks.clear();
    const auto blob = encode_postings_blocked(
        opts.codec, list_docs, tfs, memtable->positional() ? &positions : nullptr, &blocks);
    writer.add_term(term, blob.data(), blob.size(),
                    static_cast<std::uint32_t>(list_docs.size()), list_docs.front(),
                    list_docs.back());
    block_index.add_term(blocks);
    // Score-bound and Bloom sidecars come for free here: the lists are
    // still decoded.
    max_tfs.push_back(*std::max_element(tfs.begin(), tfs.end()));
    blooms.add_term(list_docs.data(), list_docs.size());
  });
  const std::uint64_t term_count = writer.term_count();

  // Any failure from here to the manifest commit rolls back to a clean
  // directory: partial files removed, memtable and committed state
  // untouched, writer still usable. Segment, sidecar and doc map are all
  // durable (fsynced) BEFORE the commit, so a durable manifest never names
  // data still sitting in the page cache.
  auto fail = [&](Error e) -> Expected<std::uint64_t> {
    remove_segment_files(segment_id);
    flush_failures.add();
    return e;
  };

  auto file_bytes = writer.finalize();
  if (!file_bytes.has_value()) return fail(file_bytes.error());
  auto sidecar = write_max_tf_sidecar(live_segment_path(dir, segment_id), max_tfs);
  if (!sidecar.has_value()) return fail(sidecar.error());
  auto skip_table =
      write_block_index_sidecar(live_segment_path(dir, segment_id), block_index);
  if (!skip_table.has_value()) return fail(skip_table.error());
  auto filters = write_bloom_sidecar(live_segment_path(dir, segment_id), blooms);
  if (!filters.has_value()) return fail(filters.error());

  std::vector<std::string> urls;
  std::vector<std::uint32_t> doc_tokens;
  urls.reserve(flushed_docs);
  doc_tokens.reserve(flushed_docs);
  for (std::uint32_t doc = doc_base; doc < doc_base + flushed_docs; ++doc) {
    auto loc = frozen.locate(doc);
    HET_CHECK(loc.has_value());
    urls.push_back(std::move(loc->url));
    doc_tokens.push_back(loc->token_count);
  }
  DocMapBuilder maps(doc_base);
  maps.add_file(doc_base, static_cast<std::uint32_t>(segment_id), urls, doc_tokens);
  auto map_written = maps.try_write(live_docmap_path(dir, segment_id));
  if (!map_written.has_value()) return fail(map_written.error());

  // Commit point: manifest rename. A crash before this line leaves stray
  // seg files that the next open() removes; after it, the segment is live.
  Manifest next = manifest;
  next.next_segment_id = segment_id + 1;
  next.next_doc_id = doc_base + flushed_docs;
  next.entries.push_back({segment_id, doc_base, flushed_docs, term_count,
                          file_bytes.value(), /*reclaimed_docs=*/0});
  auto recommitted = manifest_write(dir, next);
  if (!recommitted.has_value()) return fail(recommitted.error());
  manifest = std::move(next);

  // Swap the segment in for the memtable before publishing, so exactly one
  // of the two covers [doc_base, doc_base+flushed_docs) in the new
  // snapshot. The retiring memtable stays alive through older snapshots'
  // views (and any cursors pinning it).
  reset_memtable();
  buffered_bytes = 0;
  ++flush_seq;
  auto published = publish_locked();

  flushes.add();
  flushed_bytes.add(file_bytes.value());
  flush_seconds.add(timer.seconds());

  kick_compactor();
  if (!published.has_value()) {
    // The commit is durable — only the in-memory snapshot refresh failed
    // (e.g. the fresh segment would not map). Readers keep the previous
    // snapshot; a reopen serves the new commit.
    return Error{published.error().code,
                 "segment committed but snapshot refresh failed: " +
                     published.error().message};
  }
  return segment_id;
}

/// Rebuilds the published snapshot from the committed manifest + memtable
/// + tombstone set, reusing already-open segments. Caller holds mu. kIo
/// when a freshly committed segment cannot be opened — the previous
/// snapshot stays published. Infallible when every manifest entry is
/// already open (the add/delete republish path).
Status IndexWriter::State::publish_locked() {
  const auto current = set.snapshot();
  std::vector<std::shared_ptr<LiveSegment>> segments;
  segments.reserve(manifest.entries.size());
  for (const auto& e : manifest.entries) {
    std::shared_ptr<LiveSegment> reused;
    for (const auto& seg : current->segments()) {
      if (seg->id() == e.segment_id) {
        reused = seg;
        break;
      }
    }
    if (reused == nullptr) {
      auto opened = LiveSegment::open(dir, e.segment_id, e.doc_base, e.doc_count);
      if (!opened.has_value()) return opened.error();
      reused = std::move(opened).value();
    }
    segments.push_back(std::move(reused));
  }
  // The view freezes the finished-document watermark here, on the writer
  // thread; SegmentSet::publish's release store makes everything below it
  // visible to any thread that acquires the snapshot.
  std::shared_ptr<const MemtableView> view;
  if (memtable->doc_count() > 0) {
    view = std::make_shared<const MemtableView>(memtable);
  }
  snapshot_refcount.set(static_cast<std::int64_t>(current.use_count()));
  set.publish(std::make_shared<const LiveSnapshot>(std::move(segments), std::move(view),
                                                   tombstones));
  segments_active.set(static_cast<std::int64_t>(manifest.entries.size()));
  memtable_docs.set(static_cast<std::int64_t>(memtable->doc_count()));
  memtable_bytes.set(static_cast<std::int64_t>(memtable->bytes_used()));
  memtable_terms.set(static_cast<std::int64_t>(memtable->distinct_terms()));
  deleted_docs_gauge.set(
      tombstones == nullptr ? 0 : static_cast<std::int64_t>(tombstones->count()));
  return Unit{};
}

// ---------------------------------------------------------------- compaction

Status IndexWriter::compact_now() { return state_->run_compactions(/*full_reclaim=*/true); }

Status IndexWriter::State::run_compactions(bool full_reclaim) {
  // Serialized: the background thread and compact_now callers take turns;
  // each pass folds one window, cascading until the tiers are stable.
  std::lock_guard serialize(compaction_mu);
  while (true) {
    auto more = run_one_compaction(full_reclaim);
    if (!more.has_value()) return more.error();
    if (!more.value()) return Unit{};
  }
}

Expected<bool> IndexWriter::State::run_one_compaction(bool full_reclaim) {
  // Pick a window and allocate the output id under mu; the merge itself
  // runs unlocked against immutable inputs.
  std::vector<std::shared_ptr<LiveSegment>> inputs;
  std::uint64_t out_id = 0;
  bool rewrite = false;
  std::shared_ptr<const TombstoneSet> dead;
  std::uint64_t reclaimed_out = 0;    ///< reclaimed_docs of the output entry
  std::uint64_t newly_reclaimed = 0;  ///< docs this pass physically drops
  {
    std::lock_guard lk(mu);
    auto [begin, end] =
        find_merge_window(manifest.entries, opts.merge_factor, opts.tier_base_bytes);
    if (begin == end && tombstones != nullptr) {
      // No size-tier window — look for a segment worth rewriting purely to
      // reclaim tombstoned docs. Background passes wait until a quarter of
      // the doc range is dead (one delete should not rewrite a big
      // segment); compact_now reclaims everything outstanding.
      for (std::size_t i = 0; i < manifest.entries.size(); ++i) {
        const auto& e = manifest.entries[i];
        const std::uint64_t dead_docs = tombstones->count_in_range(e.doc_base, e.doc_count);
        if (dead_docs <= e.reclaimed_docs) continue;
        if (full_reclaim || (dead_docs - e.reclaimed_docs) * 4 >= e.doc_count) {
          begin = i;
          end = i + 1;
          break;
        }
      }
    }
    if (begin == end) return false;
    const auto snap = set.snapshot();
    std::uint64_t dead_in_window = 0;
    std::uint64_t already_reclaimed = 0;
    // Snapshot segments are doc_base-ordered like manifest entries.
    for (std::size_t i = begin; i < end; ++i) {
      HET_CHECK(snap->segments()[i]->id() == manifest.entries[i].segment_id);
      inputs.push_back(snap->segments()[i]);
      const auto& e = manifest.entries[i];
      if (tombstones != nullptr) {
        dead_in_window += tombstones->count_in_range(e.doc_base, e.doc_count);
      }
      already_reclaimed += e.reclaimed_docs;
    }
    // A window still carrying dead postings merges by rewrite (decode, drop
    // tombstoned entries, re-encode); a clean window takes the §III.F byte
    // concatenation. The output's reclaimed_docs records the range's
    // tombstone count as of this instant — deletes landing during the merge
    // simply leave the output eligible again.
    rewrite = dead_in_window > already_reclaimed;
    dead = tombstones;
    reclaimed_out = rewrite ? dead_in_window : already_reclaimed;
    newly_reclaimed = rewrite ? dead_in_window - already_reclaimed : 0;
    out_id = manifest.next_segment_id++;
  }

  // Any failure before the commit removes the merge output and leaves the
  // committed set untouched; the skipped out_id is harmless (ids just gap).
  auto fail = [&](Error e) -> Expected<bool> {
    remove_segment_files(out_id);
    compaction_failures.add();
    return e;
  };

  const WallTimer timer;
  std::vector<const SegmentReader*> readers;
  readers.reserve(inputs.size());
  for (const auto& seg : inputs) readers.push_back(&seg->reader());
  std::uint64_t out_terms = 0;
  std::uint64_t out_bytes = 0;
  if (rewrite) {
    const auto rewritten = rewrite_segments(readers, *dead, opts.codec, opts.bloom,
                                            live_segment_path(dir, out_id));
    if (!rewritten.has_value()) return fail(rewritten.error());
    out_terms = rewritten.value().terms;
    out_bytes = rewritten.value().output_bytes;
  } else {
    const auto merged = merge_segments(readers, live_segment_path(dir, out_id));
    if (!merged.has_value()) return fail(merged.error());
    out_terms = merged.value().terms;
    out_bytes = merged.value().output_bytes;
  }

  // Fold the doc maps, preserving per-source spans; ids do not shift (a
  // reclaimed doc keeps its map row — the id stays allocated forever).
  DocMapBuilder maps(inputs.front()->doc_base());
  std::uint32_t doc_count = 0;
  bool have_all_maps = true;
  for (const auto& seg : inputs) {
    doc_count += seg->doc_count();
    if (seg->doc_map() == nullptr) {
      have_all_maps = false;
      continue;
    }
    maps.append(*seg->doc_map());
  }
  if (have_all_maps) {
    auto map_written = maps.try_write(live_docmap_path(dir, out_id));
    if (!map_written.has_value()) return fail(map_written.error());
  }

  // Commit: splice the merged entry over the window. flush() may have
  // appended segments meanwhile, but only this (serialized) code removes
  // entries, so the window is still present, contiguous, by id. The new
  // manifest is built as a candidate and in-memory state only mutates
  // after the commit lands on disk.
  {
    std::lock_guard lk(mu);
    Manifest next = manifest;
    auto& entries = next.entries;
    const auto first = std::find_if(entries.begin(), entries.end(), [&](const auto& e) {
      return e.segment_id == inputs.front()->id();
    });
    HET_CHECK(first != entries.end());
    const auto at = first - entries.begin();
    entries.erase(first, first + static_cast<std::ptrdiff_t>(inputs.size()));
    entries.insert(entries.begin() + at,
                   {out_id, inputs.front()->doc_base(), doc_count, out_terms, out_bytes,
                    reclaimed_out});
    auto recommitted = manifest_write(dir, next);
    if (!recommitted.has_value()) return fail(recommitted.error());
    manifest = std::move(next);
    // Old segments die when the last snapshot holding them drops.
    for (const auto& seg : inputs) seg->mark_obsolete();
    auto published = publish_locked();
    if (!published.has_value()) {
      compaction_failures.add();
      return Error{published.error().code,
                   "merge committed but snapshot refresh failed: " +
                       published.error().message};
    }
  }

  compactions.add();
  compaction_bytes.add(out_bytes);
  if (newly_reclaimed != 0) reclaimed_docs_total.add(newly_reclaimed);
  compaction_seconds.add(timer.seconds());
  return true;
}

// ---------------------------------------------------------------- accessors

std::shared_ptr<const LiveSnapshot> IndexWriter::snapshot() const {
  return state_->set.snapshot();
}

Manifest IndexWriter::manifest() const {
  std::lock_guard lk(state_->mu);
  return state_->manifest;
}

std::uint32_t IndexWriter::committed_docs() const {
  std::lock_guard lk(state_->mu);
  return state_->manifest.next_doc_id;
}

std::uint32_t IndexWriter::buffered_docs() const {
  std::lock_guard lk(state_->mu);
  return state_->memtable->doc_count();
}

std::uint64_t IndexWriter::deleted_docs() const {
  std::lock_guard lk(state_->mu);
  return state_->tombstones == nullptr ? 0 : state_->tombstones->count();
}

const std::string& IndexWriter::dir() const { return state_->dir; }

const obs::MetricsRegistry& IndexWriter::metrics() const { return state_->metrics; }

}  // namespace hetindex
