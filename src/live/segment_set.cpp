#include "live/segment_set.hpp"

#include <algorithm>
#include <limits>

#include "io/env.hpp"
#include "postings/cursor.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"

namespace hetindex {

LiveSegment::LiveSegment(std::uint64_t id, std::uint32_t doc_base,
                         std::uint32_t doc_count, SegmentReader reader,
                         std::optional<DocMap> doc_map, std::string seg_path,
                         std::string map_path)
    : id_(id),
      doc_base_(doc_base),
      doc_count_(doc_count),
      reader_(std::move(reader)),
      doc_map_(std::move(doc_map)),
      seg_path_(std::move(seg_path)),
      map_path_(std::move(map_path)) {}

Expected<std::shared_ptr<LiveSegment>> LiveSegment::open(const std::string& dir,
                                                         std::uint64_t segment_id,
                                                         std::uint32_t doc_base,
                                                         std::uint32_t doc_count) {
  std::string seg_path = live_segment_path(dir, segment_id);
  auto reader = SegmentReader::try_open(seg_path);
  if (!reader.has_value()) return reader.error();
  std::string map_path = live_docmap_path(dir, segment_id);
  std::optional<DocMap> map;
  if (file_exists(map_path)) map = DocMap::open(map_path);
  auto seg = std::shared_ptr<LiveSegment>(
      new LiveSegment(segment_id, doc_base, doc_count, std::move(reader).value(),
                      std::move(map), std::move(seg_path), std::move(map_path)));
  // Sidecars are optional — a segment written before either format existed
  // serves without tight bounds / block skipping — but a sidecar that is
  // present yet corrupt fails the open instead of silently degrading.
  auto bounds = read_max_tf_sidecar(seg->seg_path_, seg->reader_.term_count());
  if (bounds.has_value()) {
    seg->max_tfs_ = std::move(bounds).value();
  } else if (bounds.error().code != ErrorCode::kNotFound) {
    return bounds.error();
  }
  auto blocks = read_block_index_sidecar(seg->seg_path_, seg->reader_.term_count());
  if (blocks.has_value()) {
    auto consistent = validate_block_index(seg->reader_, blocks.value());
    if (!consistent.has_value()) return consistent.error();
    seg->block_index_ = std::move(blocks).value();
  } else if (blocks.error().code != ErrorCode::kNotFound) {
    return blocks.error();
  }
  auto blooms = read_bloom_sidecar(seg->seg_path_, seg->reader_.term_count());
  if (blooms.has_value()) {
    seg->blooms_ = std::move(blooms).value();
  } else if (blooms.error().code != ErrorCode::kNotFound) {
    return blooms.error();
  }
  return seg;
}

LiveSegment::~LiveSegment() {
  if (!obsolete_.load(std::memory_order_acquire)) return;
  // Last reference to a compacted-away segment: reclaim its files — best
  // effort, the manifest no longer names them. Through the Env so the
  // crash harness sees the unlinks in the write trace. The mapping is
  // closed by the member destructors running after this body.
  (void)io::env().remove_file(seg_path_);
  (void)io::env().remove_file(max_tf_sidecar_path(seg_path_));
  (void)io::env().remove_file(block_index_sidecar_path(seg_path_));
  (void)io::env().remove_file(bloom_sidecar_path(seg_path_));
  (void)io::env().remove_file(map_path_);
}

namespace {
/// Monotone process-wide snapshot identity; see LiveSnapshot::snapshot_id().
std::atomic<std::uint64_t> g_next_snapshot_id{1};
}  // namespace

LiveSnapshot::LiveSnapshot(std::vector<std::shared_ptr<LiveSegment>> segments,
                           std::shared_ptr<const MemtableView> memtable,
                           std::shared_ptr<const TombstoneSet> tombstones)
    : segments_(std::move(segments)),
      memtable_(std::move(memtable)),
      tombstones_(std::move(tombstones)),
      snapshot_id_(g_next_snapshot_id.fetch_add(1, std::memory_order_relaxed)) {
  std::sort(segments_.begin(), segments_.end(),
            [](const auto& a, const auto& b) { return a->doc_base() < b->doc_base(); });
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (i > 0) {
      const auto& prev = *segments_[i - 1];
      HET_CHECK_MSG(prev.doc_base() + prev.doc_count() <= segments_[i]->doc_base(),
                    "live segments must cover disjoint ascending doc ranges");
    }
    total_docs_ += segments_[i]->doc_count();
  }
  if (memtable_ != nullptr) {
    if (memtable_->doc_count() == 0) {
      memtable_ = nullptr;  // an empty view contributes nothing
    } else {
      HET_CHECK_MSG(segments_.empty() ||
                        segments_.back()->doc_base() + segments_.back()->doc_count() <=
                            memtable_->doc_base(),
                    "memtable doc range must follow every committed segment");
      total_docs_ += memtable_->doc_count();
    }
  }
  if (tombstones_ != nullptr) {
    // Clamp to this snapshot's id space: a tombstone for a memtable doc the
    // writer has assigned but not published here must not skew the count.
    deleted_docs_ = tombstones_->count_below(total_docs_);
  }
}

LiveSnapshot::TokenStats LiveSnapshot::token_stats() const {
  // Exact integer arithmetic throughout (token counts are uint32s; the
  // sums stay far below 2^53): subtracting a reclaimed doc's tokens yields
  // the bit-identical avgdl a fresh build of the survivors would compute.
  TokenStats stats;
  for (const auto& seg : segments_) {
    const DocMap* map = seg->doc_map();
    if (map == nullptr || map->doc_count() == 0) continue;
    stats.token_sum += map->token_sum();
    stats.live_docs += map->doc_count();
    if (tombstones_ != nullptr) {
      tombstones_->for_each_in_range(seg->doc_base(), seg->doc_count(),
                                     [&](std::uint32_t doc) {
                                       if (!map->contains(doc)) return;
                                       stats.token_sum -= map->location(doc).token_count;
                                       --stats.live_docs;
                                     });
    }
  }
  if (memtable_ != nullptr) {
    stats.token_sum += memtable_->token_sum();
    stats.live_docs += memtable_->doc_count();
    if (tombstones_ != nullptr) {
      tombstones_->for_each_in_range(memtable_->doc_base(), memtable_->doc_count(),
                                     [&](std::uint32_t doc) {
                                       stats.token_sum -= memtable_->doc_tokens(doc);
                                       --stats.live_docs;
                                     });
    }
  }
  return stats;
}

double LiveSnapshot::average_doc_tokens() const {
  const TokenStats stats = token_stats();
  return stats.live_docs == 0 ? 0.0
                              : static_cast<double>(stats.token_sum) /
                                    static_cast<double>(stats.live_docs);
}

std::optional<std::uint32_t> LiveSnapshot::max_tf(std::string_view term) const {
  std::optional<std::uint32_t> best;
  for (const auto& seg : segments_) {
    const auto ordinal = seg->reader().find(term);
    if (!ordinal) continue;
    const auto* tfs = seg->max_tfs();
    // One sidecar-less segment holding the term invalidates the bound —
    // better no bound than one that can wrongly prune.
    if (tfs == nullptr) return std::nullopt;
    const std::uint32_t tf = (*tfs)[static_cast<std::size_t>(*ordinal)];
    best = best ? std::max(*best, tf) : tf;
  }
  if (memtable_ != nullptr) {
    const auto mem = memtable_->max_tf(term);
    if (mem) best = best ? std::max(*best, *mem) : *mem;
  }
  return best;
}

std::optional<QueryPostings> LiveSnapshot::lookup(std::string_view term) const {
  QueryPostings out;
  bool found = false;
  // Segments are doc_base-ascending and doc-disjoint (memtable docs above
  // them all), so appending per-part results in order yields one globally
  // sorted list.
  for (const auto& seg : segments_) {
    const auto ordinal = seg->reader().find(term);
    if (!ordinal) continue;
    found = true;
    seg->reader().decode(seg->reader().meta(*ordinal), out.doc_ids, out.tfs,
                         &out.positions);
  }
  if (memtable_ != nullptr && memtable_->lookup(term, out)) found = true;
  if (!found) return std::nullopt;
  return out;
}

std::unique_ptr<PostingsCursor> LiveSnapshot::open_cursor(std::string_view term,
                                                          bool with_positions) const {
  std::vector<std::unique_ptr<PostingsCursor>> parts;
  for (const auto& seg : segments_) {
    const auto ordinal = seg->reader().find(term);
    if (!ordinal) continue;
    const auto m = seg->reader().meta(*ordinal);
    if (m.count == 0) continue;
    const auto* skip = seg->block_index();
    if (skip != nullptr) {
      const auto blob = seg->reader().raw_blob(m);
      const auto rows = skip->blocks(*ordinal);
      // The pin keeps the mapping alive even if compaction obsoletes the
      // segment while a cursor is outstanding. Positions come for free:
      // the segment cursor re-decodes its current block on demand.
      parts.push_back(
          make_segment_cursor(blob.first, blob.second, rows.first, rows.second, seg));
    } else {
      auto decoded = std::make_shared<QueryPostings>();
      seg->reader().decode(m, decoded->doc_ids, decoded->tfs,
                           with_positions ? &decoded->positions : nullptr);
      parts.push_back(make_decoded_cursor(std::move(decoded)));
    }
  }
  if (memtable_ != nullptr) {
    if (with_positions) {
      // Position chunks do not align with posting chunk boundaries, so the
      // borrowed block refs below cannot carry them — materialize the
      // memtable part instead (it is bounded by the flush threshold).
      auto decoded = std::make_shared<QueryPostings>();
      if (memtable_->lookup(term, *decoded)) {
        parts.push_back(make_decoded_cursor(std::move(decoded)));
      }
    } else {
      auto blocks = memtable_->cursor_blocks(term);
      if (!blocks.empty()) {
        // The pin keeps the memtable arena alive past a flush that resets
        // the writer's buffer while this cursor is outstanding.
        parts.push_back(make_memtable_cursor(std::move(blocks), memtable_->pin()));
      }
    }
  }
  if (parts.empty()) return nullptr;
  if (parts.size() == 1) return std::move(parts.front());
  return make_concat_cursor(std::move(parts));
}

BloomChain LiveSnapshot::bloom_chain(std::string_view term) const {
  BloomChain chain;
  for (const auto& seg : segments_) {
    if (seg->doc_count() == 0) continue;
    const BloomSidecar* blooms = seg->blooms();
    if (blooms == nullptr) continue;  // uncovered range: the chain passes it
    const auto ordinal = seg->reader().find(term);
    if (!ordinal) {
      // The segment covers the range but holds no list for the term: any
      // candidate inside it is definitely absent. An all-zero filter would
      // say the same; an explicit empty-ordinal link is cheaper, but the
      // BloomChain contract keys rejection on the sidecar, so just skip —
      // conjunctions still drop these docs at the follower seek.
      continue;
    }
    chain.add_link({seg->doc_base(), seg->doc_base() + seg->doc_count() - 1, blooms,
                    *ordinal});
  }
  return chain;
}

std::optional<QueryPostings> LiveSnapshot::lookup_range(
    std::string_view term, std::uint32_t min_doc, std::uint32_t max_doc,
    std::size_t* segments_touched) const {
  if (segments_touched) *segments_touched = 0;
  QueryPostings out;
  bool found = false;
  for (const auto& seg : segments_) {
    // Segment-level narrowing first: skip without even a dictionary probe.
    if (seg->doc_count() > 0 &&
        (seg->doc_base() > max_doc || seg->doc_base() + seg->doc_count() - 1 < min_doc)) {
      continue;
    }
    const auto ordinal = seg->reader().find(term);
    if (!ordinal) continue;
    found = true;
    const auto m = seg->reader().meta(*ordinal);
    if (m.max_doc < min_doc || m.min_doc > max_doc) continue;  // per-term narrowing
    if (segments_touched) ++*segments_touched;
    QueryPostings raw;
    seg->reader().decode(m, raw.doc_ids, raw.tfs);
    for (std::size_t i = 0; i < raw.doc_ids.size(); ++i) {
      if (raw.doc_ids[i] >= min_doc && raw.doc_ids[i] <= max_doc) {
        out.doc_ids.push_back(raw.doc_ids[i]);
        out.tfs.push_back(raw.tfs[i]);
      }
    }
  }
  if (!found) return std::nullopt;
  return out;
}

void LiveSnapshot::for_each_term(const std::function<bool(std::string_view)>& fn) const {
  // K-way cursor merge with dedup: a term indexed before and after a flush
  // boundary appears in several segments (and possibly the memtable) but
  // is reported once. The memtable contributes a pre-sorted term list
  // merged in as one more way.
  std::vector<std::string> mem_terms;
  if (memtable_ != nullptr) {
    memtable_->for_each_term([&](std::string_view t) { mem_terms.emplace_back(t); });
  }
  std::size_t mem_at = 0;
  std::vector<SegmentReader::TermCursor> cursors;
  cursors.reserve(segments_.size());
  for (const auto& seg : segments_) cursors.emplace_back(seg->reader());
  while (true) {
    const std::string* min_term = nullptr;
    for (const auto& c : cursors) {
      if (c.valid() && (min_term == nullptr || c.term() < *min_term)) {
        min_term = &c.term();
      }
    }
    if (mem_at < mem_terms.size() &&
        (min_term == nullptr || mem_terms[mem_at] < *min_term)) {
      min_term = &mem_terms[mem_at];
    }
    if (min_term == nullptr) return;
    const std::string term = *min_term;
    if (!fn(term)) return;
    for (auto& c : cursors) {
      while (c.valid() && c.term() == term) c.next();
    }
    if (mem_at < mem_terms.size() && mem_terms[mem_at] == term) ++mem_at;
  }
}

std::uint64_t LiveSnapshot::term_count() const {
  std::uint64_t n = 0;
  for_each_term([&](std::string_view) {
    ++n;
    return true;
  });
  return n;
}

std::vector<std::string> LiveSnapshot::terms_with_prefix(std::string_view prefix) const {
  std::vector<std::string> out;
  for (const auto& seg : segments_) {
    auto part = seg->reader().terms_with_prefix(prefix);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  if (memtable_ != nullptr) {
    auto part = memtable_->terms_with_prefix(
        prefix, std::numeric_limits<std::size_t>::max());
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<DocLocation> LiveSnapshot::locate(std::uint32_t doc_id) const {
  if (is_deleted(doc_id)) return std::nullopt;
  for (const auto& seg : segments_) {
    const DocMap* map = seg->doc_map();
    if (map != nullptr && map->contains(doc_id)) return map->location(doc_id);
  }
  if (memtable_ != nullptr) return memtable_->locate(doc_id);
  return std::nullopt;
}

Expected<std::shared_ptr<const LiveSnapshot>> snapshot_from_manifest(
    const std::string& dir, const Manifest& m) {
  std::vector<std::shared_ptr<LiveSegment>> segments;
  segments.reserve(m.entries.size());
  for (const auto& e : m.entries) {
    auto seg = LiveSegment::open(dir, e.segment_id, e.doc_base, e.doc_count);
    if (!seg.has_value()) return seg.error();
    segments.push_back(std::move(seg).value());
  }
  std::shared_ptr<const TombstoneSet> tombstones;
  if (m.tombstone_gen != 0) {
    auto set = tombstones_read(dir, m.tombstone_gen);
    if (!set.has_value()) {
      // The manifest committed this generation, so its absence or damage
      // means deletes could resurrect — refuse to serve.
      return Error{ErrorCode::kCorrupt,
                   "committed tombstone generation unreadable: " + set.error().message};
    }
    tombstones = std::make_shared<const TombstoneSet>(std::move(set).value());
  }
  return std::make_shared<const LiveSnapshot>(std::move(segments), nullptr,
                                              std::move(tombstones));
}

Expected<LiveIndex> LiveIndex::open(const std::string& dir) {
  auto manifest = manifest_read(dir);
  if (!manifest.has_value()) return manifest.error();
  auto snap = snapshot_from_manifest(dir, manifest.value());
  if (!snap.has_value()) return snap.error();
  LiveIndex idx(dir);
  idx.snap_ = std::move(snap).value();
  return idx;
}

}  // namespace hetindex
