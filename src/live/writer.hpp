#pragma once
/// \file writer.hpp
/// Live incremental indexing (docs/LIVE_INDEXING.md): an LSM-style writer
/// on top of the batch pipeline's components. Documents stream through the
/// same parse → dictionary → postings path as IndexBuilder, accumulating
/// in an in-memory buffer; flush() freezes the buffer into one numbered
/// immutable segment (SegmentWriter format, absolute doc ids) plus a
/// per-segment doc map, and commits it by atomically rewriting the
/// MANIFEST. A background thread applies a tiered merge policy, folding
/// same-tier runs of adjacent segments into one via the §III.F
/// byte-concatenation merge — postings are never re-encoded.
///
/// Readers are never blocked: every commit publishes a new immutable
/// LiveSnapshot behind an atomic pointer (segment_set.hpp); queries run
/// against whatever snapshot they grabbed, and replaced segments are
/// unlinked only when the last holder lets go.

#include <cstdint>
#include <memory>
#include <string>

#include "live/manifest.hpp"
#include "live/segment_set.hpp"
#include "obs/metrics.hpp"
#include "parse/parser.hpp"
#include "util/error.hpp"

namespace hetindex {

struct IndexWriterOptions {
  /// Auto-flush once this many raw document bytes are buffered. 0 disables
  /// auto-flush (explicit flush() only — what the equivalence tests use).
  std::uint64_t flush_threshold_bytes = 4ull << 20;
  /// Fold this many adjacent same-tier segments per merge (LSM fan-in).
  std::uint32_t merge_factor = 4;
  /// Segment-size boundary of tier 0; tier n covers sizes up to
  /// tier_base_bytes << n. Merged output typically lands one tier up.
  std::uint64_t tier_base_bytes = 64ull << 10;
  /// Run the merge policy on a background thread after every flush. When
  /// false, compaction runs only via compact_now().
  bool background_compaction = true;
  PostingCodec codec = PostingCodec::kVByte;
  ParserConfig parser;
};

/// Single-writer ingestion handle over a live index directory. One writer
/// owns the directory; any number of threads may query concurrently via
/// snapshot(). The writer itself is externally synchronized (one thread,
/// or callers lock) — like the paper's pipeline, parsing/indexing state is
/// shared-nothing per owner.
class IndexWriter {
 public:
  /// Opens (or creates) the live directory `dir`. Recovers to the last
  /// committed manifest: stray segment files from a crashed flush or
  /// compaction — on disk but not committed — are removed, as is any
  /// MANIFEST.tmp left mid-rename. kCorrupt when the manifest or a
  /// committed segment fails validation.
  static Expected<IndexWriter> open(const std::string& dir, IndexWriterOptions options = {});

  IndexWriter(IndexWriter&&) noexcept;
  IndexWriter& operator=(IndexWriter&&) noexcept;
  /// Stops background compaction. Buffered (unflushed) documents are
  /// dropped — call flush() first to commit them.
  ~IndexWriter();

  /// Parses and indexes one document into the in-memory buffer, assigning
  /// the next global doc id. May trigger an auto-flush (see
  /// flush_threshold_bytes); an auto-flush I/O failure keeps the buffer
  /// intact (counted in live_flush_failures_total, retried at the next
  /// threshold crossing). Returns the assigned doc id.
  std::uint32_t add_document(const std::string& url, const std::string& body);

  /// Freezes the buffer into segment files, commits the manifest, and
  /// publishes the new snapshot. No-op returning 0 when the buffer is
  /// empty; otherwise returns the new segment's id. Kicks the background
  /// compactor. kIo on write/fsync failure: the buffer and the committed
  /// snapshot are untouched, partial segment files are removed, and the
  /// writer stays usable — call flush() again once the fault clears.
  Expected<std::uint64_t> flush();

  /// Runs the merge policy to completion on the calling thread (flushes
  /// nothing). Safe alongside background compaction — merges are
  /// serialized internally. kIo when a merge could not be written durably
  /// (the committed set is untouched; counted in compaction_failures_total).
  Status compact_now();

  /// The current committed view. Lock-free; holding the returned pointer
  /// keeps every segment in it (and its files) alive.
  [[nodiscard]] std::shared_ptr<const LiveSnapshot> snapshot() const;

  /// Committed manifest state (copy) — what a reopen would serve.
  [[nodiscard]] Manifest manifest() const;

  /// Documents committed to segments (excludes the buffer).
  [[nodiscard]] std::uint32_t committed_docs() const;
  /// Documents sitting in the in-memory buffer.
  [[nodiscard]] std::uint32_t buffered_docs() const;

  [[nodiscard]] const std::string& dir() const;

  /// Writer metrics: live_flushes_total, live_documents_total,
  /// live_flushed_bytes_total, live_flush_seconds_total, compactions_total,
  /// compaction_bytes_written_total, compaction_seconds_total,
  /// live_segments_active, snapshot_refcount, plus the durability set —
  /// live_flush_failures_total, compaction_failures_total,
  /// recovery_dropped_files_total (io_retries_total and
  /// fsync_failures_total live in io::io_metrics()).
  [[nodiscard]] const obs::MetricsRegistry& metrics() const;

 private:
  struct State;
  explicit IndexWriter(std::unique_ptr<State> state);

  std::unique_ptr<State> state_;
};

}  // namespace hetindex
