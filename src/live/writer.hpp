#pragma once
/// \file writer.hpp
/// Live mutable indexing (docs/LIVE_INDEXING.md): an LSM-style writer on
/// top of the batch pipeline's components. Documents stream through the
/// same parser as IndexBuilder into a searchable in-memory memtable
/// (live/memtable.hpp) that every published snapshot carries — a document
/// is queryable the moment add_document returns, no flush in the
/// visibility path. flush() freezes the memtable into one numbered
/// immutable segment (SegmentWriter format, absolute doc ids) plus a
/// per-segment doc map, and commits it by atomically rewriting the
/// MANIFEST. A background thread applies a tiered merge policy, folding
/// same-tier runs of adjacent segments into one via the §III.F
/// byte-concatenation merge — postings are only re-encoded when a merge
/// doubles as physical reclaim of deleted documents.
///
/// Deletes and updates: delete_document records the doc id in an immutable
/// tombstone bitmap (live/tombstones.hpp), persisted write-ahead as a
/// CRC-guarded sidecar the MANIFEST names by generation. Postings are
/// never touched in place — the search layer filters tombstoned candidates
/// until compaction rewrites the affected segments and physically drops
/// them. update_document is delete + re-add under one lock: the new
/// revision gets a fresh doc id (ids never shift).
///
/// Readers are never blocked: every commit publishes a new immutable
/// LiveSnapshot behind an atomic pointer (segment_set.hpp); queries run
/// against whatever snapshot they grabbed, and replaced segments are
/// unlinked only when the last holder lets go.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "live/manifest.hpp"
#include "live/segment_set.hpp"
#include "obs/metrics.hpp"
#include "parse/parser.hpp"
#include "util/error.hpp"

namespace hetindex {

struct IndexWriterOptions {
  /// Auto-flush once this many raw document bytes are buffered. 0 disables
  /// auto-flush (explicit flush() only — what the equivalence tests use).
  std::uint64_t flush_threshold_bytes = 4ull << 20;
  /// Fold this many adjacent same-tier segments per merge (LSM fan-in).
  std::uint32_t merge_factor = 4;
  /// Segment-size boundary of tier 0; tier n covers sizes up to
  /// tier_base_bytes << n. Merged output typically lands one tier up.
  std::uint64_t tier_base_bytes = 64ull << 10;
  /// Run the merge policy on a background thread after every flush. When
  /// false, compaction runs only via compact_now().
  bool background_compaction = true;
  PostingCodec codec = PostingCodec::kVByte;
  /// Sizing of the per-term Bloom rejection filters (`.blm` sidecar)
  /// written beside every flushed or rewritten segment.
  BloomOptions bloom;
  ParserConfig parser;
};

/// Single-writer ingestion handle over a live index directory. One writer
/// owns the directory; any number of threads may query concurrently via
/// snapshot(). The writer itself is externally synchronized (one thread,
/// or callers lock) — like the paper's pipeline, parsing/indexing state is
/// shared-nothing per owner.
class IndexWriter {
 public:
  /// Opens (or creates) the live directory `dir`. Recovers to the last
  /// committed manifest: stray segment/tombstone files from a crashed
  /// commit — on disk but not named by the manifest — are removed, as is
  /// any MANIFEST.tmp left mid-rename. Tombstones over doc ids that never
  /// made it into a segment are truncated away durably (the docs they
  /// named died with the memtable, and the ids will be reassigned).
  /// kCorrupt when the manifest, a committed segment, or the committed
  /// tombstone generation fails validation.
  static Expected<IndexWriter> open(const std::string& dir, IndexWriterOptions options = {});

  IndexWriter(IndexWriter&&) noexcept;
  IndexWriter& operator=(IndexWriter&&) noexcept;
  /// Stops background compaction. Memtable (unflushed) documents are
  /// dropped — call flush() first to commit them. Committed deletes are
  /// already durable.
  ~IndexWriter();

  /// Parses and indexes one document into the searchable memtable,
  /// assigning the next global doc id, and publishes a snapshot that
  /// includes it — the document is queryable when this returns, before any
  /// flush. May trigger an auto-flush (see flush_threshold_bytes); an
  /// auto-flush I/O failure keeps the memtable intact (counted in
  /// live_flush_failures_total, retried at the next threshold crossing).
  /// Returns the assigned doc id.
  std::uint32_t add_document(const std::string& url, const std::string& body);

  /// Tombstones one document: from the moment this returns OK, no snapshot
  /// taken afterwards returns the doc from any query mode (snapshots taken
  /// before keep their view). Durable before acknowledged — the new
  /// tombstone generation is fsynced and committed via the MANIFEST, so a
  /// committed delete never resurrects across a crash. Idempotent: deleting
  /// an already-deleted id is a no-op (no I/O). kInvalidArgument for a doc
  /// id never assigned; kIo when the commit could not be written (the
  /// committed state is unchanged — retry once the fault clears).
  Status delete_document(std::uint32_t doc_id);
  /// Batch form: one tombstone generation + one manifest commit for the
  /// whole set (all-or-nothing).
  Status delete_documents(const std::vector<std::uint32_t>& ids);

  /// Replaces a document: tombstones `doc_id`, then indexes the new
  /// revision under a fresh doc id (returned). Both steps happen under one
  /// writer lock and the final published snapshot contains the new
  /// revision and not the old; the delete is durable when this returns,
  /// the re-add becomes durable at the next flush (like any add). On
  /// error the old document is untouched.
  Expected<std::uint32_t> update_document(std::uint32_t doc_id, const std::string& url,
                                          const std::string& body);

  /// Freezes the memtable into segment files, commits the manifest, and
  /// publishes the new snapshot. No-op returning 0 when the memtable is
  /// empty; otherwise returns the new segment's id. Kicks the background
  /// compactor. kIo on write/fsync failure: the memtable and the committed
  /// snapshot are untouched, partial segment files are removed, and the
  /// writer stays usable — call flush() again once the fault clears.
  /// Tombstoned documents are flushed as-is (still filtered at search);
  /// compaction reclaims them later.
  Expected<std::uint64_t> flush();

  /// Runs the merge policy to completion on the calling thread (flushes
  /// nothing), including physical reclaim: every segment still carrying
  /// tombstoned postings is rewritten without them. Safe alongside
  /// background compaction — merges are serialized internally. kIo when a
  /// merge could not be written durably (the committed set is untouched;
  /// counted in compaction_failures_total).
  Status compact_now();

  /// The current committed view. Lock-free; holding the returned pointer
  /// keeps every segment in it (and its files) alive.
  [[nodiscard]] std::shared_ptr<const LiveSnapshot> snapshot() const;

  /// Committed manifest state (copy) — what a reopen would serve.
  [[nodiscard]] Manifest manifest() const;

  /// Documents committed to segments (excludes the memtable).
  [[nodiscard]] std::uint32_t committed_docs() const;
  /// Documents sitting in the searchable memtable (flushed by the next
  /// flush()). Unlike the pre-memtable writer these are already visible
  /// to queries.
  [[nodiscard]] std::uint32_t buffered_docs() const;
  /// Tombstoned doc ids committed so far (segment + memtable docs alike).
  [[nodiscard]] std::uint64_t deleted_docs() const;

  [[nodiscard]] const std::string& dir() const;

  /// Writer metrics: live_flushes_total, live_documents_total,
  /// live_flushed_bytes_total, live_flush_seconds_total, compactions_total,
  /// compaction_bytes_written_total, compaction_seconds_total,
  /// compaction_reclaimed_docs_total, live_segments_active,
  /// snapshot_refcount, the memtable gauges (live_memtable_docs,
  /// live_memtable_bytes, live_memtable_terms), the mutation set
  /// (live_deletes_total, live_updates_total, live_deleted_docs,
  /// live_delete_failures_total), plus the durability set —
  /// live_flush_failures_total, compaction_failures_total,
  /// recovery_dropped_files_total (io_retries_total and
  /// fsync_failures_total live in io::io_metrics()).
  [[nodiscard]] const obs::MetricsRegistry& metrics() const;

 private:
  struct State;
  explicit IndexWriter(std::unique_ptr<State> state);

  std::unique_ptr<State> state_;
};

}  // namespace hetindex
