#pragma once
/// \file memtable.hpp
/// The searchable in-memory postings buffer of the live tier
/// (docs/LIVE_INDEXING.md). PR 3's IndexWriter buffered parsed documents in
/// the batch pipeline's dictionary and made them visible only at flush;
/// this replaces that buffer with a memtable that every LiveSnapshot can
/// query directly, so a document is searchable the moment add_document
/// returns — no flush in the visibility path.
///
/// Concurrency model: ONE writer (the IndexWriter, under its own mutex),
/// any number of lock-free readers. All data lives in an append-only Arena
/// — allocation never moves existing bytes, so readers hold raw pointers
/// captured at allocation time and never touch the Arena object itself.
/// Every (doc, tf) slot is written exactly once before the per-chunk
/// atomic `count` is release-stored; readers acquire-load counts and never
/// look past them. The one mutation after publication of a slot is the
/// tail tf-bump of the in-progress document — safe because that doc id is
/// ≥ every published watermark, and readers stop at the watermark *before*
/// reading the slot's tf.
///
/// "Immutable on publish" is a watermark, not a copy: a MemtableView
/// freezes the finished-document count at construction, and everything
/// below `doc_base + doc_count` was fully written before the snapshot that
/// carries the view was published (the SegmentSet publish/acquire pair
/// provides the happens-before edge). Appends after publish only ever add
/// doc ids at or above the watermark, which every older view ignores.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "postings/cursor.hpp"   // MemtableBlockRef
#include "postings/doc_map.hpp"  // DocLocation
#include "postings/query.hpp"    // QueryPostings
#include "util/arena.hpp"

namespace hetindex {

class MemtableView;

class Memtable {
 public:
  /// \param doc_base   global doc id of the first document added here
  /// \param positional record per-occurrence positions (phrase queries)
  Memtable(std::uint32_t doc_base, bool positional);
  Memtable(const Memtable&) = delete;
  Memtable& operator=(const Memtable&) = delete;

  // --- writer API (externally serialized; the IndexWriter's mutex) ---

  /// Starts the next document and returns its global doc id. `url` is
  /// copied into the arena.
  std::uint32_t begin_document(std::string_view url);
  /// Records one occurrence of `term` in the in-progress document.
  /// Repeated terms accumulate tf in place (the tail bump); positions are
  /// appended in occurrence order when positional.
  void add_occurrence(std::string_view term, std::uint32_t position);
  /// Completes the in-progress document with its token count. Only after
  /// this does the document count (and thus any later view's watermark)
  /// include it.
  void finish_document(std::uint32_t token_count);

  [[nodiscard]] std::uint32_t doc_base() const { return doc_base_; }
  /// Finished documents (writer thread only — readers use MemtableView).
  [[nodiscard]] std::uint32_t doc_count() const { return doc_count_w_; }
  [[nodiscard]] std::uint64_t token_sum() const { return token_sum_w_; }
  [[nodiscard]] std::uint64_t distinct_terms() const {
    return term_count_w_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t postings() const { return postings_w_; }
  [[nodiscard]] std::size_t bytes_used() const { return arena_.used_bytes(); }
  [[nodiscard]] bool positional() const { return positional_; }

 private:
  friend class MemtableView;

  /// A run of parallel (doc, tf) arrays for one term. `count` publishes
  /// fully written slots; slots beyond it are in flight. Chunks grow
  /// geometrically and are chained via `next` (set once, after the new
  /// chunk is fully initialized).
  struct PostChunk {
    std::atomic<PostChunk*> next{nullptr};
    std::atomic<std::uint32_t> count{0};
    std::uint32_t capacity = 0;
    std::uint32_t* docs = nullptr;
    std::uint32_t* tfs = nullptr;
  };
  /// Occurrence positions for one term, appended in stream order; posting
  /// i of the term owns the next tfs[i] entries.
  struct PosChunk {
    std::atomic<PosChunk*> next{nullptr};
    std::atomic<std::uint32_t> count{0};
    std::uint32_t capacity = 0;
    std::uint32_t* positions = nullptr;
  };
  /// One dictionary entry. Everything a reader dereferences (term bytes,
  /// head chunks) is written before the node is linked into its hash
  /// bucket with a release store. max_tf only grows, so a reader's
  /// (possibly newer-than-watermark) load is always a valid upper bound.
  struct TermNode {
    std::atomic<TermNode*> bucket_next{nullptr};
    const char* term = nullptr;
    std::uint32_t term_len = 0;
    std::atomic<std::uint32_t> max_tf{1};
    PostChunk* head = nullptr;
    PosChunk* pos_head = nullptr;
    // Writer-only tail state.
    PostChunk* tail = nullptr;
    PosChunk* pos_tail = nullptr;
    std::uint32_t last_doc = 0;
    std::uint64_t postings_w = 0;

    [[nodiscard]] std::string_view term_view() const { return {term, term_len}; }
  };
  struct DocMeta {
    const char* url = nullptr;
    std::uint32_t url_len = 0;
    std::uint32_t tokens = 0;
  };
  struct DocChunk;

  [[nodiscard]] TermNode* find_node(std::string_view term) const;
  TermNode* insert_node(std::string_view term, std::size_t bucket);
  PostChunk* new_post_chunk(std::uint32_t capacity);
  PosChunk* new_pos_chunk(std::uint32_t capacity);
  void append_position(TermNode* node, std::uint32_t position);
  [[nodiscard]] const DocMeta* meta_of(std::uint32_t doc) const;

  // --- reader helpers (limit = absolute doc id watermark, exclusive) ---
  /// Visible = the node has at least one posting below `limit`.
  [[nodiscard]] static bool node_visible(const TermNode* node, std::uint32_t limit);
  /// Appends postings below `limit` (and their positions, when requested
  /// and recorded); returns false when the term has none.
  bool read_postings(std::string_view term, std::uint32_t limit,
                     std::vector<std::uint32_t>& docs,
                     std::vector<std::uint32_t>& tfs,
                     std::vector<std::uint32_t>* positions) const;
  /// Chunk-per-block borrowed refs for the cursor layer; empty = absent.
  [[nodiscard]] std::vector<MemtableBlockRef> cursor_blocks(std::string_view term,
                                                            std::uint32_t limit) const;
  /// Visible term nodes in ascending term order.
  [[nodiscard]] std::vector<const TermNode*> sorted_visible_nodes(std::uint32_t limit) const;

  static constexpr std::size_t kBuckets = 1u << 13;
  static constexpr std::uint32_t kDocChunkCap = 256;
  static constexpr std::uint32_t kDocDirSlots = 8192;  // 2M docs per memtable
  static constexpr std::uint32_t kFirstPostCap = 8;
  static constexpr std::uint32_t kMaxPostCap = 512;
  static constexpr std::uint32_t kFirstPosCap = 16;
  static constexpr std::uint32_t kMaxPosCap = 1024;

  Arena arena_;
  const std::uint32_t doc_base_;
  const bool positional_;
  std::unique_ptr<std::atomic<TermNode*>[]> buckets_;
  std::unique_ptr<std::atomic<DocChunk*>[]> doc_dir_;

  // Writer-only counters; views copy them (on the writer thread) and the
  // snapshot publish makes the copies visible to readers.
  std::uint32_t doc_count_w_ = 0;
  std::uint32_t current_doc_ = 0;
  bool in_document_ = false;
  std::uint64_t token_sum_w_ = 0;
  // Atomic (relaxed) unlike its siblings: readers load it as a reserve()
  // hint in sorted_visible_nodes while the writer keeps inserting.
  std::atomic<std::uint64_t> term_count_w_{0};
  std::uint64_t postings_w_ = 0;
};

/// An immutable view of a Memtable at a published watermark. Construct on
/// the writer thread (it copies the writer-side counters), then share
/// freely: every reader method only sees documents below the watermark.
class MemtableView {
 public:
  explicit MemtableView(std::shared_ptr<const Memtable> mt);

  [[nodiscard]] std::uint32_t doc_base() const { return mt_->doc_base(); }
  [[nodiscard]] std::uint32_t doc_count() const { return doc_count_; }
  /// First doc id beyond the view (the watermark).
  [[nodiscard]] std::uint32_t doc_limit() const { return mt_->doc_base() + doc_count_; }
  /// Sum of token counts over the view's documents (collection stats).
  [[nodiscard]] std::uint64_t token_sum() const { return token_sum_; }
  [[nodiscard]] bool positional() const { return mt_->positional(); }

  /// Appends the term's postings (raw — tombstones are the search layer's
  /// concern, like LiveSnapshot::lookup). False when absent from the view.
  bool lookup(std::string_view term, QueryPostings& out) const;
  /// Borrowed block refs for make_memtable_cursor; empty when absent.
  [[nodiscard]] std::vector<MemtableBlockRef> cursor_blocks(std::string_view term) const;
  /// Max tf of the term within the view — an upper bound suitable for
  /// score-bound pruning (may overshoot by in-flight occurrences, never
  /// undershoots). nullopt when the term is absent.
  [[nodiscard]] std::optional<std::uint32_t> max_tf(std::string_view term) const;
  /// Token count of a document in [doc_base, doc_limit).
  [[nodiscard]] std::uint32_t doc_tokens(std::uint32_t doc) const;
  /// Doc metadata, shaped like a DocMap row. Memtable docs have no segment
  /// yet: file_seq is 0 and local_id is the offset from doc_base.
  [[nodiscard]] std::optional<DocLocation> locate(std::uint32_t doc) const;
  /// Visible terms in ascending order.
  void for_each_term(const std::function<void(std::string_view)>& fn) const;
  [[nodiscard]] std::vector<std::string> terms_with_prefix(std::string_view prefix,
                                                           std::size_t limit) const;
  [[nodiscard]] std::uint64_t term_count() const;

  /// Flush-side enumeration (writer thread): sorted terms with their full
  /// postings, scratch vectors reused across terms.
  void for_each_term_postings(
      const std::function<void(std::string_view term,
                               const std::vector<std::uint32_t>& docs,
                               const std::vector<std::uint32_t>& tfs,
                               const std::vector<std::uint32_t>& positions)>& fn) const;

  /// Keeps the arena alive from inside a PostingsCursor.
  [[nodiscard]] std::shared_ptr<const void> pin() const { return mt_; }

 private:
  std::shared_ptr<const Memtable> mt_;
  std::uint32_t doc_count_;
  std::uint64_t token_sum_;
};

}  // namespace hetindex
