#include "live/tombstones.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

#include "io/env.hpp"
#include "util/binary_io.hpp"
#include "util/crc32.hpp"

namespace hetindex {
namespace {
constexpr std::uint32_t kTombMagic = 0x424D4F54;  // "TOMB"
constexpr std::uint32_t kTombVersion = 1;
// magic(4) + version(4) + generation(8) + count(8) + words(8) + crc(4)
constexpr std::size_t kTombHeaderBytes = 32;
}  // namespace

std::uint64_t TombstoneSet::count_in_range(std::uint32_t base, std::uint64_t n) const {
  if (n == 0 || words_.empty()) return 0;
  const std::uint64_t begin = base;
  const std::uint64_t end = std::min<std::uint64_t>(begin + n, words_.size() * 64u);
  if (begin >= end) return 0;
  std::uint64_t total = 0;
  for (std::uint64_t w = begin / 64; w <= (end - 1) / 64; ++w) {
    std::uint64_t word = words_[w];
    const std::uint64_t lo = w * 64;
    if (begin > lo) word &= ~0ull << (begin - lo);
    if (end < lo + 64) word &= ~(~0ull << (end - lo));
    total += static_cast<std::uint64_t>(std::popcount(word));
  }
  return total;
}

std::shared_ptr<const TombstoneSet> TombstoneSet::with(
    const TombstoneSet* base, const std::vector<std::uint32_t>& ids,
    std::uint64_t* newly_set) {
  auto next = std::make_shared<TombstoneSet>();
  if (base != nullptr) *next = *base;
  std::uint64_t flipped = 0;
  for (const std::uint32_t doc : ids) {
    const std::size_t w = doc >> 6;
    if (w >= next->words_.size()) next->words_.resize(w + 1, 0);
    const std::uint64_t bit = 1ull << (doc & 63u);
    if ((next->words_[w] & bit) == 0) {
      next->words_[w] |= bit;
      ++flipped;
    }
  }
  next->count_ += flipped;
  if (newly_set != nullptr) *newly_set = flipped;
  return next;
}

std::string tombstone_path(const std::string& dir, std::uint64_t gen) {
  char name[32];
  std::snprintf(name, sizeof(name), "tomb-%04llu.tmb",
                static_cast<unsigned long long>(gen));
  return dir + "/" + name;
}

Status tombstones_write(const std::string& dir, std::uint64_t gen,
                        const TombstoneSet& set) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u32(kTombMagic);
  w.u32(kTombVersion);
  w.u64(gen);
  w.u64(set.count());
  const auto& words = set.words();
  w.u64(static_cast<std::uint64_t>(words.size()));
  if (!words.empty()) w.bytes(words.data(), words.size() * 8);
  w.u32(crc32(out.data(), out.size()));
  // Durable before the MANIFEST names this generation — write-ahead, like
  // segment files. No partial file survives a failed write.
  auto written = io::durable_write_file(tombstone_path(dir, gen), out);
  if (!written.has_value()) return written.error();
  return Unit{};
}

Expected<TombstoneSet> tombstones_read(const std::string& dir, std::uint64_t gen) {
  const std::string path = tombstone_path(dir, gen);
  if (!file_exists(path)) {
    return Error{ErrorCode::kNotFound, "no tombstone sidecar: " + path};
  }
  const auto data = read_file(path);
  if (data.size() < kTombHeaderBytes) {
    return Error{ErrorCode::kCorrupt, "tombstone sidecar truncated: " + path};
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data.data() + data.size() - 4, 4);
  if (crc32(data.data(), data.size() - 4) != stored_crc) {
    return Error{ErrorCode::kCorrupt, "tombstone sidecar crc mismatch: " + path};
  }
  ByteReader r(data.data(), data.size() - 4);
  if (r.u32() != kTombMagic) {
    return Error{ErrorCode::kCorrupt, "not a tombstone sidecar: " + path};
  }
  if (r.u32() != kTombVersion) {
    return Error{ErrorCode::kUnsupported, "unsupported tombstone version: " + path};
  }
  if (r.u64() != gen) {
    return Error{ErrorCode::kCorrupt, "tombstone generation mismatch: " + path};
  }
  TombstoneSet set;
  set.count_ = r.u64();
  const std::uint64_t n_words = r.u64();
  if (r.remaining() != n_words * 8) {
    return Error{ErrorCode::kCorrupt, "tombstone payload size mismatch: " + path};
  }
  set.words_.resize(n_words);
  if (n_words != 0) r.bytes(set.words_.data(), n_words * 8);
  std::uint64_t popcnt = 0;
  for (const std::uint64_t word : set.words_) {
    popcnt += static_cast<std::uint64_t>(std::popcount(word));
  }
  if (popcnt != set.count_) {
    return Error{ErrorCode::kCorrupt, "tombstone count disagrees with bitmap: " + path};
  }
  return set;
}

}  // namespace hetindex
