#pragma once
/// \file manifest.hpp
/// The commit record of a live index directory (docs/LIVE_INDEXING.md).
/// A live directory holds numbered immutable segments (`seg-0001.seg`,
/// each with a sibling doc map) plus one MANIFEST file naming the committed
/// segment set. The manifest is the only mutable file and the single
/// source of truth: a segment not listed in it does not exist, no matter
/// what is on disk.
///
/// Commits are atomic: the new manifest is written to MANIFEST.tmp, synced,
/// then renamed over MANIFEST — readers either see the old committed set or
/// the new one, never a torn state. A CRC32 footer rejects partially
/// written manifests, so a crash at any point leaves the previous commit
/// intact (the crash-recovery test exercises exactly this window).

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace hetindex {

/// One committed segment. `doc_count` is the width of the segment's doc id
/// range — tombstoned ids stay counted here (ids never shift), the live
/// count is derived by subtracting the tombstone bitmap.
struct ManifestEntry {
  std::uint64_t segment_id = 0;   ///< file number (seg-<id>.seg)
  std::uint32_t doc_base = 0;     ///< first global doc id in the segment
  std::uint32_t doc_count = 0;
  std::uint64_t term_count = 0;
  std::uint64_t file_bytes = 0;   ///< segment file size at commit time
  /// Tombstoned docs already physically absent from this segment's
  /// postings (dropped by a rewrite merge). The segment still carries dead
  /// postings when count_in_range(doc_base, doc_count) exceeds this — the
  /// compactor's reclaim trigger. Format v1 manifests read as 0.
  std::uint64_t reclaimed_docs = 0;
};

/// The committed state of a live index directory. Entries are kept in
/// ascending doc_base order — which is also segment-age order, because doc
/// ids only grow.
struct Manifest {
  std::uint64_t next_segment_id = 1;  ///< next file number to allocate
  std::uint32_t next_doc_id = 0;      ///< next global doc id to assign
  /// Committed tombstone sidecar generation (tomb-<gen>.tmb, live/
  /// tombstones.hpp); 0 = no deletes ever committed. The sidecar is written
  /// durably before the manifest commit that names it, so a committed
  /// generation is always readable — anything else is kCorrupt.
  std::uint64_t tombstone_gen = 0;
  std::uint64_t tombstone_docs = 0;  ///< deleted ids in that generation
  std::vector<ManifestEntry> entries;
};

/// `<dir>/MANIFEST`.
std::string manifest_path(const std::string& dir);
/// `<dir>/seg-<id>.seg` (zero-padded to keep directory listings sorted).
std::string live_segment_path(const std::string& dir, std::uint64_t segment_id);
/// `<dir>/seg-<id>.docmap`.
std::string live_docmap_path(const std::string& dir, std::uint64_t segment_id);

/// Reads the committed manifest. A missing file reports kNotFound (a fresh
/// directory, not an error for the writer); a bad magic, version or CRC
/// kCorrupt. Both format versions are accepted: v1 (pre-tombstone) entries
/// read with tombstone_gen/reclaimed_docs of 0; writes always emit v2.
Expected<Manifest> manifest_read(const std::string& dir);

/// Atomically and durably commits `m`: write MANIFEST.tmp, fsync it,
/// rename over MANIFEST, fsync the directory (docs/DURABILITY.md). Without
/// the first fsync a crash after the rename can surface a zero-length or
/// torn manifest; without the second the rename itself may be lost. kIo on
/// failure — the previous commit stays intact and no MANIFEST.tmp remains.
Status manifest_write(const std::string& dir, const Manifest& m);

}  // namespace hetindex
