#include "core/hetindex.hpp"

#include "text/porter.hpp"
#include "text/tokenizer.hpp"

namespace hetindex {

std::string normalize_term(std::string_view raw) {
  // Run the single token through the same path the parser uses.
  std::string result;
  tokenize(raw, [&](std::string_view tok) {
    if (result.empty()) result = porter_stem(tok);
  });
  return result;
}

PipelineReport IndexBuilder::build(const std::vector<std::string>& files,
                                   const std::string& output_dir) {
  PipelineConfig config = config_;
  config.output_dir = output_dir;
  PipelineEngine engine(config);
  return engine.build(files);
}

std::string version_string() {
  return std::to_string(Version::major) + "." + std::to_string(Version::minor) + "." +
         std::to_string(Version::patch);
}

}  // namespace hetindex
