#pragma once
/// \file hetindex.hpp
/// Public facade of the hetindex library — the one header downstream users
/// include. Reproduces "A Fast Algorithm for Constructing Inverted Files on
/// Heterogeneous Platforms" (Wei & JaJa, IPDPS 2011): a pipelined
/// parser/indexer system with a hybrid trie + B-tree dictionary, CPU/GPU
/// work splitting by term popularity, and per-run compressed postings
/// output.
///
/// Everything a downstream caller programs against is re-exported here;
/// examples and tools include only this header. The surface is organised
/// in seven groups:
///   Build        IndexBuilder, PipelineConfig (+validate()), PipelineEngine,
///                PipelineReport / RunRecord, PipelineProgress
///   Observe      obs::MetricsRegistry / MetricsSnapshot / StageSpan — live
///                queue depths, stall times and per-stage rates
///                (docs/OBSERVABILITY.md); PipelineReport::to_json()
///   Query        InvertedIndex (run-file or mmapped-segment backed),
///                boolean/phrase ops, BM25 ranking, DocMap, index
///                verification, the run-file merger, segment compaction
///   Serve        SearchBackend (the serving interface: QueryRequest in,
///                Expected<QueryResponse> out) with its implementations —
///                Searcher (single-node query facade, opened via
///                Searcher::open) and SearchService (thread-pooled
///                concurrent execution with admission control, caching,
///                deadlines; docs/SERVING.md). Requests carry a Query
///                AST — ranked bags, AND/OR trees, exact phrases,
///                NEAR-k proximity — built by parse_query() or the
///                Query:: factories (docs/QUERIES.md)
///   Cluster      the sharded scatter-gather serving tier: Cluster
///                (topology + global-id ingest), Partitioner (document /
///                term / block placement), Shard + ShardReplica, and
///                ShardRouter — a SearchBackend whose merged top-k is
///                bit-identical to a single-node build of the union
///                corpus (docs/CLUSTER.md)
///   Live         IndexWriter (real-time mutable indexing: documents are
///                searchable the moment add_document returns, deletes and
///                updates via tombstones), the searchable Memtable, tiered
///                compaction with physical reclaim, snapshot-isolated reads
///                (LiveSnapshot / LiveIndex; docs/LIVE_INDEXING.md)
///   Corpus       container files, the synthetic collection generator, the
///                sampling-based CPU/GPU work split
///   Evaluate     the DES platform simulator plus the single-node and
///                MapReduce baselines used by the paper's comparisons
///
/// Quick start:
///   hetindex::IndexBuilder builder;                 // paper defaults
///   auto report = builder.build(files, "out_dir");  // construct index
///   auto index = hetindex::InvertedIndex::open("out_dir", {}).value();
///   hetindex::DocMap docs =
///       hetindex::DocMap::open(hetindex::doc_map_path("out_dir"));
///   auto searcher =
///       hetindex::Searcher::open(hetindex::SearchSource::batch(index, docs))
///           .value();
///   hetindex::QueryRequest req;
///   req.query = hetindex::parse_query("parallelism").value();
///   auto response = searcher->search(req);  // Expected<QueryResponse>

#include <optional>
#include <string>
#include <string_view>
#include <vector>

// Build.
#include "pipeline/config.hpp"
#include "pipeline/engine.hpp"
#include "pipeline/report.hpp"

// Observe.
#include "obs/json.hpp"
#include "obs/metrics.hpp"

// Live indexing (docs/LIVE_INDEXING.md).
#include "live/manifest.hpp"
#include "live/memtable.hpp"
#include "live/segment_set.hpp"
#include "live/tombstones.hpp"
#include "live/writer.hpp"

// Query.
#include "postings/boolean_ops.hpp"
#include "postings/doc_map.hpp"
#include "postings/merger.hpp"
#include "postings/query.hpp"
#include "postings/ranking.hpp"
#include "postings/segment.hpp"
#include "postings/verify.hpp"

// Serve (docs/SERVING.md, docs/QUERIES.md).
#include "search/backend.hpp"
#include "search/query_ast.hpp"
#include "search/searcher.hpp"
#include "search/service.hpp"
#include "search/types.hpp"

// Cluster (docs/CLUSTER.md).
#include "cluster/cluster.hpp"
#include "cluster/partitioner.hpp"
#include "cluster/router.hpp"
#include "cluster/shard.hpp"

// Corpus.
#include "corpus/container.hpp"
#include "corpus/synthetic.hpp"
#include "index/sampler.hpp"

// Evaluate.
#include "baseline/baselines.hpp"
#include "mapreduce/mr_indexers.hpp"
#include "mapreduce/remote_lists.hpp"
#include "sim/pipeline_sim.hpp"

// Formatting helpers shared by the CLI/bench output.
#include "util/stats.hpp"

namespace hetindex {

// Observability types, promoted out of the obs:: sub-namespace for
// downstream ergonomics.
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::StageSpan;

/// Applies the parser's term normalization (lowercase, Porter stem) to a
/// query string so lookups match indexed terms.
std::string normalize_term(std::string_view raw);

/// High-level builder over PipelineEngine with ergonomic defaults.
class IndexBuilder {
 public:
  IndexBuilder() = default;
  explicit IndexBuilder(PipelineConfig config) : config_(std::move(config)) {}

  /// Fluent knobs for the common parameters.
  IndexBuilder& parsers(std::size_t m) {
    config_.parsers = m;
    return *this;
  }
  IndexBuilder& cpu_indexers(std::size_t n) {
    config_.cpu_indexers = n;
    return *this;
  }
  IndexBuilder& gpus(std::size_t n) {
    config_.gpus = n;
    return *this;
  }
  IndexBuilder& codec(PostingCodec codec) {
    config_.codec = codec;
    return *this;
  }
  IndexBuilder& merge_output(bool merge) {
    config_.merge_after_build = merge;
    return *this;
  }
  /// Also emit the single-file serving segment (see postings/segment.hpp);
  /// InvertedIndex::open() then serves from it via mmap.
  IndexBuilder& emit_segment(bool emit) {
    config_.emit_segment = emit;
    return *this;
  }
  /// Ingest readahead depth: container files in flight at once. 1 keeps
  /// the paper's serialized §III.F read discipline; >= 2 overlaps reads
  /// with parsing (io::AsyncReader). Output is bit-identical either way.
  IndexBuilder& read_prefetch(std::size_t depth) {
    config_.read_prefetch_depth = depth;
    return *this;
  }
  /// Live-progress hook, called after every completed single run.
  IndexBuilder& progress(std::function<void(const PipelineProgress&)> callback) {
    config_.progress = std::move(callback);
    return *this;
  }
  [[nodiscard]] PipelineConfig& config() { return config_; }

  /// Configuration problems that would make build() abort; empty == valid.
  /// Same structured error type as InvertedIndex::open(dir, OpenOptions).
  [[nodiscard]] std::vector<Error> validate() const { return config_.validate(); }

  /// Builds inverted files for the container files under `output_dir`.
  PipelineReport build(const std::vector<std::string>& files, const std::string& output_dir);

 private:
  PipelineConfig config_;
};

/// Library version.
struct Version {
  static constexpr int major = 1;
  static constexpr int minor = 7;
  static constexpr int patch = 0;
};
std::string version_string();

}  // namespace hetindex
