#pragma once
/// \file hetindex.hpp
/// Public facade of the hetindex library — the one header downstream users
/// include. Reproduces "A Fast Algorithm for Constructing Inverted Files on
/// Heterogeneous Platforms" (Wei & JaJa, IPDPS 2011): a pipelined
/// parser/indexer system with a hybrid trie + B-tree dictionary, CPU/GPU
/// work splitting by term popularity, and per-run compressed postings
/// output.
///
/// Quick start:
///   hetindex::IndexBuilder builder;                 // paper defaults
///   auto report = builder.build(files, "out_dir");  // construct index
///   auto index = hetindex::InvertedIndex::open("out_dir");
///   auto postings = index.lookup(hetindex::normalize_term("Parallelism"));

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/config.hpp"
#include "pipeline/engine.hpp"
#include "pipeline/report.hpp"
#include "postings/query.hpp"

namespace hetindex {

/// Applies the parser's term normalization (lowercase, Porter stem) to a
/// query string so lookups match indexed terms.
std::string normalize_term(std::string_view raw);

/// High-level builder over PipelineEngine with ergonomic defaults.
class IndexBuilder {
 public:
  IndexBuilder() = default;
  explicit IndexBuilder(PipelineConfig config) : config_(std::move(config)) {}

  /// Fluent knobs for the common parameters.
  IndexBuilder& parsers(std::size_t m) {
    config_.parsers = m;
    return *this;
  }
  IndexBuilder& cpu_indexers(std::size_t n) {
    config_.cpu_indexers = n;
    return *this;
  }
  IndexBuilder& gpus(std::size_t n) {
    config_.gpus = n;
    return *this;
  }
  IndexBuilder& codec(PostingCodec codec) {
    config_.codec = codec;
    return *this;
  }
  IndexBuilder& merge_output(bool merge) {
    config_.merge_after_build = merge;
    return *this;
  }
  [[nodiscard]] PipelineConfig& config() { return config_; }

  /// Builds inverted files for the container files under `output_dir`.
  PipelineReport build(const std::vector<std::string>& files, const std::string& output_dir);

 private:
  PipelineConfig config_;
};

/// Library version.
struct Version {
  static constexpr int major = 1;
  static constexpr int minor = 0;
  static constexpr int patch = 0;
};
std::string version_string();

}  // namespace hetindex
