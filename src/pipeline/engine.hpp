#pragma once
/// \file engine.hpp
/// The overall pipelined indexing system of Fig. 9: sampling →
/// {M parallel parsers | reorder buffer | N1 CPU + N2 GPU indexers per
/// single run} → dictionary combine/write. This is the *real-thread*
/// execution backend: it builds a correct, queryable on-disk index and
/// measures every stage's work, producing the RunRecords the DES platform
/// model replays for the scaling figures.

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/config.hpp"
#include "pipeline/report.hpp"

namespace hetindex {

class PipelineEngine {
 public:
  explicit PipelineEngine(PipelineConfig config);

  /// Builds the inverted files for `files` (container files, collection
  /// order) under config.output_dir and returns the full report. The
  /// output directory is created; it will contain run_<k>.post files,
  /// dictionary.bin, runs.dir and (optionally) merged.post.
  ///
  /// The configuration is validated first (PipelineConfig::validate());
  /// an invalid configuration is a programming error and aborts with the
  /// full error list.
  PipelineReport build(const std::vector<std::string>& files);

  /// The engine's metrics registry: live while a build runs (poll it from
  /// another thread, or via config.progress), final afterwards. The
  /// returned PipelineReport embeds a snapshot of it. Instruments
  /// accumulate over the engine's lifetime.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  PipelineConfig config_;
  obs::MetricsRegistry metrics_;
};

}  // namespace hetindex
