#pragma once
/// \file config.hpp
/// Pipeline configuration: the knobs of Fig. 9/10 — number of parallel
/// parsers (M), CPU indexers (N1), GPUs (N2) — plus output and ablation
/// options, configuration validation, and the live-progress hook.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "codec/posting_codecs.hpp"
#include "gpusim/gpu_spec.hpp"
#include "index/sampler.hpp"
#include "io/async_reader.hpp"
#include "parse/parser.hpp"
#include "util/error.hpp"

namespace hetindex {

/// Live build progress handed to PipelineConfig::progress after every
/// completed single run (Fig. 8). All fields are cumulative.
struct PipelineProgress {
  std::uint64_t runs_completed = 0;
  std::uint64_t files_total = 0;  ///< container files in the collection
  std::uint64_t documents = 0;
  std::uint64_t tokens = 0;
  std::uint64_t source_bytes = 0;  ///< uncompressed input indexed so far
  double elapsed_seconds = 0;

  [[nodiscard]] double throughput_mb_s() const {
    return elapsed_seconds > 0
               ? static_cast<double>(source_bytes) / (1024.0 * 1024.0) / elapsed_seconds
               : 0.0;
  }
};

struct PipelineConfig {
  /// M parallel parsers (paper's optimum on 8 cores: 6).
  std::size_t parsers = 2;
  /// N1 CPU indexers (paper's optimum with GPUs: 2).
  std::size_t cpu_indexers = 2;
  /// N2 GPU indexers (0 disables the GPU path entirely).
  std::size_t gpus = 2;
  /// Thread blocks per GPU (§IV.B: 480 is optimal on the C1060).
  std::uint32_t gpu_thread_blocks = 480;
  GpuSpec gpu_spec{};
  /// Postings compression (§III.E: variable-byte by default).
  PostingCodec codec = PostingCodec::kVByte;
  /// B-tree node string caches (ablation hook, §III.B.2).
  bool use_string_cache = true;
  /// Run the <10% post-pass that merges partial postings lists (§III.F).
  bool merge_after_build = false;
  /// Also fold the run files into a single-file serving segment
  /// (`index.seg`, postings/segment.hpp) at finalize; InvertedIndex::open
  /// then serves from the segment.
  bool emit_segment = false;
  /// Parsed-block buffers per parser before back-pressure stalls it.
  std::size_t buffers_per_parser = 2;
  /// Ingest readahead: container files in flight at once. 1 keeps the
  /// paper's §III.F serialized one-at-a-time discipline; >= 2 overlaps
  /// reads with parsing through io::AsyncReader. Index output is
  /// bit-identical across depths (delivery stays in collection order).
  std::size_t read_prefetch_depth = 4;
  /// Reads claimed/submitted per readahead wake (io_uring submission batch
  /// or worker claim size). Clamped to [1, read_prefetch_depth].
  std::size_t read_batch_files = 2;
  /// Which read mechanism backs the prefetcher. kAuto picks io_uring when
  /// compiled in (HETINDEX_IO_URING), runtime-usable and no Env override
  /// is installed, else the Env-routed pread pool.
  io::ReadBackend read_backend = io::ReadBackend::kAuto;
  SamplerConfig sampler{};
  ParserConfig parser{};
  /// Where run files, dictionary and directory are written.
  std::string output_dir = "hetindex_out";
  /// Optional live-progress hook, invoked from the indexing thread after
  /// every completed single run. Keep it cheap; it runs on the hot path.
  std::function<void(const PipelineProgress&)> progress;

  /// Checks the configuration for contradictions a build cannot survive
  /// (zero parsers, zero indexers, zero back-pressure buffers, GPUs with
  /// zero thread blocks, a degenerate sampler, an empty output dir).
  /// Returns one structured Error (code kInvalidArgument) per problem —
  /// the same error type InvertedIndex::open(dir, OpenOptions) reports —
  /// empty means valid. PipelineEngine::build() calls this first and
  /// refuses invalid configs.
  [[nodiscard]] std::vector<Error> validate() const;
};

}  // namespace hetindex
