#include "pipeline/report.hpp"

#include "obs/json.hpp"

namespace hetindex {
namespace {

using obs::json_append_string;
using obs::json_number;

void append_kv(std::string& out, const char* key, std::uint64_t v, bool comma = true) {
  json_append_string(out, key);
  out += ":" + std::to_string(v);
  if (comma) out += ",";
}

void append_kv(std::string& out, const char* key, double v, bool comma = true) {
  json_append_string(out, key);
  out += ":" + json_number(v);
  if (comma) out += ",";
}

void append_work(std::string& out, const std::vector<IndexerWorkStats>& work) {
  out += "[";
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (i) out += ",";
    out += "{";
    append_kv(out, "tokens", work[i].tokens);
    append_kv(out, "new_terms", work[i].new_terms);
    append_kv(out, "chars", work[i].chars);
    append_kv(out, "collections_touched", work[i].collections_touched, /*comma=*/false);
    out += "}";
  }
  out += "]";
}

}  // namespace

std::string PipelineReport::to_json() const {
  std::string out;
  out.reserve(4096 + runs.size() * 256);
  out += "{\"config\":{";
  append_kv(out, "parsers", static_cast<std::uint64_t>(config.parsers));
  append_kv(out, "cpu_indexers", static_cast<std::uint64_t>(config.cpu_indexers));
  append_kv(out, "gpus", static_cast<std::uint64_t>(config.gpus));
  append_kv(out, "gpu_thread_blocks", static_cast<std::uint64_t>(config.gpu_thread_blocks));
  append_kv(out, "buffers_per_parser", static_cast<std::uint64_t>(config.buffers_per_parser));
  append_kv(out, "read_prefetch_depth", static_cast<std::uint64_t>(config.read_prefetch_depth));
  append_kv(out, "read_batch_files", static_cast<std::uint64_t>(config.read_batch_files));
  out += "\"read_backend_requested\":";
  json_append_string(out, io::read_backend_name(config.read_backend));
  out += ",";
  out += "\"codec\":" + std::to_string(static_cast<int>(config.codec)) + ",";
  out += "\"merge_after_build\":";
  out += config.merge_after_build ? "true" : "false";
  out += ",\"emit_segment\":";
  out += config.emit_segment ? "true" : "false";
  out += ",\"output_dir\":";
  json_append_string(out, config.output_dir);
  out += "},";

  out += "\"read_backend\":";
  json_append_string(out, read_backend);
  out += ",";
  append_kv(out, "read_stall_seconds", read_stall_seconds);
  out += "\"error\":";
  if (error.has_value()) {
    out += "{\"code\":";
    json_append_string(out, error_code_name(error->code));
    out += ",\"message\":";
    json_append_string(out, error->message);
    out += "}";
  } else {
    out += "null";
  }
  out += ",";

  out += "\"stages\":{";
  append_kv(out, "sampling_seconds", sampling_seconds);
  append_kv(out, "parse_stage_seconds", parse_stage_seconds);
  append_kv(out, "index_stage_seconds", index_stage_seconds);
  append_kv(out, "dict_combine_seconds", dict_combine_seconds);
  append_kv(out, "dict_write_seconds", dict_write_seconds);
  append_kv(out, "merge_seconds", merge_seconds);
  append_kv(out, "segment_seconds", segment_seconds);
  append_kv(out, "total_seconds", total_seconds, /*comma=*/false);
  out += "},";

  out += "\"totals\":{";
  append_kv(out, "documents", documents);
  append_kv(out, "terms", terms);
  append_kv(out, "postings", postings);
  append_kv(out, "tokens", tokens);
  append_kv(out, "uncompressed_bytes", uncompressed_bytes);
  append_kv(out, "compressed_bytes", compressed_bytes);
  append_kv(out, "segment_bytes", segment_bytes);
  append_kv(out, "throughput_mb_s", throughput_mb_s(), /*comma=*/false);
  out += "},";

  out += "\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    if (i) out += ",";
    out += "{";
    append_kv(out, "run_id", r.run_id);
    append_kv(out, "doc_count", static_cast<std::uint64_t>(r.doc_count));
    append_kv(out, "tokens", r.tokens);
    append_kv(out, "source_bytes", r.source_bytes);
    append_kv(out, "compressed_bytes", r.compressed_bytes);
    append_kv(out, "payload_bytes", r.payload_bytes);
    append_kv(out, "read_seconds", r.read_seconds);
    append_kv(out, "decompress_seconds", r.decompress_seconds);
    append_kv(out, "parse_seconds", r.parse_seconds);
    out += "\"cpu_index_seconds\":[";
    for (std::size_t c = 0; c < r.cpu_index_seconds.size(); ++c) {
      if (c) out += ",";
      out += json_number(r.cpu_index_seconds[c]);
    }
    out += "],\"gpu_timings\":[";
    for (std::size_t g = 0; g < r.gpu_timings.size(); ++g) {
      if (g) out += ",";
      out += "{";
      append_kv(out, "pre_seconds", r.gpu_timings[g].pre_seconds);
      append_kv(out, "index_seconds", r.gpu_timings[g].index_seconds);
      append_kv(out, "post_seconds", r.gpu_timings[g].post_seconds, /*comma=*/false);
      out += "}";
    }
    out += "],";
    append_kv(out, "flush_seconds", r.flush_seconds, /*comma=*/false);
    out += "}";
  }
  out += "],";

  out += "\"cpu_work\":";
  append_work(out, cpu_work);
  out += ",\"gpu_work\":";
  append_work(out, gpu_work);
  out += ",\"metrics\":" + metrics.to_json();
  out += "}";
  return out;
}

}  // namespace hetindex
