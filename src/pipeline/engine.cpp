#include "pipeline/engine.hpp"

#include <filesystem>
#include <thread>

#include "index/indexer.hpp"
#include "io/env.hpp"
#include "obs/metrics.hpp"
#include "parse/read_scheduler.hpp"
#include "pipeline/reorder_buffer.hpp"
#include "postings/doc_map.hpp"
#include "postings/merger.hpp"
#include "postings/query.hpp"
#include "postings/run_file.hpp"
#include "postings/segment.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace hetindex {
namespace {

/// What a parser thread hands to the indexing stage.
struct ParsedWork {
  ParsedBlock block;
  std::vector<std::string> urls;  ///< Fig. 3 Step 1 doc table rows
  std::uint32_t doc_count = 0;
  std::uint64_t compressed_bytes = 0;
  std::uint64_t uncompressed_bytes = 0;
  double read_seconds = 0;
  double decompress_seconds = 0;
  double parse_seconds = 0;
};

/// Builds the collection→shard ownership map per §III.E. Shards
/// [0, n_cpu) belong to CPU indexers, [n_cpu, n_cpu + n_gpu) to GPUs.
struct Ownership {
  std::vector<std::vector<std::uint32_t>> cpu_sets;
  std::vector<std::vector<std::uint32_t>> gpu_sets;
};

Ownership assign_collections(const WorkSplit& split, std::size_t n_cpu, std::size_t n_gpu) {
  HET_CHECK_MSG(n_cpu + n_gpu >= 1, "need at least one indexer");
  Ownership own;
  own.cpu_sets.resize(n_cpu);
  own.gpu_sets.resize(n_gpu);

  // Popular collections → CPU indexers, token-balanced. Without CPU
  // indexers (GPU-only scenario (i) of §IV.B) they fall through to GPUs.
  if (n_cpu > 0) {
    own.cpu_sets = balance_popular(split.popular, split.sampled_tokens, n_cpu);
  }

  // Everything else — sampled-unpopular plus never-sampled — goes to the
  // GPUs by the paper's `i mod N2` rule; with no GPUs they join the CPU
  // sets round-robin.
  std::vector<bool> is_popular(kTrieCollections, false);
  if (n_cpu > 0) {
    for (const auto& set : own.cpu_sets)
      for (auto idx : set) is_popular[idx] = true;
  }
  for (std::uint32_t idx = 0; idx < kTrieCollections; ++idx) {
    if (is_popular[idx]) continue;
    if (n_gpu > 0) {
      own.gpu_sets[idx % n_gpu].push_back(idx);
    } else {
      own.cpu_sets[idx % n_cpu].push_back(idx);
    }
  }
  return own;
}

/// The engine-wide instrument handles, resolved once per build so hot
/// paths never touch the registry's name map. Names and units are
/// documented in docs/OBSERVABILITY.md.
struct PipelineInstruments {
  explicit PipelineInstruments(obs::MetricsRegistry& m)
      : documents(m.counter("pipeline_documents_total")),
        tokens(m.counter("pipeline_tokens_total")),
        postings(m.counter("pipeline_postings_total")),
        source_bytes(m.counter("pipeline_source_bytes_total")),
        compressed_bytes(m.counter("pipeline_compressed_bytes_total")),
        payload_bytes(m.counter("pipeline_payload_bytes_total")),
        runs(m.counter("pipeline_runs_total")),
        files_read(m.counter("parse_files_read_total")),
        sampling_seconds(m.time_counter("stage_sampling_seconds_total")),
        read_seconds(m.time_counter("stage_read_seconds_total")),
        disk_wait_seconds(m.time_counter("stage_disk_wait_seconds_total")),
        decompress_seconds(m.time_counter("stage_decompress_seconds_total")),
        parse_seconds(m.time_counter("stage_parse_seconds_total")),
        cpu_index_seconds(m.time_counter("stage_cpu_index_seconds_total")),
        gpu_index_seconds(m.time_counter("stage_gpu_index_seconds_total")),
        flush_seconds(m.time_counter("stage_flush_seconds_total")),
        dict_combine_seconds(m.time_counter("stage_dict_combine_seconds_total")),
        dict_write_seconds(m.time_counter("stage_dict_write_seconds_total")),
        merge_seconds(m.time_counter("stage_merge_seconds_total")),
        segment_seconds(m.time_counter("stage_segment_seconds_total")),
        run_parse(m.stat("run_parse_seconds")),
        run_index(m.stat("run_index_seconds")),
        run_flush(m.stat("run_flush_seconds")),
        run_throughput(m.histogram("run_throughput_mb_s", 0.0, 512.0, 32)),
        dictionary_terms(m.gauge("dictionary_terms")),
        popular_collections(m.gauge("sampler_popular_collections")),
        reorder_probe{&m.gauge("reorder_buffer_depth"),
                      &m.time_counter("reorder_buffer_producer_stall_seconds_total"),
                      &m.time_counter("reorder_buffer_consumer_stall_seconds_total")} {}

  obs::Counter& documents;
  obs::Counter& tokens;
  obs::Counter& postings;
  obs::Counter& source_bytes;
  obs::Counter& compressed_bytes;
  obs::Counter& payload_bytes;
  obs::Counter& runs;
  obs::Counter& files_read;
  obs::TimeCounter& sampling_seconds;
  obs::TimeCounter& read_seconds;
  obs::TimeCounter& disk_wait_seconds;
  obs::TimeCounter& decompress_seconds;
  obs::TimeCounter& parse_seconds;
  obs::TimeCounter& cpu_index_seconds;
  obs::TimeCounter& gpu_index_seconds;
  obs::TimeCounter& flush_seconds;
  obs::TimeCounter& dict_combine_seconds;
  obs::TimeCounter& dict_write_seconds;
  obs::TimeCounter& merge_seconds;
  obs::TimeCounter& segment_seconds;
  obs::Stat& run_parse;
  obs::Stat& run_index;
  obs::Stat& run_flush;
  obs::Histo& run_throughput;
  obs::Gauge& dictionary_terms;
  obs::Gauge& popular_collections;
  obs::QueueProbe reorder_probe;
};

}  // namespace

PipelineEngine::PipelineEngine(PipelineConfig config) : config_(std::move(config)) {
  HET_CHECK_MSG(config_.parsers >= 1, "need at least one parser");
}

PipelineReport PipelineEngine::build(const std::vector<std::string>& files) {
  {
    const auto errors = config_.validate();
    if (!errors.empty()) {
      std::string joined = "invalid PipelineConfig:";
      for (const auto& e : errors) joined += "\n  - " + e.message;
      HET_CHECK_MSG(false, joined.c_str());
    }
  }

  PipelineReport report;
  report.config = config_;
  std::filesystem::create_directories(config_.output_dir);
  PipelineInstruments ins(metrics_);
  WallTimer total_timer;

  // ---- Sampling phase (Table VI "Sampling Time").
  const WorkSplit split = sample_and_split(files, config_.sampler);
  report.sampling_seconds = split.sampling_seconds;
  ins.sampling_seconds.add(split.sampling_seconds);
  ins.popular_collections.set(static_cast<std::int64_t>(split.popular.size()));

  // ---- Dictionary + stores, one shard per indexer.
  const std::size_t n_cpu = config_.cpu_indexers;
  const std::size_t n_gpu = config_.gpus;
  const Ownership own = assign_collections(split, n_cpu, n_gpu);

  Dictionary dict(config_.use_string_cache);
  std::vector<PostingsStore> stores(n_cpu + n_gpu);
  std::vector<CpuIndexer> cpu_indexers;
  std::vector<GpuIndexer> gpu_indexers;
  cpu_indexers.reserve(n_cpu);
  gpu_indexers.reserve(n_gpu);
  // All shards are created before any indexer takes a reference — the
  // shard vector must not reallocate once indexers point into it.
  for (std::size_t i = 0; i < n_cpu + n_gpu; ++i) dict.add_shard();
  for (std::size_t i = 0; i < n_cpu; ++i) {
    for (auto idx : own.cpu_sets[i]) dict.assign(idx, i);
    cpu_indexers.emplace_back(dict.shard(i), stores[i], own.cpu_sets[i]);
  }
  for (std::size_t g = 0; g < n_gpu; ++g) {
    const std::size_t shard = n_cpu + g;
    for (auto idx : own.gpu_sets[g]) dict.assign(idx, shard);
    gpu_indexers.emplace_back(dict.shard(shard), stores[shard], own.gpu_sets[g],
                              config_.gpu_spec, config_.gpu_thread_blocks);
  }

  // Per-indexer busy-time counters (metric names are stable across runs of
  // the same configuration).
  std::vector<obs::TimeCounter*> cpu_busy, gpu_busy;
  for (std::size_t i = 0; i < n_cpu; ++i) {
    cpu_busy.push_back(&metrics_.time_counter("indexer_cpu" + std::to_string(i) +
                                              "_busy_seconds_total"));
  }
  for (std::size_t g = 0; g < n_gpu; ++g) {
    gpu_busy.push_back(&metrics_.time_counter("indexer_gpu" + std::to_string(g) +
                                              "_busy_seconds_total"));
  }

  // ---- Parse stage: M parser threads feeding the sequence-ordered buffer.
  ReadSchedulerOptions read_options;
  read_options.prefetch_depth = config_.read_prefetch_depth;
  read_options.batch_files = config_.read_batch_files;
  read_options.backend = config_.read_backend;
  read_options.metrics = &metrics_;
  ReadScheduler scheduler(files, read_options);
  ReorderBuffer<ParsedWork> buffer(
      std::max(config_.parsers + 1, config_.parsers * config_.buffers_per_parser),
      ins.reorder_probe);
  std::mutex parse_wall_mutex;
  double parse_stage_wall = 0;     // max over parsers of their busy span
  std::optional<Error> read_error; // first hard ingest failure (sticky)

  WallTimer stage_timer;
  std::vector<std::jthread> parser_threads;
  parser_threads.reserve(config_.parsers);
  for (std::size_t p = 0; p < config_.parsers; ++p) {
    parser_threads.emplace_back([&, p] {
      Parser parser(config_.parser);
      WallTimer busy;
      for (;;) {
        auto next = scheduler.next();
        if (!next.has_value()) {
          // Hard read failure: record the first one and wind down. The
          // scheduler's sticky error drains the other parser threads the
          // same way, so nobody aborts and nobody blocks.
          std::scoped_lock lock(parse_wall_mutex);
          if (!read_error.has_value()) read_error = next.error();
          break;
        }
        if (!next.value().has_value()) break;  // collection exhausted
        ScheduledRead read = *std::move(next).value();
        ParsedWork work;
        work.doc_count = static_cast<std::uint32_t>(read.docs.size());
        work.compressed_bytes = read.compressed_bytes;
        work.uncompressed_bytes = read.uncompressed_bytes;
        work.read_seconds = read.read_seconds;
        work.decompress_seconds = read.decompress_seconds;
        ins.files_read.add(1);
        ins.documents.add(work.doc_count);
        ins.source_bytes.add(work.uncompressed_bytes);
        ins.compressed_bytes.add(work.compressed_bytes);
        ins.read_seconds.add(read.read_seconds);
        ins.disk_wait_seconds.add(read.disk_wait_seconds);
        ins.decompress_seconds.add(read.decompress_seconds);
        work.urls.reserve(read.docs.size());
        for (const auto& doc : read.docs) work.urls.push_back(doc.url);
        ParseTimes times;
        obs::StageSpan span(&ins.parse_seconds, &ins.run_parse);
        work.block = parser.parse(read.docs, read.seq, static_cast<std::uint32_t>(p),
                                  read.doc_id_base, &times);
        work.parse_seconds = span.stop();
        ins.tokens.add(work.block.tokens);
        ins.payload_bytes.add(work.block.payload_bytes());
        if (!buffer.push(read.seq, std::move(work))) break;
      }
      std::scoped_lock lock(parse_wall_mutex);
      parse_stage_wall = std::max(parse_stage_wall, busy.seconds());
    });
  }
  // Close the buffer once all parsers are done (watchdog thread keeps the
  // consumer below simple).
  std::jthread closer([&] {
    for (auto& t : parser_threads) t.join();
    buffer.close();
  });

  // ---- Index stage: single runs in sequence order (Fig. 8).
  std::vector<IndexDirectoryEntry> directory;
  DocMapBuilder doc_map;  // Fig. 3 Step 1's <doc ID, location> table
  WallTimer index_stage_timer;
  while (auto work = buffer.pop_next()) {
    RunRecord run;
    run.run_id = work->block.seq;
    run.doc_count = work->doc_count;
    run.compressed_bytes = work->compressed_bytes;
    run.source_bytes = work->uncompressed_bytes;
    run.payload_bytes = work->block.payload_bytes();
    run.tokens = work->block.tokens;
    run.read_seconds = work->read_seconds;
    run.decompress_seconds = work->decompress_seconds;
    run.parse_seconds = work->parse_seconds;
    doc_map.add_file(work->block.doc_id_base, static_cast<std::uint32_t>(work->block.seq),
                     work->urls, work->block.doc_tokens);

    // Parallel indexing: each CPU indexer's work is measured individually
    // (the DES schedules them onto dedicated cores).
    obs::StageSpan index_span(nullptr, &ins.run_index);
    run.cpu_index_seconds.resize(n_cpu);
    for (std::size_t i = 0; i < n_cpu; ++i) {
      obs::StageSpan span(&ins.cpu_index_seconds);
      cpu_indexers[i].index_block(work->block);
      run.cpu_index_seconds[i] = span.stop();
      cpu_busy[i]->add(run.cpu_index_seconds[i]);
    }
    run.gpu_timings.resize(n_gpu);
    for (std::size_t g = 0; g < n_gpu; ++g) {
      gpu_indexers[g].index_block(work->block, &run.gpu_timings[g]);
      const auto& t = run.gpu_timings[g];
      const double busy = t.pre_seconds + t.index_seconds + t.post_seconds;
      ins.gpu_index_seconds.add(busy);
      gpu_busy[g]->add(busy);
    }
    index_span.stop();

    // Post-processing: flush every store's lists into this run's file.
    {
      obs::StageSpan span(&ins.flush_seconds, &ins.run_flush);
      const auto run_id = static_cast<std::uint32_t>(run.run_id);
      RunFileWriter writer(IndexLayout::run_path(config_.output_dir, run_id), run_id,
                           config_.codec);
      std::uint32_t min_doc = 0xFFFFFFFFu, max_doc = 0;
      bool any = false;
      std::uint64_t run_postings = 0;
      for (std::size_t s = 0; s < stores.size(); ++s) {
        for (std::uint32_t h = 1; h <= stores[s].list_count(); ++h) {
          const auto& list = stores[s].list(h);
          if (list.empty()) continue;
          any = true;
          min_doc = std::min(min_doc, list.doc_ids.front());
          max_doc = std::max(max_doc, list.doc_ids.back());
          run_postings += list.doc_ids.size();
          writer.add_list({static_cast<std::uint32_t>(s), h}, list);
        }
        stores[s].clear_lists();
      }
      writer.finalize();
      if (!any) min_doc = 0;
      directory.push_back({"run_" + std::to_string(run_id) + ".post", run_id, min_doc,
                           max_doc});
      run.flush_seconds = span.stop();
      ins.postings.add(run_postings);
    }

    report.documents += run.doc_count;
    report.tokens += run.tokens;
    report.uncompressed_bytes += run.source_bytes;
    report.compressed_bytes += run.compressed_bytes;

    // Per-run throughput profile: this run's source MB over the stage work
    // it consumed end to end (read → flush).
    double run_work_seconds = run.read_seconds + run.decompress_seconds +
                              run.parse_seconds + run.flush_seconds;
    for (const double s : run.cpu_index_seconds) run_work_seconds += s;
    for (const auto& g : run.gpu_timings) {
      run_work_seconds += g.pre_seconds + g.index_seconds + g.post_seconds;
    }
    if (run_work_seconds > 0) {
      ins.run_throughput.add(static_cast<double>(run.source_bytes) / (1024.0 * 1024.0) /
                             run_work_seconds);
    }
    ins.runs.add(1);
    report.runs.push_back(std::move(run));

    if (config_.progress) {
      PipelineProgress progress;
      progress.runs_completed = report.runs.size();
      progress.files_total = files.size();
      progress.documents = report.documents;
      progress.tokens = report.tokens;
      progress.source_bytes = report.uncompressed_bytes;
      progress.elapsed_seconds = total_timer.seconds();
      config_.progress(progress);
    }
  }
  report.index_stage_seconds = index_stage_timer.seconds();
  closer.join();
  report.parse_stage_seconds = std::max(parse_stage_wall, stage_timer.seconds());
  report.read_backend = scheduler.backend_name();
  report.read_stall_seconds = scheduler.read_stall_seconds();

  if (read_error.has_value()) {
    // A hard ingest read error: the build is void. Already-flushed partial
    // run files are removed so the output directory holds no stray
    // artifacts, and the finalize stages (dictionary, doc map, merge,
    // segment) are skipped — the caller gets a structured report.error
    // instead of a process abort.
    for (const auto& e : directory) {
      (void)io::env().remove_file(config_.output_dir + "/" + e.file);
    }
    report.error = *read_error;
    report.total_seconds = total_timer.seconds();
    report.metrics = metrics_.snapshot();
    return report;
  }

  // ---- Dictionary combine + write (Table VI rows).
  std::vector<DictionaryEntry> entries;  // kept for the optional segment fold
  {
    obs::StageSpan span(&ins.dict_combine_seconds);
    entries = dict.combine();
    report.terms = entries.size();
    report.dict_combine_seconds = span.stop();
    ins.dictionary_terms.set(static_cast<std::int64_t>(report.terms));
  }
  {
    obs::StageSpan span(&ins.dict_write_seconds);
    dictionary_write(dict, IndexLayout::dictionary_path(config_.output_dir));
    index_directory_write(IndexLayout::directory_path(config_.output_dir), directory);
    doc_map.write(doc_map_path(config_.output_dir));
    report.dict_write_seconds = span.stop();
  }

  if (config_.merge_after_build) {
    obs::StageSpan span(&ins.merge_seconds);
    std::vector<std::string> run_paths;
    run_paths.reserve(directory.size());
    for (const auto& e : directory) run_paths.push_back(config_.output_dir + "/" + e.file);
    merge_runs(run_paths, IndexLayout::merged_path(config_.output_dir), config_.codec);
    report.merge_seconds = span.stop();
  }

  if (config_.emit_segment) {
    obs::StageSpan span(&ins.segment_seconds);
    // The batch pipeline keeps the legacy abort-on-io-error contract.
    const auto stats =
        build_segment_from_runs(config_.output_dir, entries, directory).value();
    report.segment_seconds = span.stop();
    report.segment_bytes = stats.output_bytes;
  }

  for (const auto& ind : cpu_indexers) report.cpu_work.push_back(ind.lifetime_stats());
  for (const auto& ind : gpu_indexers) report.gpu_work.push_back(ind.lifetime_stats());
  for (const auto& store : stores) report.postings += store.postings_added();
  report.total_seconds = total_timer.seconds();
  report.metrics = metrics_.snapshot();
  return report;
}

}  // namespace hetindex
