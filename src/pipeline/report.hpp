#pragma once
/// \file report.hpp
/// Instrumentation produced by a pipeline build. Each "single run" (Fig. 8:
/// one parsed block through pre-processing → parallel indexing →
/// post-processing) yields a RunRecord carrying the measured per-stage
/// work; the DES platform model (src/sim) replays these records on the
/// paper's 8-core + 2-GPU node to regenerate Fig. 10/11 and Tables IV/VI.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gpusim/simt.hpp"
#include "index/indexer.hpp"
#include "obs/metrics.hpp"
#include "pipeline/config.hpp"

namespace hetindex {

/// Measured costs of one single run (one parsed block / source file).
struct RunRecord {
  std::uint64_t run_id = 0;
  std::uint32_t doc_count = 0;
  std::uint64_t compressed_bytes = 0;
  std::uint64_t source_bytes = 0;  ///< uncompressed input represented
  std::uint64_t payload_bytes = 0; ///< parsed-group bytes (pre-proc ships these)
  std::uint64_t tokens = 0;

  // Parse stage (per-block, measured on one host core).
  double read_seconds = 0;        ///< serialized disk section
  double decompress_seconds = 0;  ///< in-memory, parallel across parsers
  double parse_seconds = 0;       ///< steps 2–5

  // Index stage.
  std::vector<double> cpu_index_seconds;           ///< per CPU indexer (work time)
  std::vector<GpuIndexer::Timing> gpu_timings;     ///< per GPU (simulated)
  double flush_seconds = 0;  ///< post-processing: encode + write run file
};

struct PipelineReport {
  PipelineConfig config;

  /// Read mechanism the scheduler actually used after auto/fallback
  /// resolution: "serial", "thread_pool" or "io_uring".
  std::string read_backend;
  /// Cumulative parser time blocked waiting for file bytes (the read-phase
  /// stall the prefetcher exists to shrink; BENCH_build.json's read-phase
  /// throughput is compressed_bytes / read_stall_seconds).
  double read_stall_seconds = 0;
  /// Set when the build failed after validation (e.g. a hard ingest read
  /// error): partial run files are removed, aggregate fields cover only
  /// the work completed before the failure. Check ok() before using the
  /// output directory.
  std::optional<Error> error;
  [[nodiscard]] bool ok() const { return !error.has_value(); }

  // Table VI rows (measured on this host; see sim/ for platform-modelled
  // equivalents).
  double sampling_seconds = 0;
  double parse_stage_seconds = 0;   ///< wall time of the parser stage
  double index_stage_seconds = 0;   ///< wall time of the indexing stage
  double dict_combine_seconds = 0;
  double dict_write_seconds = 0;
  double merge_seconds = 0;
  double segment_seconds = 0;  ///< emit_segment fold time (0 when disabled)
  double total_seconds = 0;

  std::vector<RunRecord> runs;

  // Table V: lifetime work split.
  std::vector<IndexerWorkStats> cpu_work;
  std::vector<IndexerWorkStats> gpu_work;

  std::uint64_t documents = 0;
  std::uint64_t terms = 0;
  std::uint64_t postings = 0;
  std::uint64_t tokens = 0;
  std::uint64_t uncompressed_bytes = 0;
  std::uint64_t compressed_bytes = 0;
  std::uint64_t segment_bytes = 0;  ///< emitted segment size (0 when disabled)

  /// End-of-build snapshot of the engine's MetricsRegistry. The aggregate
  /// fields above are derived views over the same measurements (the
  /// pipeline_*_total counters equal documents/tokens/postings/bytes); the
  /// snapshot additionally carries queue depths, stall times and per-run
  /// stage statistics that have no RunRecord equivalent.
  obs::MetricsSnapshot metrics;

  /// Full report as a JSON document (schema in docs/OBSERVABILITY.md):
  /// config, per-stage seconds, totals, every RunRecord, the Table V work
  /// split, and the embedded metrics snapshot.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] double throughput_mb_s() const {
    return total_seconds > 0
               ? static_cast<double>(uncompressed_bytes) / (1024.0 * 1024.0) / total_seconds
               : 0.0;
  }
  [[nodiscard]] IndexerWorkStats cpu_total() const {
    IndexerWorkStats t;
    for (const auto& w : cpu_work) t += w;
    return t;
  }
  [[nodiscard]] IndexerWorkStats gpu_total() const {
    IndexerWorkStats t;
    for (const auto& w : gpu_work) t += w;
    return t;
  }
};

}  // namespace hetindex
