#pragma once
/// \file reorder_buffer.hpp
/// Sequence-ordered hand-off between parsers and the indexing stage. The
/// paper enforces "(buffer of Parser 0, buffer of Parser 1, …)" round-robin
/// consumption so documents are indexed in disk order and postings stay
/// doc-ID-sorted (§III.F). With a dynamic read scheduler the equivalent
/// discipline is: release parsed blocks strictly in file-sequence order.
/// Capacity bounds the window and provides the parser back-pressure of the
/// bounded per-parser buffers.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace hetindex {

template <typename T>
class ReorderBuffer {
 public:
  /// \param capacity max in-flight items; must be ≥ the number of
  ///        producers or a producer holding a far-ahead seq could deadlock
  ///        the consumer waiting on an earlier seq.
  /// \param probe optional observability hooks: window depth gauge plus
  ///        producer (back-pressure) and consumer (starvation) stall time.
  explicit ReorderBuffer(std::size_t capacity, obs::QueueProbe probe = {})
      : capacity_(capacity), probe_(probe) {
    HET_CHECK(capacity >= 1);
  }

  /// Blocks until there is room in the window, then files item `seq`. The
  /// next-expected sequence is always admitted even when the window is
  /// full — otherwise a slow producer holding the head sequence could
  /// deadlock against a full buffer of later sequences. Returns false if
  /// the buffer was closed.
  bool push(std::uint64_t seq, T item) {
    std::unique_lock lock(mu_);
    HET_CHECK_MSG(seq >= next_, "sequence pushed twice");
    const auto admissible = [&] {
      return items_.size() < capacity_ || seq == next_ || closed_;
    };
    if (!admissible()) {
      WallTimer stall;
      cv_space_.wait(lock, admissible);
      if (probe_.producer_stall_seconds != nullptr) {
        probe_.producer_stall_seconds->add(stall.seconds());
      }
    }
    if (closed_) return false;
    items_.emplace(seq, std::move(item));
    if (probe_.depth != nullptr) probe_.depth->set(static_cast<std::int64_t>(items_.size()));
    cv_ready_.notify_all();
    return true;
  }

  /// Blocks until the next-in-sequence item arrives; nullopt after close()
  /// once the remaining in-order prefix has drained.
  std::optional<T> pop_next() {
    std::unique_lock lock(mu_);
    const auto ready = [&] { return items_.contains(next_) || closed_; };
    if (!ready()) {
      WallTimer stall;
      cv_ready_.wait(lock, ready);
      if (probe_.consumer_stall_seconds != nullptr) {
        probe_.consumer_stall_seconds->add(stall.seconds());
      }
    }
    const auto it = items_.find(next_);
    if (it == items_.end()) return std::nullopt;  // closed and next_ missing
    T item = std::move(it->second);
    items_.erase(it);
    ++next_;
    if (probe_.depth != nullptr) probe_.depth->set(static_cast<std::int64_t>(items_.size()));
    cv_space_.notify_all();
    return item;
  }

  /// Producers call this when the input is exhausted.
  void close() {
    std::scoped_lock lock(mu_);
    closed_ = true;
    cv_ready_.notify_all();
    cv_space_.notify_all();
  }

  [[nodiscard]] std::uint64_t next_sequence() const {
    std::scoped_lock lock(mu_);
    return next_;
  }

 private:
  const std::size_t capacity_;
  const obs::QueueProbe probe_;
  mutable std::mutex mu_;
  std::condition_variable cv_ready_;
  std::condition_variable cv_space_;
  std::map<std::uint64_t, T> items_;
  std::uint64_t next_ = 0;
  bool closed_ = false;
};

}  // namespace hetindex
