#include "pipeline/config.hpp"

namespace hetindex {

std::vector<Error> PipelineConfig::validate() const {
  std::vector<Error> errors;
  const auto invalid = [&errors](std::string message) {
    errors.push_back({ErrorCode::kInvalidArgument, std::move(message)});
  };
  if (parsers == 0) invalid("parsers must be >= 1 (Fig. 9 needs a parse stage)");
  if (cpu_indexers + gpus == 0) {
    invalid("need at least one indexer: cpu_indexers + gpus must be >= 1");
  }
  if (buffers_per_parser == 0) {
    invalid("buffers_per_parser must be >= 1 (zero leaves parsers nowhere to park a block)");
  }
  if (gpus > 0 && gpu_thread_blocks == 0) {
    invalid("gpus > 0 requires gpu_thread_blocks >= 1 (§IV.B uses 480)");
  }
  if (sampler.sample_fraction <= 0.0 || sampler.sample_fraction > 1.0) {
    invalid("sampler.sample_fraction must be in (0, 1]");
  }
  if (cpu_indexers > 0 && sampler.popular_count == 0) {
    invalid(
        "sampler.popular_count must be >= 1 when cpu_indexers > 0 (CPU indexers own the "
        "popular collections, §III.E)");
  }
  if (read_prefetch_depth == 0) {
    invalid("read_prefetch_depth must be >= 1 (1 = the serialized §III.F discipline)");
  }
  if (read_batch_files == 0) invalid("read_batch_files must be >= 1");
  if (output_dir.empty()) invalid("output_dir must not be empty");
  return errors;
}

}  // namespace hetindex
