#include "baseline/baselines.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "corpus/container.hpp"
#include "dict/dictionary.hpp"
#include "parse/parser.hpp"
#include "util/timer.hpp"

namespace hetindex {
namespace {

/// Shared front end: parse all files into flat token streams, one vector
/// per file, so every baseline pays an identical text-processing cost and
/// differences isolate the index structure.
struct ParsedInput {
  std::vector<std::vector<Parser::FlatToken>> per_file;
  std::vector<std::uint32_t> doc_base;
  double parse_seconds = 0;
  std::uint64_t tokens = 0;
  std::uint64_t uncompressed_bytes = 0;
};

ParsedInput parse_all(const std::vector<std::string>& files) {
  ParsedInput input;
  Parser parser;
  WallTimer t;
  std::uint32_t base = 0;
  for (const auto& file : files) {
    const auto docs = container_read(file);
    input.doc_base.push_back(base);
    base += static_cast<std::uint32_t>(docs.size());
    for (const auto& d : docs) input.uncompressed_bytes += d.body.size() + d.url.size() + 8;
    input.per_file.push_back(parser.parse_flat(docs));
    input.tokens += input.per_file.back().size();
  }
  input.parse_seconds = t.seconds();
  return input;
}

void append_posting(PostingsList& list, std::uint32_t doc) {
  if (!list.doc_ids.empty() && list.doc_ids.back() == doc) {
    ++list.tfs.back();
  } else {
    list.doc_ids.push_back(doc);
    list.tfs.push_back(1);
  }
}

/// Extracts the final sorted index from a dictionary + postings store.
std::map<std::string, PostingsList> extract(const DictionaryShard& shard,
                                            const PostingsStore& store) {
  std::map<std::string, PostingsList> out;
  shard.for_each_tree([&](std::uint32_t idx, const BTree& tree) {
    const std::string prefix = trie_prefix(idx);
    tree.for_each([&](std::string_view suffix, std::uint32_t handle) {
      out[prefix + std::string(suffix)] = store.list(handle);
    });
  });
  return out;
}

}  // namespace

BaselineResult hash_index(const std::vector<std::string>& files) {
  BaselineResult result;
  auto input = parse_all(files);
  result.parse_seconds = input.parse_seconds;
  result.tokens = input.tokens;
  result.uncompressed_bytes = input.uncompressed_bytes;

  WallTimer t;
  std::unordered_map<std::string, PostingsList> index;
  for (std::size_t f = 0; f < input.per_file.size(); ++f) {
    for (const auto& tok : input.per_file[f]) {
      append_posting(index[tok.term], input.doc_base[f] + tok.local_doc);
    }
  }
  for (auto& [term, list] : index) result.index[term] = std::move(list);
  result.index_seconds = t.seconds();
  return result;
}

BaselineResult serial_trie_index(const std::vector<std::string>& files, bool regrouped) {
  BaselineResult result;
  auto input = parse_all(files);
  result.parse_seconds = input.parse_seconds;
  result.tokens = input.tokens;
  result.uncompressed_bytes = input.uncompressed_bytes;

  // Step 5's effect: group by collection so consecutive inserts hit the
  // same small B-tree (cache-resident). Regrouping is a *parser* step
  // (§III.C charges it ~5% of parse time), so it is performed before the
  // indexing timer starts.
  if (regrouped) {
    for (auto& toks : input.per_file) {
      std::stable_sort(toks.begin(), toks.end(),
                       [](const Parser::FlatToken& a, const Parser::FlatToken& b) {
                         return a.trie_idx < b.trie_idx;
                       });
    }
  }
  WallTimer t;
  DictionaryShard shard;
  PostingsStore store;
  for (std::size_t f = 0; f < input.per_file.size(); ++f) {
    auto& toks = input.per_file[f];
    for (const auto& tok : toks) {
      auto res = shard.tree(tok.trie_idx)
                     .find_or_insert(trie_suffix(tok.term, tok.trie_idx));
      if (res.created) *res.postings_slot = store.create();
      // Regrouped order is per-collection doc-sorted, so PostingsStore's
      // monotone-append invariant still holds within each list.
      store.add(*res.postings_slot, input.doc_base[f] + tok.local_doc);
    }
  }
  result.index = extract(shard, store);
  result.index_seconds = t.seconds();
  return result;
}

BaselineResult single_btree_index(const std::vector<std::string>& files) {
  BaselineResult result;
  auto input = parse_all(files);
  result.parse_seconds = input.parse_seconds;
  result.tokens = input.tokens;
  result.uncompressed_bytes = input.uncompressed_bytes;

  WallTimer t;
  Arena arena;
  BTree tree(arena);
  PostingsStore store;
  for (std::size_t f = 0; f < input.per_file.size(); ++f) {
    for (const auto& tok : input.per_file[f]) {
      auto res = tree.find_or_insert(tok.term);  // full term, no prefix strip
      if (res.created) *res.postings_slot = store.create();
      store.add(*res.postings_slot, input.doc_base[f] + tok.local_doc);
    }
  }
  tree.for_each([&](std::string_view term, std::uint32_t handle) {
    result.index[std::string(term)] = store.list(handle);
  });
  result.index_seconds = t.seconds();
  return result;
}

BaselineResult sort_based_index(const std::vector<std::string>& files,
                                std::size_t run_budget_tuples) {
  BaselineResult result;
  auto input = parse_all(files);
  result.parse_seconds = input.parse_seconds;
  result.tokens = input.tokens;
  result.uncompressed_bytes = input.uncompressed_bytes;

  WallTimer t;
  using Tuple = std::pair<std::string, std::uint32_t>;  // (term, doc)
  std::vector<std::vector<std::pair<Tuple, std::uint32_t>>> runs;  // sorted, tf-agg
  std::vector<Tuple> buffer;

  auto flush = [&] {
    if (buffer.empty()) return;
    std::sort(buffer.begin(), buffer.end());
    std::vector<std::pair<Tuple, std::uint32_t>> run;
    for (const auto& tup : buffer) {
      if (!run.empty() && run.back().first == tup) {
        ++run.back().second;
      } else {
        run.emplace_back(tup, 1);
      }
    }
    runs.push_back(std::move(run));
    buffer.clear();
  };

  for (std::size_t f = 0; f < input.per_file.size(); ++f) {
    for (const auto& tok : input.per_file[f]) {
      buffer.emplace_back(tok.term, input.doc_base[f] + tok.local_doc);
      if (buffer.size() >= run_budget_tuples) flush();
    }
  }
  flush();

  // K-way merge of sorted runs into final postings lists.
  using Cursor = std::pair<std::pair<Tuple, std::uint32_t>, std::size_t>;  // (entry, run)
  auto cmp = [](const Cursor& a, const Cursor& b) { return a.first > b.first; };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cmp)> heap(cmp);
  std::vector<std::size_t> pos(runs.size(), 0);
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heap.push({runs[r][0], r});
  }
  while (!heap.empty()) {
    auto [entry, r] = heap.top();
    heap.pop();
    const auto& [tuple, tf] = entry;
    auto& list = result.index[tuple.first];
    if (!list.doc_ids.empty() && list.doc_ids.back() == tuple.second) {
      list.tfs.back() += tf;  // same (term, doc) split across runs
    } else {
      list.doc_ids.push_back(tuple.second);
      list.tfs.push_back(tf);
    }
    if (++pos[r] < runs[r].size()) heap.push({runs[r][pos[r]], r});
  }
  result.index_seconds = t.seconds();
  return result;
}

BaselineResult spimi_index(const std::vector<std::string>& files,
                           std::size_t run_budget_postings) {
  BaselineResult result;
  auto input = parse_all(files);
  result.parse_seconds = input.parse_seconds;
  result.tokens = input.tokens;
  result.uncompressed_bytes = input.uncompressed_bytes;

  WallTimer t;
  std::vector<std::vector<std::pair<std::string, PostingsList>>> runs;  // term-sorted
  std::unordered_map<std::string, PostingsList> current;
  std::size_t current_postings = 0;

  auto flush = [&] {
    if (current.empty()) return;
    std::vector<std::pair<std::string, PostingsList>> run;
    run.reserve(current.size());
    for (auto& [term, list] : current) run.emplace_back(term, std::move(list));
    // Heinz–Zobel write the run's dictionary in lexicographic order (it is
    // what makes front-coding and the final merge cheap).
    std::sort(run.begin(), run.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    runs.push_back(std::move(run));
    current.clear();
    current_postings = 0;
  };

  for (std::size_t f = 0; f < input.per_file.size(); ++f) {
    for (const auto& tok : input.per_file[f]) {
      auto& list = current[tok.term];
      append_posting(list, input.doc_base[f] + tok.local_doc);
      if (++current_postings >= run_budget_postings) flush();
    }
  }
  flush();

  // Merge runs (runs are in temporal order → doc ids increase across runs).
  for (auto& run : runs) {
    for (auto& [term, list] : run) {
      auto& target = result.index[term];
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (!target.doc_ids.empty() && target.doc_ids.back() == list.doc_ids[i]) {
          target.tfs.back() += list.tfs[i];
        } else {
          target.doc_ids.push_back(list.doc_ids[i]);
          target.tfs.push_back(list.tfs[i]);
        }
      }
    }
  }
  result.index_seconds = t.seconds();
  return result;
}

}  // namespace hetindex
