#pragma once
/// \file baselines.hpp
/// Single-node baseline indexers:
///  - hash_index: std::unordered_map reference (ground truth for tests);
///  - serial_trie_index: one CPU thread over the hybrid trie + B-tree
///    dictionary, with regrouping ON or OFF — the §III.C ablation ("even
///    in the case when indexing is carried out by a serial CPU thread,
///    regrouping results in approximately 15-fold speedup");
///  - single_btree_index: one global B-tree, no trie — isolates the trie's
///    contribution (§III.B.1's "many small B-trees" argument);
///  - sort_based_index: Moffat & Bell [3] (accumulate runs, sort, merge);
///  - spimi_index: Heinz & Zobel single-pass in-memory indexing [4].
/// All produce the same logical index so they are cross-checkable.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "postings/postings_store.hpp"

namespace hetindex {

struct BaselineResult {
  std::map<std::string, PostingsList> index;
  double parse_seconds = 0;  ///< shared text processing cost
  double index_seconds = 0;  ///< data-structure construction cost
  std::uint64_t tokens = 0;
  std::uint64_t uncompressed_bytes = 0;

  [[nodiscard]] std::uint64_t terms() const { return index.size(); }
  [[nodiscard]] double total_seconds() const { return parse_seconds + index_seconds; }
};

/// Reference indexer over container files.
BaselineResult hash_index(const std::vector<std::string>& files);

/// Serial hybrid trie + B-tree indexer. With `regrouped` false the token
/// stream is consumed in raw document order (cache-hostile); with true it
/// is consumed collection-by-collection as the parser's Step 5 emits it.
BaselineResult serial_trie_index(const std::vector<std::string>& files, bool regrouped);

/// One global degree-16 B-tree over full terms (no trie, no prefix strip).
BaselineResult single_btree_index(const std::vector<std::string>& files);

/// Moffat–Bell sort-based inversion: buffer <term, doc, tf> tuples until
/// `run_budget_tuples`, sort each run, k-way merge the runs at the end.
BaselineResult sort_based_index(const std::vector<std::string>& files,
                                std::size_t run_budget_tuples = 1 << 20);

/// Heinz–Zobel SPIMI: per-run hash dictionary with postings, runs flushed
/// in sorted term order and merged at the end.
BaselineResult spimi_index(const std::vector<std::string>& files,
                           std::size_t run_budget_postings = 1 << 20);

}  // namespace hetindex
