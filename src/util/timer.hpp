#pragma once
/// \file timer.hpp
/// Wall-clock timing utilities used by the pipeline instrumentation and the
/// benchmark harnesses.

#include <chrono>
#include <cstdint>

namespace hetindex {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last reset().
  [[nodiscard]] std::uint64_t nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double on scope exit; used to attribute
/// pipeline time to stages (parse/pre/index/post) without littering call
/// sites with start/stop pairs.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_;
  WallTimer timer_;
};

}  // namespace hetindex
