#pragma once
/// \file thread_pool.hpp
/// Minimal task-based thread pool (CP.4: think in tasks, not threads). Used
/// by the real-thread pipeline backend for parser/indexer workers and by the
/// SIMT engine to spread simulated SMs across host cores when available.

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/bounded_queue.hpp"

namespace hetindex {

class ThreadPool {
 public:
  /// \param threads worker count; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules a task; the future resolves with the task's result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    const bool ok = tasks_.push([task] { (*task)(); });
    HET_CHECK_MSG(ok, "submit() on a stopped ThreadPool");
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for all.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  BoundedQueue<std::function<void()>> tasks_;
  std::vector<std::jthread> workers_;
};

inline ThreadPool::ThreadPool(std::size_t threads) : tasks_(1024) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] {
      while (auto task = tasks_.pop()) (*task)();
    });
  }
}

inline ThreadPool::~ThreadPool() { tasks_.close(); }

inline void ThreadPool::parallel_for(std::size_t n,
                                     const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) futs.push_back(submit([&fn, i] { fn(i); }));
  for (auto& f : futs) f.get();
}

}  // namespace hetindex
