#pragma once
/// \file error.hpp
/// The structured error surface shared by every fallible public entry
/// point: InvertedIndex::open(dir, OpenOptions), PipelineConfig::validate()
/// and the live-indexing layer all speak the same Error type, so callers
/// write one error-handling path regardless of which subsystem refused.
///
/// Expected<T> is the return vehicle: either a value or an Error, with
/// value() hard-failing (the historical abort-on-bad-input behaviour) when
/// the caller does not check first. There is deliberately no exception
/// anywhere — this library treats corrupt input as a structured refusal on
/// the new API and as a loud abort on the deprecated shims.

#include <string>
#include <utility>
#include <variant>

#include "util/check.hpp"

namespace hetindex {

/// What went wrong, machine-readably; the message carries the detail.
enum class ErrorCode {
  kNotFound,          ///< file/directory/index absent
  kCorrupt,           ///< checksum or structural validation failed
  kUnsupported,       ///< version/codec newer than this build understands
  kInvalidArgument,   ///< caller-supplied configuration is contradictory
  kIo,                ///< read/write/rename failed
  kOverloaded,        ///< admission control shed the request (queue saturated)
  kDeadlineExceeded,  ///< the request's deadline expired before execution
  kUnavailable,       ///< backend down (failed replica, no shard answered)
};

/// Stable lowercase identifier for logs and CLI output.
constexpr const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kCorrupt: return "corrupt";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

/// One structured failure: a code for dispatch, a message for humans.
/// `transient` marks faults worth a bounded retry (EINTR-class injected or
/// real interruptions); persistent conditions (ENOSPC, EIO) leave it false.
struct Error {
  ErrorCode code = ErrorCode::kInvalidArgument;
  std::string message;
  bool transient = false;

  [[nodiscard]] std::string to_string() const {
    return std::string(error_code_name(code)) + ": " + message;
  }
};

/// Minimal expected-alternative (std::expected is C++23; this library is
/// C++20). Holds either a T or an Error. Move-only Ts are supported — the
/// open() paths return move-only index handles.
template <typename T>
class Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Error error) : state_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return has_value(); }

  /// The value; hard-fails with the error message when absent, which is
  /// exactly the legacy abort-on-bad-input behaviour.
  [[nodiscard]] T& value() & {
    require_value();
    return std::get<T>(state_);
  }
  [[nodiscard]] const T& value() const& {
    require_value();
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    require_value();
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] const Error& error() const {
    HET_CHECK_MSG(!has_value(), "Expected::error() called on a value");
    return std::get<Error>(state_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

 private:
  void require_value() const {
    if (!has_value()) {
      check_failed("Expected::value()", __FILE__, __LINE__,
                   std::get<Error>(state_).message.c_str());
    }
  }

  std::variant<T, Error> state_;
};

/// Value type of fallible operations that return nothing on success.
using Unit = std::monostate;
/// `Status f();` — either success (Unit) or a structured Error. Construct
/// success as `return Unit{};`.
using Status = Expected<Unit>;

}  // namespace hetindex
