#include "util/zipf.hpp"

#include <cmath>

#include "util/check.hpp"

namespace hetindex {

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  HET_CHECK_MSG(n >= 1, "Zipf vocabulary must be non-empty");
  HET_CHECK_MSG(s >= 0.0, "Zipf exponent must be non-negative");
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  if (n <= (1u << 20)) {
    double z = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) z += std::pow(static_cast<double>(k), -s);
    normalization_ = z;
  } else {
    // Euler–Maclaurin style approximation of the generalized harmonic number.
    const double nd = static_cast<double>(n);
    double z;
    if (std::abs(s - 1.0) < 1e-12) {
      z = std::log(nd) + 0.5772156649015329 + 0.5 / nd;
    } else {
      z = (std::pow(nd, 1.0 - s) - 1.0) / (1.0 - s) + 0.5 * (1.0 + std::pow(nd, -s));
    }
    normalization_ = z;
  }
}

double ZipfSampler::h(double x) const {
  // Integral of x^-s: log for s == 1, power form otherwise.
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::h_inverse(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t ZipfSampler::operator()(Rng& rng) const {
  if (n_ == 1) return 1;
  // Rejection-inversion over the continuous envelope of the discrete pmf.
  while (true) {
    const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
    const double x = h_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (u >= h(kd + 0.5) - std::pow(kd, -s_)) return k;
  }
}

double ZipfSampler::probability(std::uint64_t k) const {
  HET_CHECK(k >= 1 && k <= n_);
  return std::pow(static_cast<double>(k), -s_) / normalization_;
}

}  // namespace hetindex
