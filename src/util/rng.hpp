#pragma once
/// \file rng.hpp
/// Deterministic, fast pseudo-random generation. All synthetic-corpus and
/// simulation randomness flows through these so runs are reproducible from a
/// single seed (required for the differential CPU-vs-GPU indexer tests).

#include <cstdint>

namespace hetindex {

/// splitmix64: used to expand a user seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, copyable PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x853C49E6748FEA9Bull) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free variant is overkill here; a
    // 128-bit multiply keeps bias < 2^-64 which is fine for workloads.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * n) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace hetindex
