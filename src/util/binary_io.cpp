#include "util/binary_io.hpp"

#include "io/env.hpp"

namespace hetindex {

// The legacy helpers keep their abort-on-error contract but route through
// the io::Env seam, so fault injection and write tracing see every file the
// library touches (docs/DURABILITY.md). Paths that need structured errors
// call io::env() / io::durable_write_file directly.

std::vector<std::uint8_t> read_file(const std::string& path) {
  auto data = io::env().read_file(path);
  if (!data.has_value()) {
    check_failed("read_file", __FILE__, __LINE__, data.error().message.c_str());
  }
  return std::move(data).value();
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& data) {
  auto written = io::env().write_file(path, data.data(), data.size());
  if (!written.has_value()) {
    check_failed("write_file", __FILE__, __LINE__, written.error().message.c_str());
  }
}

bool file_exists(const std::string& path) { return io::env().file_exists(path); }

}  // namespace hetindex
