#include "util/binary_io.hpp"

#include <cstdio>
#include <filesystem>

namespace hetindex {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  HET_CHECK_MSG(f != nullptr, "cannot open file for reading");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  HET_CHECK(size >= 0);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  if (size > 0) {
    const std::size_t got = std::fread(data.data(), 1, data.size(), f);
    HET_CHECK_MSG(got == data.size(), "short read");
  }
  std::fclose(f);
  return data;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  HET_CHECK_MSG(f != nullptr, "cannot open file for writing");
  if (!data.empty()) {
    const std::size_t put = std::fwrite(data.data(), 1, data.size(), f);
    HET_CHECK_MSG(put == data.size(), "short write");
  }
  HET_CHECK(std::fclose(f) == 0);
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

}  // namespace hetindex
