#pragma once
/// \file arena.hpp
/// Chunked byte arena addressed by 32-bit offsets. Table II of the paper
/// stores term-string and postings "pointers" in 4 bytes inside a 512-byte
/// B-tree node; on a 64-bit host that only works if they are offsets into a
/// per-dictionary-shard arena, which is what this provides. Allocation never
/// moves existing data, so offsets stay valid for the dictionary lifetime.

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "util/check.hpp"

namespace hetindex {

/// Offset handle into an Arena. 0 is reserved as the null handle; the first
/// real allocation starts at offset 1.
using ArenaOffset = std::uint32_t;
inline constexpr ArenaOffset kArenaNull = 0;

class Arena {
 public:
  /// \param chunk_bytes granularity of backing allocations.
  explicit Arena(std::size_t chunk_bytes = 1u << 20) : chunk_bytes_(chunk_bytes) {
    HET_CHECK(chunk_bytes >= 64);
  }

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Allocates `n` bytes (n may be 0 → returns a unique non-null offset of an
  /// empty region) with the given alignment (power of two, ≤ chunk size).
  ArenaOffset allocate(std::size_t n, std::size_t alignment = 1) {
    HET_CHECK((alignment & (alignment - 1)) == 0);
    std::size_t base = used_;
    base = (base + alignment - 1) & ~(alignment - 1);
    if (chunks_.empty() || base - chunk_base_ + n > chunk_bytes_) {
      // Start a fresh chunk; the logical offset space stays contiguous by
      // advancing `used_` to the next chunk boundary.
      chunk_base_ = (used_ + chunk_bytes_ - 1) / chunk_bytes_ * chunk_bytes_;
      if (chunks_.empty()) chunk_base_ = 0;
      HET_CHECK_MSG(n <= chunk_bytes_, "allocation larger than arena chunk");
      chunks_.push_back(std::make_unique<std::uint8_t[]>(chunk_bytes_));
      base = chunk_base_;
      if (base == 0) base = 1;  // reserve 0 as null
      base = (base + alignment - 1) & ~(alignment - 1);
    }
    used_ = base + n;
    HET_CHECK_MSG(used_ <= (std::size_t{1} << 32) - 1, "arena exceeded 32-bit offset space");
    return static_cast<ArenaOffset>(base);
  }

  /// Copies `n` bytes into the arena and returns the offset.
  ArenaOffset store(const void* data, std::size_t n, std::size_t alignment = 1) {
    const ArenaOffset off = allocate(n, alignment);
    if (n) std::memcpy(pointer(off), data, n);
    return off;
  }

  /// Resolves an offset to a raw pointer. Valid until the Arena dies.
  [[nodiscard]] std::uint8_t* pointer(ArenaOffset off) {
    HET_DCHECK(off != kArenaNull);
    return chunks_[off / chunk_bytes_].get() + off % chunk_bytes_;
  }
  [[nodiscard]] const std::uint8_t* pointer(ArenaOffset off) const {
    HET_DCHECK(off != kArenaNull);
    return chunks_[off / chunk_bytes_].get() + off % chunk_bytes_;
  }

  /// Typed resolution for POD object storage.
  template <typename T>
  [[nodiscard]] T* object(ArenaOffset off) {
    return reinterpret_cast<T*>(pointer(off));
  }
  template <typename T>
  [[nodiscard]] const T* object(ArenaOffset off) const {
    return reinterpret_cast<const T*>(pointer(off));
  }

  /// Total logical bytes consumed (including alignment/chunk padding).
  [[nodiscard]] std::size_t used_bytes() const { return used_; }
  /// Total bytes of backing memory held.
  [[nodiscard]] std::size_t reserved_bytes() const { return chunks_.size() * chunk_bytes_; }

 private:
  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
  std::size_t used_ = 0;        // next logical offset to try
  std::size_t chunk_base_ = 0;  // logical offset of current chunk start
};

}  // namespace hetindex
