#pragma once
/// \file binary_io.hpp
/// Little-endian binary (de)serialization over growable byte buffers and
/// files. Run files, dictionary dumps and the WARC-like container all share
/// this framing layer.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"

namespace hetindex {

/// Appends fixed-width little-endian primitives to a byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  void bytes(const void* data, std::size_t n) { raw(data, n); }
  /// Length-prefixed (u32) string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  [[nodiscard]] std::size_t offset() const { return out_.size(); }
  /// Overwrites a previously written u32 at `at` (for back-patching section
  /// lengths in run-file headers).
  void patch_u32(std::size_t at, std::uint32_t v) {
    HET_CHECK(at + 4 <= out_.size());
    std::memcpy(out_.data() + at, &v, 4);
  }
  void patch_u64(std::size_t at, std::uint64_t v) {
    HET_CHECK(at + 8 <= out_.size());
    std::memcpy(out_.data() + at, &v, 8);
  }

 private:
  void raw(const void* data, std::size_t n) {
    // resize+memcpy instead of insert: identical semantics, but sidesteps
    // GCC 12's spurious -Wstringop-overflow on the inlined insert path.
    const std::size_t at = out_.size();
    out_.resize(at + n);
    if (n != 0) std::memcpy(out_.data() + at, data, n);
  }
  std::vector<std::uint8_t>& out_;
};

/// Reads fixed-width little-endian primitives from a byte range with bounds
/// checking; any overrun is a hard check failure (corrupt input).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t n) : data_(data), size_(n) {}
  explicit ByteReader(const std::vector<std::uint8_t>& v) : ByteReader(v.data(), v.size()) {}

  std::uint8_t u8() { return *take(1); }
  std::uint16_t u16() { return load<std::uint16_t>(); }
  std::uint32_t u32() { return load<std::uint32_t>(); }
  std::uint64_t u64() { return load<std::uint64_t>(); }
  double f64() { return load<double>(); }
  std::string str() {
    const auto n = u32();
    const auto* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }
  void bytes(void* out, std::size_t n) { std::memcpy(out, take(n), n); }
  void skip(std::size_t n) { take(n); }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  void seek(std::size_t pos) {
    HET_CHECK(pos <= size_);
    pos_ = pos;
  }

 private:
  template <typename T>
  T load() {
    T v;
    std::memcpy(&v, take(sizeof(T)), sizeof(T));
    return v;
  }
  const std::uint8_t* take(std::size_t n) {
    HET_CHECK_MSG(pos_ + n <= size_, "truncated binary input");
    const auto* p = data_ + pos_;
    pos_ += n;
    return p;
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Reads an entire file into memory; hard-fails on I/O errors. Routed
/// through the io::Env seam (io/env.hpp) so fault injection sees it.
std::vector<std::uint8_t> read_file(const std::string& path);
/// Writes a buffer to a file (truncate + write, no fsync); hard-fails on
/// I/O errors. Routed through io::Env — durability-critical paths use
/// io::durable_write_file instead.
void write_file(const std::string& path, const std::vector<std::uint8_t>& data);
/// True when the path names an existing regular file.
bool file_exists(const std::string& path);

}  // namespace hetindex
