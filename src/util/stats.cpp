#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace hetindex {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  HET_CHECK(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::quantile(double q) const {
  HET_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
      return lo_ + (static_cast<double>(i) + 0.5) * width;
    }
  }
  return hi_;
}

std::string Histogram::ascii(int width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  const double bucket_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char line[64];
    std::snprintf(line, sizeof line, "%10.3g | ", lo_ + static_cast<double>(i) * bucket_width);
    out += line;
    const auto bar = static_cast<int>(static_cast<double>(counts_[i]) /
                                      static_cast<double>(peak) * width);
    out.append(static_cast<std::size_t>(bar), '#');
    std::snprintf(line, sizeof line, " %llu\n",
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

std::string format_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f %s", v, units[u]);
  return buf;
}

std::string format_si(double value) {
  const char* units[] = {"", "K", "M", "G", "T"};
  double v = std::abs(value);
  int u = 0;
  while (v >= 1000.0 && u < 4) {
    v /= 1000.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3g%s", value < 0 ? -v : v, units[u]);
  return buf;
}

}  // namespace hetindex
