#pragma once
/// \file check.hpp
/// Lightweight runtime invariant checking that stays on in release builds.
/// Indexing correctness bugs (dictionary corruption, postings misorder) are
/// silent-data-corruption class failures, so the cost of a predictable branch
/// is always worth it on non-inner-loop paths.

#include <cstdio>
#include <cstdlib>

namespace hetindex {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "hetindex: check failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace hetindex

/// Always-on invariant check. Use on control paths, not per-token hot loops.
#define HET_CHECK(expr)                                             \
  do {                                                              \
    if (!(expr)) ::hetindex::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Always-on invariant check with an explanatory message.
#define HET_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) ::hetindex::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

/// Debug-only check for per-element hot loops.
#ifndef NDEBUG
#define HET_DCHECK(expr) HET_CHECK(expr)
#else
#define HET_DCHECK(expr) ((void)0)
#endif
