#pragma once
/// \file crc32.hpp
/// CRC-32 (IEEE 802.3 polynomial) used to checksum run-file sections and the
/// WARC-like container records, so corpus corruption is detected instead of
/// silently producing a wrong index.

#include <cstddef>
#include <cstdint>

namespace hetindex {

/// Computes CRC-32 of a byte range; `seed` allows incremental chaining
/// (pass the previous result).
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace hetindex
