#pragma once
/// \file stats.hpp
/// Streaming statistics accumulators used by corpus analysis (Table III),
/// pipeline instrumentation (Table IV/VI) and the GPU cost model reports.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hetindex {

/// Welford single-pass mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi); values outside clamp to edge
/// buckets. Used for B-tree depth distributions and per-file throughput
/// profiles (Fig. 11).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Value below which the given fraction q in [0,1] of samples fall
  /// (bucket-midpoint approximation).
  [[nodiscard]] double quantile(double q) const;
  /// Render as a fixed-width ASCII bar chart for bench output.
  [[nodiscard]] std::string ascii(int width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Pretty-print helpers shared by the bench harnesses.
std::string format_bytes(std::uint64_t bytes);
std::string format_si(double value);

}  // namespace hetindex
