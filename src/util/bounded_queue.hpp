#pragma once
/// \file bounded_queue.hpp
/// Bounded multi-producer/multi-consumer blocking queue. This is the
/// parser→indexer buffer of Fig. 9: parsers block when indexers fall behind
/// (back-pressure) and indexers block while parsers are still filling. A
/// closed queue drains remaining items then reports exhaustion, which is how
/// pipeline shutdown propagates.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace hetindex {

template <typename T>
class BoundedQueue {
 public:
  /// \param probe optional observability hooks (depth gauge + stall-time
  ///        counters); a default probe makes every hook a no-op.
  explicit BoundedQueue(std::size_t capacity, obs::QueueProbe probe = {})
      : capacity_(capacity), probe_(probe) {
    HET_CHECK(capacity > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available. Returns false iff the queue was closed
  /// (the item is dropped in that case).
  bool push(T item) {
    std::unique_lock lock(mu_);
    const auto has_space = [&] { return items_.size() < capacity_ || closed_; };
    if (!has_space()) {
      WallTimer stall;
      not_full_.wait(lock, has_space);
      if (probe_.producer_stall_seconds != nullptr) {
        probe_.producer_stall_seconds->add(stall.seconds());
      }
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (probe_.depth != nullptr) probe_.depth->set(static_cast<std::int64_t>(items_.size()));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      std::scoped_lock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (probe_.depth != nullptr) probe_.depth->set(static_cast<std::int64_t>(items_.size()));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  /// nullopt means "no more items will ever arrive".
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    const auto has_item = [&] { return !items_.empty() || closed_; };
    if (!has_item()) {
      WallTimer stall;
      not_empty_.wait(lock, has_item);
      if (probe_.consumer_stall_seconds != nullptr) {
        probe_.consumer_stall_seconds->add(stall.seconds());
      }
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    if (probe_.depth != nullptr) probe_.depth->set(static_cast<std::int64_t>(items_.size()));
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when currently empty (even if not closed).
  std::optional<T> try_pop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    if (probe_.depth != nullptr) probe_.depth->set(static_cast<std::int64_t>(items_.size()));
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Marks the end of the stream; producers' pushes start failing and
  /// consumers drain what remains.
  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  const obs::QueueProbe probe_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hetindex
