#pragma once
/// \file zipf.hpp
/// Zipf-distributed sampling over ranks 1..n. The paper's CPU/GPU load split
/// (§III.E) is justified entirely by Zipf's law, so the synthetic corpus
/// generator and the popularity classifier tests both need a faithful and
/// fast Zipfian source.
///
/// Implementation: rejection-inversion sampling (Hörmann & Derflinger 1996),
/// O(1) per sample with no O(n) table, so vocabularies of 10^7+ ranks are
/// cheap to instantiate.

#include <cstdint>

#include "util/rng.hpp"

namespace hetindex {

/// Samples ranks from a Zipf(s) distribution over {1, ..., n}:
/// P(k) ∝ 1 / k^s.
class ZipfSampler {
 public:
  /// \param n number of ranks (vocabulary size), n >= 1
  /// \param s skew exponent, s >= 0 (s=0 is uniform; web text ≈ 1.0)
  ZipfSampler(std::uint64_t n, double s);

  /// Draws one rank in [1, n].
  std::uint64_t operator()(Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double s() const { return s_; }

  /// Exact probability of rank k (computed via the normalization constant
  /// accumulated at construction when n is small, else approximated); used
  /// by tests to validate the sampler against expected frequencies.
  [[nodiscard]] double probability(std::uint64_t k) const;

 private:
  [[nodiscard]] double h(double x) const;          // integral of 1/x^s
  [[nodiscard]] double h_inverse(double x) const;  // inverse of h

  std::uint64_t n_;
  double s_;
  double h_x1_;           // h(1.5) - 1
  double h_n_;            // h(n + 0.5)
  double normalization_;  // sum over 1/k^s (exact for small n, approx else)
};

}  // namespace hetindex
