#include "dict/btree.hpp"

namespace hetindex {

BTree::BTree(Arena& arena, bool use_cache) : arena_(&arena), use_cache_(use_cache) {
  root_ = allocate_node(/*leaf=*/true);
}

ArenaOffset BTree::allocate_node(bool leaf) {
  // 64-byte alignment: a node spans exactly 8 cache lines / 32 coalesced
  // words, matching the paper's coalesced 512 B chunk loads (§III.D.2).
  const ArenaOffset off = arena_->allocate(sizeof(BTreeNode), 64);
  auto* n = node(off);
  std::memset(n, 0, sizeof(BTreeNode));
  n->leaf = leaf ? 1 : 0;
  ++node_count_;
  return off;
}

std::string_view BTree::key_at(const BTreeNode& nd, std::uint32_t i) const {
  HET_DCHECK(i < nd.valid);
  if (nd.term_ptr[i] == kArenaNull) {
    // Fully cached: the suffix is the non-zero prefix of the cache word.
    const auto* bytes = reinterpret_cast<const char*>(&nd.cache[i]);
    std::size_t len = 0;
    while (len < 4 && bytes[len] != '\0') ++len;
    return {bytes, len};
  }
  const std::uint8_t* rec = arena_->pointer(nd.term_ptr[i]);
  return {reinterpret_cast<const char*>(rec + 1), rec[0]};
}

int BTree::compare_key(const BTreeNode& nd, std::uint32_t i, std::string_view suffix,
                       std::uint32_t probe_cache) const {
  if (use_cache_) {
    const int d = compare_cache_words(nd.cache[i], probe_cache);
    if (d != 0) {
      ++cache_hits_;
      return d;
    }
    if (nd.term_ptr[i] == kArenaNull) {
      // Key is fully cached (length ≤ 4) and its bytes match the probe's
      // first bytes exactly, padding included: equal unless the probe
      // continues past the cache.
      ++cache_hits_;
      return suffix.size() > 4 ? -1 : 0;
    }
    if (suffix.size() <= 4) {
      // Stored key is longer than 4, probe is not: probe is a strict prefix.
      ++cache_hits_;
      return 1;
    }
  }
  ++string_reads_;
  const std::string_view key = key_at(nd, i);
  const std::size_t n = std::min(key.size(), suffix.size());
  const int d = n == 0 ? 0 : std::memcmp(key.data(), suffix.data(), n);
  if (d != 0) return d;
  if (key.size() == suffix.size()) return 0;
  return key.size() < suffix.size() ? -1 : 1;
}

void BTree::store_key(BTreeNode& nd, std::uint32_t i, std::string_view suffix) {
  nd.cache[i] = make_cache_word(suffix);
  if (suffix.size() > 4 || !use_cache_) {
    HET_CHECK_MSG(suffix.size() <= 255, "Fig. 6 stores term length in one byte");
    const ArenaOffset rec = arena_->allocate(1 + suffix.size());
    std::uint8_t* p = arena_->pointer(rec);
    p[0] = static_cast<std::uint8_t>(suffix.size());
    if (!suffix.empty()) std::memcpy(p + 1, suffix.data(), suffix.size());
    nd.term_ptr[i] = rec;
  } else {
    nd.term_ptr[i] = kArenaNull;
  }
  nd.postings[i] = 0;
}

void BTree::split_child(BTreeNode& parent, std::uint32_t ci) {
  auto* child = node(parent.child[ci]);
  HET_CHECK(child->valid == kBTreeMaxKeys);
  const ArenaOffset right_off = allocate_node(child->leaf != 0);
  auto* right = node(right_off);
  // `child` may have been invalidated by the arena growing during
  // allocate_node — re-resolve. (Arena chunks never move, but be explicit.)
  child = node(parent.child[ci]);

  constexpr std::uint32_t t = kBTreeDegree;  // median index = t - 1 = 15
  right->valid = t - 1;
  for (std::uint32_t k = 0; k < t - 1; ++k) {
    right->term_ptr[k] = child->term_ptr[k + t];
    right->postings[k] = child->postings[k + t];
    right->cache[k] = child->cache[k + t];
  }
  if (!child->leaf) {
    for (std::uint32_t k = 0; k < t; ++k) right->child[k] = child->child[k + t];
  }
  child->valid = t - 1;

  // Shift the parent's keys/children right to open slot ci.
  for (std::uint32_t k = parent.valid; k > ci; --k) {
    parent.term_ptr[k] = parent.term_ptr[k - 1];
    parent.postings[k] = parent.postings[k - 1];
    parent.cache[k] = parent.cache[k - 1];
    parent.child[k + 1] = parent.child[k];
  }
  parent.term_ptr[ci] = child->term_ptr[t - 1];
  parent.postings[ci] = child->postings[t - 1];
  parent.cache[ci] = child->cache[t - 1];
  parent.child[ci + 1] = right_off;
  ++parent.valid;
}

BTreeInsertResult BTree::find_or_insert(std::string_view suffix) {
  const std::uint32_t probe_cache = make_cache_word(suffix);

  if (node(root_)->valid == kBTreeMaxKeys) {
    const ArenaOffset new_root = allocate_node(/*leaf=*/false);
    node(new_root)->child[0] = root_;
    root_ = new_root;
    split_child(*node(new_root), 0);
  }

  ArenaOffset cur = root_;
  while (true) {
    auto* nd = node(cur);
    // Binary search for the first key >= suffix. (The CUDA kernel does this
    // comparison across all 31 keys in one warp-parallel step instead.)
    std::uint32_t lo = 0, hi = nd->valid;
    bool found = false;
    while (lo < hi) {
      const std::uint32_t mid = (lo + hi) / 2;
      const int d = compare_key(*nd, mid, suffix, probe_cache);
      if (d == 0) {
        lo = mid;
        found = true;
        break;
      }
      if (d < 0)
        lo = mid + 1;
      else
        hi = mid;
    }
    if (found) return {&nd->postings[lo], false};

    if (nd->leaf) {
      // Shift keys right of position lo and insert.
      for (std::uint32_t k = nd->valid; k > lo; --k) {
        nd->term_ptr[k] = nd->term_ptr[k - 1];
        nd->postings[k] = nd->postings[k - 1];
        nd->cache[k] = nd->cache[k - 1];
      }
      store_key(*nd, lo, suffix);
      ++nd->valid;
      ++key_count_;
      return {&nd->postings[lo], true};
    }

    if (node(nd->child[lo])->valid == kBTreeMaxKeys) {
      split_child(*nd, lo);
      const int d = compare_key(*nd, lo, suffix, probe_cache);
      if (d == 0) return {&nd->postings[lo], false};
      if (d < 0) ++lo;  // probe is greater than the promoted median
    }
    cur = nd->child[lo];
  }
}

const std::uint32_t* BTree::find(std::string_view suffix) const {
  const std::uint32_t probe_cache = make_cache_word(suffix);
  ArenaOffset cur = root_;
  while (true) {
    const auto* nd = node(cur);
    std::uint32_t lo = 0, hi = nd->valid;
    while (lo < hi) {
      const std::uint32_t mid = (lo + hi) / 2;
      const int d = compare_key(*nd, mid, suffix, probe_cache);
      if (d == 0) return &nd->postings[mid];
      if (d < 0)
        lo = mid + 1;
      else
        hi = mid;
    }
    if (nd->leaf) return nullptr;
    cur = nd->child[lo];
  }
}

void BTree::for_each_node(ArenaOffset off,
                          const std::function<void(std::string_view, std::uint32_t)>& fn) const {
  const auto* nd = node(off);
  for (std::uint32_t i = 0; i < nd->valid; ++i) {
    if (!nd->leaf) for_each_node(nd->child[i], fn);
    fn(key_at(*nd, i), nd->postings[i]);
  }
  if (!nd->leaf) for_each_node(nd->child[nd->valid], fn);
}

void BTree::for_each(const std::function<void(std::string_view, std::uint32_t)>& fn) const {
  if (key_count_ > 0) for_each_node(root_, fn);
}

std::size_t BTree::height() const {
  std::size_t h = 1;
  ArenaOffset cur = root_;
  while (!node(cur)->leaf) {
    cur = node(cur)->child[0];
    ++h;
  }
  return h;
}

BTreeStats BTree::stats() const {
  return {node_count_, key_count_, height(), cache_hits_, string_reads_};
}

}  // namespace hetindex
