#include "dict/trie_table.hpp"

#include "util/check.hpp"

namespace hetindex {

std::string trie_prefix(std::uint32_t index) {
  HET_CHECK(index < kTrieCollections);
  if (index == 0) return "";
  if (index <= 10) return std::string(1, static_cast<char>('0' + index - 1));
  if (index < kTrieThreeLetterBase)
    return std::string(1, static_cast<char>('a' + index - 11));
  const std::uint32_t v = index - kTrieThreeLetterBase;
  std::string prefix(3, 'a');
  prefix[0] = static_cast<char>('a' + v / (26 * 26));
  prefix[1] = static_cast<char>('a' + (v / 26) % 26);
  prefix[2] = static_cast<char>('a' + v % 26);
  return prefix;
}

}  // namespace hetindex
