#pragma once
/// \file btree.hpp
/// Degree-16 B-tree with the exact 512-byte node layout of Table II. One
/// B-tree per trie collection; each tree is only ever touched by a single
/// indexer (CPU thread or GPU warp), which is how the hybrid structure gets
/// lock-free parallelism (§III.B).
///
/// Node capacity is 31 keys "selected to match the CUDA warp size": a warp
/// of 32 threads compares a probe term against all 31 keys in one parallel
/// step (Fig. 7). Keys are the *suffixes* of terms after trie-prefix
/// removal; each key slot carries a 4-byte cache of the suffix's first
/// bytes so most comparisons never dereference the string pointer.
///
/// All "pointers" in the node are 32-bit arena offsets (that is what makes
/// the 512-byte layout of Table II work on a 64-bit host): term strings and
/// child nodes live in a per-shard Arena, postings slots hold opaque
/// 32-bit handles owned by the caller.

#include <cstdint>
#include <cstring>
#include <functional>
#include <string_view>

#include "util/arena.hpp"
#include "util/check.hpp"

namespace hetindex {

/// B-tree minimum degree t (CLRS convention): nodes hold t-1..2t-1 keys.
inline constexpr std::uint32_t kBTreeDegree = 16;
/// Maximum keys per node = 2t - 1 = 31 (Table II).
inline constexpr std::uint32_t kBTreeMaxKeys = 2 * kBTreeDegree - 1;

/// Table II, field for field. 4 + 124 + 4 + 124 + 128 + 124 + 4 = 512.
struct BTreeNode {
  std::uint32_t valid;                      ///< number of keys in use
  ArenaOffset term_ptr[kBTreeMaxKeys];      ///< Fig. 6 string records (0 = fully cached)
  std::uint32_t leaf;                       ///< 1 when the node is a leaf
  std::uint32_t postings[kBTreeMaxKeys];    ///< opaque postings handles
  ArenaOffset child[kBTreeMaxKeys + 1];     ///< child node offsets
  std::uint32_t cache[kBTreeMaxKeys];       ///< first 4 suffix bytes, zero-padded
  std::uint32_t padding;
};
static_assert(sizeof(BTreeNode) == 512, "Table II mandates 512-byte nodes");

/// Packs up to the first 4 bytes of `s` into a cache word, zero-padded.
/// Token bytes are never zero, so the padding is unambiguous.
[[nodiscard]] inline std::uint32_t make_cache_word(std::string_view s) {
  std::uint8_t bytes[4] = {0, 0, 0, 0};
  const std::size_t n = s.size() < 4 ? s.size() : 4;
  std::memcpy(bytes, s.data(), n);
  std::uint32_t w;
  std::memcpy(&w, bytes, 4);
  return w;
}

/// Three-way comparison of two cache words as 4-byte big-endian strings
/// (memcmp order). Returns <0, 0, >0.
[[nodiscard]] inline int compare_cache_words(std::uint32_t a, std::uint32_t b) {
  std::uint8_t ab[4], bb[4];
  std::memcpy(ab, &a, 4);
  std::memcpy(bb, &b, 4);
  return std::memcmp(ab, bb, 4);
}

/// Per-insert outcome used by indexers to decide whether to allocate a new
/// postings list.
struct BTreeInsertResult {
  std::uint32_t* postings_slot;  ///< slot to read/write the postings handle
  bool created;                  ///< true when the term was newly inserted
};

/// Counters reported by the ablation/scaling benches.
struct BTreeStats {
  std::size_t nodes = 0;
  std::size_t keys = 0;
  std::size_t height = 0;
  std::uint64_t cache_hits = 0;    ///< comparisons resolved by the 4-byte cache
  std::uint64_t string_reads = 0;  ///< comparisons that dereferenced the arena
};

/// A single B-tree over term suffixes. Not thread-safe by design — the
/// paper's parallelism comes from tree-per-collection ownership, not locks.
class BTree {
 public:
  /// \param arena   backing store for nodes and string records; must
  ///                outlive the tree.
  /// \param use_cache when false, the 4-byte caches are ignored and every
  ///                comparison reads the full string — the ablation mode of
  ///                bench_ablation_string_cache.
  explicit BTree(Arena& arena, bool use_cache = true);

  /// Finds `suffix`, inserting it if absent. The returned postings slot
  /// stays valid for the tree's lifetime (nodes never move in the arena;
  /// key shifts within a node move slot *contents* along with the key, so
  /// the slot must be consumed before the next insert).
  BTreeInsertResult find_or_insert(std::string_view suffix);

  /// Looks up `suffix`; returns nullptr when absent.
  [[nodiscard]] const std::uint32_t* find(std::string_view suffix) const;

  /// In-order traversal: fn(suffix, postings_handle). Suffix views point
  /// into the arena / node caches and are valid only during the call.
  void for_each(const std::function<void(std::string_view, std::uint32_t)>& fn) const;

  [[nodiscard]] std::size_t size() const { return key_count_; }
  [[nodiscard]] bool empty() const { return key_count_ == 0; }
  [[nodiscard]] std::size_t height() const;
  [[nodiscard]] BTreeStats stats() const;

  /// Reconstructs the suffix stored at key slot i of a node (helper shared
  /// with the GPU indexer kernel and tests).
  [[nodiscard]] std::string_view key_at(const BTreeNode& node, std::uint32_t i) const;

 private:
  friend class GpuBTreeKernel;

  [[nodiscard]] BTreeNode* node(ArenaOffset off) { return arena_->object<BTreeNode>(off); }
  [[nodiscard]] const BTreeNode* node(ArenaOffset off) const {
    return arena_->object<BTreeNode>(off);
  }
  ArenaOffset allocate_node(bool leaf);
  /// Compares probe `suffix` with key i of `node`; counts cache efficacy.
  [[nodiscard]] int compare_key(const BTreeNode& node, std::uint32_t i,
                                std::string_view suffix, std::uint32_t probe_cache) const;
  /// Writes key `suffix` into slot i of `node` (allocating the Fig. 6
  /// string record when it does not fit the cache).
  void store_key(BTreeNode& node, std::uint32_t i, std::string_view suffix);
  /// Splits full child c of `parent` at child index ci (CLRS split-child).
  void split_child(BTreeNode& parent, std::uint32_t ci);
  void for_each_node(ArenaOffset off,
                     const std::function<void(std::string_view, std::uint32_t)>& fn) const;

  Arena* arena_;
  bool use_cache_;
  ArenaOffset root_;
  std::size_t key_count_ = 0;
  std::size_t node_count_ = 0;
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t string_reads_ = 0;
};

}  // namespace hetindex
