#pragma once
/// \file dictionary.hpp
/// The full dictionary: the Table I trie table mapping each collection
/// index directly to the root of an independent B-tree (Fig. 2). Shards
/// partition collection ownership across indexers — "every indexer keeps an
/// independent and exclusive part of the global dictionary" (§III.E) — so
/// each shard is single-threaded by construction and needs no locks.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dict/btree.hpp"
#include "dict/trie_table.hpp"
#include "util/arena.hpp"

namespace hetindex {

/// One indexer's exclusive slice of the dictionary: a flat table of
/// kTrieCollections root slots (the paper's trie-as-table) backed by a
/// private arena.
class DictionaryShard {
 public:
  /// \param use_cache forwards to BTree (ablation hook).
  explicit DictionaryShard(bool use_cache = true);

  DictionaryShard(DictionaryShard&&) noexcept = default;
  DictionaryShard& operator=(DictionaryShard&&) noexcept = default;

  /// The B-tree of a collection, created on first use.
  BTree& tree(std::uint32_t trie_idx);
  /// Read-only access; nullptr when the collection has no terms yet.
  [[nodiscard]] const BTree* tree_if_exists(std::uint32_t trie_idx) const;
  [[nodiscard]] BTree* tree_if_exists(std::uint32_t trie_idx);

  /// Inserts a full term (prefix stripping applied internally).
  BTreeInsertResult insert_term(std::string_view term);
  /// Looks up a full term; nullptr when absent.
  [[nodiscard]] const std::uint32_t* find_term(std::string_view term) const;

  /// fn(trie_idx, tree) for every non-empty collection, ascending index.
  void for_each_tree(const std::function<void(std::uint32_t, const BTree&)>& fn) const;

  [[nodiscard]] std::uint64_t term_count() const;
  [[nodiscard]] std::size_t collection_count() const { return active_; }
  [[nodiscard]] const Arena& arena() const { return *arena_; }
  [[nodiscard]] Arena& arena() { return *arena_; }

 private:
  std::unique_ptr<Arena> arena_;  // stable address for BTree back-pointers
  bool use_cache_;
  std::vector<std::unique_ptr<BTree>> roots_;  // the trie table (Fig. 2)
  std::size_t active_ = 0;
};

/// A term enumerated out of a dictionary: full term, owning collection and
/// the opaque postings handle the indexer stored.
struct DictionaryEntry {
  std::string term;
  std::uint32_t trie_idx;
  std::uint32_t shard;   ///< owning shard id (part of the postings key)
  std::uint32_t handle;  ///< opaque postings handle within the shard
};

/// The combined dictionary: shards plus the collection→shard ownership map
/// ("once a trie collection is assigned to a particular indexer, it is
/// bound with this indexer through the program lifetime", §III.E).
class Dictionary {
 public:
  explicit Dictionary(bool use_cache = true);

  /// Adds a shard; returns its id.
  std::size_t add_shard();
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] DictionaryShard& shard(std::size_t i) { return shards_[i]; }
  [[nodiscard]] const DictionaryShard& shard(std::size_t i) const { return shards_[i]; }

  /// Binds a collection to a shard for the dictionary lifetime.
  void assign(std::uint32_t trie_idx, std::size_t shard_id);
  [[nodiscard]] std::size_t owner(std::uint32_t trie_idx) const;

  /// Serial convenience insert (routes through the owning shard; used by
  /// baselines and tests — the pipeline inserts via shards directly).
  BTreeInsertResult insert(std::string_view term);
  /// Cross-shard lookup; nullptr when absent.
  [[nodiscard]] const std::uint32_t* find(std::string_view term) const;

  [[nodiscard]] std::uint64_t term_count() const;

  /// "Dictionary Combine" of Table VI: enumerates all shards into one
  /// lexicographically sorted term list.
  [[nodiscard]] std::vector<DictionaryEntry> combine() const;

 private:
  bool use_cache_;
  std::vector<DictionaryShard> shards_;
  std::vector<std::uint32_t> owner_;  // trie_idx → shard id (or kUnassigned)
  static constexpr std::uint32_t kUnassigned = 0xFFFFFFFFu;
};

/// On-disk dictionary format ("Dictionary Write" of Table VI): per
/// collection, a front-coded suffix block plus the postings handles.
void dictionary_write(const Dictionary& dict, const std::string& path);
/// Loads entries written by dictionary_write.
std::vector<DictionaryEntry> dictionary_read(const std::string& path);

}  // namespace hetindex
