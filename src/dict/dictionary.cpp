#include "dict/dictionary.hpp"

#include <algorithm>

#include "codec/front_coding.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"

namespace hetindex {

DictionaryShard::DictionaryShard(bool use_cache)
    : arena_(std::make_unique<Arena>()), use_cache_(use_cache), roots_(kTrieCollections) {}

BTree& DictionaryShard::tree(std::uint32_t trie_idx) {
  HET_CHECK(trie_idx < kTrieCollections);
  auto& slot = roots_[trie_idx];
  if (!slot) {
    slot = std::make_unique<BTree>(*arena_, use_cache_);
    ++active_;
  }
  return *slot;
}

const BTree* DictionaryShard::tree_if_exists(std::uint32_t trie_idx) const {
  HET_CHECK(trie_idx < kTrieCollections);
  return roots_[trie_idx].get();
}

BTree* DictionaryShard::tree_if_exists(std::uint32_t trie_idx) {
  HET_CHECK(trie_idx < kTrieCollections);
  return roots_[trie_idx].get();
}

BTreeInsertResult DictionaryShard::insert_term(std::string_view term) {
  const std::uint32_t idx = trie_index(term);
  return tree(idx).find_or_insert(trie_suffix(term, idx));
}

const std::uint32_t* DictionaryShard::find_term(std::string_view term) const {
  const std::uint32_t idx = trie_index(term);
  const BTree* t = tree_if_exists(idx);
  return t ? t->find(trie_suffix(term, idx)) : nullptr;
}

void DictionaryShard::for_each_tree(
    const std::function<void(std::uint32_t, const BTree&)>& fn) const {
  for (std::uint32_t i = 0; i < kTrieCollections; ++i) {
    if (roots_[i] && !roots_[i]->empty()) fn(i, *roots_[i]);
  }
}

std::uint64_t DictionaryShard::term_count() const {
  std::uint64_t n = 0;
  for (const auto& t : roots_)
    if (t) n += t->size();
  return n;
}

Dictionary::Dictionary(bool use_cache)
    : use_cache_(use_cache), owner_(kTrieCollections, kUnassigned) {}

std::size_t Dictionary::add_shard() {
  shards_.emplace_back(use_cache_);
  return shards_.size() - 1;
}

void Dictionary::assign(std::uint32_t trie_idx, std::size_t shard_id) {
  HET_CHECK(trie_idx < kTrieCollections && shard_id < shards_.size());
  owner_[trie_idx] = static_cast<std::uint32_t>(shard_id);
}

std::size_t Dictionary::owner(std::uint32_t trie_idx) const {
  HET_CHECK(trie_idx < kTrieCollections);
  const std::uint32_t o = owner_[trie_idx];
  HET_CHECK_MSG(o != kUnassigned, "trie collection has no owning shard");
  return o;
}

BTreeInsertResult Dictionary::insert(std::string_view term) {
  const std::uint32_t idx = trie_index(term);
  std::uint32_t o = owner_[idx];
  if (o == kUnassigned) {
    if (shards_.empty()) add_shard();
    o = 0;
    owner_[idx] = 0;
  }
  return shards_[o].tree(idx).find_or_insert(trie_suffix(term, idx));
}

const std::uint32_t* Dictionary::find(std::string_view term) const {
  const std::uint32_t idx = trie_index(term);
  const std::uint32_t o = owner_[idx];
  if (o == kUnassigned) return nullptr;
  const BTree* t = shards_[o].tree_if_exists(idx);
  return t ? t->find(trie_suffix(term, idx)) : nullptr;
}

std::uint64_t Dictionary::term_count() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s.term_count();
  return n;
}

std::vector<DictionaryEntry> Dictionary::combine() const {
  std::vector<DictionaryEntry> entries;
  entries.reserve(static_cast<std::size_t>(term_count()));
  for (std::size_t sid = 0; sid < shards_.size(); ++sid) {
    shards_[sid].for_each_tree([&](std::uint32_t trie_idx, const BTree& tree) {
      const std::string prefix = trie_prefix(trie_idx);
      tree.for_each([&](std::string_view suffix, std::uint32_t handle) {
        entries.push_back({prefix + std::string(suffix), trie_idx,
                           static_cast<std::uint32_t>(sid), handle});
      });
    });
  }
  std::sort(entries.begin(), entries.end(),
            [](const DictionaryEntry& a, const DictionaryEntry& b) { return a.term < b.term; });
  return entries;
}

namespace {
constexpr std::uint32_t kDictMagic = 0x48444943;  // "CIDH"
}

void dictionary_write(const Dictionary& dict, const std::string& path) {
  // Group the combined (already sorted) entries by collection; inside a
  // collection, terms share the trie prefix so front-coding compresses both
  // the prefix and B-tree-local suffix overlaps.
  const auto entries = dict.combine();
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u32(kDictMagic);
  w.u64(entries.size());
  std::size_t i = 0;
  while (i < entries.size()) {
    // Entries with equal trie_idx are contiguous per collection only within
    // the sorted order for indices >= 37 (prefix-grouped); to stay simple
    // and robust we emit maximal runs of equal trie_idx.
    std::size_t j = i;
    while (j < entries.size() && entries[j].trie_idx == entries[i].trie_idx) ++j;
    std::vector<std::string> terms;
    terms.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) terms.push_back(entries[k].term);
    const auto block = front_code(terms);
    w.u32(entries[i].trie_idx);
    w.u32(static_cast<std::uint32_t>(j - i));
    w.u32(static_cast<std::uint32_t>(block.size()));
    w.bytes(block.data(), block.size());
    for (std::size_t k = i; k < j; ++k) {
      w.u32(entries[k].shard);
      w.u32(entries[k].handle);
    }
    i = j;
  }
  write_file(path, out);
}

std::vector<DictionaryEntry> dictionary_read(const std::string& path) {
  const auto data = read_file(path);
  ByteReader r(data);
  HET_CHECK_MSG(r.u32() == kDictMagic, "not a hetindex dictionary file");
  const std::uint64_t total = r.u64();
  std::vector<DictionaryEntry> entries;
  entries.reserve(total);
  while (entries.size() < total) {
    const std::uint32_t trie_idx = r.u32();
    const std::uint32_t count = r.u32();
    const std::uint32_t block_size = r.u32();
    std::vector<std::uint8_t> block(block_size);
    r.bytes(block.data(), block_size);
    auto terms = front_decode(block, count);
    for (std::uint32_t k = 0; k < count; ++k) {
      const std::uint32_t shard = r.u32();
      const std::uint32_t handle = r.u32();
      entries.push_back({std::move(terms[k]), trie_idx, shard, handle});
    }
  }
  return entries;
}

}  // namespace hetindex
