#pragma once
/// \file trie_table.hpp
/// The height-3 trie of §III.B.1, realized — exactly as the paper does — as
/// a pure index computation instead of a pointer structure: "Since the trie
/// height is constant here, we don't need to actually build the trie
/// structure but we use a table to map a trie index directly into the root
/// location of the corresponding B-Tree."
///
/// Table I layout (17,613 collections):
///   0               terms that fit no other category ("-80", "3d", "Česky")
///   1..10           pure numbers, grouped by first digit '0'..'9'
///   11..36          first char 'a'..'z' AND (≤3 chars OR a non-[a-z] char
///                   among the first 3)
///   37..17612       >3 chars, first three chars all in [a-z]:
///                   37 + (c0·26² + c1·26 + c2)
///
/// The common prefix captured by the index (1 char for 1..36, 3 chars for
/// 37.., nothing for 0) is stripped before dictionary insertion; stripping
/// nearly halves string-comparison cost on stemmed tokens of average length
/// 6.6 (§III.B.1).

#include <cstdint>
#include <string>
#include <string_view>

#include "text/tokenizer.hpp"

namespace hetindex {

/// Number of trie collections (Table I).
inline constexpr std::uint32_t kTrieCollections = 1 + 10 + 26 + 26 * 26 * 26;
static_assert(kTrieCollections == 17613);

/// First index of the three-letter-prefix region.
inline constexpr std::uint32_t kTrieThreeLetterBase = 37;

/// Maps a (lowercased, tokenized) term to its trie collection index.
[[nodiscard]] constexpr std::uint32_t trie_index(std::string_view term) {
  if (term.empty()) return 0;
  const auto c0 = static_cast<unsigned char>(term[0]);
  if (is_digit(c0)) {
    for (const char ch : term)
      if (!is_digit(static_cast<unsigned char>(ch))) return 0;  // "3d" → special
    return 1 + static_cast<std::uint32_t>(c0 - '0');
  }
  if (!is_ascii_lower(c0)) return 0;  // "Česky" → special (tokenizer lowercases ASCII)
  if (term.size() <= 3) return 11 + static_cast<std::uint32_t>(c0 - 'a');
  const auto c1 = static_cast<unsigned char>(term[1]);
  const auto c2 = static_cast<unsigned char>(term[2]);
  if (!is_ascii_lower(c1) || !is_ascii_lower(c2)) {
    return 11 + static_cast<std::uint32_t>(c0 - 'a');  // special letter in first 3
  }
  return kTrieThreeLetterBase +
         (static_cast<std::uint32_t>(c0 - 'a') * 26 * 26 +
          static_cast<std::uint32_t>(c1 - 'a') * 26 + static_cast<std::uint32_t>(c2 - 'a'));
}

/// Number of leading characters of a member term that the index captures
/// (and that are therefore stripped before B-tree insertion).
[[nodiscard]] constexpr std::size_t trie_prefix_length(std::uint32_t index) {
  if (index == 0) return 0;
  if (index < kTrieThreeLetterBase) return 1;
  return 3;
}

/// Reconstructs the captured prefix of a collection ("", "0".."9",
/// "a".."z", or "aaa".."zzz"); prefix + stored suffix = original term.
[[nodiscard]] std::string trie_prefix(std::uint32_t index);

/// Suffix of `term` after removing the prefix captured by its index.
[[nodiscard]] constexpr std::string_view trie_suffix(std::string_view term,
                                                     std::uint32_t index) {
  return term.substr(trie_prefix_length(index));
}

}  // namespace hetindex
