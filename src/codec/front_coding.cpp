#include "codec/front_coding.hpp"

#include "codec/posting_codecs.hpp"
#include "util/check.hpp"

namespace hetindex {

std::size_t common_prefix_length(std::string_view a, std::string_view b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

std::vector<std::uint8_t> front_code(const std::vector<std::string>& terms) {
  std::vector<std::uint8_t> out;
  std::string_view prev;
  for (const auto& term : terms) {
    HET_CHECK_MSG(prev <= term, "front coding requires sorted input");
    const std::size_t shared = common_prefix_length(prev, term);
    vbyte_encode(shared, out);
    vbyte_encode(term.size() - shared, out);
    out.insert(out.end(), term.begin() + static_cast<std::ptrdiff_t>(shared), term.end());
    prev = term;
  }
  return out;
}

std::vector<std::string> front_decode(const std::vector<std::uint8_t>& block,
                                      std::size_t count) {
  std::vector<std::string> terms;
  terms.reserve(count);
  std::size_t pos = 0;
  std::string prev;
  for (std::size_t i = 0; i < count; ++i) {
    const auto shared = vbyte_decode(block.data(), block.size(), pos);
    const auto suffix_len = vbyte_decode(block.data(), block.size(), pos);
    HET_CHECK_MSG(shared <= prev.size(), "front coding prefix exceeds previous term");
    HET_CHECK_MSG(pos + suffix_len <= block.size(), "front coding suffix overrun");
    std::string term = prev.substr(0, shared);
    term.append(reinterpret_cast<const char*>(block.data() + pos), suffix_len);
    pos += suffix_len;
    prev = term;
    terms.push_back(std::move(term));
  }
  return terms;
}

}  // namespace hetindex
