#pragma once
/// \file bit_io.hpp
/// MSB-first bit stream reader/writer backing the Elias-γ and Golomb posting
/// codecs (§II: "γ encoding and Golomb compression").

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace hetindex {

/// Appends bits MSB-first into a byte vector.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  /// Writes the low `count` bits of `bits` (MSB of that field first).
  void write(std::uint64_t bits, unsigned count) {
    HET_DCHECK(count <= 64);
    for (unsigned i = count; i-- > 0;) put_bit((bits >> i) & 1u);
  }

  /// Writes `n` one-bits followed by a zero (unary code of n).
  void write_unary(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) put_bit(1);
    put_bit(0);
  }

  /// Pads the final partial byte with zeros. Must be called before the
  /// underlying buffer is consumed.
  void flush() {
    if (fill_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(current_ << (8 - fill_)));
      current_ = 0;
      fill_ = 0;
    }
  }

  /// Total bits written so far (excluding flush padding).
  [[nodiscard]] std::uint64_t bit_count() const { return bit_count_; }

 private:
  void put_bit(unsigned b) {
    current_ = static_cast<std::uint8_t>((current_ << 1) | (b & 1u));
    if (++fill_ == 8) {
      out_.push_back(current_);
      current_ = 0;
      fill_ = 0;
    }
    ++bit_count_;
  }
  std::vector<std::uint8_t>& out_;
  std::uint8_t current_ = 0;
  unsigned fill_ = 0;
  std::uint64_t bit_count_ = 0;
};

/// Reads bits MSB-first from a byte range.
class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t bytes) : data_(data), bytes_(bytes) {}

  [[nodiscard]] std::uint64_t read(unsigned count) {
    HET_DCHECK(count <= 64);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < count; ++i) v = (v << 1) | get_bit();
    return v;
  }

  /// Counts one-bits until the terminating zero.
  [[nodiscard]] std::uint64_t read_unary() {
    std::uint64_t n = 0;
    while (get_bit()) ++n;
    return n;
  }

  [[nodiscard]] std::uint64_t bits_consumed() const { return bit_pos_; }

 private:
  unsigned get_bit() {
    const std::size_t byte = bit_pos_ >> 3;
    HET_CHECK_MSG(byte < bytes_, "bit stream overrun");
    const unsigned bit = 7 - (bit_pos_ & 7);
    ++bit_pos_;
    return (data_[byte] >> bit) & 1u;
  }
  const std::uint8_t* data_;
  std::size_t bytes_;
  std::uint64_t bit_pos_ = 0;
};

}  // namespace hetindex
