#pragma once
/// \file lz.hpp
/// Block LZ compressor/decompressor (LZ4-style token format with a hash-table
/// greedy match finder). This is the container codec for the synthetic
/// corpus: it substitutes for gzip on ClueWeb files so the parser pipeline
/// exercises the same read-compressed-then-decompress-in-memory path whose
/// timing trade-offs §IV.A analyzes (1.6 s read + 3.2 s decompress per 1 GB
/// file on the paper's hardware).
///
/// Frame layout: [u32 magic][u64 raw_size] then per block:
/// [u32 raw_len][u32 comp_len][u32 crc32 of raw][payload]. comp_len == 0
/// marks a stored (incompressible) block whose payload is the raw bytes.

#include <cstdint>
#include <vector>

namespace hetindex {

/// Compresses `input` into a self-describing frame.
std::vector<std::uint8_t> lz_compress(const std::uint8_t* input, std::size_t size);
std::vector<std::uint8_t> lz_compress(const std::vector<std::uint8_t>& input);

/// Decompresses a frame produced by lz_compress; hard-fails on corruption
/// (magic/CRC/bounds mismatch).
std::vector<std::uint8_t> lz_decompress(const std::uint8_t* input, std::size_t size);
std::vector<std::uint8_t> lz_decompress(const std::vector<std::uint8_t>& input);

/// Raw size recorded in a frame header without decompressing.
std::uint64_t lz_raw_size(const std::uint8_t* input, std::size_t size);

/// Decompresses only the leading whole blocks of a frame until at least
/// `max_raw` bytes are produced (or the frame ends). Blocks are 1 MiB, so
/// this is the honest implementation of "extract a sample, e.g. 1MB out of
/// every 1GB" (§III.E) without inflating the file.
std::vector<std::uint8_t> lz_decompress_prefix(const std::uint8_t* input, std::size_t size,
                                               std::uint64_t max_raw);

}  // namespace hetindex
