#include "codec/lz.hpp"

#include <cstring>

#include "util/check.hpp"
#include "util/crc32.hpp"

namespace hetindex {
namespace {

constexpr std::uint32_t kMagic = 0x485A4C31;  // "1LZH"
constexpr std::size_t kBlockSize = 1u << 20;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kHashBits = 16;
constexpr std::size_t kMaxOffset = 0xFFFF;

inline std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto n = out.size();
  out.resize(n + 4);
  std::memcpy(out.data() + n, &v, 4);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto n = out.size();
  out.resize(n + 8);
  std::memcpy(out.data() + n, &v, 8);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void put_length_ext(std::vector<std::uint8_t>& out, std::size_t extra) {
  // LZ4-style length extension: bytes of 255 then a final byte < 255.
  while (extra >= 255) {
    out.push_back(255);
    extra -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(extra));
}

std::size_t get_length_ext(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
  std::size_t extra = 0;
  while (true) {
    HET_CHECK_MSG(pos < size, "lz length extension overrun");
    const std::uint8_t b = data[pos++];
    extra += b;
    if (b != 255) return extra;
  }
}

/// Compresses one block; returns empty when the block is incompressible
/// (compressed form would not be smaller).
std::vector<std::uint8_t> compress_block(const std::uint8_t* src, std::size_t n) {
  std::vector<std::uint8_t> out;
  out.reserve(n / 2 + 64);
  std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, 0xFFFFFFFFu);

  std::size_t pos = 0;
  std::size_t literal_start = 0;

  auto emit_sequence = [&](std::size_t lit_end, std::size_t match_len, std::size_t offset) {
    const std::size_t lit_len = lit_end - literal_start;
    const std::size_t ml_field = match_len == 0 ? 0 : match_len - kMinMatch;
    const std::uint8_t token =
        static_cast<std::uint8_t>((std::min<std::size_t>(lit_len, 15) << 4) |
                                  std::min<std::size_t>(ml_field, 15));
    out.push_back(token);
    if (lit_len >= 15) put_length_ext(out, lit_len - 15);
    out.insert(out.end(), src + literal_start, src + lit_end);
    // offset 0 is the end-of-block marker (no match follows).
    out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
    out.push_back(static_cast<std::uint8_t>(offset >> 8));
    if (match_len > 0 && ml_field >= 15) put_length_ext(out, ml_field - 15);
  };

  while (pos + kMinMatch <= n) {
    const std::uint32_t h = hash4(src + pos);
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(pos);
    if (cand != 0xFFFFFFFFu && pos - cand <= kMaxOffset &&
        std::memcmp(src + cand, src + pos, kMinMatch) == 0) {
      std::size_t len = kMinMatch;
      while (pos + len < n && src[cand + len] == src[pos + len]) ++len;
      emit_sequence(pos, len, pos - cand);
      // Insert a few positions inside the match to keep the table fresh.
      const std::size_t end = pos + len;
      for (std::size_t i = pos + 1; i + kMinMatch <= end && i < pos + 16; ++i) {
        table[hash4(src + i)] = static_cast<std::uint32_t>(i);
      }
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
    if (out.size() + (pos - literal_start) >= n) return {};  // not compressing
  }
  emit_sequence(n, 0, 0);
  if (out.size() >= n) return {};
  return out;
}

void decompress_block(const std::uint8_t* data, std::size_t size, std::uint8_t* dst,
                      std::size_t raw_len) {
  std::size_t pos = 0;
  std::size_t out = 0;
  while (true) {
    HET_CHECK_MSG(pos < size, "lz block truncated");
    const std::uint8_t token = data[pos++];
    std::size_t lit_len = token >> 4;
    if (lit_len == 15) lit_len += get_length_ext(data, size, pos);
    HET_CHECK_MSG(pos + lit_len <= size && out + lit_len <= raw_len, "lz literal overrun");
    std::memcpy(dst + out, data + pos, lit_len);
    pos += lit_len;
    out += lit_len;
    HET_CHECK_MSG(pos + 2 <= size, "lz offset truncated");
    const std::size_t offset = data[pos] | (static_cast<std::size_t>(data[pos + 1]) << 8);
    pos += 2;
    if (offset == 0) {
      HET_CHECK_MSG(out == raw_len, "lz block raw length mismatch");
      return;
    }
    std::size_t match_len = (token & 0x0F);
    if (match_len == 15) match_len += get_length_ext(data, size, pos);
    match_len += kMinMatch;
    HET_CHECK_MSG(offset <= out && out + match_len <= raw_len, "lz match overrun");
    // Byte-by-byte copy: matches may overlap their own output (RLE case).
    const std::uint8_t* from = dst + out - offset;
    for (std::size_t i = 0; i < match_len; ++i) dst[out + i] = from[i];
    out += match_len;
  }
}

}  // namespace

std::vector<std::uint8_t> lz_compress(const std::uint8_t* input, std::size_t size) {
  std::vector<std::uint8_t> out;
  out.reserve(size / 2 + 64);
  put_u32(out, kMagic);
  put_u64(out, size);
  for (std::size_t off = 0; off < size || off == 0; off += kBlockSize) {
    const std::size_t raw_len = std::min(kBlockSize, size - off);
    const auto block = compress_block(input + off, raw_len);
    put_u32(out, static_cast<std::uint32_t>(raw_len));
    put_u32(out, static_cast<std::uint32_t>(block.size()));
    put_u32(out, crc32(input + off, raw_len));
    if (block.empty()) {
      out.insert(out.end(), input + off, input + off + raw_len);  // stored
    } else {
      out.insert(out.end(), block.begin(), block.end());
    }
    if (size == 0) break;
  }
  return out;
}

std::vector<std::uint8_t> lz_compress(const std::vector<std::uint8_t>& input) {
  return lz_compress(input.data(), input.size());
}

std::uint64_t lz_raw_size(const std::uint8_t* input, std::size_t size) {
  HET_CHECK_MSG(size >= 12 && get_u32(input) == kMagic, "bad lz frame header");
  return get_u64(input + 4);
}

std::vector<std::uint8_t> lz_decompress(const std::uint8_t* input, std::size_t size) {
  const std::uint64_t raw_size = lz_raw_size(input, size);
  std::vector<std::uint8_t> out(raw_size);
  std::size_t pos = 12;
  std::size_t produced = 0;
  while (produced < raw_size || (raw_size == 0 && pos < size)) {
    HET_CHECK_MSG(pos + 12 <= size, "lz frame truncated");
    const std::uint32_t raw_len = get_u32(input + pos);
    const std::uint32_t comp_len = get_u32(input + pos + 4);
    const std::uint32_t crc = get_u32(input + pos + 8);
    pos += 12;
    HET_CHECK_MSG(produced + raw_len <= raw_size, "lz frame raw size mismatch");
    if (comp_len == 0) {
      HET_CHECK_MSG(pos + raw_len <= size, "lz stored block truncated");
      // raw_len can be 0 for an empty payload; out.data() is null then and
      // memcpy(null, ..., 0) is still UB.
      if (raw_len != 0) std::memcpy(out.data() + produced, input + pos, raw_len);
      pos += raw_len;
    } else {
      HET_CHECK_MSG(pos + comp_len <= size, "lz compressed block truncated");
      decompress_block(input + pos, comp_len, out.data() + produced, raw_len);
      pos += comp_len;
    }
    HET_CHECK_MSG(crc32(out.data() + produced, raw_len) == crc, "lz block crc mismatch");
    produced += raw_len;
    if (raw_size == 0) break;
  }
  return out;
}

std::vector<std::uint8_t> lz_decompress(const std::vector<std::uint8_t>& input) {
  return lz_decompress(input.data(), input.size());
}

std::vector<std::uint8_t> lz_decompress_prefix(const std::uint8_t* input, std::size_t size,
                                               std::uint64_t max_raw) {
  const std::uint64_t raw_size = lz_raw_size(input, size);
  const std::uint64_t want = std::min(raw_size, max_raw);
  std::vector<std::uint8_t> out;
  out.reserve(want + kBlockSize);
  std::size_t pos = 12;
  while (out.size() < want && pos + 12 <= size) {
    const std::uint32_t raw_len = get_u32(input + pos);
    const std::uint32_t comp_len = get_u32(input + pos + 4);
    const std::uint32_t crc = get_u32(input + pos + 8);
    pos += 12;
    const std::size_t at = out.size();
    out.resize(at + raw_len);
    if (comp_len == 0) {
      HET_CHECK_MSG(pos + raw_len <= size, "lz stored block truncated");
      std::memcpy(out.data() + at, input + pos, raw_len);
      pos += raw_len;
    } else {
      HET_CHECK_MSG(pos + comp_len <= size, "lz compressed block truncated");
      decompress_block(input + pos, comp_len, out.data() + at, raw_len);
      pos += comp_len;
    }
    HET_CHECK_MSG(crc32(out.data() + at, raw_len) == crc, "lz block crc mismatch");
  }
  return out;
}

}  // namespace hetindex
