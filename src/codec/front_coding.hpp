#pragma once
/// \file front_coding.hpp
/// Front-coding of lexicographically sorted term lists. §II credits
/// Heinz & Zobel with writing the dictionary in lexicographic order so that
/// adjacent terms share prefixes; the on-disk dictionary (§III.F "it is
/// moved to the disk") uses this to compress term strings.
///
/// Encoding per term: vbyte(shared-prefix length with the previous term),
/// vbyte(suffix length), suffix bytes. The first term has prefix length 0.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hetindex {

/// Encodes `terms` (must be sorted; duplicates allowed) into a front-coded
/// byte block.
std::vector<std::uint8_t> front_code(const std::vector<std::string>& terms);

/// Decodes a block produced by front_code. `count` terms are read.
std::vector<std::string> front_decode(const std::vector<std::uint8_t>& block,
                                      std::size_t count);

/// Length of the longest common prefix of two strings.
std::size_t common_prefix_length(std::string_view a, std::string_view b);

}  // namespace hetindex
