#include "codec/posting_codecs.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "codec/bit_io.hpp"
#include "util/check.hpp"

namespace hetindex {

void vbyte_encode(std::uint64_t value, std::vector<std::uint8_t>& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t vbyte_decode(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    HET_CHECK_MSG(pos < size, "vbyte stream overrun");
    const std::uint8_t byte = data[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) return value;
    shift += 7;
    HET_CHECK_MSG(shift < 64, "vbyte value overflow");
  }
}

namespace {

void gamma_put(BitWriter& bw, std::uint64_t v) {
  HET_DCHECK(v >= 1);
  const unsigned bits = 63 - static_cast<unsigned>(std::countl_zero(v));
  bw.write_unary(bits);
  bw.write(v & ((std::uint64_t{1} << bits) - 1), bits);
}

std::uint64_t gamma_get(BitReader& br) {
  const auto bits = static_cast<unsigned>(br.read_unary());
  HET_CHECK_MSG(bits < 64, "gamma code overflow");
  return (std::uint64_t{1} << bits) | br.read(bits);
}

void golomb_put(BitWriter& bw, std::uint64_t v, std::uint64_t b) {
  HET_DCHECK(v >= 1 && b >= 1);
  const std::uint64_t x = v - 1;  // Golomb codes non-negative residuals
  bw.write_unary(x / b);
  const std::uint64_t r = x % b;
  // Truncated binary encoding of the remainder.
  const unsigned k = (b == 1) ? 0 : 64 - static_cast<unsigned>(std::countl_zero(b - 1));
  const std::uint64_t cutoff = (std::uint64_t{1} << k) - b;
  if (r < cutoff) {
    if (k > 0) bw.write(r, k - 1);
  } else {
    bw.write(r + cutoff, k);
  }
}

std::uint64_t golomb_get(BitReader& br, std::uint64_t b) {
  const std::uint64_t q = br.read_unary();
  const unsigned k = (b == 1) ? 0 : 64 - static_cast<unsigned>(std::countl_zero(b - 1));
  const std::uint64_t cutoff = (std::uint64_t{1} << k) - b;
  std::uint64_t r = 0;
  if (b > 1) {
    r = br.read(k - 1);
    if (r >= cutoff) r = ((r << 1) | br.read(1)) - cutoff;
  }
  return q * b + r + 1;
}

unsigned bit_width_u64(std::uint64_t v) {
  HET_DCHECK(v >= 1);
  return 64 - static_cast<unsigned>(std::countl_zero(v));
}

std::size_t vbyte_length(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Doc-gap symbols exactly as the encoder emits them: first doc id +1, then
/// deltas (all ≥ 1).
std::uint64_t gap_symbol(const std::vector<std::uint32_t>& doc_ids, std::size_t i) {
  return i == 0 ? std::uint64_t{doc_ids[0]} + 1
                : std::uint64_t{doc_ids[i]} - doc_ids[i - 1];
}

}  // namespace

PostingCodec choose_block_codec(PostingCodec requested,
                                const std::vector<std::uint32_t>& doc_ids,
                                const std::vector<std::uint32_t>& tfs,
                                bool positional) {
  if (requested != PostingCodec::kVByte || positional || doc_ids.empty()) return requested;
  std::uint64_t max_gap = 0, max_tf = 0;
  std::size_t vbyte_payload = 0;
  for (std::size_t i = 0; i < doc_ids.size(); ++i) {
    const std::uint64_t gap = gap_symbol(doc_ids, i);
    max_gap = std::max(max_gap, gap);
    max_tf = std::max<std::uint64_t>(max_tf, tfs[i]);
    vbyte_payload += vbyte_length(gap) + vbyte_length(tfs[i]);
  }
  const unsigned per_posting_bits = bit_width_u64(max_gap) + bit_width_u64(max_tf);
  const std::size_t packed_payload = 2 + (doc_ids.size() * per_posting_bits + 7) / 8;
  return packed_payload < vbyte_payload ? PostingCodec::kBitPacked : PostingCodec::kVByte;
}

std::vector<std::uint8_t> encode_postings(PostingCodec codec,
                                          const std::vector<std::uint32_t>& doc_ids,
                                          const std::vector<std::uint32_t>& tfs,
                                          const std::vector<std::uint32_t>* positions) {
  HET_CHECK(doc_ids.size() == tfs.size());
  const bool positional = positions != nullptr && !positions->empty();
  HET_CHECK_MSG(!(positional && codec == PostingCodec::kBitPacked),
                "bit-packed codec does not support positions");
  std::vector<std::uint8_t> out;
  out.reserve(doc_ids.size() * 2 + 16);
  // Common header: count, codec byte (high bit = positional), and for
  // Golomb the parameter b.
  vbyte_encode(doc_ids.size(), out);
  out.push_back(static_cast<std::uint8_t>(codec) |
                static_cast<std::uint8_t>(positional ? 0x80 : 0));
  if (doc_ids.empty()) return out;

  // Gaps: first doc_id + 1 (so every symbol is >= 1), then deltas. In
  // positional mode, each posting's tf in-document positions follow as
  // +1-shifted gaps relative to the previous position in the same doc.
  std::vector<std::uint64_t> symbols;
  symbols.reserve(doc_ids.size() * 2);
  std::uint32_t prev = 0;
  std::size_t pos_cursor = 0;
  for (std::size_t i = 0; i < doc_ids.size(); ++i) {
    const std::uint64_t gap = (i == 0) ? std::uint64_t{doc_ids[0]} + 1
                                       : std::uint64_t{doc_ids[i]} - prev;
    HET_CHECK_MSG(i == 0 || doc_ids[i] > prev, "postings doc ids must be strictly increasing");
    HET_CHECK_MSG(tfs[i] >= 1, "term frequency must be positive");
    symbols.push_back(gap);
    symbols.push_back(tfs[i]);
    if (positional) {
      HET_CHECK_MSG(pos_cursor + tfs[i] <= positions->size(),
                    "positions shorter than sum of term frequencies");
      std::uint32_t prev_pos = 0;
      for (std::uint32_t k = 0; k < tfs[i]; ++k) {
        const std::uint32_t p = (*positions)[pos_cursor++];
        const std::uint64_t pgap =
            k == 0 ? std::uint64_t{p} + 1 : std::uint64_t{p} - prev_pos + 1;
        HET_CHECK_MSG(k == 0 || p >= prev_pos, "positions must be non-decreasing in a doc");
        symbols.push_back(pgap);
        prev_pos = p;
      }
    }
    prev = doc_ids[i];
  }
  if (positional) {
    HET_CHECK_MSG(pos_cursor == positions->size(),
                  "positions longer than sum of term frequencies");
  }

  switch (codec) {
    case PostingCodec::kVByte:
      for (auto s : symbols) vbyte_encode(s, out);
      break;
    case PostingCodec::kGamma: {
      BitWriter bw(out);
      for (auto s : symbols) gamma_put(bw, s);
      bw.flush();
      break;
    }
    case PostingCodec::kGolomb: {
      // Parameter from the mean of all symbols (dominated by doc gaps).
      double mean = 0;
      for (const auto sym : symbols) mean += static_cast<double>(sym);
      mean /= static_cast<double>(symbols.size());
      const std::uint64_t b = golomb_optimal_b(mean);
      vbyte_encode(b, out);
      BitWriter bw(out);
      for (auto s : symbols) golomb_put(bw, s, b);
      bw.flush();
      break;
    }
    case PostingCodec::kBitPacked: {
      // Non-positional: symbols alternate gap, tf. Two fixed-width streams
      // (all gaps, then all tfs) behind a 2-byte width prologue.
      std::uint64_t max_gap = 1, max_tf = 1;
      for (std::size_t i = 0; i < doc_ids.size(); ++i) {
        max_gap = std::max(max_gap, symbols[2 * i]);
        max_tf = std::max(max_tf, symbols[2 * i + 1]);
      }
      const unsigned doc_bits = bit_width_u64(max_gap);
      const unsigned tf_bits = bit_width_u64(max_tf);
      out.push_back(static_cast<std::uint8_t>(doc_bits));
      out.push_back(static_cast<std::uint8_t>(tf_bits));
      BitWriter bw(out);
      for (std::size_t i = 0; i < doc_ids.size(); ++i) bw.write(symbols[2 * i], doc_bits);
      for (std::size_t i = 0; i < doc_ids.size(); ++i) bw.write(symbols[2 * i + 1], tf_bits);
      bw.flush();
      break;
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_postings_blocked(
    PostingCodec codec, const std::vector<std::uint32_t>& doc_ids,
    const std::vector<std::uint32_t>& tfs, const std::vector<std::uint32_t>* positions,
    std::vector<PostingBlockEntry>* blocks, std::uint32_t block_size) {
  HET_CHECK(doc_ids.size() == tfs.size());
  HET_CHECK_MSG(block_size >= 1, "block size must be positive");
  // An empty list still needs a decodable header so readers agree on the
  // consumed bytes; it contributes no block entries.
  if (doc_ids.empty()) return encode_postings(codec, doc_ids, tfs, positions);

  const bool positional = positions != nullptr && !positions->empty();
  std::vector<std::uint8_t> out;
  out.reserve(doc_ids.size() * 2 + 16);
  std::size_t pos_cursor = 0;
  for (std::size_t b = 0; b < doc_ids.size(); b += block_size) {
    const std::size_t e = std::min(doc_ids.size(), b + std::size_t{block_size});
    const std::vector<std::uint32_t> ids_chunk(doc_ids.begin() + static_cast<std::ptrdiff_t>(b),
                                               doc_ids.begin() + static_cast<std::ptrdiff_t>(e));
    const std::vector<std::uint32_t> tfs_chunk(tfs.begin() + static_cast<std::ptrdiff_t>(b),
                                               tfs.begin() + static_cast<std::ptrdiff_t>(e));
    std::vector<std::uint32_t> pos_chunk;
    if (positional) {
      std::size_t tf_sum = 0;
      for (const auto tf : tfs_chunk) tf_sum += tf;
      HET_CHECK_MSG(pos_cursor + tf_sum <= positions->size(),
                    "positions shorter than sum of term frequencies");
      pos_chunk.assign(positions->begin() + static_cast<std::ptrdiff_t>(pos_cursor),
                       positions->begin() + static_cast<std::ptrdiff_t>(pos_cursor + tf_sum));
      pos_cursor += tf_sum;
    }
    const PostingCodec chosen = choose_block_codec(codec, ids_chunk, tfs_chunk, positional);
    const auto enc =
        encode_postings(chosen, ids_chunk, tfs_chunk, positional ? &pos_chunk : nullptr);
    if (blocks != nullptr) {
      PostingBlockEntry entry;
      entry.offset = out.size();
      entry.bytes = static_cast<std::uint32_t>(enc.size());
      entry.last_doc = ids_chunk.back();
      entry.count = static_cast<std::uint32_t>(ids_chunk.size());
      entry.max_tf = *std::max_element(tfs_chunk.begin(), tfs_chunk.end());
      blocks->push_back(entry);
    }
    out.insert(out.end(), enc.begin(), enc.end());
  }
  if (positional) {
    HET_CHECK_MSG(pos_cursor == positions->size(),
                  "positions longer than sum of term frequencies");
  }
  return out;
}

std::size_t decode_postings(const std::uint8_t* data, std::size_t size,
                            std::vector<std::uint32_t>& doc_ids,
                            std::vector<std::uint32_t>& tfs,
                            std::vector<std::uint32_t>* positions, std::size_t start) {
  std::size_t pos = start;
  const std::uint64_t count = vbyte_decode(data, size, pos);
  HET_CHECK_MSG(pos < size, "truncated postings header");
  const std::uint8_t codec_byte = data[pos++];
  const bool positional = (codec_byte & 0x80) != 0;
  const std::uint8_t codec_id = codec_byte & 0x7F;
  HET_CHECK_MSG(codec_id <= static_cast<std::uint8_t>(PostingCodec::kBitPacked),
                "unknown postings codec");
  const auto codec = static_cast<PostingCodec>(codec_id);
  if (count == 0) return pos - start;

  auto emit = [&](std::uint64_t gap, std::uint64_t tf, bool first, std::uint32_t& prev) {
    const std::uint64_t id = first ? gap - 1 : prev + gap;
    HET_CHECK(id <= 0xFFFFFFFFull && tf <= 0xFFFFFFFFull);
    doc_ids.push_back(static_cast<std::uint32_t>(id));
    tfs.push_back(static_cast<std::uint32_t>(tf));
    prev = static_cast<std::uint32_t>(id);
  };
  auto emit_pos = [&](std::uint64_t pgap, bool first, std::uint32_t& prev_pos) {
    const std::uint64_t p = first ? pgap - 1 : prev_pos + pgap - 1;
    HET_CHECK(p <= 0xFFFFFFFFull);
    if (positions != nullptr) positions->push_back(static_cast<std::uint32_t>(p));
    prev_pos = static_cast<std::uint32_t>(p);
  };

  std::uint32_t prev = 0;
  switch (codec) {
    case PostingCodec::kVByte:
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto gap = vbyte_decode(data, size, pos);
        const auto tf = vbyte_decode(data, size, pos);
        emit(gap, tf, i == 0, prev);
        if (positional) {
          std::uint32_t prev_pos = 0;
          for (std::uint64_t k = 0; k < tf; ++k)
            emit_pos(vbyte_decode(data, size, pos), k == 0, prev_pos);
        }
      }
      break;
    case PostingCodec::kGamma: {
      BitReader br(data + pos, size - pos);
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto gap = gamma_get(br);
        const auto tf = gamma_get(br);
        emit(gap, tf, i == 0, prev);
        if (positional) {
          std::uint32_t prev_pos = 0;
          for (std::uint64_t k = 0; k < tf; ++k) emit_pos(gamma_get(br), k == 0, prev_pos);
        }
      }
      pos += (br.bits_consumed() + 7) / 8;  // encoder flushes to a byte edge
      break;
    }
    case PostingCodec::kGolomb: {
      const std::uint64_t b = vbyte_decode(data, size, pos);
      BitReader br(data + pos, size - pos);
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto gap = golomb_get(br, b);
        const auto tf = golomb_get(br, b);
        emit(gap, tf, i == 0, prev);
        if (positional) {
          std::uint32_t prev_pos = 0;
          for (std::uint64_t k = 0; k < tf; ++k)
            emit_pos(golomb_get(br, b), k == 0, prev_pos);
        }
      }
      pos += (br.bits_consumed() + 7) / 8;
      break;
    }
    case PostingCodec::kBitPacked: {
      HET_CHECK_MSG(!positional, "bit-packed codec does not support positions");
      HET_CHECK_MSG(pos + 2 <= size, "truncated bit-packed prologue");
      const unsigned doc_bits = data[pos++];
      const unsigned tf_bits = data[pos++];
      HET_CHECK_MSG(doc_bits >= 1 && doc_bits <= 64 && tf_bits >= 1 && tf_bits <= 64,
                    "bit-packed width out of range");
      BitReader br(data + pos, size - pos);
      std::vector<std::uint64_t> gaps;
      gaps.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) gaps.push_back(br.read(doc_bits));
      for (std::uint64_t i = 0; i < count; ++i) emit(gaps[i], br.read(tf_bits), i == 0, prev);
      pos += (br.bits_consumed() + 7) / 8;
      break;
    }
  }
  return pos - start;
}

std::vector<std::uint8_t> gamma_encode_sequence(const std::vector<std::uint64_t>& values) {
  std::vector<std::uint8_t> out;
  BitWriter bw(out);
  for (auto v : values) gamma_put(bw, v);
  bw.flush();
  return out;
}

std::vector<std::uint64_t> gamma_decode_sequence(const std::vector<std::uint8_t>& data,
                                                 std::size_t count) {
  std::vector<std::uint64_t> values;
  values.reserve(count);
  BitReader br(data.data(), data.size());
  for (std::size_t i = 0; i < count; ++i) values.push_back(gamma_get(br));
  return values;
}

std::vector<std::uint8_t> golomb_encode_sequence(const std::vector<std::uint64_t>& values,
                                                 std::uint64_t b) {
  HET_CHECK(b >= 1);
  std::vector<std::uint8_t> out;
  BitWriter bw(out);
  for (auto v : values) golomb_put(bw, v, b);
  bw.flush();
  return out;
}

std::vector<std::uint64_t> golomb_decode_sequence(const std::vector<std::uint8_t>& data,
                                                  std::size_t count, std::uint64_t b) {
  HET_CHECK(b >= 1);
  std::vector<std::uint64_t> values;
  values.reserve(count);
  BitReader br(data.data(), data.size());
  for (std::size_t i = 0; i < count; ++i) values.push_back(golomb_get(br, b));
  return values;
}

std::uint64_t golomb_optimal_b(double mean_gap) {
  const double b = 0.69 * mean_gap;
  return b < 1.0 ? 1 : static_cast<std::uint64_t>(b);
}

}  // namespace hetindex
