#pragma once
/// \file posting_codecs.hpp
/// Gap compression codecs for postings lists. Document IDs within a postings
/// list are sorted, so each codec encodes the sequence of gaps
/// (first value absolute, then deltas ≥ 1) — the standard scheme the paper
/// references in §II. The pipeline default is variable-byte (§III.E:
/// "compress them with variable bytes encoding"); γ and Golomb are provided
/// for the codec comparison bench, and bit-packing for dense blocks where
/// fixed-width gaps beat vbyte's one-byte floor.
///
/// Every encoded list is self-describing: the stream carries its own codec
/// byte, so decoders never need out-of-band codec knowledge. That is what
/// lets the block writer pick a codec per block by density while the §III.F
/// byte-concatenation merge stays codec-oblivious.

#include <cstdint>
#include <vector>

namespace hetindex {

/// Variable-byte: 7 data bits per byte, high bit marks continuation.
void vbyte_encode(std::uint64_t value, std::vector<std::uint8_t>& out);
/// Decodes one value starting at `pos`, advancing `pos`.
std::uint64_t vbyte_decode(const std::uint8_t* data, std::size_t size, std::size_t& pos);

/// Codec identifiers persisted in run-file headers and in each encoded
/// sub-list's codec byte. kBitPacked stores gaps and tfs as two fixed-width
/// bit streams (widths in a 2-byte prologue) — the win on dense blocks.
enum class PostingCodec : std::uint8_t { kVByte = 0, kGamma = 1, kGolomb = 2, kBitPacked = 3 };

/// Postings are chunked into self-contained sub-lists of at most this many
/// documents ("blocks"); each block re-anchors at an absolute doc id, so
/// blocks concatenate byte-wise (§III.F) and decode independently.
inline constexpr std::uint32_t kPostingsBlockSize = 128;

/// Skip-table row describing one encoded block inside a term's blob:
/// enough to seek (offset/bytes/last_doc) and to bound BM25 contributions
/// (count/max_tf) without decoding the block.
struct PostingBlockEntry {
  std::uint64_t offset = 0;   ///< byte offset of the block within the term blob
  std::uint32_t bytes = 0;    ///< encoded size of the block
  std::uint32_t last_doc = 0; ///< largest doc id in the block
  std::uint32_t count = 0;    ///< number of postings in the block
  std::uint32_t max_tf = 0;   ///< largest term frequency in the block
  friend bool operator==(const PostingBlockEntry&, const PostingBlockEntry&) = default;
};

/// Encodes a strictly-increasing docid sequence with per-doc term
/// frequencies as gaps under the chosen codec. `tfs` must be the same length
/// as `doc_ids`; each tf ≥ 1. kBitPacked rejects positional payloads.
///
/// Positional mode: when `positions` is non-null it must hold Σtfs in-doc
/// token positions (posting i owns the next tfs[i] entries, non-decreasing
/// within the document); they are stored as per-document position gaps.
/// The mode is recorded in the stream, so decoders detect it.
std::vector<std::uint8_t> encode_postings(PostingCodec codec,
                                          const std::vector<std::uint32_t>& doc_ids,
                                          const std::vector<std::uint32_t>& tfs,
                                          const std::vector<std::uint32_t>* positions = nullptr);

/// Chunks the list into blocks of ≤ `block_size` docs, encodes each block as
/// an independent sub-list (absolute first doc id), and concatenates them.
/// The codec is chosen per block by choose_block_codec, so dense blocks of a
/// vbyte list come out bit-packed. When `blocks` is non-null it receives one
/// PostingBlockEntry per block, in order. The result decodes with the same
/// back-to-back loop as any §III.F-merged blob.
std::vector<std::uint8_t> encode_postings_blocked(
    PostingCodec codec, const std::vector<std::uint32_t>& doc_ids,
    const std::vector<std::uint32_t>& tfs,
    const std::vector<std::uint32_t>* positions = nullptr,
    std::vector<PostingBlockEntry>* blocks = nullptr,
    std::uint32_t block_size = kPostingsBlockSize);

/// Build-time density heuristic: returns the codec a block of this content
/// should use. Upgrades kVByte to kBitPacked when the fixed-width payload is
/// strictly smaller (dense lists: small gaps, uniform tfs); positional
/// blocks and non-vbyte requests pass through unchanged.
PostingCodec choose_block_codec(PostingCodec requested,
                                const std::vector<std::uint32_t>& doc_ids,
                                const std::vector<std::uint32_t>& tfs,
                                bool positional);

/// Inverse of encode_postings. The codec is read from the stream itself.
/// Appends into the output vectors; positions are appended into `positions`
/// (if non-null) when the stream is positional. Returns the number of bytes
/// consumed, so several encoded lists concatenated back to back (the §III.F
/// merge pass concatenates partial lists byte-wise — each sub-list's first
/// doc id is absolute) can be decoded in sequence.
std::size_t decode_postings(const std::uint8_t* data, std::size_t size,
                            std::vector<std::uint32_t>& doc_ids,
                            std::vector<std::uint32_t>& tfs,
                            std::vector<std::uint32_t>* positions = nullptr,
                            std::size_t start = 0);

/// White-box hooks for tests and the codec bench: round-trip raw value
/// sequences through each bit-level code. Values must be ≥ 1 for γ.
std::vector<std::uint8_t> gamma_encode_sequence(const std::vector<std::uint64_t>& values);
std::vector<std::uint64_t> gamma_decode_sequence(const std::vector<std::uint8_t>& data,
                                                 std::size_t count);
/// Golomb with explicit parameter b ≥ 1. Values must be ≥ 1.
std::vector<std::uint8_t> golomb_encode_sequence(const std::vector<std::uint64_t>& values,
                                                 std::uint64_t b);
std::vector<std::uint64_t> golomb_decode_sequence(const std::vector<std::uint8_t>& data,
                                                  std::size_t count, std::uint64_t b);
/// The classic optimal Golomb parameter b ≈ 0.69 · mean_gap (≥ 1).
std::uint64_t golomb_optimal_b(double mean_gap);

}  // namespace hetindex
