#pragma once
/// \file posting_codecs.hpp
/// Gap compression codecs for postings lists. Document IDs within a postings
/// list are sorted, so each codec encodes the sequence of gaps
/// (first value absolute, then deltas ≥ 1) — the standard scheme the paper
/// references in §II. The pipeline default is variable-byte (§III.E:
/// "compress them with variable bytes encoding"); γ and Golomb are provided
/// for the codec comparison bench.

#include <cstdint>
#include <vector>

namespace hetindex {

/// Variable-byte: 7 data bits per byte, high bit marks continuation.
void vbyte_encode(std::uint64_t value, std::vector<std::uint8_t>& out);
/// Decodes one value starting at `pos`, advancing `pos`.
std::uint64_t vbyte_decode(const std::uint8_t* data, std::size_t size, std::size_t& pos);

/// Codec identifiers persisted in run-file headers.
enum class PostingCodec : std::uint8_t { kVByte = 0, kGamma = 1, kGolomb = 2 };

/// Encodes a strictly-increasing docid sequence with per-doc term
/// frequencies as gaps under the chosen codec. `tfs` must be the same length
/// as `doc_ids`; each tf ≥ 1.
///
/// Positional mode: when `positions` is non-null it must hold Σtfs in-doc
/// token positions (posting i owns the next tfs[i] entries, non-decreasing
/// within the document); they are stored as per-document position gaps.
/// The mode is recorded in the stream, so decoders detect it.
std::vector<std::uint8_t> encode_postings(PostingCodec codec,
                                          const std::vector<std::uint32_t>& doc_ids,
                                          const std::vector<std::uint32_t>& tfs,
                                          const std::vector<std::uint32_t>* positions = nullptr);

/// Inverse of encode_postings. Appends into the output vectors; positions
/// are appended into `positions` (if non-null) when the stream is
/// positional. Returns the number of bytes consumed, so several encoded
/// lists concatenated back to back (the §III.F merge pass concatenates
/// partial lists byte-wise — each segment's first doc id is absolute) can
/// be decoded in sequence.
std::size_t decode_postings(PostingCodec codec, const std::vector<std::uint8_t>& data,
                            std::vector<std::uint32_t>& doc_ids,
                            std::vector<std::uint32_t>& tfs,
                            std::vector<std::uint32_t>* positions = nullptr,
                            std::size_t start = 0);

/// Same, over a raw byte range — lets memory-mapped readers decode in place
/// without copying the blob into a vector first.
std::size_t decode_postings(PostingCodec codec, const std::uint8_t* data, std::size_t size,
                            std::vector<std::uint32_t>& doc_ids,
                            std::vector<std::uint32_t>& tfs,
                            std::vector<std::uint32_t>* positions = nullptr,
                            std::size_t start = 0);

/// White-box hooks for tests and the codec bench: round-trip raw value
/// sequences through each bit-level code. Values must be ≥ 1 for γ.
std::vector<std::uint8_t> gamma_encode_sequence(const std::vector<std::uint64_t>& values);
std::vector<std::uint64_t> gamma_decode_sequence(const std::vector<std::uint8_t>& data,
                                                 std::size_t count);
/// Golomb with explicit parameter b ≥ 1. Values must be ≥ 1.
std::vector<std::uint8_t> golomb_encode_sequence(const std::vector<std::uint64_t>& values,
                                                 std::uint64_t b);
std::vector<std::uint64_t> golomb_decode_sequence(const std::vector<std::uint8_t>& data,
                                                  std::size_t count, std::uint64_t b);
/// The classic optimal Golomb parameter b ≈ 0.69 · mean_gap (≥ 1).
std::uint64_t golomb_optimal_b(double mean_gap);

}  // namespace hetindex
