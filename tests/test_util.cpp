// Unit tests for the util substrate: arena, queues, thread pool, RNG/Zipf,
// stats, CRC and binary I/O.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <set>
#include <thread>

#include "util/arena.hpp"
#include "util/binary_io.hpp"
#include "util/bounded_queue.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/zipf.hpp"

namespace hetindex {
namespace {

TEST(Arena, StoresAndResolvesOffsets) {
  Arena arena(256);
  const char* msg = "hello";
  const ArenaOffset off = arena.store(msg, 5);
  ASSERT_NE(off, kArenaNull);
  EXPECT_EQ(0, std::memcmp(arena.pointer(off), msg, 5));
}

TEST(Arena, NeverReturnsNullOffset) {
  Arena arena(128);
  for (int i = 0; i < 100; ++i) EXPECT_NE(arena.allocate(1), kArenaNull);
}

TEST(Arena, OffsetsRemainValidAcrossChunkGrowth) {
  Arena arena(128);
  std::vector<std::pair<ArenaOffset, int>> allocs;
  for (int i = 0; i < 1000; ++i) {
    const ArenaOffset off = arena.allocate(sizeof(int), alignof(int));
    *arena.object<int>(off) = i;
    allocs.emplace_back(off, i);
  }
  for (const auto& [off, v] : allocs) EXPECT_EQ(*arena.object<int>(off), v);
}

TEST(Arena, RespectsAlignment) {
  Arena arena(1 << 12);
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    arena.allocate(3);  // misalign
    const ArenaOffset off = arena.allocate(8, align);
    EXPECT_EQ(off % align, 0u) << "alignment " << align;
  }
}

TEST(Arena, DistinctAllocationsDoNotOverlap) {
  Arena arena(512);
  const ArenaOffset a = arena.allocate(100);
  const ArenaOffset b = arena.allocate(100);
  std::memset(arena.pointer(a), 0xAA, 100);
  std::memset(arena.pointer(b), 0xBB, 100);
  EXPECT_EQ(arena.pointer(a)[99], 0xAA);
  EXPECT_EQ(arena.pointer(b)[0], 0xBB);
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(BoundedQueue, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(4);
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop(), 7);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, BlockingProducerConsumerTransfersEverything) {
  BoundedQueue<int> q(8);
  constexpr int kItems = 10000;
  std::atomic<long> sum{0};
  std::jthread consumer([&] {
    while (auto v = q.pop()) sum += *v;
  });
  std::jthread producer([&] {
    for (int i = 1; i <= kItems; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum.load(), static_cast<long>(kItems) * (kItems + 1) / 2);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a(), b());
  Rng a2(123);
  EXPECT_NE(a2(), c());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Zipf, RanksInRange) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto k = zipf(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 1000u);
  }
}

TEST(Zipf, Rank1FrequencyMatchesTheory) {
  ZipfSampler zipf(10000, 1.0);
  Rng rng(42);
  constexpr int kSamples = 200000;
  int rank1 = 0;
  for (int i = 0; i < kSamples; ++i)
    if (zipf(rng) == 1) ++rank1;
  const double expected = zipf.probability(1);
  EXPECT_NEAR(static_cast<double>(rank1) / kSamples, expected, expected * 0.1);
}

TEST(Zipf, SkewZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(7);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf(rng)];
  for (int k = 1; k <= 10; ++k) EXPECT_NEAR(counts[k], 10000, 600) << "rank " << k;
}

TEST(Zipf, HigherSkewConcentratesMass) {
  Rng rng(3);
  auto head_mass = [&](double s) {
    ZipfSampler zipf(1000, s);
    int head = 0;
    for (int i = 0; i < 50000; ++i)
      if (zipf(rng) <= 10) ++head;
    return head;
  };
  EXPECT_GT(head_mass(1.4), head_mass(0.8));
}

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0, 100, 10);
  for (int i = 0; i < 100; ++i) h.add(i);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bucket_count(b), 10u);
  EXPECT_NEAR(h.quantile(0.5), 45.0, 10.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0, 10, 5);
  h.add(-100);
  h.add(1e9);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
}

TEST(Crc32, MatchesKnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE).
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> data(64, 0x5A);
  const auto base = crc32(data.data(), data.size());
  for (std::size_t bit = 0; bit < 64 * 8; bit += 37) {
    auto copy = data;
    copy[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(crc32(copy.data(), copy.size()), base);
  }
}

TEST(BinaryIo, PrimitivesRoundTrip) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.u8(7);
  w.u16(65535);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(3.25);
  w.str("hetindex");
  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hetindex");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinaryIo, PatchBackfillsHeader) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  const auto at = w.offset();
  w.u32(0);
  w.str("payload");
  w.patch_u32(at, 99);
  ByteReader r(buf);
  EXPECT_EQ(r.u32(), 99u);
}

TEST(BinaryIo, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "hetindex_io_test.bin";
  std::vector<std::uint8_t> data(1000);
  std::iota(data.begin(), data.end(), 0);
  write_file(path.string(), data);
  EXPECT_TRUE(file_exists(path.string()));
  EXPECT_EQ(read_file(path.string()), data);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace hetindex
