// Tests for postings accumulation, run files, merging and the query path
// (§III.F output organization).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "postings/merger.hpp"
#include "postings/postings_store.hpp"
#include "postings/query.hpp"
#include "postings/run_file.hpp"
#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace hetindex {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = (std::filesystem::temp_directory_path() /
             ("hetindex_post_" + std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

TEST(PostingsStore, HandlesStartAtOne) {
  PostingsStore store;
  EXPECT_EQ(store.create(), 1u);
  EXPECT_EQ(store.create(), 2u);
}

TEST(PostingsStore, AppendsAndBumpsTermFrequency) {
  PostingsStore store;
  const auto h = store.create();
  store.add(h, 5);
  store.add(h, 5);  // same doc → tf bump
  store.add(h, 9);
  const auto& list = store.list(h);
  EXPECT_EQ(list.doc_ids, (std::vector<std::uint32_t>{5, 9}));
  EXPECT_EQ(list.tfs, (std::vector<std::uint32_t>{2, 1}));
  EXPECT_EQ(store.postings_added(), 2u);
}

TEST(PostingsStore, ClearKeepsHandles) {
  PostingsStore store;
  const auto h = store.create();
  store.add(h, 1);
  store.clear_lists();
  EXPECT_TRUE(store.list(h).empty());
  store.add(h, 2);  // handle still valid after flush
  EXPECT_EQ(store.list(h).doc_ids, (std::vector<std::uint32_t>{2}));
}

TEST(RunFile, WriteReadRoundTrip) {
  TempDir dir;
  const auto path = dir.path() + "/run_0.post";
  RunFileWriter writer(path, 0);
  PostingsList a;
  a.doc_ids = {1, 5, 9};
  a.tfs = {2, 1, 4};
  PostingsList b;
  b.doc_ids = {3};
  b.tfs = {1};
  writer.add_list({0, 1}, a);
  writer.add_list({1, 1}, b);
  writer.add_list({0, 2}, {});  // empty lists are skipped
  const auto bytes = writer.finalize();
  EXPECT_GT(bytes, 0u);

  const auto run = RunFile::open(path);
  EXPECT_EQ(run.run_id(), 0u);
  EXPECT_EQ(run.table().size(), 2u);
  EXPECT_EQ(run.min_doc(), 1u);
  EXPECT_EQ(run.max_doc(), 9u);
  std::vector<std::uint32_t> ids, tfs;
  ASSERT_TRUE(run.fetch({0, 1}, ids, tfs));
  EXPECT_EQ(ids, a.doc_ids);
  EXPECT_EQ(tfs, a.tfs);
  ids.clear();
  tfs.clear();
  ASSERT_TRUE(run.fetch({1, 1}, ids, tfs));
  EXPECT_EQ(ids, b.doc_ids);
  EXPECT_FALSE(run.fetch({0, 2}, ids, tfs));
  EXPECT_FALSE(run.fetch({9, 9}, ids, tfs));
}

TEST(RunFile, DetectsBlobCorruption) {
  TempDir dir;
  const auto path = dir.path() + "/run_0.post";
  RunFileWriter writer(path, 0);
  PostingsList a;
  for (std::uint32_t i = 0; i < 100; ++i) {
    a.doc_ids.push_back(i * 2);
    a.tfs.push_back(1);
  }
  writer.add_list({0, 1}, a);
  writer.finalize();
  auto data = read_file(path);
  data[data.size() - 3] ^= 0x40;
  write_file(path, data);
  EXPECT_DEATH((void)RunFile::open(path), "corruption");
}

class RunCodecParam : public ::testing::TestWithParam<PostingCodec> {};

TEST_P(RunCodecParam, RoundTripUnderEachCodec) {
  TempDir dir;
  const auto path = dir.path() + "/run_0.post";
  RunFileWriter writer(path, 0, GetParam());
  Rng rng(3);
  PostingsList list;
  std::uint32_t doc = 0;
  for (int i = 0; i < 1000; ++i) {
    doc += 1 + static_cast<std::uint32_t>(rng.below(100));
    list.doc_ids.push_back(doc);
    list.tfs.push_back(1 + static_cast<std::uint32_t>(rng.below(8)));
  }
  writer.add_list({2, 7}, list);
  writer.finalize();
  const auto run = RunFile::open(path);
  EXPECT_EQ(run.codec(), GetParam());
  std::vector<std::uint32_t> ids, tfs;
  ASSERT_TRUE(run.fetch({2, 7}, ids, tfs));
  EXPECT_EQ(ids, list.doc_ids);
  EXPECT_EQ(tfs, list.tfs);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, RunCodecParam,
                         ::testing::Values(PostingCodec::kVByte, PostingCodec::kGamma,
                                           PostingCodec::kGolomb));

TEST(Merger, CombinesPartialListsAcrossRuns) {
  TempDir dir;
  // Run 0: docs 0..9, run 1: docs 10..19 for the same key; a second key
  // appears only in run 1.
  {
    RunFileWriter w(dir.path() + "/run_0.post", 0);
    PostingsList l;
    l.doc_ids = {1, 4};
    l.tfs = {1, 2};
    w.add_list({0, 1}, l);
    w.finalize();
  }
  {
    RunFileWriter w(dir.path() + "/run_1.post", 1);
    PostingsList l;
    l.doc_ids = {12, 15};
    l.tfs = {3, 1};
    w.add_list({0, 1}, l);
    PostingsList m;
    m.doc_ids = {11};
    m.tfs = {1};
    w.add_list({0, 2}, m);
    w.finalize();
  }
  const auto out = dir.path() + "/merged.post";
  const auto stats =
      merge_runs({dir.path() + "/run_0.post", dir.path() + "/run_1.post"}, out);
  EXPECT_EQ(stats.terms, 2u);
  EXPECT_EQ(stats.postings, 5u);

  const auto merged = RunFile::open(out);
  EXPECT_EQ(merged.run_id(), kMergedRunId);
  std::vector<std::uint32_t> ids, tfs;
  ASSERT_TRUE(merged.fetch({0, 1}, ids, tfs));
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{1, 4, 12, 15}));
  EXPECT_EQ(tfs, (std::vector<std::uint32_t>{1, 2, 3, 1}));
}

TEST(Merger, RejectsOverlappingDocRanges) {
  TempDir dir;
  for (int run = 0; run < 2; ++run) {
    RunFileWriter w(dir.path() + "/run_" + std::to_string(run) + ".post",
                    static_cast<std::uint32_t>(run));
    PostingsList l;
    l.doc_ids = {5};  // same doc id in both runs → violates global order
    l.tfs = {1};
    w.add_list({0, 1}, l);
    w.finalize();
  }
  EXPECT_DEATH((void)merge_runs({dir.path() + "/run_0.post", dir.path() + "/run_1.post"},
                                dir.path() + "/merged.post"),
               "increasing");
}

TEST(IndexDirectory, RoundTrip) {
  TempDir dir;
  const auto path = dir.path() + "/runs.dir";
  std::vector<IndexDirectoryEntry> entries = {{"run_0.post", 0, 0, 99},
                                              {"run_1.post", 1, 100, 199}};
  index_directory_write(path, entries);
  const auto loaded = index_directory_read(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].file, "run_0.post");
  EXPECT_EQ(loaded[1].min_doc, 100u);
  EXPECT_EQ(loaded[1].max_doc, 199u);
}

/// Builds a small two-run index directory by hand to exercise the query
/// path without the full pipeline.
class InvertedIndexFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Dictionary dict;
    dict.add_shard();
    auto apple = dict.insert("apple");
    *apple.postings_slot = 1;
    auto banana = dict.insert("banana");
    *banana.postings_slot = 2;
    dictionary_write(dict, IndexLayout::dictionary_path(dir_.path()));

    {
      RunFileWriter w(IndexLayout::run_path(dir_.path(), 0), 0);
      PostingsList a;
      a.doc_ids = {0, 7};
      a.tfs = {1, 2};
      w.add_list({0, 1}, a);
      w.finalize();
    }
    {
      RunFileWriter w(IndexLayout::run_path(dir_.path(), 1), 1);
      PostingsList a;
      a.doc_ids = {20};
      a.tfs = {5};
      w.add_list({0, 1}, a);
      PostingsList b;
      b.doc_ids = {21};
      b.tfs = {1};
      w.add_list({0, 2}, b);
      w.finalize();
    }
    index_directory_write(IndexLayout::directory_path(dir_.path()),
                          {{"run_0.post", 0, 0, 7}, {"run_1.post", 1, 20, 21}});
  }

  TempDir dir_;
};

TEST_F(InvertedIndexFixture, LookupConcatenatesRuns) {
  const auto idx = InvertedIndex::open(dir_.path(), {}).value();
  EXPECT_EQ(idx.term_count(), 2u);
  const auto apple = idx.lookup("apple");
  ASSERT_TRUE(apple.has_value());
  EXPECT_EQ(apple->doc_ids, (std::vector<std::uint32_t>{0, 7, 20}));
  EXPECT_EQ(apple->tfs, (std::vector<std::uint32_t>{1, 2, 5}));
  EXPECT_FALSE(idx.lookup("cherry").has_value());
}

TEST_F(InvertedIndexFixture, RangeLookupSkipsNonOverlappingRuns) {
  const auto idx = InvertedIndex::open(dir_.path(), {}).value();
  std::size_t touched = 0;
  const auto hits = idx.lookup_range("apple", 0, 10, &touched);
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(hits->doc_ids, (std::vector<std::uint32_t>{0, 7}));
  EXPECT_EQ(touched, 1u);  // §III.F range narrowing: run 1 never decoded

  const auto tail = idx.lookup_range("apple", 15, 30, &touched);
  EXPECT_EQ(tail->doc_ids, (std::vector<std::uint32_t>{20}));
  EXPECT_EQ(touched, 1u);
}

TEST_F(InvertedIndexFixture, RangeLookupFiltersWithinRun) {
  const auto idx = InvertedIndex::open(dir_.path(), {}).value();
  const auto hits = idx.lookup_range("apple", 5, 7, nullptr);
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(hits->doc_ids, (std::vector<std::uint32_t>{7}));
}

}  // namespace
}  // namespace hetindex
