// Unit tests for the mini MapReduce runtime itself (engine semantics and
// cluster cost model) — the baseline indexers built on it are covered by
// test_baselines.cpp.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>

#include "corpus/container.hpp"
#include "mapreduce/mr_engine.hpp"

namespace hetindex {
namespace {

/// Writes trivial one-doc container files to use as splits.
class SplitFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "hetindex_mr_engine").string();
    std::filesystem::create_directories(dir_);
    for (int i = 0; i < 4; ++i) {
      Document d;
      d.url = "u" + std::to_string(i);
      d.body = "body " + std::to_string(i);
      const auto path = dir_ + "/split_" + std::to_string(i) + ".hdc";
      container_write(path, {d});
      splits_.push_back(path);
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::vector<std::string> splits_;
};

TEST_F(SplitFixture, MapSeesEverySplitOnce) {
  std::set<std::string> seen;
  MiniMapReduce mr(sp_cluster(), 2);
  mr.run(
      splits_,
      [&](const std::string& split, MiniMapReduce::Emitter&) -> std::uint64_t {
        EXPECT_TRUE(seen.insert(split).second);
        return 100;
      },
      [](const std::string&, const auto&) {});
  EXPECT_EQ(seen.size(), splits_.size());
}

TEST_F(SplitFixture, ReducerKeysAreSortedAndGrouped) {
  std::vector<std::string> reduce_order;
  std::map<std::string, std::size_t> value_counts;
  MiniMapReduce mr(sp_cluster(), 1);  // one reducer → global sorted order
  mr.run(
      splits_,
      [&](const std::string&, MiniMapReduce::Emitter& out) -> std::uint64_t {
        out.emit("b", {2});
        out.emit("a", {1});
        out.emit("c", {3});
        return 10;
      },
      [&](const std::string& key, const std::vector<std::vector<std::uint32_t>>& values) {
        reduce_order.push_back(key);
        value_counts[key] = values.size();
      });
  ASSERT_EQ(reduce_order, (std::vector<std::string>{"a", "b", "c"}));
  // 4 map tasks × 1 emit per key → 4 values per key, grouped.
  EXPECT_EQ(value_counts["a"], 4u);
  EXPECT_EQ(value_counts["b"], 4u);
  EXPECT_EQ(value_counts["c"], 4u);
}

TEST_F(SplitFixture, CustomPartitionerRoutesKeys) {
  std::vector<std::set<std::string>> reducer_keys(2);
  MiniMapReduce mr(sp_cluster(), 2);
  mr.run(
      splits_,
      [&](const std::string&, MiniMapReduce::Emitter& out) -> std::uint64_t {
        out.emit("even0", {});
        out.emit("odd1", {});
        return 1;
      },
      [&](const std::string& key, const auto&) {
        // Partition function sends keys ending in '0' to reducer 0: keys
        // observed per reducer must respect it. We detect reducer identity
        // by the partition rule itself (the engine runs reducers serially).
        const std::size_t r = key.back() == '0' ? 0 : 1;
        reducer_keys[r].insert(key);
      },
      [](const std::string& key, std::size_t) -> std::size_t {
        return key.back() == '0' ? 0 : 1;
      });
  EXPECT_TRUE(reducer_keys[0].contains("even0"));
  EXPECT_TRUE(reducer_keys[1].contains("odd1"));
  EXPECT_FALSE(reducer_keys[0].contains("odd1"));
}

TEST_F(SplitFixture, StatsAccumulateBytesAndRecords) {
  MiniMapReduce mr(sp_cluster(), 2);
  const auto stats = mr.run(
      splits_,
      [&](const std::string&, MiniMapReduce::Emitter& out) -> std::uint64_t {
        out.emit("key", {1, 2, 3});
        return 1000;
      },
      [](const std::string&, const auto&) {});
  EXPECT_EQ(stats.input_bytes, 4000u);
  EXPECT_EQ(stats.emitted_records, 4u);
  EXPECT_GT(stats.shuffled_bytes, 4u * (3 + 12));
  EXPECT_GT(stats.map_seconds, 0.0);
  EXPECT_GT(stats.total_seconds, stats.map_seconds);
}

TEST_F(SplitFixture, MoreWorkersShortenMapPhase) {
  ClusterModel small = sp_cluster();
  small.nodes = 1;
  small.cores_per_node = 1;
  ClusterModel big = sp_cluster();
  big.nodes = 4;
  big.cores_per_node = 1;
  auto run = [&](const ClusterModel& c) {
    MiniMapReduce mr(c, 1);
    return mr
        .run(
            splits_,
            [](const std::string&, MiniMapReduce::Emitter&) -> std::uint64_t {
              return 50 << 20;  // 50 MB split → read time dominates
            },
            [](const std::string&, const auto&) {})
        .map_seconds;
  };
  // 4 tasks on 1 worker vs 4 workers: ~4× difference.
  EXPECT_NEAR(run(small) / run(big), 4.0, 0.8);
}

TEST_F(SplitFixture, ShuffleTimeScalesWithEmittedBytes) {
  auto shuffle_of = [&](std::size_t values_per_emit) {
    MiniMapReduce mr(sp_cluster(), 2);
    return mr
        .run(
            splits_,
            [&](const std::string& s, MiniMapReduce::Emitter& out) -> std::uint64_t {
              out.emit("k" + s, std::vector<std::uint32_t>(values_per_emit, 7));
              return 1;
            },
            [](const std::string&, const auto&) {})
        .shuffle_seconds;
  };
  EXPECT_GT(shuffle_of(100000), shuffle_of(10) * 100);
}

TEST(ClusterModel, PresetsMatchTableVII) {
  const auto ivory = ivory_cluster();
  EXPECT_EQ(ivory.nodes, 99u);              // Table VII: 99 nodes
  EXPECT_EQ(ivory.total_workers(), 198u);   // two single-core CPUs each
  const auto sp = sp_cluster();
  EXPECT_EQ(sp.nodes, 8u);                  // Table VII: 8 nodes
  EXPECT_EQ(sp.total_workers(), 24u);       // quad-core minus 1 for HDFS
}

}  // namespace
}  // namespace hetindex
