// Tests for the SIMT engine cost model and the warp-parallel B-tree kernel,
// including the CPU-vs-GPU differential correctness property.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "dict/btree.hpp"
#include "gpusim/gpu_btree.hpp"
#include "gpusim/simt.hpp"
#include "util/rng.hpp"

namespace hetindex {
namespace {

TEST(GpuSpec, C1060Parameters) {
  const GpuSpec spec;
  EXPECT_EQ(spec.sm_count, 30u);           // §I: 30 SMs
  EXPECT_EQ(spec.warp_size, 32u);          // warps of 32 threads
  EXPECT_EQ(spec.shared_mem_bytes, 16u * 1024);  // 16 KB shared memory
  EXPECT_EQ(spec.shared_banks, 16u);       // 16 banks
  EXPECT_EQ(spec.device_mem_bytes, 4ull << 30);  // 4 GB device memory
  EXPECT_NEAR(spec.device_bandwidth_gb_s, 102.0, 1e-9);  // 102 GB/s peak
  EXPECT_GE(spec.global_latency_cycles, 400u);  // 400–600 cycle latency
  EXPECT_LE(spec.global_latency_cycles, 600u);
}

TEST(SimtEngine, EmptyLaunch) {
  const SimtEngine engine;
  const auto stats = engine.launch(0, [](WarpContext&) {});
  EXPECT_EQ(stats.blocks, 0u);
  EXPECT_EQ(stats.sim_seconds, 0.0);
}

TEST(SimtEngine, UniformBlocksScaleWithBlockCount) {
  const SimtEngine engine;
  auto kernel = [](WarpContext& ctx) { ctx.cycles(1e6); };
  const auto s30 = engine.launch(30, kernel);    // one wave
  const auto s300 = engine.launch(300, kernel);  // ten waves
  EXPECT_NEAR(s300.sim_seconds / s30.sim_seconds, 10.0, 0.5);
}

TEST(SimtEngine, MoreSmsShortenKernels) {
  GpuSpec half;
  half.sm_count = 15;
  const SimtEngine big;   // 30 SMs
  const SimtEngine small(half);
  auto kernel = [](WarpContext& ctx) { ctx.cycles(1e5); };
  const auto fast = big.launch(120, kernel);
  const auto slow = small.launch(120, kernel);
  EXPECT_NEAR(slow.sim_seconds / fast.sim_seconds, 2.0, 0.2);
}

TEST(SimtEngine, ListSchedulingBalancesSkewedBlocks) {
  const SimtEngine engine;
  // One giant block plus many small ones: the critical path is the giant
  // block, not the sum.
  const auto stats = engine.launch(100, [](WarpContext& ctx) {
    ctx.cycles(ctx.block_id() == 0 ? 1e7 : 1e3);
  });
  const double giant_seconds =
      engine.spec().seconds_from_cycles(1e7 / engine.spec().kernel_efficiency);
  EXPECT_LT(stats.sim_seconds, giant_seconds * 1.1);
  EXPECT_GT(stats.load_imbalance, 5.0);  // imbalance is visible in the stats
}

TEST(WarpContext, CoalescedLoadsCostLessThanScattered) {
  const SimtEngine engine;
  KernelStats s;
  WarpContext a(engine.spec(), 0, s);
  a.load_global(512, /*coalesced=*/true);
  WarpContext b(engine.spec(), 0, s);
  b.load_global(512, /*coalesced=*/false);
  // 8 segments vs 128 scattered words: a 16× transaction blow-up.
  EXPECT_GT(b.block_cycles(), a.block_cycles() * 10);
  EXPECT_EQ(s.uncoalesced_transactions, 128u);
}

TEST(WarpContext, BankConflictsSerializeSharedAccess) {
  const SimtEngine engine;
  KernelStats s;
  WarpContext ctx(engine.spec(), 0, s);
  ctx.shared_access(1);  // conflict-free
  const double clean = ctx.block_cycles();
  ctx.shared_access(16);  // all lanes hit one bank
  EXPECT_NEAR(ctx.block_cycles() - clean, clean * 16, 1e-9);
  EXPECT_GT(s.bank_conflict_cycles, 0u);
}

TEST(WarpContext, BroadcastIsConflictFree) {
  const SimtEngine engine;
  KernelStats s;
  WarpContext ctx(engine.spec(), 0, s);
  ctx.shared_access(0);
  EXPECT_EQ(s.bank_conflict_cycles, 0u);
}

TEST(SimtEngine, CopySecondsModelPcie) {
  const SimtEngine engine;
  const double one_gb = engine.copy_seconds(1ull << 30);
  EXPECT_GT(one_gb, 0.1);  // ≥ 100 ms at ~5 GB/s
  EXPECT_LT(one_gb, 1.0);
  EXPECT_GT(engine.copy_seconds(0), 0.0);  // latency floor
}

class BankStrideParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BankStrideParam, ConflictMultiplicityIsGcdWithBanks) {
  const SimtEngine engine;
  KernelStats s;
  WarpContext ctx(engine.spec(), 0, s);
  const std::uint32_t stride = GetParam();
  ctx.shared_access(stride);
  // Expected serialization: gcd(stride, 16) per half-warp, 2 half-warps.
  std::uint32_t a = stride, b = 16;
  while (b) { const auto t = a % b; a = b; b = t; }
  const double expected = 2.0 * (stride == 0 ? 1 : a);
  EXPECT_DOUBLE_EQ(ctx.block_cycles(), expected) << "stride " << stride;
}

INSTANTIATE_TEST_SUITE_P(Strides, BankStrideParam,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 8u, 16u, 32u));

TEST(WarpContextCosts, StagingScalesLinearlyWithBytes) {
  const SimtEngine engine;
  KernelStats s;
  WarpContext a(engine.spec(), 0, s), b(engine.spec(), 0, s);
  GpuBTreeKernel::charge_stage_strings(512, a);
  GpuBTreeKernel::charge_stage_strings(512 * 64, b);
  EXPECT_NEAR(b.block_cycles() / a.block_cycles(), 64.0, 2.0);
}

TEST(WarpContextCosts, PositionalPostingStoreCostsMore) {
  const SimtEngine engine;
  KernelStats s;
  WarpContext plain(engine.spec(), 0, s), positional(engine.spec(), 0, s);
  // The per-posting charges used by GpuIndexer::index_block.
  plain.latency_stall();
  plain.store_global(8, false);
  plain.simd_step(3);
  positional.latency_stall();
  positional.store_global(12, false);
  positional.simd_step(4);
  EXPECT_GT(positional.block_cycles(), plain.block_cycles());
}

TEST(SimtEngineCosts, KernelEfficiencyRescalesTime) {
  GpuSpec fast;
  fast.kernel_efficiency = 0.5;
  GpuSpec slow = fast;
  slow.kernel_efficiency = 0.1;
  const SimtEngine fast_engine(fast), slow_engine(slow);
  auto kernel = [](WarpContext& ctx) { ctx.cycles(1e6); };
  const double tf = fast_engine.launch(30, kernel).sim_seconds;
  const double ts = slow_engine.launch(30, kernel).sim_seconds;
  EXPECT_NEAR(ts / tf, 5.0, 0.2);
}

// ------------------------------------------------- GPU B-tree kernel

class GpuBTreeFixture : public ::testing::Test {
 protected:
  SimtEngine engine_;
  KernelStats stats_;
};

TEST_F(GpuBTreeFixture, InsertAndFind) {
  Arena arena;
  BTree tree(arena);
  WarpContext ctx(engine_.spec(), 0, stats_);
  auto res = GpuBTreeKernel::insert(tree, "lication", ctx);
  EXPECT_TRUE(res.created);
  *res.postings_slot = 5;
  auto again = GpuBTreeKernel::insert(tree, "lication", ctx);
  EXPECT_FALSE(again.created);
  EXPECT_EQ(*again.postings_slot, 5u);
  EXPECT_GT(ctx.block_cycles(), 0.0);
}

TEST_F(GpuBTreeFixture, DifferentialAgainstCpuBTree) {
  // The paper's GPU indexer must build exactly the dictionary a CPU
  // indexer builds. Insert an identical random stream into both and
  // compare the full in-order traversals.
  Arena cpu_arena, gpu_arena;
  BTree cpu(cpu_arena);
  BTree gpu(gpu_arena);
  WarpContext ctx(engine_.spec(), 0, stats_);
  Rng rng(12345);
  for (int i = 0; i < 5000; ++i) {
    std::string key;
    const std::size_t len = rng.below(12);
    for (std::size_t j = 0; j < len; ++j)
      key.push_back(static_cast<char>('a' + rng.below(6)));
    const auto a = cpu.find_or_insert(key);
    const auto b = GpuBTreeKernel::insert(gpu, key, ctx);
    ASSERT_EQ(a.created, b.created) << "key " << key << " iter " << i;
  }
  ASSERT_EQ(cpu.size(), gpu.size());
  std::vector<std::string> cpu_terms, gpu_terms;
  cpu.for_each([&](std::string_view s, std::uint32_t) { cpu_terms.emplace_back(s); });
  gpu.for_each([&](std::string_view s, std::uint32_t) { gpu_terms.emplace_back(s); });
  EXPECT_EQ(cpu_terms, gpu_terms);
  EXPECT_EQ(cpu.height(), gpu.height());
}

TEST_F(GpuBTreeFixture, DeeperTreesCostMoreCycles) {
  Arena arena;
  BTree tree(arena);
  WarpContext ctx(engine_.spec(), 0, stats_);
  double shallow_cost = 0, deep_cost = 0;
  for (int i = 0; i < 2000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%06d", i);
    const double before = ctx.block_cycles();
    GpuBTreeKernel::insert(tree, buf, ctx);
    const double cost = ctx.block_cycles() - before;
    if (i < 20) shallow_cost += cost / 20;
    if (i >= 1980) deep_cost += cost / 20;
  }
  // Fig. 11's "inverse of the depth of B-tree" slope: deeper trees → more
  // per-insert work.
  EXPECT_GT(deep_cost, shallow_cost);
}

TEST_F(GpuBTreeFixture, StagingCostIsCoalesced) {
  WarpContext ctx(engine_.spec(), 0, stats_);
  GpuBTreeKernel::charge_stage_strings(4096, ctx);
  EXPECT_EQ(stats_.uncoalesced_transactions, 0u);
  EXPECT_EQ(stats_.global_load_transactions, 4096u / 64);
}

TEST_F(GpuBTreeFixture, NodeFetchesAreCoalesced512B) {
  Arena arena;
  BTree tree(arena);
  WarpContext ctx(engine_.spec(), 0, stats_);
  GpuBTreeKernel::insert(tree, "zzzz", ctx);  // fully-cached short key
  // A single root access: 8 coalesced load segments, no scattered reads.
  EXPECT_EQ(stats_.uncoalesced_transactions, 0u);
  EXPECT_GE(stats_.global_load_transactions, 8u);
}

}  // namespace
}  // namespace hetindex
