// Sharded serving-cluster tests (docs/CLUSTER.md): the partitioners'
// closed-form placement algebra, and the router's headline guarantee — a
// cluster's merged top-k is bit-identical to a single-node build of the
// union corpus, for every partition strategy, every query mode, both
// executors, across interleaved flushes, deletes, updates, memtable-resident
// documents and full compaction. Plus the failure half of the contract:
// replica failover behind an unchanged answer, whole-shard outages degrading
// to well-formed kShardPartial responses, shedding classified kShedPartial
// with demotion, reopen recovery of the global id sequence from shard
// widths, and CLUSTER meta validation. The final test races router queries
// against live mutation (the TSan tier-1 leg runs this file).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/hetindex.hpp"

namespace hetindex {
namespace {

using namespace std::chrono_literals;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("hetindex_cluster_" + tag + "_" + std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

struct Corpus {
  std::vector<std::string> files;
  std::vector<Document> docs;
};

Corpus make_corpus(const std::string& dir, std::uint64_t bytes, std::uint64_t seed) {
  CollectionSpec spec = wikipedia_like();
  spec.total_bytes = bytes;
  spec.seed = seed;
  const auto coll = generate_collection(spec, dir);
  Corpus corpus;
  corpus.files = coll.paths();
  for (const auto& file : corpus.files) {
    for (auto& doc : container_read(file)) corpus.docs.push_back(std::move(doc));
  }
  return corpus;
}

std::vector<std::vector<std::string>> sample_queries(
    const std::vector<std::string>& vocabulary, std::size_t count, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, vocabulary.size() - 1);
  std::uniform_int_distribution<std::size_t> arity(1, 5);
  std::vector<std::vector<std::string>> queries;
  queries.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    std::vector<std::string> terms;
    const std::size_t n = arity(rng);
    for (std::size_t t = 0; t < n; ++t) terms.push_back(vocabulary[pick(rng)]);
    queries.push_back(std::move(terms));
  }
  return queries;
}

// --------------------------------------------------- partitioner algebra

void expect_partitioner_closed_forms(const Partitioner& part, std::uint32_t total) {
  // Round trip + per-shard monotonicity: within a shard, ascending local
  // ids must map to ascending globals (the tie-break translation pillar).
  std::vector<std::uint32_t> last_global(part.shards(), 0);
  std::vector<bool> seen(part.shards(), false);
  std::vector<std::uint64_t> counts(part.shards(), 0);
  for (std::uint32_t g = 0; g < total; ++g) {
    const std::uint32_t s = part.doc_shard(g);
    ASSERT_LT(s, part.shards());
    const std::uint32_t local = part.local_doc(g);
    EXPECT_EQ(part.global_doc(s, local), g);
    if (seen[s]) {
      EXPECT_GT(g, last_global[s]);
    }
    seen[s] = true;
    last_global[s] = g;
    ++counts[s];
  }
  for (std::uint32_t s = 0; s < part.shards(); ++s) {
    if (part.replicates_documents()) {
      EXPECT_EQ(part.expected_shard_docs(s, total), total);
    } else {
      EXPECT_EQ(part.expected_shard_docs(s, total), counts[s])
          << "shard " << s << " total " << total;
    }
  }
}

TEST(Partitioner, DocumentClosedForms) {
  for (const std::uint32_t shards : {1u, 2u, 3u, 5u}) {
    const auto part = make_partitioner(PartitionStrategy::kDocument, shards);
    for (const std::uint32_t total : {0u, 1u, 7u, 64u, 1000u}) {
      expect_partitioner_closed_forms(*part, total);
    }
    EXPECT_FALSE(part->replicates_documents());
    EXPECT_FALSE(part->term_shard("anything").has_value());
  }
}

TEST(Partitioner, BlockClosedForms) {
  for (const std::uint32_t shards : {1u, 2u, 3u}) {
    for (const std::uint32_t block : {1u, 4u, 128u}) {
      const auto part = make_partitioner(PartitionStrategy::kBlock, shards, block);
      // Totals straddling block boundaries, including a partial tail block.
      for (const std::uint32_t total :
           {0u, 1u, block, block * shards, block * shards + 3, 1000u}) {
        expect_partitioner_closed_forms(*part, total);
      }
    }
  }
}

TEST(Partitioner, TermOwnershipIsStableAndLocalIsGlobal) {
  const auto part = make_partitioner(PartitionStrategy::kTerm, 4);
  EXPECT_TRUE(part->replicates_documents());
  for (std::uint32_t g = 0; g < 100; ++g) {
    EXPECT_EQ(part->doc_shard(g), 0u);
    EXPECT_EQ(part->local_doc(g), g);
    EXPECT_EQ(part->global_doc(2, g), g);
  }
  const auto owner = part->term_shard("zebra");
  ASSERT_TRUE(owner.has_value());
  EXPECT_LT(*owner, 4u);
  EXPECT_EQ(part->term_shard("zebra"), owner);  // deterministic
  expect_partitioner_closed_forms(*part, 64);
}

TEST(Partitioner, StrategyNamesRoundTrip) {
  for (const auto s : {PartitionStrategy::kDocument, PartitionStrategy::kTerm,
                       PartitionStrategy::kBlock}) {
    EXPECT_EQ(parse_partition_strategy(partition_strategy_name(s)), s);
  }
  EXPECT_FALSE(parse_partition_strategy("bogus").has_value());
}

// -------------------------------------------- cluster vs union twin stack

/// The cluster under test and its oracle: a single-node writer fed the
/// exact same operation sequence, so global id spaces coincide and every
/// query must come back bit-identical through the router.
struct TwinStack {
  std::unique_ptr<TempDir> corpus_dir;
  std::unique_ptr<TempDir> cluster_dir;
  std::unique_ptr<TempDir> union_dir;
  std::optional<Cluster> cluster;
  std::optional<IndexWriter> unioned;
  std::vector<std::string> vocab;
  std::vector<std::uint32_t> live_ids;
  Corpus corpus;
  std::size_t next_doc = 0;
};

IndexWriterOptions twin_writer_options() {
  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;  // explicit flush only — twins stay aligned
  opts.background_compaction = false;
  return opts;
}

/// Feeds `count` documents through both sides with interleaved flushes,
/// deletes and updates; asserts the cluster assigns exactly the union's ids.
void twin_ingest(TwinStack& stack, std::size_t count, std::uint32_t seed) {
  std::mt19937 rng(seed);
  auto& cluster = *stack.cluster;
  auto& unioned = *stack.unioned;
  const std::size_t stop = std::min(stack.corpus.docs.size(), stack.next_doc + count);
  for (; stack.next_doc < stop; ++stack.next_doc) {
    const auto& doc = stack.corpus.docs[stack.next_doc];
    const std::uint32_t got = cluster.add_document(doc.url, doc.body);
    const std::uint32_t want = unioned.add_document(doc.url, doc.body);
    ASSERT_EQ(got, want);
    stack.live_ids.push_back(got);
    const auto roll = rng() % 29;
    if (roll == 0 && !stack.live_ids.empty()) {  // delete a random live doc
      const std::size_t victim = rng() % stack.live_ids.size();
      const std::uint32_t id = stack.live_ids[victim];
      ASSERT_TRUE(cluster.delete_document(id).has_value());
      ASSERT_TRUE(unioned.delete_document(id).has_value());
      stack.live_ids.erase(stack.live_ids.begin() +
                           static_cast<std::ptrdiff_t>(victim));
    } else if (roll == 1 && !stack.live_ids.empty()) {  // update in place
      const std::size_t victim = rng() % stack.live_ids.size();
      const std::uint32_t id = stack.live_ids[victim];
      const auto& body = stack.corpus.docs[rng() % stack.corpus.docs.size()].body;
      const auto a = cluster.update_document(id, doc.url, body);
      const auto b = unioned.update_document(id, doc.url, body);
      ASSERT_TRUE(a.has_value());
      ASSERT_TRUE(b.has_value());
      ASSERT_EQ(a.value(), b.value());
      stack.live_ids[victim] = a.value();
    } else if (roll == 2) {  // segment boundary on both sides
      ASSERT_TRUE(cluster.flush().has_value());
      ASSERT_TRUE(unioned.flush().has_value());
    }
  }
}

TwinStack make_twins(PartitionStrategy strategy, std::uint32_t shards,
                     std::uint32_t replicas, std::uint32_t seed,
                     std::size_t ingest = 10000, bool positional = false) {
  TwinStack stack;
  stack.corpus_dir = std::make_unique<TempDir>("corpus");
  stack.cluster_dir = std::make_unique<TempDir>("cluster");
  stack.union_dir = std::make_unique<TempDir>("union");
  stack.corpus = make_corpus(stack.corpus_dir->path(), 64 << 10, seed);

  IndexWriterOptions wopts = twin_writer_options();
  wopts.parser.record_positions = positional;
  ClusterOptions copts;
  copts.strategy = strategy;
  copts.shards = shards;
  copts.replicas = replicas;
  copts.block_docs = 8;  // small blocks so several land on every shard
  copts.writer = wopts;
  stack.cluster.emplace(Cluster::open(stack.cluster_dir->path(), copts).value());
  stack.unioned.emplace(IndexWriter::open(stack.union_dir->path(), wopts).value());

  twin_ingest(stack, ingest, seed ^ 0x5EED);
  [&] {
    ASSERT_TRUE(stack.cluster->flush().has_value());
    ASSERT_TRUE(stack.unioned->flush().has_value());
  }();

  stack.unioned->snapshot()->for_each_term([&stack](std::string_view term) {
    stack.vocab.emplace_back(term);
    return true;
  });
  return stack;
}

/// The headline assertion: same docs, same order, bit-identical scores —
/// every mode, both ranked executors. `fanout` is the exact shard count a
/// complete scatter must report (document/block); nullopt for the term
/// strategy, where shards_total counts only the query's owner shards.
void expect_bit_identical(const SearchBackend& router, const SearchBackend& oracle,
                          const std::vector<std::vector<std::string>>& queries,
                          std::optional<std::uint32_t> fanout) {
  struct Variant {
    Query (*make)(std::vector<std::string>);
    bool exhaustive;
  };
  const Variant variants[] = {{&Query::bag, false},
                              {&Query::bag, true},
                              {&Query::conjunction, false},
                              {&Query::disjunction, false}};
  for (const auto& terms : queries) {
    for (const auto& v : variants) {
      QueryRequest request;
      request.query = v.make(terms);
      request.exhaustive = v.exhaustive;
      request.k = 10;
      request.use_result_cache = false;
      const auto a = router.search(request);
      const auto b = oracle.search(request);
      ASSERT_TRUE(a.has_value()) << a.error().to_string();
      ASSERT_TRUE(b.has_value()) << b.error().to_string();
      EXPECT_EQ(a.value().degradation, Degradation::kComplete);
      if (fanout.has_value()) {
        EXPECT_EQ(a.value().shards_total, *fanout);
      } else {
        EXPECT_GE(a.value().shards_total, 1u);
      }
      EXPECT_EQ(a.value().shards_answered, a.value().shards_total);
      const char* klass = query_class_name(request.query.query_class());
      EXPECT_EQ(a.value().query_class(), request.query.query_class());
      ASSERT_EQ(a.value().hits.size(), b.value().hits.size())
          << klass << (v.exhaustive ? "/exhaustive" : "");
      for (std::size_t i = 0; i < a.value().hits.size(); ++i) {
        EXPECT_EQ(a.value().hits[i].doc_id, b.value().hits[i].doc_id)
            << klass << " rank " << i;
        EXPECT_EQ(a.value().hits[i].score, b.value().hits[i].score)
            << klass << " rank " << i;
      }
    }
  }
}

class ClusterEquivalence : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(ClusterEquivalence, BitIdenticalToUnionAcrossMutationsAndCompaction) {
  auto stack = make_twins(GetParam(), 3, 1, 0xC1A0);
  const auto router = stack.cluster->make_router();
  const auto oracle =
      Searcher::open(SearchSource::live(
                         [w = &*stack.unioned] { return w->snapshot(); }))
          .value();
  const auto queries = sample_queries(stack.vocab, 20, 11);
  const std::optional<std::uint32_t> fanout =
      GetParam() == PartitionStrategy::kTerm ? std::nullopt
                                             : std::optional<std::uint32_t>(3);

  expect_bit_identical(*router, *oracle, queries, fanout);

  // Memtable-resident documents: ingest more WITHOUT flushing — the stats
  // probe and both executors must see them identically on both sides.
  twin_ingest(stack, 40, 0xFEED);
  expect_bit_identical(*router, *oracle, queries, fanout);

  // Full physical compaction on both sides (never one side only: compaction
  // reclaims tombstoned postings, so raw dfs — and with them the scores —
  // are only comparable when both sides are at the same reclaim state).
  ASSERT_TRUE(stack.cluster->flush().has_value());
  ASSERT_TRUE(stack.unioned->flush().has_value());
  ASSERT_TRUE(stack.cluster->compact_now().has_value());
  ASSERT_TRUE(stack.unioned->compact_now().has_value());
  expect_bit_identical(*router, *oracle, queries, fanout);
}

TEST_P(ClusterEquivalence, PhraseAndNearBitIdenticalToUnionOracle) {
  // Positional twins: every partition strategy must answer phrase and
  // NEAR queries exactly like a single-node build of the union corpus —
  // document/block shards verify locally (each shard holds its docs'
  // positions whole), the term strategy fetches owner lists and verifies
  // centrally at the router.
  auto stack = make_twins(GetParam(), 3, 1, 0xFA5E, 10000, /*positional=*/true);
  const auto router = stack.cluster->make_router();
  const auto oracle =
      Searcher::open(SearchSource::live(
                         [w = &*stack.unioned] { return w->snapshot(); }))
          .value();

  // Operand pairs: adjacent tokens from real documents (likely matches)
  // interleaved with random vocabulary draws (mostly misses).
  std::mt19937 rng(0x9A5E);
  const auto adjacent_pair = [&]() -> std::vector<std::string> {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto& body = stack.corpus.docs[rng() % stack.corpus.docs.size()].body;
      std::vector<std::string> tokens;
      std::string token;
      for (const char c : body) {
        if (c == ' ' || c == '\n' || c == '\t') {
          if (!token.empty()) tokens.push_back(std::move(token));
          token.clear();
        } else {
          token += c;
        }
      }
      if (!token.empty()) tokens.push_back(std::move(token));
      if (tokens.size() < 2) continue;
      const std::size_t at = rng() % (tokens.size() - 1);
      const auto a = normalize_term(tokens[at]);
      const auto b = normalize_term(tokens[at + 1]);
      if (!a.empty() && !b.empty()) return {a, b};
    }
    return {stack.vocab[rng() % stack.vocab.size()],
            stack.vocab[rng() % stack.vocab.size()]};
  };

  std::size_t matched = 0;
  for (int i = 0; i < 36; ++i) {
    std::vector<std::string> terms =
        i % 2 == 0 ? adjacent_pair()
                   : std::vector<std::string>{stack.vocab[rng() % stack.vocab.size()],
                                              stack.vocab[rng() % stack.vocab.size()]};
    Query query;
    switch (i % 3) {
      case 0: query = Query::phrase(terms); break;
      case 1: query = Query::near(terms, 1 + i % 4); break;
      default:
        // Mixed conjunction: phrase constraint plus a plain term.
        query = Query::and_of({Query::phrase(terms),
                               Query::term(stack.vocab[rng() % stack.vocab.size()])});
        break;
    }
    QueryRequest request;
    request.query = query;
    request.k = 20;
    request.use_result_cache = false;
    const auto a = router->search(request);
    const auto b = oracle->search(request);
    ASSERT_TRUE(a.has_value()) << a.error().to_string();
    ASSERT_TRUE(b.has_value()) << b.error().to_string();
    EXPECT_EQ(a.value().degradation, Degradation::kComplete);
    EXPECT_EQ(a.value().query_class(), query.query_class());
    ASSERT_EQ(a.value().hits.size(), b.value().hits.size()) << query.to_string();
    for (std::size_t r = 0; r < a.value().hits.size(); ++r) {
      EXPECT_EQ(a.value().hits[r].doc_id, b.value().hits[r].doc_id)
          << query.to_string() << " rank " << r;
      EXPECT_EQ(a.value().hits[r].score, b.value().hits[r].score)
          << query.to_string() << " rank " << r;
    }
    matched += a.value().hits.size();
  }
  EXPECT_GT(matched, 0u);  // half the workload comes from real adjacencies
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ClusterEquivalence,
                         ::testing::Values(PartitionStrategy::kDocument,
                                           PartitionStrategy::kTerm,
                                           PartitionStrategy::kBlock),
                         [](const auto& info) {
                           return std::string(partition_strategy_name(info.param));
                         });

// ------------------------------------------------------- failure handling

TEST(ClusterFailover, DownReplicaFailsOverBehindUnchangedAnswers) {
  auto stack = make_twins(PartitionStrategy::kDocument, 3, 2, 0xFA11);
  const auto router = stack.cluster->make_router();
  const auto oracle =
      Searcher::open(SearchSource::live(
                         [w = &*stack.unioned] { return w->snapshot(); }))
          .value();

  // First replica of one shard drops dead; the router must retry its peer
  // within the same query and still return complete, bit-identical answers.
  stack.cluster->shard(1).replica(0).set_down(true);
  expect_bit_identical(*router, *oracle,
                       sample_queries(stack.vocab, 10, 21), 3);
  const auto snapshot = router->metrics().snapshot();
  EXPECT_GE(snapshot.counter("cluster_failovers_total"), 1u);
  EXPECT_GE(snapshot.counter("cluster_shard_down_total"), 1u);
  EXPECT_EQ(snapshot.counter("cluster_partial_responses_total"), 0u);

  // Recovery: the replica comes back and is served to again eventually
  // (demotion lapses are time-based; correctness must not depend on which
  // replica answers).
  stack.cluster->shard(1).replica(0).set_down(false);
  expect_bit_identical(*router, *oracle, sample_queries(stack.vocab, 5, 22), 3);
}

TEST(ClusterFailover, WholeShardOutageDegradesToShardPartialWithinDeadline) {
  auto stack = make_twins(PartitionStrategy::kDocument, 3, 1, 0x0D0A);
  const auto router = stack.cluster->make_router();
  stack.cluster->shard(0).replica(0).set_down(true);

  QueryRequest request;
  request.query = Query::bag(sample_queries(stack.vocab, 1, 31)[0]);
  request.k = 10;
  request.use_result_cache = false;
  request.timeout = 500ms;

  const auto started = std::chrono::steady_clock::now();
  const auto response = router->search(request);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  ASSERT_TRUE(response.has_value()) << response.error().to_string();
  EXPECT_EQ(response.value().degradation, Degradation::kShardPartial);
  EXPECT_EQ(response.value().shards_total, 3u);
  EXPECT_EQ(response.value().shards_answered, 2u);
  EXPECT_LT(elapsed, 500ms);  // a down shard fails fast, never eats the budget
  EXPECT_GE(router->metrics().snapshot().counter("cluster_partial_responses_total"),
            1u);

  // The strict flavor: partial answers refused outright.
  RouterOptions strict;
  strict.allow_partial = false;
  const auto strict_router = stack.cluster->make_router(strict);
  const auto refused = strict_router->search(request);
  ASSERT_FALSE(refused.has_value());
  EXPECT_EQ(refused.error().code, ErrorCode::kUnavailable);
}

TEST(ClusterFailover, SheddingClassifiesShedPartialAndDemotes) {
  auto stack = make_twins(PartitionStrategy::kDocument, 2, 1, 0x5ED);
  const auto router = stack.cluster->make_router();
  stack.cluster->shard(1).replica(0).force_shed(true);

  QueryRequest request;
  request.query = Query::bag(sample_queries(stack.vocab, 1, 41)[0]);
  request.use_result_cache = false;

  for (int i = 0; i < 2; ++i) {  // two failures inside the window → demotion
    const auto response = router->search(request);
    ASSERT_TRUE(response.has_value()) << response.error().to_string();
    EXPECT_EQ(response.value().degradation, Degradation::kShedPartial);
    EXPECT_EQ(response.value().shards_answered, 1u);
    EXPECT_EQ(response.value().shards_total, 2u);
  }
  const auto snapshot = router->metrics().snapshot();
  EXPECT_GE(snapshot.counter("cluster_shard_sheds_total"), 2u);
  EXPECT_GE(snapshot.counter("cluster_replica_demotions_total"), 1u);
}

TEST(ClusterRouter, RejectsCallerSuppliedScatterStats) {
  auto stack = make_twins(PartitionStrategy::kDocument, 2, 1, 0x5CA7);
  const auto router = stack.cluster->make_router();
  QueryRequest request;
  request.query = Query::term(stack.vocab.front());
  request.scatter = std::make_shared<ScatterStats>();
  const auto response = router->search(request);
  ASSERT_FALSE(response.has_value());
  EXPECT_EQ(response.error().code, ErrorCode::kInvalidArgument);
}

// --------------------------------------------------- durability / reopen

TEST(ClusterReopen, RecoversGlobalSequenceFromShardWidths) {
  for (const auto strategy :
       {PartitionStrategy::kDocument, PartitionStrategy::kTerm,
        PartitionStrategy::kBlock}) {
    auto stack = make_twins(strategy, 3, 1, 0x09EA);
    const std::uint64_t total = stack.cluster->total_docs();
    const std::string dir = stack.cluster->dir();
    EXPECT_TRUE(Cluster::is_cluster_dir(dir));
    stack.cluster.reset();  // close every shard writer

    ClusterOptions copts;  // defaults defer to the CLUSTER meta on disk
    copts.writer = twin_writer_options();
    auto reopened = Cluster::open(dir, copts);
    ASSERT_TRUE(reopened.has_value()) << reopened.error().to_string();
    EXPECT_EQ(reopened.value().total_docs(), total);
    EXPECT_EQ(reopened.value().partitioner().strategy(), strategy);
    EXPECT_EQ(reopened.value().shard_count(), 3u);

    // The recovered sequence keeps assigning the union's ids.
    stack.cluster.emplace(std::move(reopened).value());
    twin_ingest(stack, 30, 0xAF7E);
    ASSERT_TRUE(stack.cluster->flush().has_value());
    ASSERT_TRUE(stack.unioned->flush().has_value());
    const auto router = stack.cluster->make_router();
    const auto oracle =
        Searcher::open(SearchSource::live(
                           [w = &*stack.unioned] { return w->snapshot(); }))
            .value();
    expect_bit_identical(*router, *oracle, sample_queries(stack.vocab, 8, 51),
                         strategy == PartitionStrategy::kTerm
                             ? std::nullopt
                             : std::optional<std::uint32_t>(3));
  }
}

TEST(ClusterReopen, RefusesTamperedMetaAndMismatchedTopology) {
  auto stack = make_twins(PartitionStrategy::kBlock, 2, 1, 0x7A3B);
  const std::string dir = stack.cluster->dir();
  stack.cluster.reset();

  {  // explicit topology contradicting the pinned meta
    ClusterOptions wrong;
    wrong.strategy = PartitionStrategy::kBlock;
    wrong.shards = 4;  // on disk: 2
    wrong.writer = twin_writer_options();
    const auto reopened = Cluster::open(dir, wrong);
    ASSERT_FALSE(reopened.has_value());
    EXPECT_EQ(reopened.error().code, ErrorCode::kInvalidArgument);
  }

  {  // garbage meta file
    std::ofstream out(dir + "/CLUSTER", std::ios::binary | std::ios::trunc);
    out << "not a cluster meta\n";
    out.close();
    const auto reopened = Cluster::open(dir, {});
    ASSERT_FALSE(reopened.has_value());
    EXPECT_EQ(reopened.error().code, ErrorCode::kCorrupt);
  }
}

// ------------------------------------------------- queries racing writers

TEST(ClusterRace, RouterQueriesRaceLiveMutation) {
  auto stack = make_twins(PartitionStrategy::kDocument, 2, 1, 0xACE, 60);
  const auto router = stack.cluster->make_router();
  const auto queries = sample_queries(stack.vocab, 8, 61);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::jthread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(200 + c);
      while (!done.load(std::memory_order_relaxed)) {
        QueryRequest request;
        request.query = rng() % 2 == 0
                            ? Query::disjunction(queries[rng() % queries.size()])
                            : Query::bag(queries[rng() % queries.size()]);
        request.use_result_cache = false;
        const auto result = router->search(request);
        // Under concurrent mutation any well-formed outcome is legal; what
        // TSan is here for is the snapshot handoff between router fan-out
        // and writer commits.
        if (result.has_value()) answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // One mutator thread (writers are externally synchronized) drives both
  // twins through adds, deletes, flushes and compaction under fire.
  twin_ingest(stack, 120, 0xBEE);
  ASSERT_TRUE(stack.cluster->flush().has_value());
  ASSERT_TRUE(stack.cluster->compact_now().has_value());
  std::this_thread::sleep_for(50ms);
  done.store(true, std::memory_order_relaxed);
  clients.clear();  // join
  EXPECT_GT(answered.load(), 0u);

  // Post-race: the twins must still agree exactly.
  ASSERT_TRUE(stack.unioned->flush().has_value());
  ASSERT_TRUE(stack.unioned->compact_now().has_value());
  const auto oracle =
      Searcher::open(SearchSource::live(
                         [w = &*stack.unioned] { return w->snapshot(); }))
          .value();
  expect_bit_identical(*router, *oracle, queries, 2);
}

}  // namespace
}  // namespace hetindex
