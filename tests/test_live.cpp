// Live indexing tests (docs/LIVE_INDEXING.md): incremental-vs-batch
// equivalence (random flush points must produce exactly the index a
// one-shot IndexBuilder builds, term for term), tiered compaction
// correctness (merges fold segments without re-encoding and answers never
// change), snapshot-isolated readers racing flushes and compaction (the
// TSan tier-1 leg runs this), crash recovery (uncommitted segment files
// and a stale MANIFEST.tmp must not survive reopen), and the DocMap
// offset/rebase API live segments rely on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/hetindex.hpp"
#include "util/binary_io.hpp"

namespace hetindex {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("hetindex_live_" + tag + "_" + std::to_string(counter_++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

/// A small deterministic corpus read back as documents, plus the batch
/// index built from the same container files.
struct Corpus {
  std::vector<std::string> files;
  std::vector<Document> docs;
};

Corpus make_corpus(const std::string& dir, std::uint64_t bytes, std::uint64_t seed) {
  CollectionSpec spec = wikipedia_like();
  spec.total_bytes = bytes;
  spec.seed = seed;
  const auto coll = generate_collection(spec, dir);
  Corpus corpus;
  corpus.files = coll.paths();
  for (const auto& file : corpus.files) {
    for (auto& doc : container_read(file)) corpus.docs.push_back(std::move(doc));
  }
  return corpus;
}

/// Ingests the corpus into `dir` with flushes at the given doc indices
/// (plus a final flush), then runs compaction to completion.
IndexWriter ingest(const Corpus& corpus, const std::string& dir,
                   IndexWriterOptions opts, const std::vector<std::size_t>& flush_after) {
  auto writer = IndexWriter::open(dir, opts);
  EXPECT_TRUE(writer.has_value());
  auto w = std::move(writer).value();
  std::size_t next_flush = 0;
  for (std::size_t i = 0; i < corpus.docs.size(); ++i) {
    const auto id = w.add_document(corpus.docs[i].url, corpus.docs[i].body);
    EXPECT_EQ(id, i);
    if (next_flush < flush_after.size() && flush_after[next_flush] == i) {
      ++next_flush;
      w.flush();
    }
  }
  w.flush();
  return w;
}

/// Asserts the snapshot answers every term exactly like the batch index.
void expect_equivalent(const LiveSnapshot& snap, const InvertedIndex& batch,
                       bool positions) {
  EXPECT_EQ(snap.term_count(), batch.term_count());
  std::uint64_t compared = 0;
  snap.for_each_term([&](std::string_view term) {
    const auto live = snap.lookup(term);
    const auto ref =
        positions ? batch.lookup_positional(term) : batch.lookup(term);
    EXPECT_TRUE(live.has_value()) << term;
    EXPECT_TRUE(ref.has_value()) << term;
    if (live && ref) {
      EXPECT_EQ(live->doc_ids, ref->doc_ids) << term;
      EXPECT_EQ(live->tfs, ref->tfs) << term;
      if (positions) {
        EXPECT_EQ(live->positions, ref->positions) << term;
      }
    }
    ++compared;
    return true;
  });
  EXPECT_EQ(compared, batch.term_count());
}

// -------------------------------------------------- incremental == batch

TEST(LiveEquivalence, RandomFlushPointsMatchBatchBuild) {
  TempDir corpus_dir("corpus");
  TempDir batch_dir("batch");
  TempDir live_dir("live");
  const auto corpus = make_corpus(corpus_dir.path(), 256 << 10, /*seed=*/0xC0FFEE);
  ASSERT_GT(corpus.docs.size(), 16u);

  IndexBuilder builder;
  builder.emit_segment(true);
  builder.build(corpus.files, batch_dir.path());
  const auto batch =
      InvertedIndex::open(batch_dir.path(), {IndexBackend::kSegment}).value();

  // Random flush points; seeded so failures reproduce.
  std::mt19937 rng(42);
  std::vector<std::size_t> flush_after;
  for (std::size_t i = 0; i < corpus.docs.size(); ++i) {
    if (rng() % 7 == 0) flush_after.push_back(i);
  }
  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;  // explicit flushes only
  opts.background_compaction = false;
  auto w = ingest(corpus, live_dir.path(), opts, flush_after);

  const auto snap = w.snapshot();
  EXPECT_EQ(snap->doc_count(), corpus.docs.size());
  EXPECT_GT(snap->segment_count(), 1u);
  expect_equivalent(*snap, batch, /*positions=*/false);

  // Compaction must not change a single answer.
  w.compact_now();
  const auto compacted = w.snapshot();
  EXPECT_LE(compacted->segment_count(), snap->segment_count());
  expect_equivalent(*compacted, batch, /*positions=*/false);

  // A fresh read-only open of the committed state agrees too.
  const auto live = LiveIndex::open(live_dir.path());
  ASSERT_TRUE(live.has_value());
  expect_equivalent(*live.value().snapshot(), batch, /*positions=*/false);
}

TEST(LiveEquivalence, PositionalPostingsSurviveFlushAndMerge) {
  TempDir corpus_dir("pcorpus");
  TempDir batch_dir("pbatch");
  TempDir live_dir("plive");
  const auto corpus = make_corpus(corpus_dir.path(), 96 << 10, /*seed=*/0xBEEF);

  IndexBuilder builder;
  builder.emit_segment(true);
  builder.config().parser.record_positions = true;
  builder.build(corpus.files, batch_dir.path());
  const auto batch =
      InvertedIndex::open(batch_dir.path(), {IndexBackend::kSegment}).value();

  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 0;
  opts.background_compaction = false;
  opts.parser.record_positions = true;
  // Flush every 10 documents, then fold everything back together: the
  // §III.F byte-concatenation merge must preserve positions bit-exactly.
  std::vector<std::size_t> flush_after;
  for (std::size_t i = 9; i < corpus.docs.size(); i += 10) flush_after.push_back(i);
  auto w = ingest(corpus, live_dir.path(), opts, flush_after);
  w.compact_now();
  expect_equivalent(*w.snapshot(), batch, /*positions=*/true);
}

// -------------------------------------------------- writer lifecycle

TEST(LiveWriter, EmptyFlushIsNoOp) {
  TempDir dir("noop");
  auto w = IndexWriter::open(dir.path(), {}).value();
  EXPECT_EQ(w.flush().value(), 0u);
  EXPECT_EQ(w.snapshot()->segment_count(), 0u);
  EXPECT_EQ(w.add_document("u://0", "alpha beta gamma"), 0u);
  EXPECT_EQ(w.buffered_docs(), 1u);
  EXPECT_GT(w.flush().value(), 0u);
  EXPECT_EQ(w.flush().value(), 0u);  // buffer drained by the first flush
  EXPECT_EQ(w.committed_docs(), 1u);
  EXPECT_EQ(w.buffered_docs(), 0u);
}

TEST(LiveWriter, ReopenContinuesDocIdsFromCommittedState) {
  TempDir dir("reopen");
  IndexWriterOptions opts;
  opts.background_compaction = false;
  {
    auto w = IndexWriter::open(dir.path(), opts).value();
    w.add_document("u://0", "apple banana");
    w.flush();
    w.add_document("u://1", "banana cherry");
    w.flush();
    // A buffered-but-unflushed document is dropped by the destructor.
    w.add_document("u://2", "never committed");
  }
  auto w = IndexWriter::open(dir.path(), opts).value();
  EXPECT_EQ(w.committed_docs(), 2u);
  EXPECT_EQ(w.snapshot()->segment_count(), 2u);
  EXPECT_EQ(w.add_document("u://2", "cherry dates"), 2u);
  w.flush();
  const auto snap = w.snapshot();
  EXPECT_EQ(snap->doc_count(), 3u);
  const auto hits = snap->lookup(normalize_term("banana"));
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(hits->doc_ids, (std::vector<std::uint32_t>{0, 1}));
  // The per-segment doc maps resolve every committed id.
  for (std::uint32_t id = 0; id < 3; ++id) {
    const auto* loc = snap->locate(id);
    ASSERT_NE(loc, nullptr) << id;
    EXPECT_EQ(loc->url, "u://" + std::to_string(id));
  }
}

TEST(LiveWriter, CrashRecoveryDropsUncommittedFiles) {
  TempDir dir("crash");
  IndexWriterOptions opts;
  opts.background_compaction = false;
  {
    auto w = IndexWriter::open(dir.path(), opts).value();
    w.add_document("u://0", "alpha beta");
    w.flush();
    w.add_document("u://1", "beta gamma");
    w.flush();
  }
  // Simulate a crash between segment write and manifest rename: a stray
  // segment pair on disk that no manifest names, plus a torn MANIFEST.tmp.
  const std::string stray_seg = live_segment_path(dir.path(), 99);
  const std::string stray_map = live_docmap_path(dir.path(), 99);
  write_file(stray_seg, std::vector<std::uint8_t>{'j', 'u', 'n', 'k'});
  write_file(stray_map, std::vector<std::uint8_t>{'j', 'u', 'n', 'k'});
  write_file(manifest_path(dir.path()) + ".tmp", std::vector<std::uint8_t>{0});

  auto w = IndexWriter::open(dir.path(), opts).value();
  EXPECT_EQ(w.committed_docs(), 2u);  // last committed snapshot, intact
  EXPECT_EQ(w.snapshot()->segment_count(), 2u);
  EXPECT_FALSE(file_exists(stray_seg));
  EXPECT_FALSE(file_exists(stray_map));
  EXPECT_FALSE(file_exists(manifest_path(dir.path()) + ".tmp"));
  // New commits keep working after recovery.
  w.add_document("u://2", "gamma delta");
  w.flush();
  EXPECT_EQ(w.snapshot()->doc_count(), 3u);
}

TEST(LiveWriter, CorruptManifestReportsStructuredError) {
  TempDir dir("badmanifest");
  {
    auto w = IndexWriter::open(dir.path(), {}).value();
    w.add_document("u://0", "alpha");
    w.flush();
  }
  auto bytes = read_file(manifest_path(dir.path()));
  bytes[bytes.size() / 2] ^= 0x40;  // flip a bit inside the CRC'd payload
  write_file(manifest_path(dir.path()), bytes);

  const auto writer = IndexWriter::open(dir.path(), {});
  ASSERT_FALSE(writer.has_value());
  EXPECT_EQ(writer.error().code, ErrorCode::kCorrupt);
  const auto index = LiveIndex::open(dir.path());
  ASSERT_FALSE(index.has_value());
  EXPECT_EQ(index.error().code, ErrorCode::kCorrupt);
}

TEST(LiveIndexOpen, MissingManifestReportsNotFound) {
  TempDir dir("nomanifest");
  const auto index = LiveIndex::open(dir.path());
  ASSERT_FALSE(index.has_value());
  EXPECT_EQ(index.error().code, ErrorCode::kNotFound);
}

// -------------------------------------------------- tiered compaction

TEST(LiveCompaction, TieredMergeFoldsAdjacentSegments) {
  TempDir dir("tiered");
  IndexWriterOptions opts;
  opts.background_compaction = false;
  opts.merge_factor = 2;
  opts.tier_base_bytes = 1 << 20;  // everything lands in tier 0
  auto w = IndexWriter::open(dir.path(), opts).value();
  for (std::uint32_t i = 0; i < 8; ++i) {
    w.add_document("u://" + std::to_string(i),
                   "common term" + std::to_string(i) + " filler words here");
    w.flush();
  }
  EXPECT_EQ(w.snapshot()->segment_count(), 8u);
  w.compact_now();
  const auto snap = w.snapshot();
  EXPECT_LT(snap->segment_count(), 8u);
  EXPECT_EQ(snap->doc_count(), 8u);
  // Every document is still findable, postings globally sorted.
  const auto hits = snap->lookup(normalize_term("common"));
  ASSERT_TRUE(hits.has_value());
  ASSERT_EQ(hits->doc_ids.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(hits->doc_ids[i], i);
  // Doc maps were rebased and folded along with the postings.
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto* loc = snap->locate(i);
    ASSERT_NE(loc, nullptr) << i;
    EXPECT_EQ(loc->url, "u://" + std::to_string(i));
  }
  // Obsolete segment files are reclaimed once no snapshot holds them.
  std::size_t seg_files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir.path())) {
    if (e.path().extension() == ".seg") ++seg_files;
  }
  EXPECT_EQ(seg_files, snap->segment_count());
}

TEST(LiveCompaction, RangeLookupSkipsNonOverlappingSegments) {
  TempDir dir("range");
  IndexWriterOptions opts;
  opts.background_compaction = false;
  auto w = IndexWriter::open(dir.path(), opts).value();
  for (std::uint32_t i = 0; i < 6; ++i) {
    w.add_document("u://" + std::to_string(i), "shared unique" + std::to_string(i));
    if (i % 2 == 1) w.flush();  // two docs per segment -> 3 segments
  }
  const auto snap = w.snapshot();
  ASSERT_EQ(snap->segment_count(), 3u);
  std::size_t touched = 0;
  const auto hits = snap->lookup_range(normalize_term("shared"), 2, 3, &touched);
  ASSERT_TRUE(hits.has_value());
  EXPECT_EQ(hits->doc_ids, (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(touched, 1u);  // only the middle segment overlaps [2, 3]
}

// -------------------------------------------------- readers vs writer races

TEST(LiveConcurrency, QueriesRaceFlushAndCompaction) {
  TempDir corpus_dir("ccorpus");
  TempDir dir("conc");
  const auto corpus = make_corpus(corpus_dir.path(), 128 << 10, /*seed=*/0xFACE);

  IndexWriterOptions opts;
  opts.flush_threshold_bytes = 8 << 10;  // flush roughly every few docs
  opts.tier_base_bytes = 4 << 10;
  opts.merge_factor = 2;
  opts.background_compaction = true;
  auto w = IndexWriter::open(dir.path(), opts).value();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  auto reader = [&] {
    std::uint64_t last_docs = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = w.snapshot();  // lock-free grab, then frozen state
      // Committed doc count never goes backwards across snapshots.
      EXPECT_GE(snap->doc_count(), last_docs);
      last_docs = snap->doc_count();
      std::uint64_t expected = 0;
      for (const auto& seg : snap->segments()) expected += seg->doc_count();
      EXPECT_EQ(snap->doc_count(), expected);
      snap->for_each_term([&](std::string_view term) {
        const auto hits = snap->lookup(term);
        EXPECT_TRUE(hits.has_value());
        // Disjoint ascending segments -> globally sorted, unique doc ids.
        for (std::size_t i = 1; i < hits->doc_ids.size(); ++i) {
          EXPECT_LT(hits->doc_ids[i - 1], hits->doc_ids[i]);
        }
        return reads.fetch_add(1, std::memory_order_relaxed) % 64 != 63;
      });
    }
  };
  std::thread r1(reader);
  std::thread r2(reader);
  for (const auto& doc : corpus.docs) w.add_document(doc.url, doc.body);
  w.flush();
  w.compact_now();
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(w.snapshot()->doc_count(), corpus.docs.size());
}

// -------------------------------------------------- DocMap offset/rebase

TEST(DocMapRebase, NonZeroBaseRoundTripsThroughV2Header) {
  TempDir dir("dmv2");
  const std::string path = dir.path() + "/m.docmap";
  DocMapBuilder builder(/*doc_id_base=*/100);
  builder.add_file(100, /*file_seq=*/7, {"u://a", "u://b"}, {3, 4});
  EXPECT_EQ(builder.base(), 100u);
  EXPECT_EQ(builder.doc_count(), 2u);
  builder.write(path);

  const auto map = DocMap::open(path);
  EXPECT_EQ(map.base(), 100u);
  EXPECT_EQ(map.doc_count(), 2u);
  EXPECT_FALSE(map.contains(99));
  EXPECT_TRUE(map.contains(101));
  EXPECT_FALSE(map.contains(102));
  EXPECT_EQ(map.location(100).url, "u://a");
  EXPECT_EQ(map.location(101).token_count, 4u);
  EXPECT_EQ(map.location(101).file_seq, 7u);
}

TEST(DocMapRebase, AppendFoldsAdjacentMapsPreservingIds) {
  TempDir dir("dmfold");
  const std::string a_path = dir.path() + "/a.docmap";
  const std::string b_path = dir.path() + "/b.docmap";
  const std::string merged_path = dir.path() + "/m.docmap";
  DocMapBuilder a(0);
  a.add_file(0, 1, {"u://0", "u://1", "u://2"}, {5, 6, 7});
  a.write(a_path);
  DocMapBuilder b(3);
  b.add_file(3, 2, {"u://3", "u://4"}, {8, 9});
  b.write(b_path);

  DocMapBuilder merged(0);
  merged.append(DocMap::open(a_path));
  merged.append(DocMap::open(b_path));
  merged.write(merged_path);

  const auto map = DocMap::open(merged_path);
  EXPECT_EQ(map.base(), 0u);
  EXPECT_EQ(map.doc_count(), 5u);
  for (std::uint32_t id = 0; id < 5; ++id) {
    EXPECT_EQ(map.location(id).url, "u://" + std::to_string(id)) << id;
  }
  EXPECT_EQ(map.location(2).file_seq, 1u);  // grouping survives the fold
  EXPECT_EQ(map.location(3).file_seq, 2u);
  EXPECT_EQ(map.location(4).token_count, 9u);
}

}  // namespace
}  // namespace hetindex
